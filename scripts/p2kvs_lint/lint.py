"""p2kvs-lint driver: builds the source model, runs the registered rules,
applies suppressions, and reports.

Engines:
  * regex — the pure-python parser in model.py; always available; the
    deterministic engine the fixture tests pin.
  * clang — libclang (python `clang.cindex`) refinement: real compiler
    -Wunused-result diagnostics per translation unit plus AST-accurate class
    tables. CI installs python3-clang and passes --require-clang so the
    fallback can never silently weaken the gate.
  * auto (default) — clang when importable, else regex.

Exit status: 0 when no findings survive suppression, 1 otherwise, 2 on usage
or engine errors.

Usage:
  python3 scripts/p2kvs_lint/lint.py [paths...]
      [--engine auto|clang|regex] [--require-clang]
      [--compile-commands DIR] [--rules r1,r2] [--json FILE] [--list-rules]
"""

import argparse
import json
import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from p2kvs_lint import clang_engine, model as model_mod
    from p2kvs_lint.rules import ALL_RULES
else:
    from . import clang_engine, model as model_mod
    from .rules import ALL_RULES


def repo_root_of(start):
    d = os.path.abspath(start)
    while d != os.path.dirname(d):
        if os.path.isdir(os.path.join(d, ".git")):
            return d
        d = os.path.dirname(d)
    return os.path.abspath(start)


def build_model(paths, repo_root, engine, require_clang, compile_commands):
    if engine in ("auto", "clang"):
        try:
            m = clang_engine.build_clang_model(paths, repo_root, compile_commands)
            return m
        except clang_engine.EngineUnavailable as e:
            if engine == "clang" or require_clang:
                print("p2kvs-lint: clang engine required but unavailable: %s" % e,
                      file=sys.stderr)
                sys.exit(2)
            print("p2kvs-lint: clang engine unavailable (%s); regex fallback" % e,
                  file=sys.stderr)
    return model_mod.build_regex_model(paths, repo_root)


def main(argv=None):
    ap = argparse.ArgumentParser(prog="p2kvs-lint", description=__doc__)
    ap.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    ap.add_argument("--engine", choices=("auto", "clang", "regex"), default="auto")
    ap.add_argument("--require-clang", action="store_true",
                    help="fail (exit 2) instead of falling back to the regex engine")
    ap.add_argument("--compile-commands", default=None,
                    help="directory containing compile_commands.json (default: build/)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    ap.add_argument("--json", dest="json_out", default=None,
                    help="write findings as JSON to this file")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(ALL_RULES):
            print("%-18s %s" % (name, ALL_RULES[name].DESCRIPTION))
        return 0

    repo_root = repo_root_of(os.getcwd())
    if args.paths:
        paths = []
        for p in args.paths:
            p = os.path.abspath(p)
            if os.path.isdir(p):
                rel = os.path.relpath(p, repo_root)
                paths.extend(model_mod.collect_sources(repo_root, (rel,)))
            else:
                paths.append(p)
    else:
        paths = model_mod.collect_sources(repo_root, ("src",))
    if not paths:
        print("p2kvs-lint: no sources found", file=sys.stderr)
        return 2

    rule_names = sorted(ALL_RULES)
    if args.rules:
        rule_names = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rule_names if r not in ALL_RULES]
        if unknown:
            print("p2kvs-lint: unknown rule(s): %s" % ", ".join(unknown),
                  file=sys.stderr)
            return 2

    cc_dir = args.compile_commands or os.path.join(repo_root, "build")
    model = build_model(paths, repo_root, args.engine, args.require_clang, cc_dir)

    findings = []
    suppressed = []
    for name in rule_names:
        for f in ALL_RULES[name].run(model):
            if model.suppressed(f):
                suppressed.append(f)
            else:
                findings.append(f)
    # Malformed suppressions (no reason) are findings and cannot be suppressed.
    findings.extend(model.errors)
    # Stale suppressions: nothing fired under them, so either the code was
    # fixed (delete the comment) or the comment is on the wrong line.
    if not args.rules:
        for sf in model.files.values():
            for sup in sf.suppressions:
                if not sup.used:
                    findings.append(model_mod.Finding(
                        "suppression", sf.rel, sup.line,
                        "unused suppression for (%s); no finding fired here — "
                        "remove it or move it to the offending line"
                        % ", ".join(sup.rules)))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.format())

    if args.json_out:
        payload = {
            "engine": model.engine,
            "rules": rule_names,
            "files": len(model.files),
            "findings": [vars(f) if not hasattr(f, "__dataclass_fields__")
                         else {"rule": f.rule, "path": f.path, "line": f.line,
                               "message": f.message}
                         for f in findings],
            "suppressed": [{"rule": f.rule, "path": f.path, "line": f.line}
                           for f in suppressed],
        }
        with open(args.json_out, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, indent=2)
            fp.write("\n")

    print("p2kvs-lint: engine=%s files=%d rules=%s findings=%d suppressed=%d"
          % (model.engine, len(model.files), ",".join(rule_names),
             len(findings), len(suppressed)), file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
