"""Shared source model for p2kvs_lint rules.

The model is a set of plain-data facts about the tree — classes and their
members, function definitions and the calls inside them, lock annotations,
nodiscard registries, suppression comments — that every rule consumes. It is
built either by the pure-regex parser in this file (always available, the
deterministic engine the fixture tests pin) or refined by libclang when the
python bindings are installed (see clang_engine.py).

The regex parser is deliberately conservative: facts it cannot resolve (an
unknown receiver type, an ambiguous method name) are recorded as unresolved
rather than guessed, and rules are written to stay quiet on unresolved facts.
"""

import os
import re
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str  # repo-relative
    line: int  # 1-based
    message: str

    def format(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule, self.message)


@dataclass
class Suppression:
    rules: tuple
    line: int  # the commented line; covers this line and the next
    reason: str
    used: bool = False


@dataclass
class CallSite:
    method: str
    line: int  # 1-based, within the file
    receiver: str = ""  # receiver expression variable name ("" = bare call)
    receiver_type: str = ""  # resolved type name ("" = unresolved/bare)


@dataclass
class FunctionDef:
    qualname: str  # "Class::Method", "function", or "<file>:<line>:<kind>-lambda"
    cls: str  # enclosing class ("" for free functions / lambdas)
    path: str
    line: int
    body: str  # blanked body text (lambda sub-bodies excised for parents)
    body_start_offset: int  # offset of body start within the file's blanked text
    calls: list = field(default_factory=list)
    is_worker_root: bool = False
    root_kind: str = ""  # "run-loop" | "async-api" | "marker" | "callback" | "engine-hook"


@dataclass
class ClassInfo:
    name: str
    path: str
    line: int
    bases: list = field(default_factory=list)
    members: dict = field(default_factory=dict)  # member name -> unwrapped type
    nodiscard: bool = False  # class P2KVS_NODISCARD X / class [[nodiscard]] X


@dataclass
class SourceFile:
    path: str  # absolute
    rel: str  # repo-relative
    raw: str
    raw_lines: list
    code: str  # comments and string/char literals blanked, offsets preserved
    code_lines: list
    suppressions: list = field(default_factory=list)
    suppression_errors: list = field(default_factory=list)  # Finding

    def line_of(self, offset):
        return self.code.count("\n", 0, offset) + 1

    def suppressed(self, rule, line):
        for sup in self.suppressions:
            if line in (sup.line, sup.line + 1) and rule in sup.rules:
                sup.used = True
                return True
        return False


SUPPRESS_RE = re.compile(r"//\s*p2kvs-lint:\s*allow\(([\w\s,-]+)\)(?:\s*--\s*(.*\S))?")
WORKER_MARKER_RE = re.compile(r"//\s*p2kvs-lint:\s*worker-context")


def blank_comments_and_strings(text):
    """Replaces comment and string/char literal contents with spaces, keeping
    every offset (and newline) identical to the input."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                        i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def match_brace(text, open_pos, open_ch="{", close_ch="}"):
    """Offset just past the brace matching text[open_pos], or len(text)."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def load_source_file(path, repo_root):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    rel = os.path.relpath(path, repo_root)
    sf = SourceFile(
        path=path,
        rel=rel,
        raw=raw,
        raw_lines=raw.splitlines(),
        code=blank_comments_and_strings(raw),
        code_lines=blank_comments_and_strings(raw).splitlines(),
    )
    for lineno, line in enumerate(sf.raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if m is None:
            continue
        rules = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
        reason = (m.group(2) or "").strip()
        if not reason:
            sf.suppression_errors.append(
                Finding(
                    "suppression",
                    rel,
                    lineno,
                    "suppression without a reason; write "
                    "`// p2kvs-lint: allow(<rule>) -- <why this is safe>`",
                )
            )
            continue
        sf.suppressions.append(Suppression(rules=rules, line=lineno, reason=reason))
    return sf


# ---------------------------------------------------------------------------
# Type helpers
# ---------------------------------------------------------------------------

_WRAPPER_RE = re.compile(r"^(?:std::)?(unique_ptr|shared_ptr|vector|deque|optional|atomic)<(.*)>$")


def unwrap_type(t):
    """unique_ptr<X> / vector<unique_ptr<X>> / X* / const X& -> X."""
    t = t.strip()
    t = re.sub(r"\bconst\b", "", t).strip()
    t = t.rstrip("*& ").strip()
    if t.startswith("p2kvs::"):
        t = t[len("p2kvs::"):]
    m = _WRAPPER_RE.match(t)
    while m is not None:
        t = m.group(2).strip()
        if t.startswith("p2kvs::"):
            t = t[len("p2kvs::"):]
        m = _WRAPPER_RE.match(t)
    # Drop template arguments of the final type: IntrusiveMpscQueue<Request>
    # resolves to IntrusiveMpscQueue.
    angle = t.find("<")
    if angle != -1:
        t = t[:angle]
    return t.strip(": ")


# ---------------------------------------------------------------------------
# Class / member / annotation parsing
# ---------------------------------------------------------------------------

CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:P2KVS_NODISCARD\s+|\[\[nodiscard\]\]\s+)?"
    r"((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)\s*(?:final\s*)?(?::\s*([^{;]+?))?\s*\{"
)
CLASS_ND_RE = re.compile(r"\b(?:class|struct)\s+(?:P2KVS_NODISCARD|\[\[nodiscard\]\])\s+([A-Za-z_]\w*)")
MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?(?:const\s+)?"
    r"([A-Za-z_][\w:]*(?:<[^;]*>)?)\s*(?:[*&]\s*)?([a-z]\w*_?)\s*"
    r"(?:GUARDED_BY\([^)]*\)\s*|PT_GUARDED_BY\([^)]*\)\s*|ACQUIRED_AFTER\([^)]*\)\s*)*"
    r"(?:\{[^{}]*\}|=[^;]*)?;"
)
ACQUIRED_AFTER_RE = re.compile(r"\b([A-Za-z_]\w*)\s+ACQUIRED_AFTER\(([^)]*)\)")
LOCK_ANNOT_RE = re.compile(r"\b(REQUIRES|EXCLUDES|ACQUIRE|RELEASE)\(([^)]*)\)")
KEYWORDS = frozenset(
    "if for while switch return sizeof new delete case do else goto throw "
    "catch static_cast dynamic_cast reinterpret_cast const_cast alignas "
    "alignof decltype defined assert static_assert".split()
)
# Words that legitimately precede a call expression (everything else in the
# `identifier identifier(` shape is a declaration).
CALL_PRECEDERS = frozenset(
    "return co_return co_await co_yield else do throw new".split()
)


def parse_classes(sf, model):
    for m in CLASS_RE.finditer(sf.code):
        # `struct DBImpl::Writer { ... }` defines Writer (scoped); keep the
        # terminal component as the usable type name.
        name = m.group(2).split("::")[-1]
        brace = sf.code.find("{", m.start())
        if brace == -1:
            continue
        end = match_brace(sf.code, brace)
        # Forward declarations and `struct X {};` in function bodies are rare
        # enough that we accept them; duplicate names keep the first parse.
        if name in model.classes:
            info = model.classes[name]
        else:
            info = ClassInfo(name=name, path=sf.rel, line=sf.line_of(m.start()))
            model.classes[name] = info
        if m.group(3):
            for base in m.group(3).split(","):
                base = re.sub(r"\b(public|protected|private|virtual)\b", "", base).strip()
                base = unwrap_type(base)
                if base and base not in info.bases:
                    info.bases.append(base)
                    model.derived.setdefault(base, []).append(name)
        body = sf.code[brace + 1 : end - 1]
        body_line0 = sf.line_of(brace)
        # Member declarations (for receiver-type resolution). Only lines at
        # the class body's own brace depth count: lines inside inline method
        # bodies or nested classes are not members of THIS class.
        depth = 0
        for line_idx, line in enumerate(body.splitlines()):
            line_depth = depth
            depth += line.count("{") - line.count("}")
            if line_depth != 0 or depth != 0:
                continue
            mm = MEMBER_RE.match(line)
            if mm is None:
                continue
            mtype, mname = mm.group(1), mm.group(2)
            if mtype in ("return", "delete", "using", "typedef", "friend", "explicit"):
                continue
            info.members[mname] = unwrap_type(mtype)
            if unwrap_type(mtype) == "Mutex":
                model.mutex_members.setdefault(mname, (sf.rel, body_line0 + line_idx))
        # Lock-order annotations: `Mutex b_ ACQUIRED_AFTER(a_);` means a_ is
        # (sometimes) already held when b_ is acquired -> edge a_ -> b_.
        for am in ACQUIRED_AFTER_RE.finditer(body):
            after = am.group(1)
            line = body_line0 + body.count("\n", 0, am.start())
            for before in am.group(2).split(","):
                before = before.strip()
                if before:
                    model.lock_edges.append((before, after, sf.rel, line, "annotated"))
    # Class-level nodiscard needs the raw text: the attribute may sit inside
    # what the blanker left alone anyway, but be permissive.
    for m in CLASS_ND_RE.finditer(sf.raw):
        cls = m.group(1)
        if cls in model.classes:
            model.classes[cls].nodiscard = True
        model.nodiscard_types.add(cls)


# ---------------------------------------------------------------------------
# Nodiscard function registry
# ---------------------------------------------------------------------------

# `P2KVS_NODISCARD Type Method(...)` or `[[nodiscard]] Type Method(...)`.
ND_FUNC_RE = re.compile(
    r"(?:P2KVS_NODISCARD|\[\[nodiscard\]\])\s+"
    r"(?:virtual\s+|static\s+|inline\s+)*([A-Za-z_][\w:<>]*)\s+([A-Za-z_]\w*)\s*\("
)
# `Status Method(...)` declarations (class scope or free).
STATUS_FUNC_RE = re.compile(
    r"(?:^|[;{}]\s*|\n\s*)(?:virtual\s+|static\s+|inline\s+)*"
    r"(Status)\s+([A-Za-z_]\w*)\s*\("
)


def enclosing_class(sf, offset, model):
    """Name of the class whose body contains `offset`, or ""."""
    best, best_start = "", -1
    for m in CLASS_RE.finditer(sf.code):
        brace = sf.code.find("{", m.start())
        if brace == -1:
            continue
        end = match_brace(sf.code, brace)
        if brace < offset < end and brace > best_start:
            best, best_start = m.group(2).split("::")[-1], brace
    return best


def parse_nodiscard_registry(sf, model):
    for m in ND_FUNC_RE.finditer(sf.code):
        cls = enclosing_class(sf, m.start(), model)
        model.nodiscard_methods.add((cls, m.group(2)))
        model.nodiscard_method_names.add(m.group(2))
    for m in STATUS_FUNC_RE.finditer(sf.code):
        cls = enclosing_class(sf, m.start(2), model)
        model.nodiscard_methods.add((cls, m.group(2)))
        model.nodiscard_method_names.add(m.group(2))


# ---------------------------------------------------------------------------
# Function definitions and call extraction
# ---------------------------------------------------------------------------

MEMBER_DEF_RE = re.compile(
    r"(?m)^[A-Za-z_][\w:<>,&*\s~\[\]]*?\b([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*\("
)
FREE_DEF_RE = re.compile(
    r"(?m)^(?:static\s+)?[A-Za-z_][\w:<>,&*\s]*?[\s*&]([A-Za-z_]\w*)\s*\("
)
POST_PARAMS_RE = re.compile(
    r"\s*(?:const\s*|noexcept\s*|override\s*|final\s*|->\s*[\w:<>]+\s*|"
    r"(?:REQUIRES|EXCLUDES|ACQUIRE|RELEASE|NO_THREAD_SAFETY_ANALYSIS)\s*(?:\([^)]*\))?\s*)*"
)
MEMBER_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(\[[^\]]*\]\s*)?(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
BARE_CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")
LOCAL_DECL_RE = re.compile(
    r"(?m)(?:^|[;{}(]\s*)\s*(?:const\s+)?([A-Za-z_][\w:]*(?:<[^;(){}]*>)?)\s*[*&]?\s+"
    r"([a-z]\w*)\s*(?:\{|=|;|\()"
)
LAMBDA_ASSIGN_RE = re.compile(r"(?:(?:->|\.)\s*(callback)|\bhooks\s*\.\s*(\w+))\s*=\s*\[")


def _def_body_span(sf, paren_open):
    """(body_open, body_end) offsets for a definition whose parameter-list '('
    is at paren_open, or None when this is only a declaration."""
    params_end = match_brace(sf.code, paren_open, "(", ")")
    m = POST_PARAMS_RE.match(sf.code, params_end)
    pos = m.end() if m else params_end
    while pos < len(sf.code) and sf.code[pos] in " \t\n":
        pos += 1
    if pos >= len(sf.code) or sf.code[pos] != "{":
        return None
    return pos, match_brace(sf.code, pos)


def _extract_lambda_roots(sf, body, body_off, model, out_excised):
    """Finds callback/engine-hook lambdas, registers them as worker-context
    roots, and blanks their bodies in `out_excised` (a list of chars)."""
    for m in LAMBDA_ASSIGN_RE.finditer(body):
        kind = "callback" if m.group(1) else "engine-hook"
        lb = body.find("[", m.start())
        if lb == -1:
            continue
        rb = match_brace(body, lb, "[", "]")
        pos = rb
        while pos < len(body) and body[pos] in " \t\n":
            pos += 1
        if pos < len(body) and body[pos] == "(":
            pos = match_brace(body, pos, "(", ")")
        while pos < len(body) and body[pos] in " \t\n":
            pos += 1
        m2 = re.compile(r"(?:mutable\s*|->\s*[\w:<>]+\s*)*").match(body, pos)
        pos = m2.end() if m2 else pos
        if pos >= len(body) or body[pos] != "{":
            continue
        end = match_brace(body, pos)
        line = sf.line_of(body_off + m.start())
        fn = FunctionDef(
            qualname="%s:%d:%s-lambda" % (sf.rel, line, kind),
            cls="",
            path=sf.rel,
            line=line,
            body=body[pos + 1 : end - 1],
            body_start_offset=body_off + pos + 1,
            is_worker_root=True,
            root_kind=kind,
        )
        model.functions[fn.qualname] = fn
        for i in range(pos + 1, end - 1):
            if out_excised[i] != "\n":
                out_excised[i] = " "


INLINE_DEF_RE = re.compile(
    r"(?m)^\s+(?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+)*"
    r"[A-Za-z_][\w:<>,&*\s]*?[\s*&]([A-Za-z_]\w*)\s*\("
)


def parse_inline_methods(sf, model):
    """Methods defined inside class bodies (the KVell/BTree engines define
    everything inline in the .cc). Each definition is attributed to the
    innermost enclosing class; nested-class bodies are excluded from the
    outer class's scan."""
    class_spans = []  # (brace, end, name)
    for m in CLASS_RE.finditer(sf.code):
        brace = sf.code.find("{", m.start())
        if brace == -1:
            continue
        class_spans.append((brace, match_brace(sf.code, brace), m.group(2).split("::")[-1]))
    for brace, end, name in class_spans:
        inner = [(b, e) for b, e, _n in class_spans if brace < b and e < end]
        method_spans = []
        for im in INLINE_DEF_RE.finditer(sf.code, brace + 1, end - 1):
            start = im.start(1)
            if any(b < start < e for b, e in inner):
                continue
            if any(b <= start < e for b, e in method_spans):
                continue
            span = _def_body_span(sf, im.end() - 1)
            if span is None:
                continue
            body_open, body_end = span
            method_spans.append((body_open, body_end))
            mname = im.group(1)
            qual = "%s::%s" % (name, mname)
            body = sf.code[body_open + 1 : body_end - 1]
            excised = list(body)
            _extract_lambda_roots(sf, body, body_open + 1, model, excised)
            line = sf.line_of(im.start(1))
            fn = FunctionDef(
                qualname=qual,
                cls=name,
                path=sf.rel,
                line=line,
                body="".join(excised),
                body_start_offset=body_open + 1,
            )
            if mname.endswith("Async"):
                fn.is_worker_root, fn.root_kind = True, "async-api"
            if 0 < line <= len(sf.raw_lines):
                context = "\n".join(sf.raw_lines[max(0, line - 3) : line])
                if WORKER_MARKER_RE.search(context):
                    fn.is_worker_root, fn.root_kind = True, "marker"
            model.functions.setdefault(qual, fn)


def parse_functions(sf, model):
    seen_spans = []
    for m in MEMBER_DEF_RE.finditer(sf.code):
        head = sf.code[m.start() : m.end()]
        if head.lstrip().startswith(("if", "for", "while", "switch", "return")):
            continue
        span = _def_body_span(sf, m.end() - 1)
        if span is None:
            continue
        body_open, body_end = span
        seen_spans.append((body_open, body_end))
        cls, name = m.group(1), m.group(2)
        qual = "%s::%s" % (cls, name)
        body = sf.code[body_open + 1 : body_end - 1]
        excised = list(body)
        _extract_lambda_roots(sf, body, body_open + 1, model, excised)
        line = sf.line_of(m.start())
        fn = FunctionDef(
            qualname=qual,
            cls=cls,
            path=sf.rel,
            line=line,
            body="".join(excised),
            body_start_offset=body_open + 1,
        )
        if qual == "Worker::Run":
            fn.is_worker_root, fn.root_kind = True, "run-loop"
        elif name.endswith("Async"):
            fn.is_worker_root, fn.root_kind = True, "async-api"
        if 0 < line <= len(sf.raw_lines):
            context = "\n".join(sf.raw_lines[max(0, line - 3) : line])
            if WORKER_MARKER_RE.search(context):
                fn.is_worker_root, fn.root_kind = True, "marker"
        model.functions.setdefault(qual, fn)
    return seen_spans


def parse_params(sf, fn_def_match_end):
    """Parameter name -> type for the def whose '(' is at fn_def_match_end-1."""
    params_end = match_brace(sf.code, fn_def_match_end - 1, "(", ")")
    text = sf.code[fn_def_match_end:params_end - 1]
    out = {}
    depth = 0
    start = 0
    parts = []
    for i, c in enumerate(text):
        if c in "<(":
            depth += 1
        elif c in ">)":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    for p in parts:
        pm = re.match(r"\s*(?:const\s+)?([A-Za-z_][\w:]*(?:<[^;]*>)?)\s*[*&]*\s*([A-Za-z_]\w*)\s*$", p.strip())
        if pm is not None:
            out[pm.group(2)] = unwrap_type(pm.group(1))
    return out


def resolve_member_type(model, cls, member):
    """Member type looked up through the class and its bases."""
    seen = set()
    stack = [cls]
    while stack:
        c = stack.pop()
        if c in seen or c not in model.classes:
            continue
        seen.add(c)
        info = model.classes[c]
        if member in info.members:
            return info.members[member]
        stack.extend(info.bases)
    return ""


def extract_calls(sf, fn, model, params=None):
    """Populates fn.calls with receiver-typed call sites."""
    body = fn.body
    locals_map = {}
    for lm in LOCAL_DECL_RE.finditer(body):
        t = lm.group(1)
        if t in KEYWORDS or t in ("return", "auto", "else", "case"):
            continue
        locals_map[lm.group(2)] = unwrap_type(t)
    if params:
        for k, v in params.items():
            locals_map.setdefault(k, v)

    def type_of(recv, indexed):
        t = locals_map.get(recv, "")
        if not t and fn.cls:
            t = resolve_member_type(model, fn.cls, recv)
        if not t:
            return ""
        return t  # unwrap_type already strips vector<unique_ptr<X>> to X

    for cm in MEMBER_CALL_RE.finditer(body):
        recv, indexed, method = cm.group(1), cm.group(2), cm.group(3)
        if recv in ("std", "this"):
            recv_t = fn.cls if recv == "this" else ""
        else:
            recv_t = type_of(recv, indexed is not None)
        fn.calls.append(
            CallSite(
                method=method,
                line=sf.line_of(fn.body_start_offset + cm.start()),
                receiver=recv,
                receiver_type=recv_t,
            )
        )
    member_spans = [(cm.start(), cm.end()) for cm in MEMBER_CALL_RE.finditer(body)]
    for bm in BARE_CALL_RE.finditer(body):
        if bm.group(1) in KEYWORDS:
            continue
        # Skip names that are the method part of a member call already found.
        inside = any(s <= bm.start(1) < e for s, e in member_spans)
        if inside:
            continue
        # `Type Name(` is a declaration (locals, or methods of a local
        # struct), not a call: skip when an identifier directly precedes,
        # unless that identifier is a keyword that legitimately precedes a
        # call expression.
        j = bm.start(1) - 1
        while j >= 0 and body[j] in " \t\n":
            j -= 1
        if j >= 0 and (body[j].isalnum() or body[j] == "_"):
            k = j
            while k >= 0 and (body[k].isalnum() or body[k] == "_"):
                k -= 1
            prev_word = body[k + 1 : j + 1]
            if prev_word not in CALL_PRECEDERS:
                continue
        fn.calls.append(
            CallSite(
                method=bm.group(1),
                line=sf.line_of(fn.body_start_offset + bm.start()),
            )
        )


# ---------------------------------------------------------------------------
# Lock acquisitions observed in function bodies
# ---------------------------------------------------------------------------

MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*&([A-Za-z_]\w*)\s*\)")
EXPLICIT_LOCK_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*Lock\s*\(\s*\)")


def observed_lock_nesting(sf, fn, model):
    """Records observed a-held-while-acquiring-b pairs in fn's body.

    MutexLock is scope-tied: an acquisition covers the rest of its enclosing
    brace scope. Explicit .Lock()/.Unlock() pairs are treated the same way
    (held until the scope ends) — conservative, but Unlock-before-acquire
    patterns are rare enough to suppress case by case.
    """
    body = fn.body
    acquisitions = []  # (offset, mutex)
    for m in MUTEXLOCK_RE.finditer(body):
        acquisitions.append((m.start(), m.group(1)))
    for m in EXPLICIT_LOCK_RE.finditer(body):
        acquisitions.append((m.start(), m.group(1)))
    acquisitions.sort()
    for i, (off_a, mu_a) in enumerate(acquisitions):
        # Scope of acquisition a: from off_a to the close of its brace scope.
        depth = 0
        scope_end = len(body)
        for j in range(off_a, len(body)):
            if body[j] == "{":
                depth += 1
            elif body[j] == "}":
                depth -= 1
                if depth < 0:
                    scope_end = j
                    break
        for off_b, mu_b in acquisitions[i + 1 :]:
            if off_b >= scope_end or mu_a == mu_b:
                continue
            line = sf.line_of(fn.body_start_offset + off_b)
            model.observed_nestings.append((mu_a, mu_b, sf.rel, line, fn.qualname))


# ---------------------------------------------------------------------------
# The model itself
# ---------------------------------------------------------------------------

class ProjectModel:
    def __init__(self, repo_root):
        self.repo_root = repo_root
        self.engine = "regex"
        self.files = {}  # rel -> SourceFile
        self.classes = {}  # name -> ClassInfo
        self.derived = {}  # base -> [derived]
        self.mutex_members = {}  # name -> (file, line) of first declaration
        self.nodiscard_methods = set()  # (class or "", method)
        self.nodiscard_method_names = set()
        self.nodiscard_types = {"Status"}
        self.functions = {}  # qualname -> FunctionDef
        self.lock_edges = []  # (before, after, file, line, origin)
        self.observed_nestings = []  # (held, acquired, file, line, function)
        self.clang_unused_diags = []  # (rel, line, message) — clang engine only
        self.errors = []  # Finding (model-level problems, e.g. bad suppressions)

    def suppressed(self, finding):
        sf = self.files.get(finding.path)
        return sf is not None and sf.suppressed(finding.rule, finding.line)


def build_regex_model(paths, repo_root):
    model = ProjectModel(repo_root)
    for path in paths:
        sf = load_source_file(path, repo_root)
        model.files[sf.rel] = sf
        model.errors.extend(sf.suppression_errors)
    # Pass 1: classes / members / annotations / nodiscard registry (headers
    # first is unnecessary — all files are scanned before pass 2).
    for sf in model.files.values():
        parse_classes(sf, model)
        parse_nodiscard_registry(sf, model)
    # Pass 2: function bodies, calls, observed lock nesting.
    for sf in model.files.values():
        if not sf.rel.endswith((".cc", ".cpp")):
            continue
        parse_functions(sf, model)
        parse_inline_methods(sf, model)
    for sf in model.files.values():
        for fn in list(model.functions.values()):
            if fn.path != sf.rel:
                continue
            extract_calls(sf, fn, model)
            observed_lock_nesting(sf, fn, model)
    return model


def collect_sources(repo_root, subdirs=("src",)):
    out = []
    for sub in subdirs:
        base = os.path.join(repo_root, sub)
        for root, _, files in os.walk(base):
            for f in sorted(files):
                if f.endswith((".h", ".cc", ".cpp", ".hpp")):
                    out.append(os.path.join(root, f))
    return sorted(out)
