"""atomics: every atomic operation must spell its memory order, and seq_cst
must be justified. The former scripts/lint_atomics.py folded into the
framework (shared walk, shared suppression syntax, shared fixture runner).

Rule parts:
  1. (tree-wide, src/) member-API atomic operations (load/store/exchange/
     fetch_*/compare_exchange_*/wait/test_and_set/clear) must pass an
     explicit std::memory_order argument — a defaulted order is seq_cst by
     accident.
  2. (strict list) a seq_cst that IS spelled out must carry a justification
     comment on the same line or within the 4 preceding lines; seq_cst is
     for Dekker-style flag protocols and nothing else.
  3. (strict list) operator forms (++/--/compound assignment) on declared
     atomics are implicit seq_cst RMWs and are banned outright.

The strict list names the request-path files where every fence is a
deliberate decision; it grows with every PR that adds hot-path concurrency.
"""

import re

from ..model import Finding

NAME = "atomics"
DESCRIPTION = "implicit memory orders and unjustified seq_cst on atomics"

# The request-path files where every fence is a deliberate decision.
STRICT_FILES = [
    "src/util/intrusive_mpsc_queue.h",
    "src/core/completion.h",
    "src/core/admission.h",
    "src/core/admission.cc",
    "src/core/worker.h",
    "src/core/worker.cc",
    "src/core/p2kvs.cc",
    "src/util/stats_recorder.h",
    "src/util/trace_ring.h",
    "src/util/trace.h",
    "src/io/io_stats.h",
    "src/io/io_stats.cc",
    "src/io/async_io.cc",
    "src/io/device_model.cc",
    "src/server/server.h",
    "src/server/server.cc",
    "src/server/client.h",
    "src/server/client.cc",
    "src/server/admin.h",
    "src/server/admin.cc",
    "src/obs/metrics_registry.h",
    "src/obs/metrics_registry.cc",
    "src/obs/sketch.h",
    "src/obs/skew.h",
    "src/obs/skew.cc",
    "src/obs/prometheus.h",
    "src/obs/prometheus.cc",
]

ATOMIC_CALL = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|wait|"
    r"test_and_set|clear)\s*\("
)
SEQ_CST = re.compile(r"memory_order_seq_cst|memory_order::seq_cst")
ATOMIC_DECL = re.compile(
    r"std::atomic(?:_flag)?\s*(?:<[^;{}]*>)?\s+(\w+)\s*(?:\{|=|;|\()"
)


def _operator_form_re(names):
    alt = "|".join(re.escape(n) for n in names)
    return re.compile(
        r"(?:\+\+|--)\s*(?:%(alt)s)\b|\b(?:%(alt)s)\s*(?:\+\+|--|[-+|&^]?=[^=])"
        % {"alt": alt}
    )


def _balanced_args(text, open_paren):
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i]
    return text[open_paren + 1 :]


def _lint_file(sf, strict):
    findings = []
    lines = sf.code_lines
    raw_lines = sf.raw_lines
    joined = sf.code
    offsets, pos = [], 0
    for l in lines:
        offsets.append(pos)
        pos += len(l) + 1

    def line_of(off):
        lo, hi = 0, len(offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if offsets[mid] <= off:
                lo = mid
            else:
                hi = mid - 1
        return lo

    atomic_names = set(ATOMIC_DECL.findall(joined))

    for m in ATOMIC_CALL.finditer(joined):
        lineno = line_of(m.start())
        window = "\n".join(lines[max(0, lineno - 1) : lineno + 3])
        involves_atomic = (
            any(re.search(r"\b%s\b" % re.escape(n), window) for n in atomic_names)
            or "memory_order" in window
            or "mpsc_next" in window
            or "atomic" in window
        )
        if not involves_atomic:
            continue
        args = _balanced_args(joined, m.end() - 1)
        op = m.group(1)
        if "memory_order" not in args:
            # `clear`/`wait` collide with containers; require the receiver to
            # be a declared atomic for those two.
            if op in ("clear", "wait"):
                obj = lines[lineno][: m.start() - offsets[lineno]]
                if not any(obj.rstrip().endswith(n) for n in atomic_names):
                    continue
            findings.append(
                Finding(
                    NAME,
                    sf.rel,
                    lineno + 1,
                    "%s() without an explicit std::memory_order (defaults to "
                    "seq_cst)" % op,
                )
            )
        elif strict and SEQ_CST.search(args):
            has_comment = any(
                "//" in raw_lines[i]
                for i in range(max(0, lineno - 4), min(lineno + 1, len(raw_lines)))
            )
            if not has_comment:
                findings.append(
                    Finding(
                        NAME,
                        sf.rel,
                        lineno + 1,
                        "seq_cst %s() without a justification comment on the "
                        "same line or the 4 lines above" % op,
                    )
                )

    if strict and atomic_names:
        op_re = _operator_form_re(atomic_names)
        for i, l in enumerate(lines):
            if ATOMIC_DECL.search(l):
                continue
            if op_re.search(l):
                findings.append(
                    Finding(
                        NAME,
                        sf.rel,
                        i + 1,
                        "operator form on an atomic (implicit seq_cst RMW); "
                        "use fetch_*/store with an explicit order",
                    )
                )
    return findings


def run(model):
    findings = []
    strict_set = set(STRICT_FILES)
    for rel, sf in sorted(model.files.items()):
        if not rel.startswith("src/") and not rel.startswith("tests/lint_fixtures/"):
            continue
        findings.extend(_lint_file(sf, strict=rel in strict_set or "lint_fixtures" in rel))
    return findings
