"""status-discard: a call whose result is a Status (or any P2KVS_NODISCARD
type/function) must be consumed — propagated, checked, or explicitly dropped
with `.IgnoreError()`. A bare `Foo();` statement swallows an error.

The compiler already enforces the annotated subset via [[nodiscard]] and
-Wunused-result; this rule re-checks it tree-wide (so a build with warnings
disabled still gates), rejects `(void)` casts in favor of the searchable
`.IgnoreError()` idiom, and — under the clang engine — folds in the real
compiler diagnostics from each translation unit.
"""

import re

from ..model import Finding

NAME = "status-discard"
DESCRIPTION = "dropped Status / nodiscard result without .IgnoreError()"

# A statement that is exactly a call chain: `a->B(x).C()`, `Foo(x)`,
# `ns::Foo(x)`, `v[i]->M()`.
CALL_CHAIN_RE = re.compile(
    r"^[A-Za-z_][\w:]*"
    r"(?:\s*\[[^\]]*\])?"
    r"(?:\s*(?:\.|->)\s*[A-Za-z_]\w*(?:\s*\[[^\]]*\])?)*"
    r"\s*\("
)
LAST_CALL_RE = re.compile(r"(?:(\.|->)\s*)?([A-Za-z_]\w*)\s*\($")
STMT_SKIP_PREFIXES = (
    "return", "co_return", "if", "for", "while", "switch", "case", "else",
    "delete", "throw", "using", "typedef", "goto", "do", "break", "continue",
)


def split_statements(body):
    """Yields (offset, text) for each ';'-terminated statement at paren depth
    zero. Brace scopes reset the statement start."""
    depth = 0
    start = 0
    for i, c in enumerate(body):
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif depth == 0 and c in ";{}":
            text = body[start:i].strip()
            if c == ";" and text:
                off = start + (len(body[start:i]) - len(body[start:i].lstrip()))
                yield off, text
            start = i + 1


def _first_word(stmt):
    m = re.match(r"[A-Za-z_]\w*", stmt)
    return m.group(0) if m else ""


def _receiver_of_chain(stmt):
    """For a single-link chain `recv.M(args)` / `recv->M(args)`, the receiver
    variable name; "" for bare calls or multi-link chains (unresolvable)."""
    m = re.match(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*[A-Za-z_]\w*\s*\(", stmt)
    if m is None:
        return ""
    # Reject if there is an intermediate call before the final one.
    prefix = stmt[: m.end()]
    if prefix.count("(") != 1:
        return ""
    return m.group(1)


def _is_nodiscard(model, cls, method):
    if (cls, method) in model.nodiscard_methods:
        return True
    # Walk base classes: Status KVStore::Put is registered on KVStore, the
    # call may resolve the receiver to a derived engine type.
    seen, stack = set(), [cls]
    while stack:
        c = stack.pop()
        if c in seen or c not in model.classes:
            continue
        seen.add(c)
        if (c, method) in model.nodiscard_methods:
            return True
        stack.extend(model.classes[c].bases)
    return False


def _resolve_receiver_type(model, fn, sf, recv):
    from ..model import LOCAL_DECL_RE, resolve_member_type, unwrap_type, KEYWORDS

    for lm in LOCAL_DECL_RE.finditer(fn.body):
        if lm.group(2) == recv and lm.group(1) not in KEYWORDS:
            return unwrap_type(lm.group(1))
    if fn.cls:
        t = resolve_member_type(model, fn.cls, recv)
        if t:
            return t
    return ""


# A member-only chain `a.b.c.M(args)` — no intermediate calls, so each link
# is resolvable as a field of the previous link's type.
MEMBER_CHAIN_RE = re.compile(
    r"^([A-Za-z_]\w*)((?:\s*(?:\.|->)\s*[A-Za-z_]\w*)+)\s*\($"
)


def _member_chain_verdict(model, fn, sf, stmt, open_of_last, method):
    """For a multi-link member chain, resolve the final receiver's type and
    return True (nodiscard), False (known not nodiscard), or None (cannot
    resolve)."""
    from ..model import resolve_member_type

    m = MEMBER_CHAIN_RE.match(stmt[: open_of_last + 1])
    if m is None:
        return None  # intermediate calls / indexing — not a plain field path
    links = re.findall(r"[A-Za-z_]\w*", m.group(2))
    if not links or links[-1] != method:
        return None
    members = links[:-1]

    # First try the precise path: root variable -> field -> ... -> field.
    cur = _resolve_receiver_type(model, fn, sf, m.group(1))
    for field in members:
        if not cur:
            break
        cur = resolve_member_type(model, cur, field)
    if cur:
        return _is_nodiscard(model, cur, method)

    # Fall back to a model-wide lookup of the final field's declared type:
    # `x.smallest.DecodeFrom(...)` is safe iff every class declaring a member
    # `smallest` gives it a type whose `DecodeFrom` is not nodiscard.
    last = members[-1]
    candidates = {
        info.members[last] for info in model.classes.values() if last in info.members
    }
    if not candidates:
        return None
    return any(_is_nodiscard(model, t, method) for t in candidates)


def run(model):
    findings = []
    reported = set()

    def report(path, line, message):
        key = (path, line)
        if key in reported:
            return
        reported.add(key)
        findings.append(Finding(NAME, path, line, message))

    for fn in model.functions.values():
        sf = model.files.get(fn.path)
        if sf is None:
            continue
        for off, stmt in split_statements(fn.body):
            void_cast = False
            if stmt.startswith("(void)"):
                void_cast = True
                stmt = stmt[len("(void)"):].strip()
            if _first_word(stmt) in STMT_SKIP_PREFIXES:
                continue
            if not CALL_CHAIN_RE.match(stmt) or not stmt.endswith(")"):
                continue
            # The value the statement discards is the LAST call in the chain.
            open_of_last = _matching_open(stmt)
            if open_of_last is None:
                continue
            head = stmt[: open_of_last + 1]
            lm = LAST_CALL_RE.search(head)
            if lm is None:
                continue
            method = lm.group(2)
            if method == "IgnoreError":
                continue
            chained = lm.group(1) is not None
            line = sf.line_of(fn.body_start_offset + off)
            if chained:
                recv = _receiver_of_chain(stmt)
                if recv:
                    recv_type = _resolve_receiver_type(model, fn, sf, recv)
                    if recv_type and _is_nodiscard(model, recv_type, method):
                        report(fn.path, line, _message(method, void_cast))
                    # Unresolved receiver type: stay quiet (conservative).
                else:
                    # Multi-link chain: resolve the field path when possible;
                    # otherwise fall back to the name registry (flag when the
                    # name is known to return a nodiscard type somewhere).
                    verdict = _member_chain_verdict(
                        model, fn, sf, stmt, open_of_last, method
                    )
                    if verdict is None:
                        verdict = method in model.nodiscard_method_names
                    if verdict:
                        report(fn.path, line, _message(method, void_cast))
            else:
                cls = fn.cls or ""
                if _is_nodiscard(model, cls, method) or ("", method) in model.nodiscard_methods:
                    report(fn.path, line, _message(method, void_cast))
    # Clang engine: the compiler's own -Wunused-result diagnostics, which see
    # through every construct the regex parser cannot.
    for rel, line, msg in model.clang_unused_diags:
        report(rel, line, "%s (compiler-verified)" % msg)
    return findings


def _matching_open(stmt):
    """Offset of the '(' matching the final ')' of stmt, or None."""
    depth = 0
    for i in range(len(stmt) - 1, -1, -1):
        c = stmt[i]
        if c == ")":
            depth += 1
        elif c == "(":
            depth -= 1
            if depth == 0:
                return i
    return None


def _message(method, void_cast):
    if void_cast:
        return (
            "result of '%s' dropped with a (void) cast; use .IgnoreError() "
            "so deliberate drops stay searchable" % method
        )
    return (
        "result of '%s' is ignored; propagate the Status or consume it "
        "explicitly with .IgnoreError()" % method
    )
