"""Rule registry for p2kvs_lint.

A rule is a module exposing:
    NAME        str, the id used in findings and suppression comments
    DESCRIPTION one line for --list-rules
    run(model)  -> iterable of model.Finding

Registering a rule here is all it takes to wire it into the CLI, the
suppression machinery, and the fixture runner.
"""

from . import atomics, blocking_context, lock_order, status_discard

ALL_RULES = {
    status_discard.NAME: status_discard,
    lock_order.NAME: lock_order,
    blocking_context.NAME: blocking_context,
    atomics.NAME: atomics,
}
