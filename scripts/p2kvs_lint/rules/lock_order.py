"""lock-order: the tree-wide mutex acquisition order must be acyclic and
fully annotated.

Facts consumed:
  * annotated edges — `Mutex b_ ACQUIRED_AFTER(a_);` declares that a_ may be
    held when b_ is acquired (edge a_ -> b_);
  * observed nestings — a function body that acquires b_ (MutexLock or
    .Lock()) while an earlier acquisition of a_ in the same scope is still
    live contributes an observed edge a_ -> b_.

Violations:
  * a cycle in the combined graph (annotated + observed): a potential
    deadlock by lock-order inversion;
  * an observed nesting with no annotated path a_ ->* b_: the order exists in
    the code but not in the contract — add ACQUIRED_AFTER to the inner mutex
    declaration (or a suppression explaining why the nesting is safe, e.g.
    the two locks belong to different instances).

Mutexes are identified by member name. Same-named mutexes of unrelated
classes would alias; the tree keeps mutex member names unique (mutex_ is the
one deliberate exception, scoped per engine) — the fixture pins this.
"""

from ..model import Finding

NAME = "lock-order"
DESCRIPTION = "mutex acquisition-order cycles and unannotated nesting"


def _paths_exist(edges, src, dst):
    """True if dst is reachable from src over annotated edges."""
    adj = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
    seen, stack = set(), [src]
    while stack:
        n = stack.pop()
        if n == dst:
            return True
        if n in seen:
            continue
        seen.add(n)
        stack.extend(adj.get(n, ()))
    return False


def _find_cycle(adj):
    """Returns one cycle as a list of nodes, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in adj}
    parent = {}

    for root in sorted(adj):
        if color.get(root, WHITE) != WHITE:
            continue
        stack = [(root, iter(sorted(adj.get(root, ()))))]
        color[root] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt, WHITE) == GRAY:
                    cycle = [nxt, node]
                    cur = node
                    while cur != nxt and cur in parent:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    if len(cycle) > 1 and cycle[0] == cycle[-1]:
                        cycle.pop()
                    return cycle
                if color.get(nxt, WHITE) == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def run(model):
    findings = []
    annotated = [(a, b) for a, b, _f, _l, origin in model.lock_edges if origin == "annotated"]

    # Only mutex-typed names participate: LOCAL acquisitions of non-mutex
    # members never got here (the regexes match Mutex idioms only).
    adj = {}
    edge_where = {}
    for a, b, f, l, _origin in model.lock_edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
        edge_where.setdefault((a, b), (f, l))
    for held, acquired, f, l, func in model.observed_nestings:
        adj.setdefault(held, set()).add(acquired)
        adj.setdefault(acquired, set())
        edge_where.setdefault((held, acquired), (f, l))

    cycle = _find_cycle(adj)
    if cycle is not None:
        # Report at the location of the first edge of the cycle.
        f, l = edge_where.get((cycle[0], cycle[1]), ("<unknown>", 0))
        findings.append(
            Finding(
                NAME,
                f,
                l,
                "lock-order cycle: %s — a thread acquiring them in different "
                "orders can deadlock" % " -> ".join(cycle + [cycle[0]]),
            )
        )

    for held, acquired, f, l, func in model.observed_nestings:
        if _paths_exist(annotated, held, acquired):
            continue
        findings.append(
            Finding(
                NAME,
                f,
                l,
                "observed nesting %s -> %s in %s has no ACQUIRED_AFTER "
                "annotation; declare the order on '%s' (or suppress with the "
                "reason the nesting is safe)" % (held, acquired, func, acquired),
            )
        )
    return findings
