"""blocking-in-worker-context: the static version of the GetStats/WaitIdle
self-deadlock fix (and of the bounded-queue producer park one layer below).

A *worker context* is code that must never block on work the framework's own
worker threads perform:

  * Worker::Run and everything reachable from it (the dispatch loop — a
    worker that blocks on p2kvs work waits on itself);
  * request-callback lambdas (`request->callback = [..]{..}`) — they run on
    the completing worker's thread;
  * engine event hooks (`hooks.on_* = [..]{..}`) — they run on engine
    background threads holding engine state;
  * every `*Async` method of P2KVS — their documented contract is "never
    blocks; legal from worker-thread context";
  * any function marked `// p2kvs-lint: worker-context` in the two lines
    above its definition (the extension point; the TCP server's epoll loop
    uses it).

A *blocking entry point* is a call that can park the calling thread on
p2kvs-side progress:

  * Completion::Wait / Request::Wait (join on worker completions);
  * the synchronous P2KVS data API and the drain APIs (GetStats, WaitIdle,
    GetStatsString, Put, Get, ... WriteTxn);
  * Worker::Submit — the PARKING submission: a bounded full queue blocks the
    producer (SubmitControl / SubmitShedOnFull are the non-blocking doors);
  * IntrusiveMpscQueue::Push / MpscQueue::Push — same parking behavior one
    layer down.

The rule walks the project call graph from every worker-context root (with
virtual calls expanded to all overrides) and reports each blocking call site
reachable from a root, with one witness path. Cross-pool waits — a p2kvs
worker joining on a DIFFERENT thread pool that cannot feed back into p2kvs
queues — are legal and must be suppressed with that reason.
"""

from ..model import Finding

NAME = "blocking-context"
DESCRIPTION = "blocking entry points reachable from worker-thread contexts"

BLOCKING_METHODS = {
    ("Completion", "Wait"),
    ("Request", "Wait"),
    ("Worker", "Submit"),
    ("IntrusiveMpscQueue", "Push"),
    ("RequestQueue", "Push"),
    ("MpscQueue", "Push"),
    ("P2KVS", "GetStats"),
    ("P2KVS", "GetStatsString"),
    ("P2KVS", "WaitIdle"),
    ("P2KVS", "Put"),
    ("P2KVS", "Get"),
    ("P2KVS", "Delete"),
    ("P2KVS", "MultiGet"),
    ("P2KVS", "MultiWrite"),
    ("P2KVS", "Range"),
    ("P2KVS", "Scan"),
    ("P2KVS", "WriteTxn"),
    ("P2KVS", "FlushAll"),
}
# Method names that are blocking regardless of which class declares them
# (unique enough that a name match is meaningful even when the regex engine
# cannot resolve the receiver type).
BLOCKING_NAMES_ANYWHERE = {"WaitIdle"}


def _targets_of_call(model, fn, call):
    """Call-graph successors of a call site: qualified function names."""
    out = []
    if call.receiver:
        cls = call.receiver_type
        if cls:
            # Direct target plus virtual expansion over derived classes.
            candidates = [cls] + _all_derived(model, cls)
            for c in candidates:
                q = "%s::%s" % (c, call.method)
                if q in model.functions:
                    out.append(q)
            # Walk up: the definition may live on a base class.
            for base in _all_bases(model, cls):
                q = "%s::%s" % (base, call.method)
                if q in model.functions:
                    out.append(q)
    else:
        # Bare call: same-class method (including bases) or free function.
        if fn.cls:
            for c in [fn.cls] + _all_bases(model, fn.cls):
                q = "%s::%s" % (c, call.method)
                if q in model.functions:
                    out.append(q)
        if call.method in model.functions:
            out.append(call.method)
    return out


def _all_derived(model, cls):
    out, stack = [], [cls]
    while stack:
        c = stack.pop()
        for d in model.derived.get(c, ()):
            if d not in out:
                out.append(d)
                stack.append(d)
    return out


def _all_bases(model, cls):
    out, stack = [], [cls]
    while stack:
        c = stack.pop()
        info = model.classes.get(c)
        if info is None:
            continue
        for b in info.bases:
            if b not in out:
                out.append(b)
                stack.append(b)
    return out


def _is_blocking_call(model, fn, call):
    if call.method in BLOCKING_NAMES_ANYWHERE:
        return True
    if call.receiver:
        cls = call.receiver_type
        if not cls:
            # Unresolved receiver: blocking only when the method name is
            # unique to blocking entries (Wait also exists on condvars etc.,
            # so require resolution for the rest).
            return False
        for c in [cls] + _all_bases(model, cls):
            if (c, call.method) in BLOCKING_METHODS:
                return True
        return False
    if fn.cls:
        for c in [fn.cls] + _all_bases(model, fn.cls):
            if (c, call.method) in BLOCKING_METHODS:
                return True
    return False


def run(model):
    findings = []
    reported = set()

    roots = [fn for fn in model.functions.values() if fn.is_worker_root]
    for root in roots:
        # DFS with a witness path; visited is per-root so each root gets a
        # path, but a call site is reported once overall.
        stack = [(root, [root.qualname])]
        visited = set()
        while stack:
            fn, path = stack.pop()
            if fn.qualname in visited:
                continue
            visited.add(fn.qualname)
            for call in fn.calls:
                if _is_blocking_call(model, fn, call):
                    key = (fn.path, call.line, call.method)
                    if key in reported:
                        continue
                    reported.add(key)
                    findings.append(
                        Finding(
                            NAME,
                            fn.path,
                            call.line,
                            "blocking call '%s' reachable from worker context "
                            "(%s root '%s', path: %s); a worker parked on its "
                            "own work can never drain it — use the async/"
                            "control submission path, or suppress with a "
                            "cross-pool justification"
                            % (
                                call.method,
                                root.root_kind,
                                root.qualname,
                                " -> ".join(path + [call.method]),
                            ),
                        )
                    )
                for target in _targets_of_call(model, fn, call):
                    tfn = model.functions.get(target)
                    if tfn is not None and target not in visited:
                        stack.append((tfn, path + [target]))
    return findings
