"""p2kvs_lint: project-specific static analysis for the p2KVS tree.

One shared source model (built by libclang when available, by a pure-regex
parser otherwise), a rule registry, per-rule suppression comments, and a
fixture runner. See scripts/p2kvs_lint/lint.py --help and the "Static
analysis & locking contract" section of DESIGN.md.
"""
