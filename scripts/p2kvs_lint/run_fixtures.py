"""Fixture runner: proves each p2kvs-lint rule is alive.

For every rule, tests/lint_fixtures/<rule_dir>/ holds a `bad.cc` that MUST
produce at least one finding of that rule and a `good.cc` that MUST produce
none — so a rule that silently stops matching (a regex rot, a renamed
helper) fails ctest instead of quietly passing everything. The suppression
fixtures pin the allow-comment machinery: a reasoned suppression silences a
finding and is marked used, a reasonless one is itself a finding, and a
stale one is flagged by the driver.

Runs the regex engine only: the fixtures pin deterministic behavior that
must hold even on machines without libclang. Exit 0 on success, 1 on any
fixture expectation failure (with a per-case PASS/FAIL report).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
from p2kvs_lint import model as model_mod  # noqa: E402
from p2kvs_lint.rules import ALL_RULES  # noqa: E402

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")

CASES = [
    ("status_discard", "status-discard"),
    ("lock_order", "lock-order"),
    ("blocking_context", "blocking-context"),
    ("atomics", "atomics"),
]

failures = []


def check(label, ok, detail=""):
    print("%s %s%s" % ("PASS" if ok else "FAIL", label,
                       (" — " + detail) if detail and not ok else ""))
    if not ok:
        failures.append(label)


def run_rule(rule_name, path):
    """(surviving findings, suppressed findings, model) for one fixture."""
    model = model_mod.build_regex_model([path], REPO_ROOT)
    survived, suppressed = [], []
    for f in ALL_RULES[rule_name].run(model):
        (suppressed if model.suppressed(f) else survived).append(f)
    return survived, suppressed, model


def main():
    for dirname, rule in CASES:
        d = os.path.join(FIXTURES, dirname)
        bad, good = os.path.join(d, "bad.cc"), os.path.join(d, "good.cc")
        sup = os.path.join(d, "suppressed.cc")

        survived, _, _ = run_rule(rule, bad)
        check("%s: bad.cc fires" % rule, len(survived) >= 1,
              "expected >=1 finding, got 0")
        for f in survived:
            print("     %s" % f.format())

        survived, _, model = run_rule(rule, good)
        check("%s: good.cc is quiet" % rule,
              len(survived) == 0 and len(model.errors) == 0,
              "; ".join(f.format() for f in survived + model.errors))

        if os.path.exists(sup):
            survived, suppressed, model = run_rule(rule, sup)
            used = any(s.used for sf in model.files.values()
                       for s in sf.suppressions)
            check("%s: suppressed.cc silenced by reasoned allow-comment" % rule,
                  len(survived) == 0 and len(suppressed) >= 1 and used,
                  "survived=%d suppressed=%d used=%s"
                  % (len(survived), len(suppressed), used))

    # Suppression meta-fixtures.
    meta = os.path.join(FIXTURES, "suppression")
    _, _, model = run_rule("status-discard",
                           os.path.join(meta, "missing_reason.cc"))
    check("suppression: reasonless allow-comment is a finding",
          any(f.rule == "suppression" for f in model.errors),
          "model.errors=%r" % model.errors)

    survived, _, model = run_rule("status-discard",
                                  os.path.join(meta, "unused.cc"))
    stale = [s for sf in model.files.values()
             for s in sf.suppressions if not s.used]
    check("suppression: stale allow-comment detected",
          len(survived) == 0 and len(stale) >= 1,
          "survived=%d stale=%d" % (len(survived), len(stale)))

    print("\n%d fixture checks failed" % len(failures) if failures
          else "\nall fixture checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
