"""libclang refinement engine (CI-only in practice).

The container that runs the CI gate installs python3-clang + libclang; the
dev image may not. This module therefore never hard-imports clang at module
scope: `build_clang_model` raises EngineUnavailable and lint.py decides
whether the fallback is acceptable (--require-clang makes it fatal, so the
gate can never silently degrade to the regex engine).

What clang adds over the regex model:
  * real -Wunused-result diagnostics per translation unit, fed into
    model.clang_unused_diags for the status-discard rule — the compiler sees
    through macros, templates, and operator chains the regex parser cannot;
  * AST-accurate class tables (bases, field types) that replace the
    regex-guessed ones where both exist.

The call-graph and lock facts stay regex-built: they are line-oriented and
deliberately engine-agnostic so the fixture tests pin one behavior.
"""

import os

from .model import build_regex_model, unwrap_type


class EngineUnavailable(RuntimeError):
    pass


def _load_cindex():
    try:
        from clang import cindex
    except ImportError as e:
        raise EngineUnavailable("python clang bindings not importable (%s)" % e)
    # Help the bindings find the shared library on Debian/Ubuntu layouts.
    if not cindex.Config.loaded:
        for cand in (
            None,  # default lookup first
            "libclang.so",
            "libclang-15.so.1",
            "libclang-14.so.1",
            "/usr/lib/llvm-15/lib/libclang.so.1",
            "/usr/lib/llvm-14/lib/libclang.so.1",
        ):
            try:
                if cand is not None:
                    cindex.Config.set_library_file(cand)
                cindex.Index.create()
                return cindex
            except Exception:
                # Config is sticky once loaded; re-instantiate the knob.
                try:
                    cindex.Config.loaded = False
                except Exception:
                    pass
                continue
        raise EngineUnavailable("libclang shared library not loadable")
    return cindex


def _tu_args(cmd):
    """Compile arguments usable for reparsing: strip compiler, -c/-o pairs,
    and the input file itself."""
    args = list(cmd.arguments)[1:]
    out, skip = [], False
    for a in args:
        if skip:
            skip = False
            continue
        if a in ("-c",):
            continue
        if a in ("-o",):
            skip = True
            continue
        if a.endswith((".cc", ".cpp", ".c")):
            continue
        out.append(a)
    return out


def build_clang_model(paths, repo_root, compile_commands_dir):
    cindex = _load_cindex()
    cc_path = os.path.join(compile_commands_dir, "compile_commands.json")
    if not os.path.isfile(cc_path):
        raise EngineUnavailable("no compile_commands.json in %s" % compile_commands_dir)

    model = build_regex_model(paths, repo_root)
    model.engine = "clang"

    db = cindex.CompilationDatabase.fromDirectory(compile_commands_dir)
    index = cindex.Index.create()
    wanted = {os.path.abspath(p) for p in paths}
    header_wanted = {p for p in wanted if p.endswith((".h", ".hpp"))}

    for p in sorted(wanted):
        if not p.endswith((".cc", ".cpp")):
            continue
        cmds = db.getCompileCommands(p)
        if not cmds:
            continue
        cmd = cmds[0]
        args = _tu_args(cmd) + ["-Wunused-result"]
        try:
            tu = index.parse(p, args=args)
        except Exception:
            continue
        _harvest_diagnostics(tu, repo_root, wanted | header_wanted, model)
        _refine_classes(cindex, tu, repo_root, model)
    return model


def _harvest_diagnostics(tu, repo_root, wanted, model):
    seen = set(model.clang_unused_diags)
    for diag in tu.diagnostics:
        opt = ""
        try:
            opt = diag.option or ""
        except Exception:
            pass
        text = diag.spelling or ""
        if "unused-result" not in opt and "ignoring return value" not in text:
            continue
        loc = diag.location
        if loc.file is None:
            continue
        abspath = os.path.abspath(loc.file.name)
        if abspath not in wanted:
            continue
        rel = os.path.relpath(abspath, repo_root)
        entry = (rel, loc.line, text)
        if entry not in seen:
            seen.add(entry)
            model.clang_unused_diags.append(entry)


def _refine_classes(cindex, tu, repo_root, model):
    CursorKind = cindex.CursorKind

    def walk(cur):
        for child in cur.get_children():
            loc = child.location
            if loc.file is None:
                continue
            abspath = os.path.abspath(loc.file.name)
            if not abspath.startswith(repo_root + os.sep):
                continue
            if child.kind in (CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL):
                if child.is_definition():
                    _refine_one(cindex, child, model)
            if child.kind in (
                CursorKind.NAMESPACE,
                CursorKind.CLASS_DECL,
                CursorKind.STRUCT_DECL,
                CursorKind.UNEXPOSED_DECL,
            ):
                walk(child)

    walk(tu.cursor)


def _refine_one(cindex, cur, model):
    CursorKind = cindex.CursorKind
    name = cur.spelling
    info = model.classes.get(name)
    if info is None:
        return
    for child in cur.get_children():
        if child.kind == CursorKind.CXX_BASE_SPECIFIER:
            base = unwrap_type(child.type.spelling)
            if base and base not in info.bases:
                info.bases.append(base)
                model.derived.setdefault(base, []).append(name)
        elif child.kind == CursorKind.FIELD_DECL:
            t = unwrap_type(child.type.spelling)
            if t:
                info.members[child.spelling] = t
