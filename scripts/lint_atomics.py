#!/usr/bin/env python3
"""Audit std::atomic usage for implicit memory orders.

Two rules, matching the locking contract in DESIGN.md:

1. Every atomic operation spelled through the member API (load / store /
   exchange / fetch_* / compare_exchange_* / wait) must pass an explicit
   std::memory_order argument. A defaulted order is seq_cst by accident,
   which both hides the author's intent and costs a full fence on weakly
   ordered hardware.

2. In the hot-path files (the default file set), any operation that *does*
   ask for seq_cst must carry a justification: a `//` comment on the same
   line or within the 4 preceding lines. seq_cst is the right tool for
   Dekker-style flag protocols and nothing else; an uncommented seq_cst is
   indistinguishable from rule-1 laziness that someone spelled out.

Operator forms (++, --, +=, |=, plain assignment) on atomics are also
seq_cst and effectively unauditable; rule 1 flags them in the default file
set by matching `++`/`--`/compound assignment on identifiers that appear in
an `std::atomic<...> name` declaration in the same file.

Usage:
  scripts/lint_atomics.py           # strict: hot-path files, rules 1+2
  scripts/lint_atomics.py --all     # rule 1 only, across all of src/
  scripts/lint_atomics.py FILE...   # strict rules on the named files

Exits non-zero when any finding is reported.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The request-path files where every fence is a deliberate decision.
HOT_PATH_FILES = [
    "src/util/intrusive_mpsc_queue.h",
    "src/core/completion.h",
    "src/core/admission.h",
    "src/util/stats_recorder.h",
    "src/util/trace_ring.h",
    "src/util/trace.h",
    "src/io/io_stats.h",
    "src/io/io_stats.cc",
    "src/io/async_io.cc",
    "src/io/device_model.cc",
]

# Member calls that take a trailing memory_order argument.
ATOMIC_CALL = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|wait|"
    r"test_and_set|clear)\s*\("
)

SEQ_CST = re.compile(r"memory_order_seq_cst|memory_order::seq_cst")
COMMENT = re.compile(r"//")

ATOMIC_DECL = re.compile(
    r"std::atomic(?:_flag)?\s*(?:<[^;{}]*>)?\s+(\w+)\s*(?:\{|=|;|\()"
)
# ++x / x++ / x += n / x |= n / x = n on a known atomic variable.
def operator_form_re(names):
    alt = "|".join(re.escape(n) for n in names)
    return re.compile(
        r"(?:\+\+|--)\s*(?:%(alt)s)\b|\b(?:%(alt)s)\s*(?:\+\+|--|[-+|&^]?=[^=])"
        % {"alt": alt}
    )


def strip_strings(line):
    # Good enough for C++ source that does not splice strings across lines.
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)


def balanced_call(text, open_paren):
    """Returns the argument text of the call whose '(' is at open_paren."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i]
    return text[open_paren + 1 :]


def lint_file(path, strict):
    findings = []
    try:
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [(path, 0, "unreadable: %s" % e)]

    lines = [strip_strings(l) for l in raw_lines]
    joined = "\n".join(lines)
    # Offsets of each line start so matches can be mapped back to lines.
    offsets, pos = [], 0
    for l in lines:
        offsets.append(pos)
        pos += len(l) + 1

    def line_of(off):
        lo, hi = 0, len(offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if offsets[mid] <= off:
                lo = mid
            else:
                hi = mid - 1
        return lo

    atomic_names = set(ATOMIC_DECL.findall(joined))

    for m in ATOMIC_CALL.finditer(joined):
        lineno = line_of(m.start())
        # Only consider lines that plausibly involve an atomic: either a
        # declared atomic name or a memory_order already present nearby.
        window = "\n".join(lines[max(0, lineno - 1) : lineno + 3])
        involves_atomic = any(
            re.search(r"\b%s\b" % re.escape(n), window) for n in atomic_names
        ) or "memory_order" in window or "mpsc_next" in window or "atomic" in window
        if not involves_atomic:
            continue
        args = balanced_call(joined, m.end() - 1)
        op = m.group(1)
        if "memory_order" not in args:
            # store()/load()/wait() etc. on non-atomics (e.g. std::string
            # member calls named `clear`) are excluded above; `clear`/`wait`
            # still produce false positives on containers, so require the
            # object to be a known atomic for those two.
            if op in ("clear", "wait"):
                obj = lines[lineno][: m.start() - offsets[lineno]]
                if not any(obj.rstrip().endswith(n) for n in atomic_names):
                    continue
            findings.append(
                (path, lineno + 1,
                 "%s() without an explicit std::memory_order (defaults to "
                 "seq_cst)" % op)
            )
        elif strict and SEQ_CST.search(args):
            has_comment = any(
                COMMENT.search(raw_lines[i])
                for i in range(max(0, lineno - 4), lineno + 1)
            )
            if not has_comment:
                findings.append(
                    (path, lineno + 1,
                     "seq_cst %s() without a justification comment on the "
                     "same line or the 4 lines above" % op)
                )

    if strict and atomic_names:
        op_re = operator_form_re(atomic_names)
        for i, l in enumerate(lines):
            if ATOMIC_DECL.search(l):
                continue  # the declaration/initializer itself
            if op_re.search(l):
                findings.append(
                    (path, i + 1,
                     "operator form on an atomic (implicit seq_cst RMW); "
                     "use fetch_*/store with an explicit order")
                )
    return findings


def collect_all_sources():
    out = []
    for root, _, files in os.walk(os.path.join(REPO_ROOT, "src")):
        for f in files:
            if f.endswith((".h", ".cc")):
                out.append(os.path.join(root, f))
    return sorted(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="files to lint (strict rules)")
    ap.add_argument("--all", action="store_true",
                    help="rule 1 only, across every file under src/")
    args = ap.parse_args()

    if args.all:
        targets, strict = collect_all_sources(), False
    elif args.files:
        targets, strict = args.files, True
    else:
        targets = [os.path.join(REPO_ROOT, f) for f in HOT_PATH_FILES]
        strict = True

    findings = []
    for path in targets:
        findings.extend(lint_file(path, strict))

    for path, lineno, msg in findings:
        rel = os.path.relpath(path, REPO_ROOT)
        print("%s:%d: %s" % (rel, lineno, msg))
    if findings:
        print("\n%d atomics finding(s)." % len(findings), file=sys.stderr)
        return 1
    print("lint_atomics: clean (%d file(s))." % len(targets))
    return 0


if __name__ == "__main__":
    sys.exit(main())
