#!/usr/bin/env python3
"""Validates a Prometheus text-exposition scrape from the p2kvs admin endpoint.

Usage:
    check_metrics.py <file-or-url>

Reads the exposition body (from a file, or fetched over HTTP when the
argument starts with http://) and enforces:

  * well-formedness: every non-comment line is `name[{labels}] value`,
    every sample's family carries a # TYPE, names use the p2kvs_ prefix;
  * required families are present (counters, process gauges, per-partition
    health, skew, windowed rates, latency histograms);
  * histogram integrity: `le` bounds ascend, bucket counts are cumulative,
    the +Inf bucket equals the family's _count;
  * basic sanity: requests_submitted_total > 0 when --expect-traffic.

Exit code 0 = valid scrape, 1 = violations (printed one per line).
This is the CI gate behind the `/metrics scrape smoke` step in build.yml.
"""

import math
import re
import sys
import urllib.request

SAMPLE_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})? (?P<value>\S+)$")
LE_RE = re.compile(r'le="([^"]+)"')

REQUIRED_FAMILIES = [
    "p2kvs_requests_submitted_total",
    "p2kvs_requests_completed_total",
    "p2kvs_requests_executed_total",
    "p2kvs_requests_shed_total",
    "p2kvs_requests_expired_total",
    "p2kvs_batches_total",
    "p2kvs_fg_io_bytes_total",
    "p2kvs_selfcheck_failures_total",
    "p2kvs_process_cpu_percent",
    "p2kvs_process_rss_bytes",
    "p2kvs_partition_healthy",
    "p2kvs_partition_queue_depth",
    "p2kvs_partition_load_share",
    "p2kvs_skew_imbalance_max_mean",
    "p2kvs_skew_imbalance_cv",
    "p2kvs_queue_wait_microseconds_bucket",
    "p2kvs_execute_microseconds_bucket",
    "p2kvs_end_to_end_microseconds_bucket",
    "p2kvs_batch_size_bucket",
]

# Families that require the telemetry loop to have completed one window; the
# scrape smoke waits long enough, so CI treats them as required too.
WINDOW_FAMILIES = [
    "p2kvs_window_seconds",
    "p2kvs_window_qps",
    "p2kvs_window_latency_us",
]


def parse_value(raw):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)  # raises on garbage


def validate(text, expect_traffic, expect_windows, expect_hot_keys):
    errors = []
    typed = set()
    seen = set()
    buckets = {}  # family -> list of (le, value) in order
    counts = {}
    values = {}  # series name (no labels) -> last value

    for ln, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {ln}: malformed comment: {line!r}")
            elif parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {ln}: malformed sample: {line!r}")
            continue
        name = m.group("name")
        if not name.startswith("p2kvs_"):
            errors.append(f"line {ln}: {name} missing p2kvs_ prefix")
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(f"line {ln}: unparseable value {m.group('value')!r}")
            continue
        seen.add(name)
        values[name] = value
        if name.endswith("_bucket"):
            family = name[: -len("_bucket")]
            le = LE_RE.search(m.group("labels") or "")
            if not le:
                errors.append(f"line {ln}: histogram bucket without le label")
                continue
            buckets.setdefault(family, []).append((parse_value(le.group(1)), value))
        elif name.endswith("_count"):
            counts[name[: -len("_count")]] = value

    # Every sample's family must be typed. Histogram series share the family
    # TYPE (name minus _bucket/_sum/_count).
    for name in sorted(seen):
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and family not in typed:
            errors.append(f"{name}: no # TYPE comment")

    for family in REQUIRED_FAMILIES:
        if family not in seen:
            errors.append(f"required family missing: {family}")
    if expect_windows:
        for family in WINDOW_FAMILIES:
            if family not in seen:
                errors.append(f"window family missing (telemetry loop idle?): {family}")
    if expect_hot_keys and "p2kvs_hot_key_count" not in seen:
        errors.append("hot-key family missing: p2kvs_hot_key_count")

    for family, series in buckets.items():
        les = [le for le, _ in series]
        vals = [v for _, v in series]
        if les != sorted(les):
            errors.append(f"{family}: le bounds not ascending")
        if vals != sorted(vals):
            errors.append(f"{family}: bucket counts not cumulative")
        if not math.isinf(les[-1]):
            errors.append(f"{family}: missing +Inf bucket")
        elif family in counts and vals[-1] != counts[family]:
            errors.append(f"{family}: +Inf bucket {vals[-1]} != _count {counts[family]}")
        if family not in counts:
            errors.append(f"{family}: missing _count series")

    if expect_traffic:
        if values.get("p2kvs_requests_submitted_total", 0) <= 0:
            errors.append("expected traffic: p2kvs_requests_submitted_total is 0")
        if values.get("p2kvs_requests_completed_total", 0) <= 0:
            errors.append("expected traffic: p2kvs_requests_completed_total is 0")
    return errors


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = {a for a in argv[1:] if a.startswith("--")}
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    source = args[0]
    if source.startswith("http://") or source.startswith("https://"):
        with urllib.request.urlopen(source, timeout=10) as resp:
            text = resp.read().decode("utf-8")
    else:
        with open(source, encoding="utf-8") as f:
            text = f.read()

    errors = validate(
        text,
        expect_traffic="--expect-traffic" in flags,
        expect_windows="--expect-windows" in flags,
        expect_hot_keys="--expect-hot-keys" in flags,
    )
    if errors:
        for e in errors:
            print(f"check_metrics: {e}")
        return 1
    samples = sum(1 for l in text.splitlines() if l and not l.startswith("#"))
    print(f"check_metrics: OK ({samples} samples, {len(text)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
