// Client-side fan-out tests: MultiGet / MultiWrite split per partition,
// join on one countdown completion, and report key-level outcomes
// positionally — including with duplicate keys, single-partition key sets,
// empty inputs, and a partition degraded to read-only mid-fan-out.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/core/p2kvs.h"
#include "src/io/error_injection_env.h"
#include "src/io/mem_env.h"

namespace p2kvs {
namespace {

Options SmallLsmOptions(Env* env) {
  Options options;
  options.env = env;
  options.write_buffer_size = 64 * 1024;
  options.target_file_size = 32 * 1024;
  options.max_bytes_for_level_base = 128 * 1024;
  return options;
}

class FanoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    p2options_.env = env_.get();
    p2options_.num_workers = 4;
    p2options_.pin_workers = false;
    p2options_.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env_.get()));
    ASSERT_TRUE(P2KVS::Open(p2options_, "/p2", &store_).ok());
  }

  std::unique_ptr<Env> env_;
  P2kvsOptions p2options_;
  std::unique_ptr<P2KVS> store_;
};

TEST_F(FanoutTest, MultiGetAcrossPartitions) {
  for (int i = 0; i < 100; i++) {
    std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(store_->Put(key, "val" + std::to_string(i)).ok());
  }
  std::vector<std::string> storage;
  for (int i = 0; i < 100; i++) {
    storage.push_back("key" + std::to_string(i));
  }
  std::vector<Slice> keys(storage.begin(), storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  ASSERT_EQ(keys.size(), statuses.size());
  ASSERT_EQ(keys.size(), values.size());
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok()) << keys[i].ToString() << ": " << statuses[i].ToString();
    EXPECT_EQ("val" + std::to_string(i), values[i]);
  }
}

TEST_F(FanoutTest, MultiGetReportsNotFoundPerKey) {
  ASSERT_TRUE(store_->Put("present-a", "1").ok());
  ASSERT_TRUE(store_->Put("present-b", "2").ok());
  std::vector<Slice> keys = {"present-a", "missing-x", "present-b", "missing-y"};
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ("1", values[0]);
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ("2", values[2]);
  EXPECT_TRUE(statuses[3].IsNotFound());
}

TEST_F(FanoutTest, MultiGetDuplicateKeys) {
  ASSERT_TRUE(store_->Put("dup", "d").ok());
  ASSERT_TRUE(store_->Put("other", "o").ok());
  std::vector<Slice> keys = {"dup", "other", "dup", "dup", "nope", "nope"};
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ("d", values[0]);
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_EQ("o", values[1]);
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ("d", values[2]);
  EXPECT_TRUE(statuses[3].ok());
  EXPECT_EQ("d", values[3]);
  EXPECT_TRUE(statuses[4].IsNotFound());
  EXPECT_TRUE(statuses[5].IsNotFound());
}

TEST_F(FanoutTest, MultiGetAllKeysOnePartition) {
  // Collect keys that all hash to partition 0: the fan-out degenerates to a
  // single pre-merged group request.
  std::vector<std::string> storage;
  for (int i = 0; storage.size() < 16; i++) {
    std::string key = "solo" + std::to_string(i);
    if (store_->PartitionOf(key) == 0) {
      ASSERT_TRUE(store_->Put(key, "v-" + key).ok());
      storage.push_back(std::move(key));
    }
  }
  std::vector<Slice> keys(storage.begin(), storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok());
    EXPECT_EQ("v-" + storage[i], values[i]);
  }
  P2kvsStats stats = store_->GetStats();
  EXPECT_GE(stats.read_batches, 1u);
  EXPECT_GE(stats.reads_batched, keys.size());
}

TEST_F(FanoutTest, MultiGetEmptyKeySet) {
  std::vector<Slice> keys;
  std::vector<std::string> values = {"stale"};
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  EXPECT_TRUE(statuses.empty());
  EXPECT_TRUE(values.empty());
}

TEST_F(FanoutTest, MultiWriteAcrossPartitions) {
  WriteBatch batch;
  for (int i = 0; i < 64; i++) {
    batch.Put("mw" + std::to_string(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE(store_->MultiWrite(&batch).ok());
  for (int i = 0; i < 64; i++) {
    std::string value;
    ASSERT_TRUE(store_->Get("mw" + std::to_string(i), &value).ok());
    EXPECT_EQ("v" + std::to_string(i), value);
  }

  WriteBatch deletions;
  for (int i = 0; i < 64; i += 2) {
    deletions.Delete("mw" + std::to_string(i));
  }
  ASSERT_TRUE(store_->MultiWrite(&deletions).ok());
  for (int i = 0; i < 64; i++) {
    std::string value;
    Status s = store_->Get("mw" + std::to_string(i), &value);
    if (i % 2 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << i;
    } else {
      EXPECT_TRUE(s.ok()) << i;
    }
  }
}

TEST_F(FanoutTest, MultiWriteEmptyBatch) {
  WriteBatch batch;
  EXPECT_TRUE(store_->MultiWrite(&batch).ok());
}

TEST_F(FanoutTest, ConcurrentFanouts) {
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store_->Put("c" + std::to_string(i), std::to_string(i)).ok());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([this] {
      std::vector<std::string> storage;
      for (int i = 0; i < 200; i++) {
        storage.push_back("c" + std::to_string(i));
      }
      std::vector<Slice> keys(storage.begin(), storage.end());
      for (int round = 0; round < 20; round++) {
        std::vector<std::string> values;
        std::vector<Status> statuses = store_->MultiGet(keys, &values);
        for (size_t i = 0; i < keys.size(); i++) {
          ASSERT_TRUE(statuses[i].ok());
          ASSERT_EQ(std::to_string(i), values[i]);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
}

// ---------------- Fan-out across a degraded partition ----------------

class FanoutGovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    env_ = std::make_unique<ErrorInjectionEnv>(base_env_.get());
    Options lsm;
    lsm.env = env_.get();
    lsm.wal_retry.max_attempts = 1;
    options_.env = env_.get();
    options_.num_workers = 2;
    options_.pin_workers = false;
    options_.retry.max_attempts = 1;
    options_.engine_factory = MakeRocksLiteFactory(lsm);
    ASSERT_TRUE(P2KVS::Open(options_, "/p2", &store_).ok());
    // One key per partition, to tell the degraded one from the healthy one.
    for (int i = 0; keys_[0].empty() || keys_[1].empty(); i++) {
      std::string key = "key-" + std::to_string(i);
      keys_[static_cast<size_t>(store_->PartitionOf(key))] = key;
    }
  }

  // Wedges partition 0's engine with a hard sync fault (sticky bg_error_),
  // leaving it degraded / read-only until the fault clears.
  void DegradePartitionZero() {
    ASSERT_TRUE(store_->Put(keys_[0], "v0").ok());
    ASSERT_TRUE(store_->Put(keys_[1], "v1").ok());
    env_->SetPathFilter("instance-0/");
    env_->SetFailureOdds(FaultOp::kSync, 1, /*transient=*/false);
    WriteBatch txn;
    txn.Put(keys_[0], "wedge");
    ASSERT_FALSE(store_->WriteTxn(&txn).ok());
    ASSERT_EQ(1, store_->Health().NumUnhealthy());
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<ErrorInjectionEnv> env_;
  P2kvsOptions options_;
  std::unique_ptr<P2KVS> store_;
  std::string keys_[2];
};

TEST_F(FanoutGovernanceTest, MultiGetStillServedByDegradedPartition) {
  DegradePartitionZero();
  // Reads keep flowing on a read-only partition: the fan-out sees per-key
  // success on both the healthy and the degraded side.
  std::vector<Slice> keys = {keys_[0], keys_[1]};
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  ASSERT_TRUE(statuses[0].ok()) << statuses[0].ToString();
  EXPECT_EQ("v0", values[0]);
  ASSERT_TRUE(statuses[1].ok()) << statuses[1].ToString();
  EXPECT_EQ("v1", values[1]);
}

TEST_F(FanoutGovernanceTest, MultiWriteFailsFastOnDegradedPartition) {
  DegradePartitionZero();
  WriteBatch batch;
  batch.Put(keys_[0], "new0");
  batch.Put(keys_[1], "new1");
  Status s = store_->MultiWrite(&batch);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();

  // MultiWrite is atomic per partition only (documented): the healthy
  // sub-batch lands, the degraded one is rejected fast.
  std::string value;
  ASSERT_TRUE(store_->Get(keys_[0], &value).ok());
  EXPECT_EQ("v0", value);
  ASSERT_TRUE(store_->Get(keys_[1], &value).ok());
  EXPECT_EQ("new1", value);

  // The rejection is visible in both the health and stats surfaces.
  EXPECT_GT(store_->Health().workers[0].degraded_rejects, 0u);
  EXPECT_GT(store_->GetStats().degraded_rejects, 0u);

  // Once the fault clears, Resume restores write service to the fan-out.
  env_->DisableAll();
  ASSERT_TRUE(store_->Resume().ok());
  WriteBatch retry;
  retry.Put(keys_[0], "new0");
  retry.Put(keys_[1], "new1b");
  ASSERT_TRUE(store_->MultiWrite(&retry).ok());
  ASSERT_TRUE(store_->Get(keys_[0], &value).ok());
  EXPECT_EQ("new0", value);
}

// ------------- Parallel RANGE / SCAN across a failed partition -------------
// Regression for the partial-failure asymmetry: MultiGet always reported
// key-level outcomes, but one failed sub-RANGE used to erase every healthy
// partition's pairs and return only the error. Now the merged result carries
// everything the healthy partitions produced, the first error is still
// returned, and partition_status attributes the failure.

class RangeFailureTest : public FanoutGovernanceTest {
 protected:
  void LoadAndFailPartitionZero() {
    for (int i = 0; i < 64; i++) {
      std::string key = "rq-" + std::to_string(i);
      ASSERT_TRUE(store_->Put(key, "v-" + key).ok());
      (store_->PartitionOf(key) == 0 ? p0_keys_ : p1_keys_).push_back(key);
    }
    ASSERT_FALSE(p0_keys_.empty());
    ASSERT_FALSE(p1_keys_.empty());
    std::sort(p1_keys_.begin(), p1_keys_.end());
    // Push everything into SSTs so reads must touch storage, then fail every
    // storage read on instance-0: its sub-query errors, the other survives.
    ASSERT_TRUE(store_->FlushAll().ok());
    env_->SetPathFilter("instance-0/");
    env_->SetFailureOdds(FaultOp::kRead, 1, /*transient=*/false);
  }

  std::vector<std::string> p0_keys_;
  std::vector<std::string> p1_keys_;
};

TEST_F(RangeFailureTest, RangeReturnsHealthyPartitionsPairs) {
  LoadAndFailPartitionZero();

  std::vector<std::pair<std::string, std::string>> out;
  std::vector<Status> per_part;
  Status s = store_->Range("", "", &out, &per_part);
  EXPECT_FALSE(s.ok());            // the failure is still reported,
  ASSERT_EQ(2u, per_part.size());  // attributed to its partition,
  EXPECT_FALSE(per_part[0].ok());
  EXPECT_TRUE(per_part[1].ok()) << per_part[1].ToString();
  // and the healthy partition's pairs survive (previously: empty result).
  ASSERT_EQ(p1_keys_.size(), out.size());
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(p1_keys_[i], out[i].first);
    EXPECT_EQ("v-" + p1_keys_[i], out[i].second);
  }

  // partition_status is optional — the default-argument call still works.
  EXPECT_FALSE(store_->Range("", "", &out).ok());
  EXPECT_EQ(p1_keys_.size(), out.size());

  // Once the fault clears, the full result comes back.
  env_->DisableAll();
  ASSERT_TRUE(store_->Range("", "", &out, &per_part).ok());
  EXPECT_EQ(p0_keys_.size() + p1_keys_.size(), out.size());
  EXPECT_TRUE(per_part[0].ok());
  EXPECT_TRUE(per_part[1].ok());
}

TEST_F(RangeFailureTest, ParallelScanReturnsHealthyPartitionsPairs) {
  LoadAndFailPartitionZero();
  ASSERT_EQ(P2kvsOptions::ScanMode::kParallel, options_.scan_mode);

  std::vector<std::pair<std::string, std::string>> out;
  std::vector<Status> per_part;
  Status s = store_->Scan("", 1000, &out, &per_part);
  EXPECT_FALSE(s.ok());
  ASSERT_EQ(2u, per_part.size());
  EXPECT_FALSE(per_part[0].ok());
  EXPECT_TRUE(per_part[1].ok()) << per_part[1].ToString();
  ASSERT_EQ(p1_keys_.size(), out.size());
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(p1_keys_[i], out[i].first);
  }

  env_->DisableAll();
  ASSERT_TRUE(store_->Scan("", 1000, &out, &per_part).ok());
  EXPECT_EQ(p0_keys_.size() + p1_keys_.size(), out.size());
}

}  // namespace
}  // namespace p2kvs
