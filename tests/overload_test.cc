// Overload-robustness tests: request deadlines (expiry while queued and
// across a partial MultiGet fan-out), CoDel-style admission control and the
// accounting invariant (completed + shed + expired == submitted once
// quiescent), retry budgets, the per-partition circuit breaker, and the
// shed-storm flight-recorder trigger. Unit tests of the control primitives
// first, then framework-level tests driving a real store through
// ErrorInjectionEnv latency/fault injection.

#include "src/core/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/p2kvs.h"
#include "src/io/error_injection_env.h"
#include "src/io/mem_env.h"
#include "src/io/retry.h"

namespace p2kvs {
namespace {

constexpr uint64_t kMs = 1000000ull;  // nanoseconds per millisecond

// ---------------- RetryBudget (token bucket) ----------------

TEST(RetryBudgetTest, BurstThenDeny) {
  RetryBudget budget(/*rate_per_sec=*/1.0, /*burst=*/2.0);
  ASSERT_TRUE(budget.enabled());
  uint64_t now = 1000 * kMs;
  EXPECT_TRUE(budget.TryAcquire(now));
  EXPECT_TRUE(budget.TryAcquire(now));
  EXPECT_FALSE(budget.TryAcquire(now));  // bucket empty
  EXPECT_EQ(1u, budget.denied());
  // One second later a full token has refilled.
  EXPECT_TRUE(budget.TryAcquire(now + 1000 * kMs));
  EXPECT_FALSE(budget.TryAcquire(now + 1000 * kMs));
  EXPECT_EQ(2u, budget.denied());
}

TEST(RetryBudgetTest, RefillIsCappedAtBurst) {
  RetryBudget budget(/*rate_per_sec=*/100.0, /*burst=*/2.0);
  uint64_t now = 1000 * kMs;
  EXPECT_TRUE(budget.TryAcquire(now));
  // An hour of idle refill still caps at burst: 2 tokens, not 360000.
  now += 3600ull * 1000 * kMs;
  EXPECT_TRUE(budget.TryAcquire(now));
  EXPECT_TRUE(budget.TryAcquire(now));
  EXPECT_FALSE(budget.TryAcquire(now));
}

TEST(RetryBudgetTest, DisabledAlwaysAllows) {
  RetryBudget budget(/*rate_per_sec=*/0, /*burst=*/1.0);
  EXPECT_FALSE(budget.enabled());
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(budget.TryAcquire(0));
  }
  EXPECT_EQ(0u, budget.denied());
}

// ---------------- RetryGovernor in RunWithRetry ----------------

TEST(RetryGovernorTest, DeadlinePassedAbandonsRetries) {
  int calls = 0;
  RetryGovernor governor;
  governor.deadline_nanos = 1;  // long past
  Status s = RunWithRetry(
      nullptr, RetryPolicy(),
      [&] {
        calls++;
        return Status::TransientIOError("flaky");
      },
      governor);
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_EQ(1, calls);  // first attempt runs; the retry is abandoned
}

TEST(RetryGovernorTest, BudgetExhaustionFailsFastWithLastStatus) {
  RetryBudget budget(/*rate_per_sec=*/1e-9, /*burst=*/1.0);  // 1 retry, ~no refill
  RetryGovernor governor;
  governor.budget = &budget;
  int calls = 0;
  Status s = RunWithRetry(
      nullptr, RetryPolicy(),
      [&] {
        calls++;
        return Status::TransientIOError("always flaky");
      },
      governor);
  // Attempt 1 fails, one budgeted retry fails, the next retry is denied.
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(s.IsTransient());
  EXPECT_EQ(2, calls);
  EXPECT_EQ(1u, budget.denied());
}

TEST(RetryGovernorTest, DefaultGovernorChangesNothing) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 3;
  Status s = RunWithRetry(nullptr, policy, [&] {
    calls++;
    return calls < 3 ? Status::TransientIOError("flaky") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(3, calls);
}

// ---------------- CoDel admission controller ----------------

TEST(CoDelAdmissionTest, TripsOnlyAfterSustainedQueueWait) {
  AdmissionConfig config;
  config.enabled = true;
  config.target_queue_wait_us = 1000;  // 1ms target
  config.interval_us = 20000;          // 20ms sustained
  CoDelAdmissionController codel(config, /*queue_capacity=*/0);

  // One large sample pushes the EWMA over target but not for a full
  // interval: still admitting.
  uint64_t now = 1000 * kMs;
  codel.RecordQueueWait(100 * kMs, now);
  EXPECT_FALSE(codel.overloaded());
  EXPECT_TRUE(codel.Admit(5));

  // Sustained above-target waits for > interval trip the controller.
  for (int i = 0; i < 30; i++) {
    now += 1 * kMs;
    codel.RecordQueueWait(100 * kMs, now);
  }
  EXPECT_TRUE(codel.overloaded());
  EXPECT_FALSE(codel.Admit(5));
  // Probe-when-empty: an arrival that finds the queue empty is admitted even
  // while overloaded — those probes feed the EWMA so the signal can decay.
  EXPECT_TRUE(codel.Admit(0));

  // Once the EWMA decays under target the controller reopens.
  for (int i = 0; i < 200 && codel.overloaded(); i++) {
    now += 1 * kMs;
    codel.RecordQueueWait(0, now);
  }
  EXPECT_FALSE(codel.overloaded());
  EXPECT_TRUE(codel.Admit(5));
}

TEST(CoDelAdmissionTest, HardDepthCeilingShedsRegardlessOfEwma) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_queue_depth = 8;
  CoDelAdmissionController codel(config, /*queue_capacity=*/0);
  EXPECT_TRUE(codel.Admit(7));
  EXPECT_FALSE(codel.Admit(8));
  EXPECT_FALSE(codel.Admit(100));
}

TEST(CoDelAdmissionTest, DepthCeilingInheritsQueueCapacity) {
  AdmissionConfig config;
  config.enabled = true;  // max_queue_depth left 0
  CoDelAdmissionController codel(config, /*queue_capacity=*/4);
  EXPECT_TRUE(codel.Admit(3));
  EXPECT_FALSE(codel.Admit(4));
}

TEST(CoDelAdmissionTest, EwmaConvergesDespiteIntegerTruncation) {
  AdmissionConfig config;
  config.enabled = true;
  CoDelAdmissionController codel(config, 0);
  // Feed a constant small wait; with plain delta/16 truncation the EWMA
  // would stall 15 nanos below the input forever. The +/-1 nudge closes it.
  for (int i = 0; i < 1000; i++) {
    codel.RecordQueueWait(100, i * kMs);
  }
  EXPECT_EQ(100u, codel.ewma_nanos());
  // And decays all the way back to zero.
  for (int i = 0; i < 1000; i++) {
    codel.RecordQueueWait(0, (1000 + i) * kMs);
  }
  EXPECT_EQ(0u, codel.ewma_nanos());
}

// ---------------- Circuit breaker ----------------

TEST(CircuitBreakerTest, DisabledTripsOnFirstFailure) {
  CircuitBreaker breaker(/*failure_threshold=*/0, /*window_nanos=*/0);
  EXPECT_FALSE(breaker.enabled());
  EXPECT_TRUE(breaker.OnFailure(0));  // legacy: first hard error degrades
  EXPECT_EQ(0u, breaker.trips());    // not counted as a breaker trip
}

TEST(CircuitBreakerTest, AbsorbsIsolatedFailuresTripsAtThreshold) {
  CircuitBreaker breaker(/*failure_threshold=*/3, /*window_nanos=*/1000 * kMs);
  uint64_t now = 5000 * kMs;
  EXPECT_FALSE(breaker.OnFailure(now));
  EXPECT_FALSE(breaker.OnFailure(now + 1 * kMs));
  EXPECT_TRUE(breaker.OnFailure(now + 2 * kMs));  // third within the window
  EXPECT_EQ(1u, breaker.trips());
}

TEST(CircuitBreakerTest, WindowExpiryAndSuccessBothReset) {
  CircuitBreaker breaker(/*failure_threshold=*/2, /*window_nanos=*/10 * kMs);
  uint64_t now = 5000 * kMs;
  EXPECT_FALSE(breaker.OnFailure(now));
  // Outside the window: the count restarts, so this is failure #1 again.
  EXPECT_FALSE(breaker.OnFailure(now + 20 * kMs));
  // A success closes the window entirely.
  breaker.OnSuccess();
  EXPECT_FALSE(breaker.OnFailure(now + 21 * kMs));
  EXPECT_TRUE(breaker.OnFailure(now + 22 * kMs));
  EXPECT_EQ(1u, breaker.trips());
}

// ---------------- Framework-level fixtures ----------------

// An admission controller that refuses every data request: turns admission
// decisions deterministic for tests of the shed path itself.
class RejectAllController : public AdmissionController {
 public:
  const char* name() const override { return "reject-all"; }
  void RecordQueueWait(uint64_t, uint64_t) override {}
  bool Admit(size_t) const override { return false; }
  bool overloaded() const override { return true; }
};

class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    env_ = std::make_unique<ErrorInjectionEnv>(base_env_.get());
    options_.env = env_.get();
    options_.num_workers = 2;
    options_.pin_workers = false;
    Options lsm;
    lsm.env = env_.get();
    lsm.wal_retry.max_attempts = 1;  // retries under test live in the worker
    options_.engine_factory = MakeRocksLiteFactory(lsm);
  }

  void Open() {
    ASSERT_TRUE(P2KVS::Open(options_, "/overload", &store_).ok());
    // One key per partition, to aim injected latency at a single victim.
    for (int i = 0; keys_[0].empty() || keys_[1].empty(); i++) {
      std::string key = "key-" + std::to_string(i);
      keys_[static_cast<size_t>(store_->PartitionOf(key))] = key;
    }
  }

  // Parks worker `victim` in a slow engine call: injected append latency on
  // its instance directory plus one async write to sit in that latency.
  void OccupyWorker(int victim, int latency_us,
                    std::atomic<int>* done = nullptr) {
    env_->SetPathFilter("instance-" + std::to_string(victim) + "/");
    env_->SetOpLatency(FaultOp::kAppend, latency_us);
    store_->PutAsync(keys_[static_cast<size_t>(victim)], "occupy",
                     [done](const Status& s) {
                       EXPECT_TRUE(s.ok()) << s.ToString();
                       if (done != nullptr) {
                         done->fetch_add(1, std::memory_order_relaxed);
                       }
                     });
    // Let the worker dequeue the slow write before anything else is
    // submitted, so later requests queue behind it instead of batching with
    // it.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<ErrorInjectionEnv> env_;
  P2kvsOptions options_;
  std::unique_ptr<P2KVS> store_;
  std::string keys_[2];
};

// ---------------- Deadlines ----------------

TEST_F(OverloadTest, PutExpiresWhileQueuedBehindSlowWrite) {
  options_.default_deadline_ms = 50;
  options_.enable_obm = false;  // no batching: the queued write must wait
  Open();

  const int victim = 0;
  OccupyWorker(victim, /*latency_us=*/150000);

  // Queued behind a 150ms write with a 50ms deadline: expires at dequeue.
  Status s = store_->Put(keys_[victim], "late");
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();

  // The other partition is unaffected.
  ASSERT_TRUE(store_->Put(keys_[1], "v1").ok());

  store_->WaitIdle().IgnoreError();
  env_->DisableAll();
  P2kvsStats stats = store_->GetStats();
  EXPECT_EQ(1u, stats.expired);
  EXPECT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
  // The expired write was never applied.
  std::string value;
  ASSERT_TRUE(store_->Get(keys_[victim], &value).ok());
  EXPECT_EQ("occupy", value);
}

TEST_F(OverloadTest, GetHonorsDeadlineToo) {
  options_.default_deadline_ms = 50;
  options_.enable_obm = false;
  Open();
  ASSERT_TRUE(store_->Put(keys_[0], "v").ok());

  OccupyWorker(0, /*latency_us=*/150000);
  std::string value;
  EXPECT_TRUE(store_->Get(keys_[0], &value).IsDeadlineExceeded());

  store_->WaitIdle().IgnoreError();
  env_->DisableAll();
}

TEST_F(OverloadTest, MultiGetPartialFanoutExpiry) {
  options_.default_deadline_ms = 50;
  options_.enable_obm = false;
  Open();
  ASSERT_TRUE(store_->Put(keys_[0], "v0").ok());
  ASSERT_TRUE(store_->Put(keys_[1], "v1").ok());
  store_->WaitIdle().IgnoreError();

  OccupyWorker(0, /*latency_us=*/150000);

  // One key per partition: the slice behind the slow worker expires, the
  // healthy partition's slice is served — and the fan-out join still
  // releases (an expired slice counts down the pooled Completion exactly
  // like a completed one).
  std::vector<Slice> lookup{keys_[0], keys_[1]};
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(lookup, &values);
  EXPECT_TRUE(statuses[0].IsDeadlineExceeded()) << statuses[0].ToString();
  ASSERT_TRUE(statuses[1].ok()) << statuses[1].ToString();
  EXPECT_EQ("v1", values[1]);

  store_->WaitIdle().IgnoreError();
  env_->DisableAll();
  P2kvsStats stats = store_->GetStats();
  EXPECT_GE(stats.expired, 1u);
  EXPECT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
}

TEST_F(OverloadTest, NoDeadlineMeansNoExpiry) {
  // default_deadline_ms left 0: the same slow-write pileup serves everything
  // late rather than expiring anything.
  options_.enable_obm = false;
  Open();
  OccupyWorker(0, /*latency_us=*/100000);
  ASSERT_TRUE(store_->Put(keys_[0], "late-but-served").ok());
  store_->WaitIdle().IgnoreError();
  env_->DisableAll();
  P2kvsStats stats = store_->GetStats();
  EXPECT_EQ(0u, stats.expired);
  EXPECT_EQ(0u, stats.shed);
  EXPECT_EQ(stats.submitted, stats.completed);
  EXPECT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
}

// ---------------- Admission control ----------------

TEST_F(OverloadTest, RejectAllControllerShedsDataButNeverControl) {
  options_.admission.enabled = true;
  options_.admission_factory = [](const AdmissionConfig&, size_t, int) {
    return std::unique_ptr<AdmissionController>(new RejectAllController());
  };
  Open();

  // Every data request is refused with the transient shed status...
  Status s = store_->Put(keys_[0], "v");
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_TRUE(s.IsTransient());
  std::string value;
  EXPECT_TRUE(store_->Get(keys_[0], &value).IsBusy());

  // ...a fan-out is refused atomically, every key reporting the shed...
  std::vector<Slice> lookup{keys_[0], keys_[1]};
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(lookup, &values);
  EXPECT_TRUE(statuses[0].IsBusy());
  EXPECT_TRUE(statuses[1].IsBusy());
  std::vector<std::pair<std::string, std::string>> rows;
  EXPECT_TRUE(store_->Scan("", 10, &rows).IsBusy());
  WriteBatch wb;
  wb.Put(keys_[0], "x");
  wb.Put(keys_[1], "y");
  EXPECT_TRUE(store_->MultiWrite(&wb).IsBusy());
  EXPECT_TRUE(store_->WriteTxn(&wb).IsBusy());

  // ...but control requests pass: WaitIdle returns and the stats drain runs
  // even while the store refuses all data traffic.
  store_->WaitIdle().IgnoreError();
  P2kvsStats stats = store_->GetStats();
  EXPECT_EQ(0u, stats.completed);
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(stats.submitted, stats.shed);
  EXPECT_TRUE(stats.totals.admission_overloaded);
  EXPECT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
}

TEST_F(OverloadTest, AccountingExactPastFullQueuesAtHighRate) {
  // Bounded queues + admission on + slow appends + a burst far above
  // capacity: some requests execute, some shed. Whatever the mix, every
  // callback fires, nothing double-counts, and the framework's doors match
  // what the clients observed exactly.
  options_.queue_capacity = 8;
  options_.admission.enabled = true;
  options_.admission.target_queue_wait_us = 500;
  options_.admission.interval_us = 2000;
  Open();
  env_->SetOpLatency(FaultOp::kAppend, 2000);  // 2ms per engine write

  constexpr int kOps = 400;
  std::atomic<int> ok{0}, shed{0}, expired{0}, other{0}, done{0};
  for (int i = 0; i < kOps; i++) {
    store_->PutAsync("k" + std::to_string(i % 32), "v",
                     [&](const Status& st) {
                       if (st.ok()) {
                         ok.fetch_add(1, std::memory_order_relaxed);
                       } else if (st.IsBusy()) {
                         shed.fetch_add(1, std::memory_order_relaxed);
                       } else if (st.IsDeadlineExceeded()) {
                         expired.fetch_add(1, std::memory_order_relaxed);
                       } else {
                         other.fetch_add(1, std::memory_order_relaxed);
                       }
                       done.fetch_add(1, std::memory_order_release);
                     });
  }
  // Every submit resolves: shed callbacks fire inline, admitted ones after
  // execution. No callback may be lost to the shed path (a lost one would
  // leak the heap request and hang this loop).
  while (done.load(std::memory_order_acquire) != kOps) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  store_->WaitIdle().IgnoreError();
  env_->DisableAll();

  EXPECT_GT(shed.load(), 0);  // the burst must actually overflow
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(0, other.load());

  P2kvsStats stats = store_->GetStats();
  ASSERT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
  // Quiescent: the inequality is exact, and the doors match the clients.
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed + stats.expired);
  EXPECT_EQ(static_cast<uint64_t>(kOps), stats.submitted);
  EXPECT_EQ(static_cast<uint64_t>(ok.load() + other.load()), stats.completed);
  EXPECT_EQ(static_cast<uint64_t>(shed.load()), stats.shed);
  EXPECT_EQ(static_cast<uint64_t>(expired.load()), stats.expired);
}

// ---------------- Retry budget (framework level) ----------------

TEST_F(OverloadTest, RetryBudgetDeniesRetriesUnderFaultStorm) {
  options_.retry_budget_per_sec = 1e-9;  // ~no refill
  options_.retry_budget_burst = 1;       // one retry, then denial
  // Keep the partition healthy through the storm so the test isolates the
  // budget (a transient that survives retries normally degrades).
  options_.breaker_failure_threshold = 100;
  Open();

  // More transient faults than the budget allows retries: attempt 1 fails,
  // the single budgeted retry fails, the next retry is denied -> the Put
  // fails fast with the transient status instead of burning all 4 attempts.
  env_->FailNext(FaultOp::kAppend, 4, /*transient=*/true);
  Status s = store_->Put(keys_[0], "v");
  EXPECT_TRUE(s.IsIOError() && s.IsTransient()) << s.ToString();
  EXPECT_EQ(2u, env_->injected_faults(FaultOp::kAppend));

  env_->DisableAll();
  store_->WaitIdle().IgnoreError();
  P2kvsStats stats = store_->GetStats();
  EXPECT_EQ(1u, stats.retries_denied);
  EXPECT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
  EXPECT_TRUE(store_->Health().AllHealthy());
}

// ---------------- Circuit breaker (framework level) ----------------

TEST_F(OverloadTest, BreakerAbsorbsIsolatedFaultsThenTripsAndResumes) {
  options_.retry.max_attempts = 1;
  options_.breaker_failure_threshold = 3;
  options_.breaker_window_ms = 60000;  // one window covers the whole test
  Open();

  const int victim = 0;
  env_->SetPathFilter("instance-" + std::to_string(victim) + "/");

  // Two isolated hard faults: callers see the errors, but the partition
  // stays healthy — pre-breaker behavior would have degraded on the first.
  for (int i = 0; i < 2; i++) {
    env_->FailNext(FaultOp::kAppend, 1, /*transient=*/false);
    EXPECT_TRUE(store_->Put(keys_[victim], "v").IsIOError());
    EXPECT_TRUE(store_->Health().AllHealthy());
  }

  // The third failure within the window trips the breaker: the partition
  // degrades to read-only fast-fail, exactly like a legacy hard error.
  env_->FailNext(FaultOp::kAppend, 1, /*transient=*/false);
  EXPECT_TRUE(store_->Put(keys_[victim], "v").IsIOError());
  P2kvsHealth health = store_->Health();
  EXPECT_EQ(1, health.NumUnhealthy());
  EXPECT_NE(WorkerHealth::kHealthy,
            health.workers[static_cast<size_t>(victim)].health);
  EXPECT_EQ(1u, store_->GetStats().breaker_trips);

  // The untouched partition keeps serving.
  ASSERT_TRUE(store_->Put(keys_[1], "v1").ok());

  // Fault cleared: explicit resume half-opens and re-closes the breaker path.
  env_->DisableAll();
  ASSERT_TRUE(store_->Resume().ok());
  EXPECT_TRUE(store_->Health().AllHealthy());
  ASSERT_TRUE(store_->Put(keys_[victim], "recovered").ok());
  std::string value;
  ASSERT_TRUE(store_->Get(keys_[victim], &value).ok());
  EXPECT_EQ("recovered", value);
}

TEST_F(OverloadTest, SuccessBetweenFaultsKeepsBreakerClosed) {
  options_.retry.max_attempts = 1;
  options_.breaker_failure_threshold = 2;
  options_.breaker_window_ms = 60000;
  Open();
  const int victim = 0;
  env_->SetPathFilter("instance-" + std::to_string(victim) + "/");

  // fail, succeed, fail, succeed: never two sustained failures, never trips.
  for (int i = 0; i < 2; i++) {
    env_->FailNext(FaultOp::kAppend, 1, /*transient=*/false);
    EXPECT_TRUE(store_->Put(keys_[victim], "x").IsIOError());
    EXPECT_TRUE(store_->Put(keys_[victim], "ok").ok());
  }
  EXPECT_TRUE(store_->Health().AllHealthy());
  EXPECT_EQ(0u, store_->GetStats().breaker_trips);
}

// ---------------- Shed storm -> flight recorder ----------------

TEST_F(OverloadTest, ShedStormDumpsFlightRecorderOnce) {
  options_.admission.enabled = true;
  options_.admission.shed_storm_threshold = 5;
  options_.admission_factory = [](const AdmissionConfig&, size_t, int) {
    return std::unique_ptr<AdmissionController>(new RejectAllController());
  };
  options_.trace.enabled = true;
  options_.trace.sample_every = 1;
  Open();

  for (int i = 0; i < 20; i++) {
    EXPECT_TRUE(store_->Put(keys_[0], "v").IsBusy());
  }
  P2kvsStats stats = store_->GetStats();
  EXPECT_EQ(1u, stats.trace_flight_dumps);  // once per store lifetime
  EXPECT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
}

// ---------------- Defaults ----------------

TEST_F(OverloadTest, AllOverloadFeaturesOffByDefault) {
  Open();
  ASSERT_TRUE(store_->Put(keys_[0], "v0").ok());
  ASSERT_TRUE(store_->Put(keys_[1], "v1").ok());
  std::string value;
  ASSERT_TRUE(store_->Get(keys_[0], &value).ok());
  EXPECT_EQ("v0", value);
  store_->WaitIdle().IgnoreError();
  P2kvsStats stats = store_->GetStats();
  EXPECT_EQ(0u, stats.shed);
  EXPECT_EQ(0u, stats.expired);
  EXPECT_EQ(0u, stats.breaker_trips);
  EXPECT_EQ(0u, stats.retries_denied);
  EXPECT_EQ(stats.submitted, stats.completed);
  EXPECT_GT(stats.submitted, 0u);
  EXPECT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
}

}  // namespace
}  // namespace p2kvs
