// Histogram unit tests: merge equivalence, percentile math, moment
// accounting (avg / stddev), and the empty / clamping edge cases the stats
// spine and the bench tables rely on.

#include "src/util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/util/random.h"

namespace p2kvs {
namespace {

TEST(HistogramTest, EmptyHistogramIsAllZeros) {
  Histogram h;
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0.0, h.Sum());
  EXPECT_EQ(0.0, h.Average());
  EXPECT_EQ(0.0, h.StandardDeviation());
  EXPECT_EQ(0.0, h.Percentile(50));
  EXPECT_EQ(0.0, h.Percentile(99.9));
  EXPECT_EQ(0.0, h.Max());
}

TEST(HistogramTest, SingleSampleMoments) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(1u, h.Count());
  EXPECT_DOUBLE_EQ(42.0, h.Sum());
  EXPECT_DOUBLE_EQ(42.0, h.Average());
  EXPECT_DOUBLE_EQ(42.0, h.Min());
  EXPECT_DOUBLE_EQ(42.0, h.Max());
  EXPECT_NEAR(0.0, h.StandardDeviation(), 1e-9);
  // Every percentile of a single sample is clamped into [min, max].
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(0.1));
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(50));
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(99.9));
}

TEST(HistogramTest, AverageAndStddevAreExact) {
  // Moments are kept exactly (sum / sum of squares), independent of the
  // bucket resolution.
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    h.Add(v);
  }
  EXPECT_EQ(8u, h.Count());
  EXPECT_DOUBLE_EQ(40.0, h.Sum());
  EXPECT_DOUBLE_EQ(5.0, h.Average());
  EXPECT_NEAR(2.0, h.StandardDeviation(), 1e-9);  // textbook population stddev
}

TEST(HistogramTest, PercentilesBracketTheData) {
  Histogram h;
  for (int i = 1; i <= 1000; i++) {
    h.Add(static_cast<double>(i));
  }
  // Geometric buckets grow ~12% wide, so allow that much slack around the
  // exact order statistic.
  EXPECT_NEAR(500.0, h.Percentile(50), 500.0 * 0.13);
  EXPECT_NEAR(950.0, h.Percentile(95), 950.0 * 0.13);
  EXPECT_NEAR(990.0, h.Percentile(99), 990.0 * 0.13);
  // Percentiles are monotone in p and clamped to the observed range.
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_GE(v, h.Min());
    EXPECT_LE(v, h.Max());
    prev = v;
  }
}

TEST(HistogramTest, MergeMatchesSingleHistogram) {
  // Adding a stream into one histogram must equal splitting the stream
  // across shards and merging — the exact contract the per-worker stats
  // aggregation depends on.
  Random rnd(301);
  Histogram combined;
  Histogram shard[4];
  for (int i = 0; i < 10000; i++) {
    double v = static_cast<double>(rnd.Uniform(100000)) / 7.0;
    combined.Add(v);
    shard[i % 4].Add(v);
  }
  Histogram merged;
  for (const Histogram& s : shard) {
    merged.Merge(s);
  }
  EXPECT_EQ(combined.Count(), merged.Count());
  // Sums differ only by floating-point addition order across the shards.
  EXPECT_NEAR(combined.Sum(), merged.Sum(), combined.Sum() * 1e-12);
  EXPECT_DOUBLE_EQ(combined.Min(), merged.Min());
  EXPECT_DOUBLE_EQ(combined.Max(), merged.Max());
  EXPECT_NEAR(combined.Average(), merged.Average(), combined.Average() * 1e-12);
  EXPECT_NEAR(combined.StandardDeviation(), merged.StandardDeviation(),
              combined.StandardDeviation() * 1e-9 + 1e-9);
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(combined.Percentile(p), merged.Percentile(p)) << "p" << p;
  }
}

TEST(HistogramTest, MergeIntoEmptyAndFromEmpty) {
  Histogram filled;
  filled.Add(3.0);
  filled.Add(11.0);

  Histogram target;
  target.Merge(filled);  // empty <- filled
  EXPECT_EQ(2u, target.Count());
  EXPECT_DOUBLE_EQ(3.0, target.Min());
  EXPECT_DOUBLE_EQ(11.0, target.Max());

  Histogram empty;
  target.Merge(empty);  // filled <- empty: a no-op
  EXPECT_EQ(2u, target.Count());
  EXPECT_DOUBLE_EQ(3.0, target.Min());
  EXPECT_DOUBLE_EQ(11.0, target.Max());
  EXPECT_DOUBLE_EQ(14.0, target.Sum());
}

TEST(HistogramTest, HugeValuesLandInOverflowBucketClamped) {
  Histogram h;
  h.Add(5e12);  // beyond the last finite bucket limit (~1e12)
  h.Add(7e12);
  EXPECT_EQ(2u, h.Count());
  EXPECT_DOUBLE_EQ(7e12, h.Max());
  // The overflow bucket's "right edge" is the observed max, so percentiles
  // stay finite and within range.
  double p99 = h.Percentile(99);
  EXPECT_TRUE(std::isfinite(p99));
  EXPECT_GE(p99, h.Min());
  EXPECT_LE(p99, h.Max());
}

TEST(HistogramTest, DeltaRecoversTheSamplesBetweenTwoSnapshots) {
  // Cumulative histogram, snapshot, more samples: Delta(earlier) must hold
  // exactly the second batch (the windowed-percentile foundation).
  Histogram h;
  for (int i = 0; i < 1000; i++) {
    h.Add(10.0);
  }
  Histogram earlier = h;
  for (int i = 0; i < 500; i++) {
    h.Add(5000.0);
  }
  Histogram delta = h.Delta(earlier);
  EXPECT_EQ(500u, delta.Count());
  EXPECT_NEAR(500 * 5000.0, delta.Sum(), 1.0);
  // All delta samples sit near 5000; the cumulative p50 would still be 10.
  EXPECT_GT(delta.Percentile(50), 1000.0);
  EXPECT_LE(delta.Percentile(50), 6000.0);
  EXPECT_GT(delta.Min(), 10.0);  // bucket-edge estimate, but past batch one
}

TEST(HistogramTest, DeltaPercentilesStayMonotoneAndInRange) {
  Histogram h;
  Random rnd(301);
  for (int i = 0; i < 2000; i++) {
    h.Add(static_cast<double>(rnd.Uniform(1000)) + 1);
  }
  Histogram earlier = h;
  for (int i = 0; i < 2000; i++) {
    h.Add(static_cast<double>(rnd.Uniform(100000)) + 1);
  }
  Histogram delta = h.Delta(earlier);
  EXPECT_EQ(2000u, delta.Count());
  double last = 0;
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    double v = delta.Percentile(p);
    EXPECT_GE(v, last) << "p" << p;
    EXPECT_GE(v, delta.Min());
    EXPECT_LE(v, delta.Max());
    last = v;
  }
}

TEST(HistogramTest, DeltaOfIdenticalSnapshotsIsEmpty) {
  Histogram h;
  for (int i = 0; i < 100; i++) {
    h.Add(static_cast<double>(i) + 1);
  }
  Histogram delta = h.Delta(h);
  EXPECT_EQ(0u, delta.Count());
  EXPECT_EQ(0.0, delta.Sum());
  EXPECT_EQ(0.0, delta.Percentile(99));
}

TEST(HistogramTest, DeltaClampsStaleWindowMismatches) {
  // `earlier` with MORE samples than `this` (a stale/crossed snapshot) must
  // clamp to zero per bucket, never go negative.
  Histogram a;
  a.Add(10.0);
  Histogram b = a;
  b.Add(10.0);
  b.Add(20.0);
  Histogram delta = a.Delta(b);
  EXPECT_EQ(0u, delta.Count());
  EXPECT_EQ(0.0, delta.Sum());
}

TEST(HistogramTest, CumulativeCountsFollowPrometheusLeSemantics) {
  // Fine buckets map to a bound by their UPPER edge (a bucket counts toward
  // `le=B` only when its whole range is <= B), so use values strictly inside
  // bucket ranges below each bound.
  Histogram h;
  for (int i = 0; i < 10; i++) {
    h.Add(0.5);     // first bucket, upper edge 1.0 -> le=1
  }
  for (int i = 0; i < 20; i++) {
    h.Add(40.0);    // bucket edge between 40 and 50 -> le=50
  }
  for (int i = 0; i < 5; i++) {
    h.Add(9e9);     // far tail -> only +Inf
  }
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<uint64_t> counts = h.CumulativeCounts({1.0, 25.0, 50.0, 1000.0, inf});
  ASSERT_EQ(5u, counts.size());
  EXPECT_EQ(10u, counts[0]);   // the 0.5 samples
  EXPECT_EQ(10u, counts[1]);   // nothing between 1 and 25
  EXPECT_EQ(30u, counts[2]);   // + the 40.0 samples
  EXPECT_EQ(30u, counts[3]);
  EXPECT_EQ(35u, counts[4]);   // +Inf receives everything
  // Cumulative counts never decrease.
  for (size_t i = 1; i < counts.size(); i++) {
    EXPECT_GE(counts[i], counts[i - 1]);
  }
}

TEST(HistogramTest, ClearResetsEverything) {
  Histogram h;
  for (int i = 0; i < 100; i++) {
    h.Add(static_cast<double>(i));
  }
  h.Clear();
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0.0, h.Sum());
  EXPECT_EQ(0.0, h.Percentile(99));
  h.Add(8.0);
  EXPECT_DOUBLE_EQ(8.0, h.Min());
  EXPECT_DOUBLE_EQ(8.0, h.Max());
}

}  // namespace
}  // namespace p2kvs
