// Model-based property tests: long random operation sequences executed
// against a store AND a std::map reference model, with periodic full-state
// comparison, scans, and mid-run reopens. Parameterized over every system in
// the repo (four LSM profiles, WTLite, KVell-lite, and p2KVS over three
// engines).

#include <gtest/gtest.h>

#include <map>

#include "src/btree/btree_store.h"
#include "src/core/p2kvs.h"
#include "src/io/mem_env.h"
#include "src/kvell/kvell_store.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

// A minimal uniform facade over all systems under test.
struct ModelTarget {
  std::function<Status(const std::string&, const std::string&)> put;
  std::function<Status(const std::string&)> del;
  std::function<Status(const std::string&, std::string*)> get;
  // Ordered scan of up to n pairs with key >= begin; null if unsupported.
  std::function<Status(const std::string&, size_t,
                       std::vector<std::pair<std::string, std::string>>*)> scan;
  std::function<void()> reopen;  // close + recover; null if unsupported
};

enum class SystemKind {
  kRocksLite,
  kLevelLite,
  kPebblesLite,
  kRocksLiteSync,
  kWtLite,
  kKvell,
  kP2kvsRocks,
  kP2kvsWt,
};

struct ModelCase {
  const char* name;
  SystemKind kind;
};

class ModelTest : public ::testing::TestWithParam<ModelCase> {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    OpenTarget();
  }

  Options LsmOptions() {
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 32 * 1024;  // force frequent flushes
    options.target_file_size = 16 * 1024;
    options.max_bytes_for_level_base = 64 * 1024;
    return options;
  }

  void OpenTarget() {
    const SystemKind kind = GetParam().kind;
    switch (kind) {
      case SystemKind::kRocksLite:
      case SystemKind::kLevelLite:
      case SystemKind::kPebblesLite:
      case SystemKind::kRocksLiteSync: {
        Options options = LsmOptions();
        if (kind == SystemKind::kLevelLite) {
          options.compat_mode = CompatMode::kLevelDB;
        } else if (kind == SystemKind::kPebblesLite) {
          options.compat_mode = CompatMode::kLevelDB;
          options.compaction_style = CompactionStyle::kTiered;
        }
        WriteOptions wo;
        wo.sync = (kind == SystemKind::kRocksLiteSync);
        ASSERT_TRUE(DB::Open(options, "/model", &db_).ok());
        target_.put = [this, wo](const std::string& k, const std::string& v) {
          return db_->Put(wo, k, v);
        };
        target_.del = [this, wo](const std::string& k) { return db_->Delete(wo, k); };
        target_.get = [this](const std::string& k, std::string* v) {
          return db_->Get(ReadOptions(), k, v);
        };
        target_.scan = [this](const std::string& begin, size_t n, auto* out) {
          out->clear();
          std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
          for (iter->Seek(begin); iter->Valid() && out->size() < n; iter->Next()) {
            out->emplace_back(iter->key().ToString(), iter->value().ToString());
          }
          return iter->status();
        };
        target_.reopen = [this, options] {
          db_.reset();
          ASSERT_TRUE(DB::Open(options, "/model", &db_).ok());
        };
        break;
      }
      case SystemKind::kWtLite: {
        BTreeOptions options;
        options.env = env_.get();
        options.buffer_pool_pages = 32;
        ASSERT_TRUE(BTreeStore::Open(options, "/model", &bt_).ok());
        target_.put = [this](const std::string& k, const std::string& v) {
          return bt_->Put(k, v);
        };
        target_.del = [this](const std::string& k) { return bt_->Delete(k); };
        target_.get = [this](const std::string& k, std::string* v) { return bt_->Get(k, v); };
        target_.scan = [this](const std::string& begin, size_t n, auto* out) {
          out->clear();
          std::unique_ptr<Iterator> iter(bt_->NewIterator());
          for (iter->Seek(begin); iter->Valid() && out->size() < n; iter->Next()) {
            out->emplace_back(iter->key().ToString(), iter->value().ToString());
          }
          return Status::OK();
        };
        target_.reopen = [this, options] {
          bt_.reset();
          ASSERT_TRUE(BTreeStore::Open(options, "/model", &bt_).ok());
        };
        break;
      }
      case SystemKind::kKvell: {
        KvellOptions options;
        options.env = env_.get();
        options.num_workers = 2;
        options.pin_workers = false;
        ASSERT_TRUE(KvellStore::Open(options, "/model", &kvell_).ok());
        target_.put = [this](const std::string& k, const std::string& v) {
          return kvell_->Put(k, v);
        };
        target_.del = [this](const std::string& k) { return kvell_->Delete(k); };
        target_.get = [this](const std::string& k, std::string* v) {
          return kvell_->Get(k, v);
        };
        target_.scan = [this](const std::string& begin, size_t n, auto* out) {
          return kvell_->Scan(begin, n, out);
        };
        target_.reopen = [this, options] {
          kvell_.reset();
          ASSERT_TRUE(KvellStore::Open(options, "/model", &kvell_).ok());
        };
        break;
      }
      case SystemKind::kP2kvsRocks:
      case SystemKind::kP2kvsWt: {
        P2kvsOptions options;
        options.env = env_.get();
        options.num_workers = 3;  // odd count: uneven partitions
        options.pin_workers = false;
        if (kind == SystemKind::kP2kvsRocks) {
          options.engine_factory = MakeRocksLiteFactory(LsmOptions());
        } else {
          BTreeOptions bt;
          bt.env = env_.get();
          bt.buffer_pool_pages = 32;
          options.engine_factory = MakeWTLiteFactory(bt);
        }
        ASSERT_TRUE(P2KVS::Open(options, "/model", &p2_).ok());
        target_.put = [this](const std::string& k, const std::string& v) {
          return p2_->Put(k, v);
        };
        target_.del = [this](const std::string& k) { return p2_->Delete(k); };
        target_.get = [this](const std::string& k, std::string* v) { return p2_->Get(k, v); };
        target_.scan = [this](const std::string& begin, size_t n, auto* out) {
          return p2_->Scan(begin, n, out);
        };
        target_.reopen = [this, options] {
          p2_.reset();
          ASSERT_TRUE(P2KVS::Open(options, "/model", &p2_).ok());
        };
        break;
      }
    }
  }

  void CheckAgainstModel(const std::map<std::string, std::string>& model) {
    // Point lookups for every key the model knows plus some absent keys.
    std::string value;
    for (const auto& [k, v] : model) {
      Status s = target_.get(k, &value);
      ASSERT_TRUE(s.ok()) << "key " << k << ": " << s.ToString();
      ASSERT_EQ(v, value) << "key " << k;
    }
    for (const char* absent : {"", "zzzz-absent", "a-absent"}) {
      if (model.count(absent) == 0) {
        Status s = target_.get(absent, &value);
        ASSERT_TRUE(s.IsNotFound()) << absent;
      }
    }
    // Full ordered scan must equal the model's contents.
    std::vector<std::pair<std::string, std::string>> scanned;
    ASSERT_TRUE(target_.scan("", model.size() + 10, &scanned).ok());
    ASSERT_EQ(model.size(), scanned.size());
    auto it = model.begin();
    for (size_t i = 0; i < scanned.size(); i++, ++it) {
      ASSERT_EQ(it->first, scanned[i].first) << i;
      ASSERT_EQ(it->second, scanned[i].second) << i;
    }
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<BTreeStore> bt_;
  std::unique_ptr<KvellStore> kvell_;
  std::unique_ptr<P2KVS> p2_;
  ModelTarget target_;
};

TEST_P(ModelTest, RandomOpsMatchReferenceModel) {
  Random rnd(::testing::UnitTest::GetInstance()->random_seed() + 301);
  std::map<std::string, std::string> model;
  constexpr int kOps = 4000;
  constexpr int kKeySpace = 400;

  for (int i = 0; i < kOps; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06u", rnd.Uniform(kKeySpace));
    int action = rnd.Uniform(10);
    if (action < 6) {
      std::string value = "v" + std::to_string(i) + std::string(rnd.Uniform(150), 'x');
      ASSERT_TRUE(target_.put(key, value).ok());
      model[key] = value;
    } else if (action < 8) {
      ASSERT_TRUE(target_.del(key).ok());
      model.erase(key);
    } else {
      std::string value;
      Status s = target_.get(key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound()) << key;
      } else {
        ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
        ASSERT_EQ(it->second, value);
      }
    }

    if (i == kOps / 3 || i == 2 * kOps / 3) {
      CheckAgainstModel(model);
      if (target_.reopen) {
        target_.reopen();
        CheckAgainstModel(model);
      }
    }
  }
  CheckAgainstModel(model);
}

TEST_P(ModelTest, PrefixScansMatchModel) {
  Random rnd(77);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; i++) {
    char key[32];
    snprintf(key, sizeof(key), "p%c-%04u", 'a' + static_cast<char>(rnd.Uniform(4)),
             rnd.Uniform(1000));
    model[key] = std::to_string(i);
    ASSERT_TRUE(target_.put(key, model[key]).ok());
  }
  // Scans from random positions must match the model's ordered view.
  for (int trial = 0; trial < 20; trial++) {
    char begin[32];
    snprintf(begin, sizeof(begin), "p%c-%04u", 'a' + static_cast<char>(rnd.Uniform(5)),
             rnd.Uniform(1000));
    size_t n = 1 + rnd.Uniform(30);
    std::vector<std::pair<std::string, std::string>> scanned;
    ASSERT_TRUE(target_.scan(begin, n, &scanned).ok());
    auto it = model.lower_bound(begin);
    size_t expect = 0;
    for (; it != model.end() && expect < n; ++it, ++expect) {
      ASSERT_LT(expect, scanned.size()) << "scan from " << begin << " too short";
      ASSERT_EQ(it->first, scanned[expect].first);
      ASSERT_EQ(it->second, scanned[expect].second);
    }
    ASSERT_EQ(expect, scanned.size()) << "scan from " << begin << " too long";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Systems, ModelTest,
    ::testing::Values(ModelCase{"rockslite", SystemKind::kRocksLite},
                      ModelCase{"levellite", SystemKind::kLevelLite},
                      ModelCase{"pebbleslite", SystemKind::kPebblesLite},
                      ModelCase{"rockslite_sync", SystemKind::kRocksLiteSync},
                      ModelCase{"wtlite", SystemKind::kWtLite},
                      ModelCase{"kvell", SystemKind::kKvell},
                      ModelCase{"p2kvs_rocks", SystemKind::kP2kvsRocks},
                      ModelCase{"p2kvs_wt", SystemKind::kP2kvsWt}),
    [](const ::testing::TestParamInfo<ModelCase>& info) { return info.param.name; });

}  // namespace
}  // namespace p2kvs
