// SST layer tests: block builder/reader, bloom filters, filter blocks, LRU
// cache, and whole-table build/read round trips.

#include <gtest/gtest.h>

#include <map>

#include "src/io/mem_env.h"
#include "src/sst/block.h"
#include "src/sst/block_builder.h"
#include "src/sst/cache.h"
#include "src/sst/filter_block.h"
#include "src/sst/table.h"
#include "src/sst/table_builder.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

// --- Block ---

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder(BytewiseComparator(), 4);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 100; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    std::string value = "value" + std::to_string(i);
    model[key] = value;
    builder.Add(key, value);
  }
  Slice raw = builder.Finish();
  std::string owned = raw.ToString();

  BlockContents contents;
  contents.data = owned;
  contents.cachable = false;
  contents.heap_allocated = false;
  Block block(contents);
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));

  iter->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(k, iter->key().ToString());
    EXPECT_EQ(v, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());

  // Seek to each key and to a key between keys.
  iter->Seek("key0042");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0042", iter->key().ToString());
  iter->Seek("key0042x");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0043", iter->key().ToString());
  iter->Seek("zzz");
  EXPECT_FALSE(iter->Valid());

  // Backward from the end.
  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0099", iter->key().ToString());
  iter->Prev();
  EXPECT_EQ("key0098", iter->key().ToString());
}

TEST(BlockTest, PrefixCompressionRestarts) {
  // Shared prefixes compress; restart interval 16 must still seek correctly.
  BlockBuilder builder(BytewiseComparator(), 16);
  for (int i = 0; i < 1000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "commonprefix%06d", i);
    builder.Add(key, "v");
  }
  std::string owned = builder.Finish().ToString();
  BlockContents contents{Slice(owned), false, false};
  Block block(contents);
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
  iter->Seek("commonprefix000500");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("commonprefix000500", iter->key().ToString());
}

TEST(BlockTest, EmptyBlock) {
  BlockBuilder builder(BytewiseComparator(), 16);
  std::string owned = builder.Finish().ToString();
  BlockContents contents{Slice(owned), false, false};
  Block block(contents);
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

// --- Bloom filter ---

TEST(BloomTest, EmptyFilter) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::string filter;
  policy->CreateFilter(nullptr, 0, &filter);
  EXPECT_FALSE(policy->KeyMayMatch("hello", filter));
}

TEST(BloomTest, SmallFilter) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::vector<Slice> keys = {"hello", "world"};
  std::string filter;
  policy->CreateFilter(keys.data(), 2, &filter);
  EXPECT_TRUE(policy->KeyMayMatch("hello", filter));
  EXPECT_TRUE(policy->KeyMayMatch("world", filter));
  EXPECT_FALSE(policy->KeyMayMatch("x", filter));
  EXPECT_FALSE(policy->KeyMayMatch("foo", filter));
}

TEST(BloomTest, FalsePositiveRateIsReasonable) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  // Insert 10k keys; probe 10k absent keys; expect ~1% FP at 10 bits/key.
  std::vector<std::string> key_storage;
  std::vector<Slice> keys;
  for (int i = 0; i < 10000; i++) {
    key_storage.push_back("present" + std::to_string(i));
  }
  for (const auto& k : key_storage) {
    keys.push_back(k);
  }
  std::string filter;
  policy->CreateFilter(keys.data(), static_cast<int>(keys.size()), &filter);

  for (const auto& k : key_storage) {
    ASSERT_TRUE(policy->KeyMayMatch(k, filter));
  }
  int false_positives = 0;
  for (int i = 0; i < 10000; i++) {
    if (policy->KeyMayMatch("absent" + std::to_string(i), filter)) {
      false_positives++;
    }
  }
  EXPECT_LT(false_positives, 300);  // < 3%
}

TEST(FilterBlockTest, SingleChunk) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  FilterBlockBuilder builder(policy.get());
  builder.StartBlock(100);
  builder.AddKey("foo");
  builder.AddKey("bar");
  builder.AddKey("box");
  builder.StartBlock(200);
  builder.AddKey("box");
  builder.StartBlock(300);
  builder.AddKey("hello");
  Slice block = builder.Finish();
  FilterBlockReader reader(policy.get(), block);
  EXPECT_TRUE(reader.KeyMayMatch(100, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "bar"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "box"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "hello"));  // same 2KB chunk
  EXPECT_FALSE(reader.KeyMayMatch(100, "missing"));
  EXPECT_FALSE(reader.KeyMayMatch(100, "other"));
}

// --- LRU cache ---

struct CacheTestState {
  std::vector<std::pair<int, int>> deleted;
};

static CacheTestState* g_cache_state = nullptr;

static void TestDeleter(const Slice& key, void* value) {
  g_cache_state->deleted.emplace_back(std::stoi(key.ToString()),
                                      static_cast<int>(reinterpret_cast<intptr_t>(value)));
}

class CacheTest : public ::testing::Test {
 protected:
  static constexpr int kCacheSize = 1000;

  CacheTest() : cache_(NewLRUCache(kCacheSize)) {
    state_.deleted.clear();
    g_cache_state = &state_;
  }

  ~CacheTest() override {
    // Destroy the cache (running the deleters) while state_ is still alive.
    cache_.reset();
    g_cache_state = nullptr;
  }

  int Lookup(int key) {
    std::string k = std::to_string(key);
    Cache::Handle* handle = cache_->Lookup(k);
    int r = -1;
    if (handle != nullptr) {
      r = static_cast<int>(reinterpret_cast<intptr_t>(cache_->Value(handle)));
      cache_->Release(handle);
    }
    return r;
  }

  void Insert(int key, int value, int charge = 1) {
    std::string k = std::to_string(key);
    cache_->Release(
        cache_->Insert(k, reinterpret_cast<void*>(static_cast<intptr_t>(value)), charge,
                       &TestDeleter));
  }

  void Erase(int key) { cache_->Erase(std::to_string(key)); }

  CacheTestState state_;
  std::unique_ptr<Cache> cache_;
};

TEST_F(CacheTest, HitAndMiss) {
  EXPECT_EQ(-1, Lookup(100));
  Insert(100, 101);
  EXPECT_EQ(101, Lookup(100));
  EXPECT_EQ(-1, Lookup(200));
  Insert(200, 201);
  EXPECT_EQ(101, Lookup(100));
  EXPECT_EQ(201, Lookup(200));

  Insert(100, 102);  // overwrite
  EXPECT_EQ(102, Lookup(100));
  ASSERT_EQ(1u, state_.deleted.size());
  EXPECT_EQ(100, state_.deleted[0].first);
  EXPECT_EQ(101, state_.deleted[0].second);
}

TEST_F(CacheTest, EraseCallsDeleter) {
  Erase(200);  // erasing absent key is fine
  EXPECT_EQ(0u, state_.deleted.size());

  Insert(100, 101);
  Erase(100);
  EXPECT_EQ(-1, Lookup(100));
  ASSERT_EQ(1u, state_.deleted.size());
}

TEST_F(CacheTest, PinnedEntriesSurviveErase) {
  Cache::Handle* h = cache_->Insert("0", reinterpret_cast<void*>(static_cast<intptr_t>(42)), 1,
                                    &TestDeleter);
  cache_->Erase("0");
  EXPECT_EQ(0u, state_.deleted.size());  // still referenced
  cache_->Release(h);
  EXPECT_EQ(1u, state_.deleted.size());
}

TEST_F(CacheTest, EvictsLeastRecentlyUsed) {
  // Fill far beyond capacity; early entries should be evicted.
  for (int i = 0; i < kCacheSize + 200; i++) {
    Insert(i, i * 10);
  }
  EXPECT_EQ(-1, Lookup(0));
  EXPECT_EQ((kCacheSize + 199) * 10, Lookup(kCacheSize + 199));
}

TEST_F(CacheTest, NewIdIsUnique) {
  uint64_t a = cache_->NewId();
  uint64_t b = cache_->NewId();
  EXPECT_NE(a, b);
}

// --- Table ---

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    sst_options_.comparator = BytewiseComparator();
    sst_options_.block_size = 1024;
  }

  void BuildTableFile(const std::map<std::string, std::string>& model) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/table.sst", &file).ok());
    TableBuilder builder(sst_options_, file.get());
    for (const auto& [k, v] : model) {
      builder.Add(k, v);
    }
    ASSERT_TRUE(builder.Finish().ok());
    file_size_ = builder.FileSize();
    ASSERT_TRUE(file->Close().ok());
  }

  void OpenTable(std::unique_ptr<Table>* table) {
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env_->NewRandomAccessFile("/table.sst", &file).ok());
    ASSERT_TRUE(Table::Open(sst_options_, std::move(file), file_size_, table).ok());
  }

  std::unique_ptr<Env> env_;
  SstOptions sst_options_;
  uint64_t file_size_ = 0;
};

TEST_F(TableTest, BuildAndIterateRoundTrip) {
  std::map<std::string, std::string> model;
  Random rnd(17);
  for (int i = 0; i < 3000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    model[key] = std::string(rnd.Uniform(200), 'v');
  }
  BuildTableFile(model);

  std::unique_ptr<Table> table;
  OpenTable(&table);
  std::unique_ptr<Iterator> iter(table->NewIterator());
  iter->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(k, iter->key().ToString());
    EXPECT_EQ(v, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST_F(TableTest, SeekAcrossBlocks) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    model[key] = std::string(64, 'x');
  }
  BuildTableFile(model);
  std::unique_ptr<Table> table;
  OpenTable(&table);
  std::unique_ptr<Iterator> iter(table->NewIterator());
  for (int i = 0; i < 3000; i += 123) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    iter->Seek(key);
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, iter->key().ToString());
  }
}

TEST_F(TableTest, InternalGetFindsEntries) {
  std::map<std::string, std::string> model = {{"alpha", "1"}, {"beta", "2"}, {"gamma", "3"}};
  BuildTableFile(model);
  std::unique_ptr<Table> table;
  OpenTable(&table);

  std::string found_key, found_value;
  ASSERT_TRUE(table
                  ->InternalGet("beta",
                                [&](const Slice& k, const Slice& v) {
                                  found_key = k.ToString();
                                  found_value = v.ToString();
                                })
                  .ok());
  EXPECT_EQ("beta", found_key);
  EXPECT_EQ("2", found_value);
}

TEST_F(TableTest, BlockCacheServesRepeatReads) {
  auto cache = NewLRUCache(1 << 20);
  sst_options_.block_cache = cache.get();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; i++) {
    model["key" + std::to_string(i)] = std::string(64, 'c');
  }
  BuildTableFile(model);
  std::unique_ptr<Table> table;
  OpenTable(&table);
  for (int pass = 0; pass < 2; pass++) {
    std::unique_ptr<Iterator> iter(table->NewIterator());
    iter->SeekToFirst();
    int n = 0;
    while (iter->Valid()) {
      n++;
      iter->Next();
    }
    EXPECT_EQ(2000, n);
  }
  EXPECT_GT(cache->TotalCharge(), 0u);
}

TEST_F(TableTest, CorruptFooterIsRejected) {
  std::map<std::string, std::string> model = {{"a", "1"}};
  BuildTableFile(model);
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/table.sst", &contents).ok());
  contents[contents.size() - 1] ^= 0xff;  // clobber magic
  ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/table.sst", false).ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile("/table.sst", &file).ok());
  std::unique_ptr<Table> table;
  Status s = Table::Open(sst_options_, std::move(file), file_size_, &table);
  EXPECT_TRUE(s.IsCorruption());
}

TEST_F(TableTest, ApproximateOffsetsAreMonotonic) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    model[key] = std::string(256, 'o');
  }
  BuildTableFile(model);
  std::unique_ptr<Table> table;
  OpenTable(&table);
  uint64_t off_lo = table->ApproximateOffsetOf("key000100");
  uint64_t off_hi = table->ApproximateOffsetOf("key000900");
  EXPECT_LE(off_lo, off_hi);
  EXPECT_GT(off_hi, 0u);
}

}  // namespace
}  // namespace p2kvs
