// Read-committed transaction isolation tests (paper §4.5's snapshot sketch):
// while a cross-instance WriteTxn is partially applied, reads must not
// observe its uncommitted effects when txn_read_committed is enabled — and
// do observe them (dirty read) when it is disabled, which is the prototype's
// documented default behaviour.

#include <gtest/gtest.h>

#include <thread>

#include "src/core/p2kvs.h"
#include "src/io/mem_env.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {
namespace {

// A one-shot gate: the engine thread announces arrival and then blocks until
// the test opens the gate.
struct Gate {
  Mutex mu;
  CondVar cv{&mu};
  bool arrived GUARDED_BY(mu) = false;
  bool open GUARDED_BY(mu) = false;

  void ArriveAndWait() {
    MutexLock lock(&mu);
    arrived = true;
    cv.SignalAll();
    while (!open) {
      cv.Wait();
    }
  }

  void WaitForArrival() {
    MutexLock lock(&mu);
    while (!arrived) {
      cv.Wait();
    }
  }

  void Open() {
    MutexLock lock(&mu);
    open = true;
    cv.SignalAll();
  }
};

// Engine decorator that blocks GSN-tagged writes on a gate.
class GatedEngine final : public KVStore {
 public:
  GatedEngine(std::unique_ptr<KVStore> inner, std::shared_ptr<Gate> gate)
      : inner_(std::move(inner)), gate_(std::move(gate)) {}

  EngineCaps caps() const override { return inner_->caps(); }
  Status Put(const Slice& k, const Slice& v, const KvWriteOptions& o) override {
    return inner_->Put(k, v, o);
  }
  Status Delete(const Slice& k, const KvWriteOptions& o) override {
    return inner_->Delete(k, o);
  }
  Status Write(WriteBatch* batch, const KvWriteOptions& options) override {
    if (options.gsn != 0 && gate_ != nullptr) {
      gate_->ArriveAndWait();
    }
    return inner_->Write(batch, options);
  }
  Status Get(const Slice& k, std::string* v) override { return inner_->Get(k, v); }
  std::vector<Status> MultiGet(const std::vector<Slice>& keys,
                               std::vector<std::string>* values) override {
    return inner_->MultiGet(keys, values);
  }
  Iterator* NewIterator() override { return inner_->NewIterator(); }
  const Snapshot* GetSnapshot() override { return inner_->GetSnapshot(); }
  void ReleaseSnapshot(const Snapshot* s) override { inner_->ReleaseSnapshot(s); }
  Status GetAtSnapshot(const Slice& k, std::string* v, const Snapshot* s) override {
    return inner_->GetAtSnapshot(k, v, s);
  }
  Status Flush() override { return inner_->Flush(); }
  void WaitIdle() override { inner_->WaitIdle(); }

 private:
  std::unique_ptr<KVStore> inner_;
  std::shared_ptr<Gate> gate_;
};

class ReadCommittedTest : public ::testing::Test {
 protected:
  void Open(bool read_committed) {
    env_ = NewMemEnv();
    gate_ = std::make_shared<Gate>();

    Options lsm;
    lsm.env = env_.get();
    EngineFactory base = MakeRocksLiteFactory(lsm);
    // Gate instance 1 only; instance 0 applies its sub-batch immediately.
    std::shared_ptr<Gate> gate = gate_;
    int counter = 0;
    auto counter_holder = std::make_shared<int>(0);
    EngineFactory gated = [base, gate, counter_holder](
                              const std::string& path,
                              std::function<bool(uint64_t)> filter,
                              std::unique_ptr<KVStore>* out) -> Status {
      std::unique_ptr<KVStore> inner;
      Status s = base(path, std::move(filter), &inner);
      if (!s.ok()) {
        return s;
      }
      int index = (*counter_holder)++;
      *out = std::make_unique<GatedEngine>(std::move(inner),
                                           index == 1 ? gate : nullptr);
      return Status::OK();
    };
    (void)counter;

    P2kvsOptions options;
    options.env = env_.get();
    options.num_workers = 2;
    options.pin_workers = false;
    options.engine_factory = gated;
    options.txn_read_committed = read_committed;
    ASSERT_TRUE(P2KVS::Open(options, "/rc", &store_).ok());

    // Pick keys on distinct workers: key_w0_ on worker 0, key_w1_ on 1.
    for (int i = 0; key_w0_.empty() || key_w1_.empty(); i++) {
      std::string key = "key-" + std::to_string(i);
      if (store_->PartitionOf(key) == 0 && key_w0_.empty()) {
        key_w0_ = key;
      } else if (store_->PartitionOf(key) == 1 && key_w1_.empty()) {
        key_w1_ = key;
      }
      ASSERT_LT(i, 1000);
    }
  }

  // Runs the torn-transaction scenario; returns the value of key_w0_
  // observed while the transaction was stalled on worker 1.
  std::string ObserveDuringTxn() {
    EXPECT_TRUE(store_->Put(key_w0_, "old").ok());
    EXPECT_TRUE(store_->Put(key_w1_, "old").ok());

    std::thread txn_thread([this] {
      WriteBatch txn;
      txn.Put(key_w0_, "new");
      txn.Put(key_w1_, "new");
      txn_status_ = store_->WriteTxn(&txn);
    });

    // Wait until worker 1 is stalled inside its gated sub-batch write.
    gate_->WaitForArrival();
    // Ensure worker 0 has fully applied its sub-batch: a later write to the
    // same worker completes only after it (FIFO queue). The marker key must
    // route to worker 0 — worker 1 is blocked.
    std::string marker;
    for (int i = 0; marker.empty(); i++) {
      std::string candidate = "marker-" + std::to_string(i);
      if (store_->PartitionOf(candidate) == 0) {
        marker = candidate;
      }
    }
    EXPECT_TRUE(store_->Put(marker, "x").ok());

    std::string observed;
    EXPECT_TRUE(store_->Get(key_w0_, &observed).ok());

    gate_->Open();
    txn_thread.join();
    EXPECT_TRUE(txn_status_.ok());
    return observed;
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<Gate> gate_;
  std::unique_ptr<P2KVS> store_;
  std::string key_w0_;
  std::string key_w1_;
  Status txn_status_;
};

TEST_F(ReadCommittedTest, UncommittedWritesAreInvisible) {
  Open(/*read_committed=*/true);
  EXPECT_EQ("old", ObserveDuringTxn());
  // After commit, the transaction's effects are visible everywhere.
  std::string value;
  ASSERT_TRUE(store_->Get(key_w0_, &value).ok());
  EXPECT_EQ("new", value);
  ASSERT_TRUE(store_->Get(key_w1_, &value).ok());
  EXPECT_EQ("new", value);
}

TEST_F(ReadCommittedTest, DefaultModeAllowsDirtyReads) {
  Open(/*read_committed=*/false);
  // Without isolation the partially-applied transaction is visible (the
  // paper's base prototype behaviour).
  EXPECT_EQ("new", ObserveDuringTxn());
}

TEST_F(ReadCommittedTest, SequentialTxnsStayVisible) {
  Open(/*read_committed=*/true);
  gate_->Open();  // no stalling for this test
  for (int i = 0; i < 20; i++) {
    WriteBatch txn;
    txn.Put(key_w0_, "gen" + std::to_string(i));
    txn.Put(key_w1_, "gen" + std::to_string(i));
    ASSERT_TRUE(store_->WriteTxn(&txn).ok());
    std::string a, b;
    ASSERT_TRUE(store_->Get(key_w0_, &a).ok());
    ASSERT_TRUE(store_->Get(key_w1_, &b).ok());
    EXPECT_EQ("gen" + std::to_string(i), a);
    EXPECT_EQ(a, b);
  }
}

TEST_F(ReadCommittedTest, NonTxnWritesUnaffectedByIsolation) {
  Open(/*read_committed=*/true);
  gate_->Open();
  ASSERT_TRUE(store_->Put("plain", "v1").ok());
  std::string value;
  ASSERT_TRUE(store_->Get("plain", &value).ok());
  EXPECT_EQ("v1", value);
}

}  // namespace
}  // namespace p2kvs
