// Unit tests for the util module: coding, CRC32C, hashing, slices, status,
// arena, histogram, rate limiter, MPSC queues (locked and lock-free).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/util/arena.h"
#include "src/util/clock.h"
#include "src/util/coding.h"
#include "src/util/comparator.h"
#include "src/util/crc32c.h"
#include "src/util/hash.h"
#include "src/util/histogram.h"
#include "src/util/intrusive_mpsc_queue.h"
#include "src/util/mpsc_queue.h"
#include "src/util/random.h"
#include "src/util/rate_limiter.h"
#include "src/util/status.h"

namespace p2kvs {
namespace {

TEST(Coding, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v = 0; v < 100000; v += 7777) {
    PutFixed32(&s, v);
  }
  const char* p = s.data();
  for (uint32_t v = 0; v < 100000; v += 7777) {
    EXPECT_EQ(v, DecodeFixed32(p));
    p += 4;
  }
}

TEST(Coding, Fixed64RoundTrip) {
  std::string s;
  for (int power = 0; power <= 63; power++) {
    uint64_t v = 1ull << power;
    PutFixed64(&s, v - 1);
    PutFixed64(&s, v);
    PutFixed64(&s, v + 1);
  }
  const char* p = s.data();
  for (int power = 0; power <= 63; power++) {
    uint64_t v = 1ull << power;
    EXPECT_EQ(v - 1, DecodeFixed64(p));
    p += 8;
    EXPECT_EQ(v, DecodeFixed64(p));
    p += 8;
    EXPECT_EQ(v + 1, DecodeFixed64(p));
    p += 8;
  }
}

TEST(Coding, Varint32RoundTrip) {
  std::string s;
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t v = (i / 32) << (i % 32);
    PutVarint32(&s, v);
  }
  const char* p = s.data();
  const char* limit = p + s.size();
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t expected = (i / 32) << (i % 32);
    uint32_t actual;
    p = GetVarint32Ptr(p, limit, &actual);
    ASSERT_NE(nullptr, p);
    EXPECT_EQ(expected, actual);
  }
  EXPECT_EQ(p, limit);
}

TEST(Coding, Varint64RoundTrip) {
  std::vector<uint64_t> values = {0, 100, ~0ull, ~0ull - 1};
  for (uint32_t k = 0; k < 64; k++) {
    const uint64_t power = 1ull << k;
    values.push_back(power - 1);
    values.push_back(power);
    values.push_back(power + 1);
  }
  std::string s;
  for (uint64_t v : values) {
    PutVarint64(&s, v);
  }
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t actual;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(Coding, Varint32Truncation) {
  uint32_t large_value = (1u << 31) + 100;
  std::string s;
  PutVarint32(&s, large_value);
  uint32_t result;
  for (size_t len = 0; len + 1 < s.size(); len++) {
    EXPECT_EQ(nullptr, GetVarint32Ptr(s.data(), s.data() + len, &result));
  }
  EXPECT_NE(nullptr, GetVarint32Ptr(s.data(), s.data() + s.size(), &result));
  EXPECT_EQ(large_value, result);
}

TEST(Coding, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("foo"));
  PutLengthPrefixedSlice(&s, Slice(std::string(1000, 'x')));
  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("foo", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(std::string(1000, 'x'), v.ToString());
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

TEST(Coding, VarintLength) {
  EXPECT_EQ(1, VarintLength(0));
  EXPECT_EQ(1, VarintLength(127));
  EXPECT_EQ(2, VarintLength(128));
  EXPECT_EQ(5, VarintLength(0xffffffffull));
  EXPECT_EQ(10, VarintLength(~0ull));
}

TEST(Crc32c, KnownValues) {
  // From the CRC32C spec / leveldb tests: 32 zero bytes.
  char buf[32];
  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aau, crc32c::Value(buf, sizeof(buf)));
  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43u, crc32c::Value(buf, sizeof(buf)));
  for (int i = 0; i < 32; i++) {
    buf[i] = static_cast<char>(i);
  }
  EXPECT_EQ(0x46dd794eu, crc32c::Value(buf, sizeof(buf)));
}

TEST(Crc32c, Extend) {
  std::string data = "hello world";
  uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t split = crc32c::Extend(crc32c::Value(data.data(), 5), data.data() + 5, data.size() - 5);
  EXPECT_EQ(whole, split);
}

TEST(Crc32c, MaskRoundTrip) {
  uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_NE(crc, crc32c::Mask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

TEST(Hash, StableAcrossCalls) {
  EXPECT_EQ(Hash("abc", 3, 1), Hash("abc", 3, 1));
  EXPECT_NE(Hash("abc", 3, 1), Hash("abd", 3, 1));
  EXPECT_NE(Hash("abc", 3, 1), Hash("abc", 3, 2));
}

TEST(Hash, DistributesPartitions) {
  // The p2KVS partitioner must spread sequential keys evenly.
  constexpr int kWorkers = 8;
  constexpr int kKeys = 80000;
  int counts[kWorkers] = {0};
  for (int i = 0; i < kKeys; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%012d", i);
    counts[Hash(key, strlen(key), 0x70324b56u) % kWorkers]++;
  }
  for (int w = 0; w < kWorkers; w++) {
    EXPECT_GT(counts[w], kKeys / kWorkers / 2) << "worker " << w;
    EXPECT_LT(counts[w], kKeys / kWorkers * 2) << "worker " << w;
  }
}

TEST(SliceTest, Basics) {
  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_TRUE(s.starts_with("he"));
  EXPECT_FALSE(s.starts_with("x"));
  s.remove_prefix(2);
  EXPECT_EQ("llo", s.ToString());
  EXPECT_TRUE(Slice("a") < Slice("b"));
  EXPECT_TRUE(Slice("a") < Slice("aa"));
  EXPECT_TRUE(Slice("ab") == Slice("ab"));
}

TEST(StatusTest, Codes) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ("OK", Status::OK().ToString());
  Status nf = Status::NotFound("key", "detail");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_FALSE(nf.ok());
  EXPECT_EQ("NotFound: key: detail", nf.ToString());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
}

TEST(StatusTest, CopyPreservesMessage) {
  Status a = Status::IOError("disk on fire");
  Status b = a;
  Status c;
  c = b;
  EXPECT_EQ(a.ToString(), c.ToString());
}

TEST(ArenaTest, Basics) {
  Arena arena;
  char* p = arena.Allocate(100);
  ASSERT_NE(nullptr, p);
  memset(p, 0xab, 100);
  char* q = arena.AllocateAligned(64);
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(q) % 8);
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(ArenaTest, ManyRandomAllocations) {
  Random rnd(301);
  Arena arena;
  std::vector<std::pair<size_t, char*>> allocated;
  size_t bytes = 0;
  for (int i = 0; i < 10000; i++) {
    size_t s = rnd.OneIn(10) ? rnd.Uniform(6000) + 1 : rnd.Uniform(100) + 1;
    char* r = rnd.OneIn(2) ? arena.AllocateAligned(s) : arena.Allocate(s);
    // Tag each block so overlapping allocations would be detected.
    for (size_t b = 0; b < s; b++) {
      r[b] = static_cast<char>(i % 256);
    }
    bytes += s;
    allocated.push_back(std::make_pair(s, r));
    ASSERT_GE(arena.MemoryUsage(), bytes);
  }
  for (size_t i = 0; i < allocated.size(); i++) {
    size_t num_bytes = allocated[i].first;
    const char* p = allocated[i].second;
    for (size_t b = 0; b < num_bytes; b++) {
      EXPECT_EQ(static_cast<int>(i % 256), static_cast<int>(p[b]) & 0xff);
    }
  }
}

TEST(HistogramTest, PercentilesAndMerge) {
  Histogram h;
  for (int i = 1; i <= 1000; i++) {
    h.Add(i);
  }
  EXPECT_EQ(1000u, h.Count());
  EXPECT_NEAR(500.5, h.Average(), 1.0);
  EXPECT_NEAR(500, h.Percentile(50), 60);
  EXPECT_NEAR(990, h.Percentile(99), 100);
  EXPECT_EQ(1000, h.Max());
  EXPECT_EQ(1, h.Min());

  Histogram h2;
  for (int i = 1001; i <= 2000; i++) {
    h2.Add(i);
  }
  h.Merge(h2);
  EXPECT_EQ(2000u, h.Count());
  EXPECT_NEAR(1000, h.Percentile(50), 130);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0, h.Average());
  EXPECT_EQ(0, h.Percentile(99));
}

TEST(RateLimiterTest, EnforcesRate) {
  // 1 MB/s; ask for 200 KB => should take >= ~150ms (allowing burst).
  RateLimiter limiter(1 << 20);
  uint64_t start = NowMicros();
  limiter.Request(200 * 1024);
  uint64_t elapsed = NowMicros() - start;
  EXPECT_GE(elapsed, 100 * 1000u);
}

TEST(RateLimiterTest, DisabledIsFree) {
  RateLimiter limiter(0);
  uint64_t start = NowMicros();
  limiter.Request(100 << 20);
  EXPECT_LT(NowMicros() - start, 50 * 1000u);
}

TEST(MpscQueueTest, FifoSingleThread) {
  MpscQueue<int> q;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(q.Push(i));
  }
  for (int i = 0; i < 10; i++) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(i, *v);
  }
}

TEST(MpscQueueTest, TryPopIf) {
  MpscQueue<int> q;
  ASSERT_TRUE(q.Push(2));
  ASSERT_TRUE(q.Push(4));
  ASSERT_TRUE(q.Push(5));
  auto even = [](int v) { return v % 2 == 0; };
  EXPECT_EQ(2, *q.TryPopIf(even));
  EXPECT_EQ(4, *q.TryPopIf(even));
  EXPECT_FALSE(q.TryPopIf(even).has_value());  // front is 5
  EXPECT_EQ(5, *q.Pop());
  EXPECT_FALSE(q.TryPopIf(even).has_value());  // empty
}

TEST(MpscQueueTest, CloseDrainsAndStopsPush) {
  MpscQueue<int> q;
  ASSERT_TRUE(q.Push(1));
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(1, *q.Pop());
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpscQueueTest, ManyProducersOneConsumer) {
  MpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; t++) {
    producers.emplace_back([&q, t] {
      for (int i = 0; i < kPerProducer; i++) {
        ASSERT_TRUE(q.Push(t * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  std::thread consumer([&q, &seen] {
    for (int i = 0; i < kProducers * kPerProducer; i++) {
      auto v = q.Pop();
      ASSERT_TRUE(v.has_value());
      seen.push_back(*v);
    }
  });
  for (auto& t : producers) {
    t.join();
  }
  consumer.join();
  EXPECT_EQ(static_cast<size_t>(kProducers * kPerProducer), seen.size());
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; i++) {
    ASSERT_EQ(i, seen[i]);
  }
}

TEST(ComparatorTest, ShortestSeparator) {
  const Comparator* cmp = BytewiseComparator();
  std::string start = "abcdef";
  cmp->FindShortestSeparator(&start, "abzzzz");
  EXPECT_EQ("abd", start);
  EXPECT_LT(Slice("abcdef").compare(start), 0);
  EXPECT_LT(Slice(start).compare("abzzzz"), 0);

  // Prefix case: no shortening possible.
  start = "abc";
  cmp->FindShortestSeparator(&start, "abcdef");
  EXPECT_EQ("abc", start);
}

TEST(ComparatorTest, ShortSuccessor) {
  const Comparator* cmp = BytewiseComparator();
  std::string key = "abc";
  cmp->FindShortSuccessor(&key);
  EXPECT_EQ("b", key);
  key = std::string(3, '\xff');
  cmp->FindShortSuccessor(&key);
  EXPECT_EQ(std::string(3, '\xff'), key);
}

TEST(RandomTest, SkewedAndUniformBounds) {
  Random rnd(42);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rnd.Uniform(10), 10u);
    EXPECT_LE(rnd.Skewed(10), (1u << 10));
  }
  Random64 rnd64(42);
  for (int i = 0; i < 1000; i++) {
    double d = rnd64.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

struct IntNode : MpscQueueNode {
  int value = 0;
};

TEST(IntrusiveMpscQueueTest, FifoSingleThread) {
  IntrusiveMpscQueue<IntNode> q;
  IntNode nodes[10];
  for (int i = 0; i < 10; i++) {
    nodes[i].value = i;
    ASSERT_TRUE(q.Push(&nodes[i]));
  }
  EXPECT_EQ(10u, q.Size());
  for (int i = 0; i < 10; i++) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(i, (*v)->value);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(IntrusiveMpscQueueTest, FrontAndTryPopIf) {
  IntrusiveMpscQueue<IntNode> q;
  IntNode nodes[3];
  nodes[0].value = 2;
  nodes[1].value = 4;
  nodes[2].value = 5;
  for (auto& n : nodes) {
    ASSERT_TRUE(q.Push(&n));
  }
  auto even = [](IntNode* n) { return n->value % 2 == 0; };
  EXPECT_EQ(2, q.Front()->value);
  EXPECT_EQ(2, q.TryPopIf(even)->value);
  EXPECT_EQ(4, q.TryPopIf(even)->value);
  EXPECT_EQ(nullptr, q.TryPopIf(even));  // front is 5
  EXPECT_EQ(5, (*q.Pop())->value);
  EXPECT_EQ(nullptr, q.Front());
  EXPECT_EQ(nullptr, q.TryPopIf(even));  // empty
}

TEST(IntrusiveMpscQueueTest, NodesAreReusableAfterPop) {
  IntrusiveMpscQueue<IntNode> q;
  IntNode node;
  for (int round = 0; round < 100; round++) {
    node.value = round;
    ASSERT_TRUE(q.Push(&node));
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(&node, *v);
    EXPECT_EQ(round, (*v)->value);
  }
}

TEST(IntrusiveMpscQueueTest, CloseDrainsAndStopsPush) {
  IntrusiveMpscQueue<IntNode> q;
  IntNode a, b;
  ASSERT_TRUE(q.Push(&a));
  q.Close();
  EXPECT_FALSE(q.Push(&b));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(&a, *v);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(IntrusiveMpscQueueTest, CloseWakesBlockedConsumer) {
  IntrusiveMpscQueue<IntNode> q;
  std::thread consumer([&q] { EXPECT_FALSE(q.Pop().has_value()); });
  // Give the consumer a moment to park before closing.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(IntrusiveMpscQueueTest, ManyProducersOneConsumer) {
  IntrusiveMpscQueue<IntNode> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::vector<IntNode>> nodes(kProducers);
  for (auto& per_producer : nodes) {
    per_producer = std::vector<IntNode>(kPerProducer);
  }
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; t++) {
    producers.emplace_back([&q, &nodes, t] {
      for (int i = 0; i < kPerProducer; i++) {
        nodes[t][i].value = t * kPerProducer + i;
        ASSERT_TRUE(q.Push(&nodes[t][i]));
      }
    });
  }
  std::vector<int> seen;
  std::thread consumer([&q, &seen] {
    for (int i = 0; i < kProducers * kPerProducer; i++) {
      auto v = q.Pop();
      ASSERT_TRUE(v.has_value());
      seen.push_back((*v)->value);
    }
  });
  for (auto& t : producers) {
    t.join();
  }
  consumer.join();
  ASSERT_EQ(static_cast<size_t>(kProducers * kPerProducer), seen.size());
  // Per-producer FIFO: each producer's values must appear in its push order.
  std::vector<int> next(kProducers, 0);
  for (int v : seen) {
    int producer = v / kPerProducer;
    EXPECT_EQ(next[producer], v % kPerProducer);
    next[producer] = v % kPerProducer + 1;
  }
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; i++) {
    ASSERT_EQ(i, seen[i]);
  }
}

TEST(IntrusiveMpscQueueTest, BoundedCapacityAppliesBackpressure) {
  IntrusiveMpscQueue<IntNode> q(2);
  EXPECT_EQ(2u, q.capacity());
  IntNode nodes[3];
  ASSERT_TRUE(q.Push(&nodes[0]));
  ASSERT_TRUE(q.Push(&nodes[1]));

  // The queue is full: the third push must park until the consumer drains.
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(&nodes[2]));
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());

  EXPECT_EQ(&nodes[0], *q.Pop());
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(&nodes[1], *q.Pop());
  EXPECT_EQ(&nodes[2], *q.Pop());
}

TEST(IntrusiveMpscQueueTest, CloseWakesBlockedProducer) {
  IntrusiveMpscQueue<IntNode> q(1);
  IntNode a, b;
  ASSERT_TRUE(q.Push(&a));
  std::thread producer([&q, &b] { EXPECT_FALSE(q.Push(&b)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
  EXPECT_EQ(&a, *q.Pop());
  EXPECT_FALSE(q.Pop().has_value());
}

}  // namespace
}  // namespace p2kvs
