// YCSB generator tests: workload mixes match paper Table 1, distributions
// have the right shape, keys are well-formed.

#include "src/ycsb/workload.h"

#include <gtest/gtest.h>

#include <map>

namespace p2kvs {
namespace ycsb {
namespace {

TEST(Generators, UniformCoversRange) {
  UniformGenerator gen(0, 99, 42);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    uint64_t v = gen.Next();
    ASSERT_LT(v, 100u);
    counts[v]++;
  }
  EXPECT_EQ(100u, counts.size());
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 500);
    EXPECT_LT(c, 2000);
  }
}

TEST(Generators, ZipfianIsSkewed) {
  ZipfianGenerator gen(1000, 42);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    uint64_t v = gen.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank 0 must be far more popular than the median rank.
  EXPECT_GT(counts[0], 20 * std::max(1, counts[500]));
  // And the head should dominate: top-10 ranks > 30% of draws.
  int head = 0;
  for (uint64_t r = 0; r < 10; r++) {
    head += counts[r];
  }
  EXPECT_GT(head, 30000);
}

TEST(Generators, ScrambledZipfianSpreadsHotKeys) {
  ScrambledZipfianGenerator gen(1000, 42);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    counts[gen.Next()]++;
  }
  // Still skewed (some key much hotter than uniform share)...
  int max_count = 0;
  for (const auto& [v, c] : counts) {
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, 1000);
  // ...but the hottest keys are not all clustered at rank 0..9.
  int head = 0;
  for (uint64_t r = 0; r < 10; r++) {
    head += counts.count(r) ? counts[r] : 0;
  }
  EXPECT_LT(head, 50000);
}

TEST(Generators, LatestFavorsRecentInserts) {
  std::atomic<uint64_t> counter{1000};
  SkewedLatestGenerator gen(&counter, 42);
  int recent = 0;
  for (int i = 0; i < 10000; i++) {
    uint64_t v = gen.Next();
    ASSERT_LT(v, 1000u);
    if (v >= 900) {
      recent++;
    }
  }
  // The newest 10% of records should receive well over 10% of accesses.
  EXPECT_GT(recent, 3000);
}

TEST(Generators, LatestTracksGrowingKeySpace) {
  std::atomic<uint64_t> counter{10};
  SkewedLatestGenerator gen(&counter, 42);
  (void)gen.Next();
  counter.store(100000);
  uint64_t v = gen.Next();
  EXPECT_LT(v, 100000u);
}

TEST(WorkloadSpecs, MatchPaperTable1) {
  WorkloadSpec load = WorkloadSpec::Load();
  EXPECT_EQ(1.0, load.insert_proportion);
  EXPECT_EQ(Distribution::kUniform, load.distribution);

  WorkloadSpec a = WorkloadSpec::A();
  EXPECT_EQ(0.5, a.update_proportion);
  EXPECT_EQ(0.5, a.read_proportion);
  EXPECT_EQ(Distribution::kZipfian, a.distribution);

  WorkloadSpec b = WorkloadSpec::B();
  EXPECT_EQ(0.05, b.update_proportion);
  EXPECT_EQ(0.95, b.read_proportion);

  WorkloadSpec c = WorkloadSpec::C();
  EXPECT_EQ(1.0, c.read_proportion);

  WorkloadSpec d = WorkloadSpec::D();
  EXPECT_EQ(0.05, d.insert_proportion);
  EXPECT_EQ(Distribution::kLatest, d.distribution);

  WorkloadSpec e = WorkloadSpec::E();
  EXPECT_EQ(0.05, e.insert_proportion);
  EXPECT_EQ(0.95, e.scan_proportion);
  EXPECT_EQ(Distribution::kUniform, e.distribution);

  WorkloadSpec f = WorkloadSpec::F();
  EXPECT_EQ(0.5, f.rmw_proportion);
  EXPECT_EQ(0.5, f.read_proportion);
}

TEST(WorkloadSpecs, ByNameResolves) {
  EXPECT_EQ("LOAD", WorkloadSpec::ByName("load").name);
  EXPECT_EQ("A", WorkloadSpec::ByName("A").name);
  EXPECT_EQ("F", WorkloadSpec::ByName("f").name);
}

TEST(RecordKeys, FormattedAndSorted) {
  EXPECT_EQ("user000000000000", RecordKey(0));
  EXPECT_EQ("user000000000042", RecordKey(42));
  // Bytewise order == numeric order for the zero-padded format.
  EXPECT_LT(RecordKey(99), RecordKey(100));
  EXPECT_LT(RecordKey(999999), RecordKey(10000000));
}

TEST(MakeValueTest, DeterministicAndSized) {
  EXPECT_EQ(MakeValue(7, 128), MakeValue(7, 128));
  EXPECT_NE(MakeValue(7, 128), MakeValue(8, 128));
  EXPECT_EQ(128u, MakeValue(7, 128).size());
  EXPECT_EQ(1024u, MakeValue(7, 1024).size());
}

TEST(OperationStream, MixMatchesSpec) {
  KeySpace space(10000);
  OperationStream stream(WorkloadSpec::A(), &space, 7);
  int reads = 0, updates = 0;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; i++) {
    Operation op = stream.Next();
    if (op.type == OpType::kRead) {
      reads++;
    } else if (op.type == OpType::kUpdate) {
      updates++;
    }
  }
  EXPECT_NEAR(0.5, static_cast<double>(reads) / kOps, 0.03);
  EXPECT_NEAR(0.5, static_cast<double>(updates) / kOps, 0.03);
}

TEST(OperationStream, InsertsGrowKeySpace) {
  KeySpace space(100);
  OperationStream stream(WorkloadSpec::Load(), &space, 7);
  for (int i = 0; i < 50; i++) {
    Operation op = stream.Next();
    EXPECT_EQ(OpType::kInsert, op.type);
    EXPECT_EQ(RecordKey(100 + i), op.key);
  }
  EXPECT_EQ(150u, space.record_count.load());
}

TEST(OperationStream, ScansHaveBoundedLength) {
  KeySpace space(1000);
  WorkloadSpec e = WorkloadSpec::E();
  OperationStream stream(e, &space, 7);
  int scans = 0;
  for (int i = 0; i < 5000; i++) {
    Operation op = stream.Next();
    if (op.type == OpType::kScan) {
      scans++;
      EXPECT_GE(op.scan_length, 1u);
      EXPECT_LE(op.scan_length, e.max_scan_length);
    }
  }
  EXPECT_GT(scans, 4000);
}

TEST(OperationStream, KeysStayInKeySpace) {
  KeySpace space(500);
  OperationStream stream(WorkloadSpec::C(), &space, 7);
  for (int i = 0; i < 5000; i++) {
    Operation op = stream.Next();
    EXPECT_LE(op.key, RecordKey(499));
    EXPECT_GE(op.key, RecordKey(0));
  }
}

}  // namespace
}  // namespace ycsb
}  // namespace p2kvs
