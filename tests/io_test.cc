// IO layer tests: MemEnv semantics, IO accounting, device-model throttling,
// and fault injection.

#include <gtest/gtest.h>

#include "src/io/device_model.h"
#include "src/io/fault_injection_env.h"
#include "src/io/io_stats.h"
#include "src/io/mem_env.h"
#include "src/util/clock.h"

namespace p2kvs {
namespace {

TEST(MemEnvTest, FileLifecycle) {
  auto env = NewMemEnv();
  EXPECT_FALSE(env->FileExists("/dir/f"));
  ASSERT_TRUE(WriteStringToFile(env.get(), "hello", "/dir/f", true).ok());
  EXPECT_TRUE(env->FileExists("/dir/f"));

  std::string contents;
  ASSERT_TRUE(ReadFileToString(env.get(), "/dir/f", &contents).ok());
  EXPECT_EQ("hello", contents);

  uint64_t size;
  ASSERT_TRUE(env->GetFileSize("/dir/f", &size).ok());
  EXPECT_EQ(5u, size);

  ASSERT_TRUE(env->RenameFile("/dir/f", "/dir/g").ok());
  EXPECT_FALSE(env->FileExists("/dir/f"));
  EXPECT_TRUE(env->FileExists("/dir/g"));

  ASSERT_TRUE(env->RemoveFile("/dir/g").ok());
  EXPECT_FALSE(env->FileExists("/dir/g"));
  EXPECT_TRUE(env->RemoveFile("/dir/g").IsNotFound());
}

TEST(MemEnvTest, GetChildren) {
  auto env = NewMemEnv();
  env->CreateDir("/d");
  WriteStringToFile(env.get(), "1", "/d/a", false);
  WriteStringToFile(env.get(), "2", "/d/b", false);
  WriteStringToFile(env.get(), "3", "/d/sub/c", false);
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("/d", &children).ok());
  ASSERT_EQ(3u, children.size());  // a, b, sub
  EXPECT_EQ("a", children[0]);
  EXPECT_EQ("b", children[1]);
  EXPECT_EQ("sub", children[2]);
}

TEST(MemEnvTest, AppendAndRandomAccess) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewAppendableFile("/f", &f).ok());
  f->Append("0123456789");
  f->Append("abcdef");
  f->Close();

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env->NewRandomAccessFile("/f", &r).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(r->Read(5, 8, &result, scratch).ok());
  EXPECT_EQ("56789abc", result.ToString());
  // Read past EOF returns a short result.
  ASSERT_TRUE(r->Read(14, 10, &result, scratch).ok());
  EXPECT_EQ("ef", result.ToString());
  ASSERT_TRUE(r->Read(100, 4, &result, scratch).ok());
  EXPECT_EQ(0u, result.size());
}

TEST(MemEnvTest, RandomWritableFile) {
  auto env = NewMemEnv();
  std::unique_ptr<RandomWritableFile> f;
  ASSERT_TRUE(env->NewRandomWritableFile("/slab", &f).ok());
  ASSERT_TRUE(f->Write(100, "hello").ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(f->Read(100, 5, &result, scratch).ok());
  EXPECT_EQ("hello", result.ToString());
  // Gap reads as zeroes.
  ASSERT_TRUE(f->Read(0, 4, &result, scratch).ok());
  EXPECT_EQ(std::string(4, '\0'), result.ToString());
  ASSERT_TRUE(f->Truncate(102).ok());
  uint64_t size;
  env->GetFileSize("/slab", &size);
  EXPECT_EQ(102u, size);
}

TEST(IoStatsTest, PurposeAttribution) {
  IoStats::Instance().Reset();
  auto env = NewMemEnv();
  {
    IoPurposeScope scope(IoPurpose::kWal);
    WriteStringToFile(env.get(), std::string(1000, 'w'), "/wal", true);
  }
  {
    IoPurposeScope scope(IoPurpose::kCompaction);
    WriteStringToFile(env.get(), std::string(500, 'c'), "/sst", false);
  }
  IoStatsSnapshot snap = IoStats::Instance().Snapshot();
  EXPECT_EQ(1000u, snap.bytes_written[static_cast<int>(IoPurpose::kWal)]);
  EXPECT_EQ(500u, snap.bytes_written[static_cast<int>(IoPurpose::kCompaction)]);
  EXPECT_EQ(1500u, snap.TotalWritten());
  EXPECT_GE(snap.sync_ops, 1u);

  IoStatsSnapshot base = snap;
  WriteStringToFile(env.get(), "x", "/u", false);
  IoStatsSnapshot delta = IoStats::Instance().Snapshot().Since(base);
  EXPECT_EQ(1u, delta.bytes_written[static_cast<int>(IoPurpose::kUser)]);
  EXPECT_EQ(1u, delta.TotalWritten());
}

TEST(DeviceModelTest, ProfilesHaveExpectedShape) {
  DeviceProfile nvme = DeviceProfile::NvmeSsd();
  DeviceProfile sata = DeviceProfile::SataSsd();
  DeviceProfile hdd = DeviceProfile::Hdd();
  EXPECT_GT(nvme.write_bw_bytes_per_sec, sata.write_bw_bytes_per_sec);
  EXPECT_GT(sata.write_bw_bytes_per_sec, hdd.write_bw_bytes_per_sec);
  EXPECT_LT(nvme.rand_latency_us, sata.rand_latency_us);
  EXPECT_LT(sata.rand_latency_us, hdd.rand_latency_us);
  // HDD pays a big seek premium over sequential.
  EXPECT_GT(hdd.rand_latency_us, 4 * hdd.seq_latency_us);
}

TEST(DeviceModelTest, ScaledProfile) {
  DeviceProfile p = DeviceProfile::NvmeSsd().Scaled(2.0);
  EXPECT_EQ(DeviceProfile::NvmeSsd().write_bw_bytes_per_sec / 2, p.write_bw_bytes_per_sec);
  EXPECT_EQ(DeviceProfile::NvmeSsd().seq_latency_us * 2, p.seq_latency_us);
}

TEST(DeviceModelTest, ThrottledWritesRespectBandwidth) {
  auto base = NewMemEnv();
  DeviceProfile slow{"slow", 1 << 20, 1 << 20, 0, 0};  // 1 MB/s
  auto env = NewThrottledEnv(base.get(), slow);

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewWritableFile("/f", &f).ok());
  uint64_t start = NowMicros();
  std::string chunk(64 * 1024, 'x');
  for (int i = 0; i < 4; i++) {  // 256 KB at 1 MB/s => >= ~150ms beyond burst
    ASSERT_TRUE(f->Append(chunk).ok());
  }
  uint64_t elapsed_ms = (NowMicros() - start) / 1000;
  EXPECT_GE(elapsed_ms, 100u);
}

TEST(DeviceModelTest, UnlimitedProfilePassesThrough) {
  auto base = NewMemEnv();
  auto env = NewThrottledEnv(base.get(), DeviceProfile::Unlimited());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewWritableFile("/f", &f).ok());
  uint64_t start = NowMicros();
  std::string chunk(1 << 20, 'x');
  for (int i = 0; i < 16; i++) {
    ASSERT_TRUE(f->Append(chunk).ok());
  }
  EXPECT_LT(NowMicros() - start, 1000000u);
  // Files written through the wrapper are visible in the base env.
  f->Close();
  EXPECT_TRUE(base->FileExists("/f"));
}

TEST(FaultInjectionTest, CrashDropsUnsyncedData) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("durable-part").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("lost-part").ok());
  ASSERT_TRUE(f->Flush().ok());
  EXPECT_EQ(9u, env.UnsyncedBytes());

  ASSERT_TRUE(env.Crash().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(base.get(), "/f", &contents).ok());
  EXPECT_EQ("durable-part", contents);
}

TEST(FaultInjectionTest, NeverSyncedFileIsEmptyAfterCrash) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("all-lost").ok());
  f->Close();
  ASSERT_TRUE(env.Crash().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(base.get(), "/f", &contents).ok());
  EXPECT_EQ("", contents);
}

TEST(FaultInjectionTest, RenamedFilesKeepSyncState) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/tmp1", &f).ok());
  ASSERT_TRUE(f->Append("synced").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("unsynced").ok());
  f->Close();
  ASSERT_TRUE(env.RenameFile("/tmp1", "/final").ok());
  ASSERT_TRUE(env.Crash().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(base.get(), "/final", &contents).ok());
  EXPECT_EQ("synced", contents);
}

}  // namespace
}  // namespace p2kvs
