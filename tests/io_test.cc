// IO layer tests: MemEnv semantics, IO accounting, device-model throttling,
// and fault injection.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/io/async_io.h"
#include "src/io/device_model.h"
#include "src/io/error_injection_env.h"
#include "src/io/fault_injection_env.h"
#include "src/io/io_stats.h"
#include "src/io/mem_env.h"
#include "src/util/clock.h"

namespace p2kvs {
namespace {

TEST(MemEnvTest, FileLifecycle) {
  auto env = NewMemEnv();
  EXPECT_FALSE(env->FileExists("/dir/f"));
  ASSERT_TRUE(WriteStringToFile(env.get(), "hello", "/dir/f", true).ok());
  EXPECT_TRUE(env->FileExists("/dir/f"));

  std::string contents;
  ASSERT_TRUE(ReadFileToString(env.get(), "/dir/f", &contents).ok());
  EXPECT_EQ("hello", contents);

  uint64_t size;
  ASSERT_TRUE(env->GetFileSize("/dir/f", &size).ok());
  EXPECT_EQ(5u, size);

  ASSERT_TRUE(env->RenameFile("/dir/f", "/dir/g").ok());
  EXPECT_FALSE(env->FileExists("/dir/f"));
  EXPECT_TRUE(env->FileExists("/dir/g"));

  ASSERT_TRUE(env->RemoveFile("/dir/g").ok());
  EXPECT_FALSE(env->FileExists("/dir/g"));
  EXPECT_TRUE(env->RemoveFile("/dir/g").IsNotFound());
}

TEST(MemEnvTest, GetChildren) {
  auto env = NewMemEnv();
  env->CreateDir("/d").IgnoreError();
  WriteStringToFile(env.get(), "1", "/d/a", false).IgnoreError();
  WriteStringToFile(env.get(), "2", "/d/b", false).IgnoreError();
  WriteStringToFile(env.get(), "3", "/d/sub/c", false).IgnoreError();
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("/d", &children).ok());
  ASSERT_EQ(3u, children.size());  // a, b, sub
  EXPECT_EQ("a", children[0]);
  EXPECT_EQ("b", children[1]);
  EXPECT_EQ("sub", children[2]);
}

TEST(MemEnvTest, AppendAndRandomAccess) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewAppendableFile("/f", &f).ok());
  f->Append("0123456789").IgnoreError();
  f->Append("abcdef").IgnoreError();
  f->Close().IgnoreError();

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env->NewRandomAccessFile("/f", &r).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(r->Read(5, 8, &result, scratch).ok());
  EXPECT_EQ("56789abc", result.ToString());
  // Read past EOF returns a short result.
  ASSERT_TRUE(r->Read(14, 10, &result, scratch).ok());
  EXPECT_EQ("ef", result.ToString());
  ASSERT_TRUE(r->Read(100, 4, &result, scratch).ok());
  EXPECT_EQ(0u, result.size());
}

TEST(MemEnvTest, RandomWritableFile) {
  auto env = NewMemEnv();
  std::unique_ptr<RandomWritableFile> f;
  ASSERT_TRUE(env->NewRandomWritableFile("/slab", &f).ok());
  ASSERT_TRUE(f->Write(100, "hello").ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(f->Read(100, 5, &result, scratch).ok());
  EXPECT_EQ("hello", result.ToString());
  // Gap reads as zeroes.
  ASSERT_TRUE(f->Read(0, 4, &result, scratch).ok());
  EXPECT_EQ(std::string(4, '\0'), result.ToString());
  ASSERT_TRUE(f->Truncate(102).ok());
  uint64_t size;
  env->GetFileSize("/slab", &size).IgnoreError();
  EXPECT_EQ(102u, size);
}

TEST(IoStatsTest, PurposeAttribution) {
  IoStats::Instance().Reset();
  auto env = NewMemEnv();
  {
    IoPurposeScope scope(IoPurpose::kWal);
    WriteStringToFile(env.get(), std::string(1000, 'w'), "/wal", true).IgnoreError();
  }
  {
    IoPurposeScope scope(IoPurpose::kCompaction);
    WriteStringToFile(env.get(), std::string(500, 'c'), "/sst", false).IgnoreError();
  }
  IoStatsSnapshot snap = IoStats::Instance().Snapshot();
  EXPECT_EQ(1000u, snap.bytes_written[static_cast<int>(IoPurpose::kWal)]);
  EXPECT_EQ(500u, snap.bytes_written[static_cast<int>(IoPurpose::kCompaction)]);
  EXPECT_EQ(1500u, snap.TotalWritten());
  EXPECT_GE(snap.sync_ops, 1u);

  IoStatsSnapshot base = snap;
  WriteStringToFile(env.get(), "x", "/u", false).IgnoreError();
  IoStatsSnapshot delta = IoStats::Instance().Snapshot().Since(base);
  EXPECT_EQ(1u, delta.bytes_written[static_cast<int>(IoPurpose::kUser)]);
  EXPECT_EQ(1u, delta.TotalWritten());
}

TEST(DeviceModelTest, ProfilesHaveExpectedShape) {
  DeviceProfile nvme = DeviceProfile::NvmeSsd();
  DeviceProfile sata = DeviceProfile::SataSsd();
  DeviceProfile hdd = DeviceProfile::Hdd();
  EXPECT_GT(nvme.write_bw_bytes_per_sec, sata.write_bw_bytes_per_sec);
  EXPECT_GT(sata.write_bw_bytes_per_sec, hdd.write_bw_bytes_per_sec);
  EXPECT_LT(nvme.rand_latency_us, sata.rand_latency_us);
  EXPECT_LT(sata.rand_latency_us, hdd.rand_latency_us);
  // HDD pays a big seek premium over sequential.
  EXPECT_GT(hdd.rand_latency_us, 4 * hdd.seq_latency_us);
}

TEST(DeviceModelTest, ScaledProfile) {
  DeviceProfile p = DeviceProfile::NvmeSsd().Scaled(2.0);
  EXPECT_EQ(DeviceProfile::NvmeSsd().write_bw_bytes_per_sec / 2, p.write_bw_bytes_per_sec);
  EXPECT_EQ(DeviceProfile::NvmeSsd().seq_latency_us * 2, p.seq_latency_us);
}

TEST(DeviceModelTest, ThrottledWritesRespectBandwidth) {
  auto base = NewMemEnv();
  DeviceProfile slow{"slow", 1 << 20, 1 << 20, 0, 0};  // 1 MB/s
  auto env = NewThrottledEnv(base.get(), slow);

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewWritableFile("/f", &f).ok());
  uint64_t start = NowMicros();
  std::string chunk(64 * 1024, 'x');
  for (int i = 0; i < 4; i++) {  // 256 KB at 1 MB/s => >= ~150ms beyond burst
    ASSERT_TRUE(f->Append(chunk).ok());
  }
  uint64_t elapsed_ms = (NowMicros() - start) / 1000;
  EXPECT_GE(elapsed_ms, 100u);
}

TEST(DeviceModelTest, UnlimitedProfilePassesThrough) {
  auto base = NewMemEnv();
  auto env = NewThrottledEnv(base.get(), DeviceProfile::Unlimited());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewWritableFile("/f", &f).ok());
  uint64_t start = NowMicros();
  std::string chunk(1 << 20, 'x');
  for (int i = 0; i < 16; i++) {
    ASSERT_TRUE(f->Append(chunk).ok());
  }
  EXPECT_LT(NowMicros() - start, 1000000u);
  // Files written through the wrapper are visible in the base env.
  f->Close().IgnoreError();
  EXPECT_TRUE(base->FileExists("/f"));
}

TEST(FaultInjectionTest, CrashDropsUnsyncedData) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("durable-part").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("lost-part").ok());
  ASSERT_TRUE(f->Flush().ok());
  EXPECT_EQ(9u, env.UnsyncedBytes());

  ASSERT_TRUE(env.Crash().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(base.get(), "/f", &contents).ok());
  EXPECT_EQ("durable-part", contents);
}

TEST(FaultInjectionTest, NeverSyncedFileIsEmptyAfterCrash) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("all-lost").ok());
  f->Close().IgnoreError();
  ASSERT_TRUE(env.Crash().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(base.get(), "/f", &contents).ok());
  EXPECT_EQ("", contents);
}

TEST(FaultInjectionTest, RenamedFilesKeepSyncState) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/tmp1", &f).ok());
  ASSERT_TRUE(f->Append("synced").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("unsynced").ok());
  f->Close().IgnoreError();
  ASSERT_TRUE(env.RenameFile("/tmp1", "/final").ok());
  ASSERT_TRUE(env.Crash().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(base.get(), "/final", &contents).ok());
  EXPECT_EQ("synced", contents);
}

// ---------------------------------------------------------------------------
// AsyncIoContext: submission/completion semantics on top of virtual files.
// ---------------------------------------------------------------------------

TEST(AsyncIoTest, FactoryNeverNullAndProbeIsStable) {
  // The runtime probe is cached; two calls must agree, and the default
  // factory must hand back a working context either way.
  EXPECT_EQ(IoUringAvailable(), IoUringAvailable());
  auto ctx = NewAsyncIoContext(AsyncIoOptions());
  ASSERT_NE(nullptr, ctx);
  const std::string name = ctx->backend_name();
  EXPECT_TRUE(name == "thread-pool" || name == "io_uring");

  AsyncIoOptions forced;
  forced.force_thread_pool = true;
  auto pool = NewAsyncIoContext(forced);
  ASSERT_NE(nullptr, pool);
  EXPECT_STREQ("thread-pool", pool->backend_name());
}

TEST(AsyncIoTest, BatchedReadsMatchSynchronousReads) {
  auto env = NewMemEnv();
  std::string payload;
  for (int i = 0; i < 64; i++) payload += "block-" + std::to_string(i) + "|";
  ASSERT_TRUE(WriteStringToFile(env.get(), payload, "/sst", true).ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("/sst", &file).ok());

  auto ctx = NewAsyncIoContext(AsyncIoOptions());
  constexpr size_t kOps = 8;
  constexpr size_t kLen = 17;
  char scratch[kOps][kLen];
  AsyncIoOp ops[kOps];
  std::vector<AsyncIoOp*> batch;
  for (size_t i = 0; i < kOps; i++) {
    ops[i].offset = i * 23;
    ops[i].len = kLen;
    ops[i].scratch = scratch[i];
    ctx->SubmitRead(file.get(), &ops[i]);
    batch.push_back(&ops[i]);
  }
  ctx->WaitAll(batch);

  for (size_t i = 0; i < kOps; i++) {
    ASSERT_TRUE(ops[i].status.ok()) << ops[i].status.ToString();
    char expect_scratch[kLen];
    Slice expect;
    ASSERT_TRUE(file->Read(i * 23, kLen, &expect, expect_scratch).ok());
    EXPECT_EQ(expect.ToString(), ops[i].result.ToString()) << "op " << i;
    EXPECT_EQ(expect.size(), ops[i].bytes_done);
  }
}

TEST(AsyncIoTest, OpsAreReusableAcrossBatches) {
  auto env = NewMemEnv();
  ASSERT_TRUE(WriteStringToFile(env.get(), "abcdefghij", "/f", true).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("/f", &file).ok());

  auto ctx = NewThreadPoolIoContext(AsyncIoOptions());
  char scratch[4];
  AsyncIoOp op;
  op.len = 4;
  op.scratch = scratch;
  for (uint64_t round = 0; round < 3; round++) {
    op.offset = round * 2;
    ctx->SubmitRead(file.get(), &op);
    AsyncIoOp* p = &op;
    ctx->Wait(&p, 1);
    ASSERT_TRUE(op.status.ok());
    EXPECT_EQ(std::string("abcdefghij").substr(round * 2, 4),
              op.result.ToString());
  }
}

TEST(AsyncIoTest, SlotReadPartialFailureLeavesOtherOpsIntact) {
  // One injected read fault in a batch of slot reads must fail exactly that
  // op; the remaining ops complete with correct bytes. queue_depth = 1 makes
  // the pool execute ops in submission order, so the fault lands on op 0.
  auto base = NewMemEnv();
  ErrorInjectionEnv env(base.get());

  std::unique_ptr<RandomWritableFile> slab;
  ASSERT_TRUE(env.NewRandomWritableFile("/slab", &slab).ok());
  constexpr size_t kSlot = 16;
  constexpr size_t kSlots = 4;
  for (size_t i = 0; i < kSlots; i++) {
    std::string slot(kSlot, static_cast<char>('A' + i));
    ASSERT_TRUE(slab->Write(i * kSlot, slot).ok());
  }

  AsyncIoOptions opts;
  opts.queue_depth = 1;
  opts.force_thread_pool = true;
  auto ctx = NewAsyncIoContext(opts);

  env.FailNext(FaultOp::kRead, 1);

  char scratch[kSlots][kSlot];
  AsyncIoOp ops[kSlots];
  std::vector<AsyncIoOp*> batch;
  for (size_t i = 0; i < kSlots; i++) {
    ops[i].offset = i * kSlot;
    ops[i].len = kSlot;
    ops[i].scratch = scratch[i];
    ctx->SubmitSlotRead(slab.get(), &ops[i]);
    batch.push_back(&ops[i]);
  }
  ctx->WaitAll(batch);

  EXPECT_FALSE(ops[0].status.ok());
  for (size_t i = 1; i < kSlots; i++) {
    ASSERT_TRUE(ops[i].status.ok()) << "op " << i << ": "
                                    << ops[i].status.ToString();
    EXPECT_EQ(std::string(kSlot, static_cast<char>('A' + i)),
              ops[i].result.ToString());
  }
  EXPECT_EQ(1u, env.injected_faults(FaultOp::kRead));
}

TEST(AsyncIoTest, WriteAndSyncRunTheVirtualOps) {
  auto env = NewMemEnv();
  auto ctx = NewThreadPoolIoContext(AsyncIoOptions());

  // Positional write through the completion path...
  std::unique_ptr<RandomWritableFile> slab;
  ASSERT_TRUE(env->NewRandomWritableFile("/slab", &slab).ok());
  AsyncIoOp wop;
  wop.offset = 8;
  wop.write_data = Slice("payload!");
  ctx->SubmitWrite(slab.get(), &wop);
  AsyncIoOp* p = &wop;
  ctx->Wait(&p, 1);
  ASSERT_TRUE(wop.status.ok());
  EXPECT_EQ(8u, wop.bytes_done);

  char scratch[8];
  Slice got;
  ASSERT_TRUE(slab->Read(8, 8, &got, scratch).ok());
  EXPECT_EQ("payload!", got.ToString());

  // ...and an async durability barrier on an append-only file.
  std::unique_ptr<WritableFile> log;
  ASSERT_TRUE(env->NewWritableFile("/log", &log).ok());
  ASSERT_TRUE(log->Append("record").ok());
  AsyncIoOp sop;
  ctx->SubmitSync(log.get(), &sop);
  p = &sop;
  ctx->Wait(&p, 1);
  EXPECT_TRUE(sop.status.ok());
}

TEST(AsyncIoTest, StatsCountSubmissionsAndDrainInFlight) {
  auto env = NewMemEnv();
  ASSERT_TRUE(WriteStringToFile(env.get(), std::string(256, 'x'), "/f", true).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("/f", &file).ok());

  IoStats::Instance().Reset();
  auto ctx = NewAsyncIoContext(AsyncIoOptions());
  constexpr size_t kOps = 12;
  char scratch[kOps][16];
  AsyncIoOp ops[kOps];
  std::vector<AsyncIoOp*> batch;
  for (size_t i = 0; i < kOps; i++) {
    ops[i].offset = i * 16;
    ops[i].len = 16;
    ops[i].scratch = scratch[i];
    ctx->SubmitRead(file.get(), &ops[i]);
    batch.push_back(&ops[i]);
  }
  ctx->WaitAll(batch);

  IoStatsSnapshot snap = IoStats::Instance().Snapshot();
  EXPECT_EQ(kOps, snap.async_submissions);
  EXPECT_EQ(0, snap.reads_in_flight);  // all reaped
  EXPECT_GE(snap.max_queue_depth, 1u);
  EXPECT_LE(snap.max_queue_depth, kOps);
}

TEST(AsyncIoTest, ConcurrentSubmittersShareOneContext) {
  // Several threads submit and reap interleaved batches on one context; each
  // must get exactly its own results. This is the TSan target for the
  // submit/complete/reap locking.
  auto env = NewMemEnv();
  std::string payload;
  for (int i = 0; i < 256; i++) payload += static_cast<char>('a' + (i % 26));
  ASSERT_TRUE(WriteStringToFile(env.get(), payload, "/f", true).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("/f", &file).ok());

  AsyncIoOptions opts;
  opts.queue_depth = 4;
  auto ctx = NewAsyncIoContext(opts);

  constexpr int kThreads = 4;
  constexpr int kRounds = 16;
  constexpr int kOpsPerRound = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t]() {
      char scratch[kOpsPerRound][8];
      AsyncIoOp ops[kOpsPerRound];
      for (int round = 0; round < kRounds; round++) {
        std::vector<AsyncIoOp*> batch;
        for (int i = 0; i < kOpsPerRound; i++) {
          const uint64_t off =
              static_cast<uint64_t>((t * 31 + round * 7 + i * 13) % 248);
          ops[i].offset = off;
          ops[i].len = 8;
          ops[i].scratch = scratch[i];
          ctx->SubmitRead(file.get(), &ops[i]);
          batch.push_back(&ops[i]);
        }
        ctx->WaitAll(batch);
        for (int i = 0; i < kOpsPerRound; i++) {
          if (!ops[i].status.ok() ||
              ops[i].result.ToString() != payload.substr(ops[i].offset, 8)) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(0, failures.load());
}

TEST(AsyncIoTest, QueueDepthBeatsSequentialOnChanneledDevice) {
  // On a device model with internal parallelism, a batch submitted at QD > 1
  // through the async context must finish faster than the same reads issued
  // one at a time — the whole point of the submission/completion Env.
  auto base = NewMemEnv();
  DeviceProfile dev;
  dev.name = "test-channeled";
  dev.rand_latency_us = 3000;
  dev.channels = 4;
  auto throttled = NewThrottledEnv(base.get(), dev);

  ASSERT_TRUE(
      WriteStringToFile(throttled.get(), std::string(512, 'z'), "/f", true).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(throttled->NewRandomAccessFile("/f", &file).ok());

  constexpr size_t kOps = 8;
  char scratch[kOps][16];

  const uint64_t seq_start = NowMicros();
  for (size_t i = 0; i < kOps; i++) {
    Slice out;
    // Stride backwards so every read is discontiguous (random latency).
    ASSERT_TRUE(file->Read((kOps - i) * 32, 16, &out, scratch[i]).ok());
  }
  const uint64_t seq_us = NowMicros() - seq_start;

  AsyncIoOptions opts;
  opts.queue_depth = static_cast<int>(kOps);
  opts.force_thread_pool = true;
  auto ctx = NewAsyncIoContext(opts);
  AsyncIoOp ops[kOps];
  std::vector<AsyncIoOp*> batch;
  const uint64_t batch_start = NowMicros();
  for (size_t i = 0; i < kOps; i++) {
    ops[i].offset = (kOps - i) * 32;
    ops[i].len = 16;
    ops[i].scratch = scratch[i];
    ctx->SubmitRead(file.get(), &ops[i]);
    batch.push_back(&ops[i]);
  }
  ctx->WaitAll(batch);
  const uint64_t batch_us = NowMicros() - batch_start;

  for (size_t i = 0; i < kOps; i++) {
    ASSERT_TRUE(ops[i].status.ok());
  }
  // Sequential pays 8 x 3ms = 24ms; the batch overlaps 8 reads on 4 channels
  // (oversubscription factor 2 -> ~6ms per read, all concurrent). Require a
  // conservative 1.5x separation to stay robust on loaded CI machines.
  EXPECT_LT(batch_us * 3, seq_us * 2)
      << "batched " << batch_us << "us vs sequential " << seq_us << "us";
}

}  // namespace
}  // namespace p2kvs
