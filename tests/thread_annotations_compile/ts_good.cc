// Positive control for the thread-safety negative-compilation tests: this
// translation unit uses the annotated Mutex correctly and must compile
// cleanly under -Wthread-safety -Werror. If it stops compiling, the harness
// is broken (or the wrappers regressed), and the ts_bad_* results are
// meaningless.

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    p2kvs::MutexLock lock(&mu_);
    value_++;
  }

  int Read() {
    p2kvs::MutexLock lock(&mu_);
    return value_;
  }

  void IncrementLocked() REQUIRES(mu_) { value_++; }

  void IncrementViaHelper() {
    mu_.Lock();
    IncrementLocked();
    mu_.Unlock();
  }

 private:
  p2kvs::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  c.IncrementViaHelper();
  return c.Read() == 2 ? 0 : 1;
}
