// Negative-compilation test: calling a REQUIRES(mu) function without holding
// mu MUST be rejected by clang's thread-safety analysis (-Wthread-safety
// -Werror). CMake registers this file with WILL_FAIL, so a successful
// compile fails the test suite.

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void IncrementLocked() REQUIRES(mu_) { value_++; }

  // The call below must be diagnosed: mu_ is not held.
  void CallWithoutLock() { IncrementLocked(); }

 private:
  p2kvs::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.CallWithoutLock();
  return 0;
}
