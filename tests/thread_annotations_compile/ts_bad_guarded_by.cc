// Negative-compilation test: reading and writing a GUARDED_BY field without
// holding its mutex MUST be rejected by clang's thread-safety analysis
// (-Wthread-safety -Werror). CMake registers this file with WILL_FAIL, so a
// successful compile — i.e. the analysis silently regressing to no-ops under
// clang — fails the test suite.

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Counter {
 public:
  // Both accesses race by construction; the analysis must flag each.
  void IncrementUnlocked() { value_++; }
  int ReadUnlocked() const { return value_; }

 private:
  mutable p2kvs::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.IncrementUnlocked();
  return c.ReadUnlocked();
}
