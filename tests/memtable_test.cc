// Skiplist and MemTable tests, including concurrent-insert stress on the CAS
// path (the "concurrent MemTable" of paper §2.2).

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/memtable/memtable.h"
#include "src/memtable/skiplist.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

using Key = uint64_t;

struct UintComparator {
  int operator()(const Key& a, const Key& b) const {
    if (a < b) {
      return -1;
    }
    if (a > b) {
      return +1;
    }
    return 0;
  }
};

TEST(SkipListTest, Empty) {
  Arena arena;
  SkipList<Key, UintComparator> list(UintComparator(), &arena);
  EXPECT_FALSE(list.Contains(10));

  SkipList<Key, UintComparator>::Iterator iter(&list);
  EXPECT_FALSE(iter.Valid());
  iter.SeekToFirst();
  EXPECT_FALSE(iter.Valid());
  iter.Seek(100);
  EXPECT_FALSE(iter.Valid());
  iter.SeekToLast();
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, InsertLookupAndIterate) {
  const int N = 2000;
  const int R = 5000;
  Random rnd(1000);
  std::set<Key> keys;
  Arena arena;
  SkipList<Key, UintComparator> list(UintComparator(), &arena);
  for (int i = 0; i < N; i++) {
    Key key = rnd.Next() % R;
    if (keys.insert(key).second) {
      list.Insert(key);
    }
  }

  for (int i = 0; i < R; i++) {
    EXPECT_EQ(keys.count(i) == 1, list.Contains(i)) << i;
  }

  // Forward iteration.
  {
    SkipList<Key, UintComparator>::Iterator iter(&list);
    iter.SeekToFirst();
    for (Key expected : keys) {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(expected, iter.key());
      iter.Next();
    }
    EXPECT_FALSE(iter.Valid());
  }

  // Backward iteration.
  {
    SkipList<Key, UintComparator>::Iterator iter(&list);
    iter.SeekToLast();
    for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(*it, iter.key());
      iter.Prev();
    }
    EXPECT_FALSE(iter.Valid());
  }

  // Seek.
  {
    SkipList<Key, UintComparator>::Iterator iter(&list);
    iter.Seek(R / 2);
    auto lb = keys.lower_bound(R / 2);
    if (lb == keys.end()) {
      EXPECT_FALSE(iter.Valid());
    } else {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(*lb, iter.key());
    }
  }
}

TEST(SkipListTest, ConcurrentInsertersDisjointKeys) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  Arena arena;
  SkipList<Key, UintComparator> list(UintComparator(), &arena);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&list, t] {
      for (int i = 0; i < kPerThread; i++) {
        list.InsertConcurrently(static_cast<Key>(i) * kThreads + t);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Everything present and ordered.
  SkipList<Key, UintComparator>::Iterator iter(&list);
  iter.SeekToFirst();
  for (Key expected = 0; expected < kThreads * kPerThread; expected++) {
    ASSERT_TRUE(iter.Valid());
    ASSERT_EQ(expected, iter.key());
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, ConcurrentInsertWithConcurrentReaders) {
  Arena arena;
  SkipList<Key, UintComparator> list(UintComparator(), &arena);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      SkipList<Key, UintComparator>::Iterator iter(&list);
      Key last = 0;
      iter.SeekToFirst();
      while (iter.Valid()) {
        ASSERT_GE(iter.key(), last);  // always sorted
        last = iter.key();
        iter.Next();
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; t++) {
    writers.emplace_back([&list, t] {
      for (int i = 0; i < 20000; i++) {
        list.InsertConcurrently(static_cast<Key>(i) * 2 + t);
      }
    });
  }
  for (auto& th : writers) {
    th.join();
  }
  stop.store(true);
  reader.join();
  EXPECT_TRUE(list.Contains(0));
  EXPECT_TRUE(list.Contains(39999));
}

// --- MemTable ---

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest() : cmp_(BytewiseComparator()), mem_(cmp_) {}

  InternalKeyComparator cmp_;
  MemTable mem_;
};

TEST_F(MemTableTest, AddGet) {
  mem_.Add(1, kTypeValue, "key1", "value1");
  mem_.Add(2, kTypeValue, "key2", "value2");

  std::string value;
  Status s;
  ASSERT_TRUE(mem_.Get(LookupKey("key1", 10), &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("value1", value);
  EXPECT_FALSE(mem_.Get(LookupKey("missing", 10), &value, &s));
}

TEST_F(MemTableTest, SequenceVisibility) {
  mem_.Add(5, kTypeValue, "k", "v5");
  mem_.Add(9, kTypeValue, "k", "v9");

  std::string value;
  Status s;
  // Snapshot at 7 sees v5; at 9+ sees v9; at 4 sees nothing.
  ASSERT_TRUE(mem_.Get(LookupKey("k", 7), &value, &s));
  EXPECT_EQ("v5", value);
  ASSERT_TRUE(mem_.Get(LookupKey("k", 20), &value, &s));
  EXPECT_EQ("v9", value);
  EXPECT_FALSE(mem_.Get(LookupKey("k", 4), &value, &s));
}

TEST_F(MemTableTest, DeletionShadowsValue) {
  mem_.Add(1, kTypeValue, "k", "v");
  mem_.Add(2, kTypeDeletion, "k", "");
  std::string value;
  Status s;
  ASSERT_TRUE(mem_.Get(LookupKey("k", 10), &value, &s));
  EXPECT_TRUE(s.IsNotFound());
  // But the old version is still visible at sequence 1.
  ASSERT_TRUE(mem_.Get(LookupKey("k", 1), &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("v", value);
}

TEST_F(MemTableTest, IteratorYieldsInternalOrder) {
  mem_.Add(3, kTypeValue, "b", "b3");
  mem_.Add(1, kTypeValue, "a", "a1");
  mem_.Add(2, kTypeValue, "b", "b2");

  std::unique_ptr<Iterator> iter(mem_.NewIterator());
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("a", ExtractUserKey(iter->key()).ToString());
  iter->Next();
  // Same user key: higher sequence first.
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
  EXPECT_EQ("b", parsed.user_key.ToString());
  EXPECT_EQ(3u, parsed.sequence);
  iter->Next();
  ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
  EXPECT_EQ(2u, parsed.sequence);
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(MemTableTest, MemoryAccounting) {
  size_t before = mem_.ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem_.Add(static_cast<SequenceNumber>(i + 1), kTypeValue, "key" + std::to_string(i),
             std::string(100, 'v'));
  }
  EXPECT_GT(mem_.ApproximateMemoryUsage(), before + 100 * 1000);
  EXPECT_EQ(1000u, mem_.NumEntries());
}

TEST_F(MemTableTest, ConcurrentAdd) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<uint64_t> seq{1};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        uint64_t s = seq.fetch_add(1);
        mem_.Add(s, kTypeValue, "t" + std::to_string(t) + "-" + std::to_string(i), "v",
                 /*concurrent=*/true);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(static_cast<uint64_t>(kThreads * kPerThread), mem_.NumEntries());
  std::string value;
  Status s;
  EXPECT_TRUE(mem_.Get(LookupKey("t0-0", kMaxSequenceNumber), &value, &s));
  EXPECT_TRUE(mem_.Get(LookupKey("t3-1999", kMaxSequenceNumber), &value, &s));
}

TEST(DbFormatTest, InternalKeyOrdering) {
  InternalKeyComparator cmp(BytewiseComparator());
  InternalKey a1("a", 100, kTypeValue);
  InternalKey a2("a", 50, kTypeValue);
  InternalKey b("b", 1, kTypeValue);
  // Same user key: higher sequence sorts first.
  EXPECT_LT(cmp.Compare(a1.Encode(), a2.Encode()), 0);
  EXPECT_LT(cmp.Compare(a2.Encode(), b.Encode()), 0);
}

TEST(DbFormatTest, ParseRoundTrip) {
  std::string encoded;
  AppendInternalKey(&encoded, ParsedInternalKey("mykey", 42, kTypeDeletion));
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(encoded, &parsed));
  EXPECT_EQ("mykey", parsed.user_key.ToString());
  EXPECT_EQ(42u, parsed.sequence);
  EXPECT_EQ(kTypeDeletion, parsed.type);
}

TEST(DbFormatTest, LookupKeyParts) {
  LookupKey lkey("hello", 99);
  EXPECT_EQ("hello", lkey.user_key().ToString());
  EXPECT_EQ(5u + 8u, lkey.internal_key().size());
  // Long keys exercise the heap path.
  std::string long_key(500, 'k');
  LookupKey lkey2(long_key, 1);
  EXPECT_EQ(long_key, lkey2.user_key().ToString());
}

}  // namespace
}  // namespace p2kvs
