// Iterator property tests: the user-visible DB iterator must behave exactly
// like iteration over a std::map snapshot — including backward iteration,
// direction switches mid-stream, deletions, overwrites, and data spread
// across memtable / immutable / multiple SST levels.

#include <gtest/gtest.h>

#include <map>

#include "src/io/mem_env.h"
#include "src/lsm/db.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

class DbIteratorTest : public ::testing::TestWithParam<CompactionStyle> {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.compaction_style = GetParam();
    if (GetParam() == CompactionStyle::kTiered) {
      options_.compat_mode = CompatMode::kLevelDB;
    }
    options_.write_buffer_size = 16 * 1024;
    options_.target_file_size = 8 * 1024;
    options_.max_bytes_for_level_base = 32 * 1024;
    ASSERT_TRUE(DB::Open(options_, "/iterdb", &db_).ok());
  }

  // Builds a store whose data is spread across memtable and several levels,
  // mirroring every operation into the model.
  void BuildLayeredState() {
    Random rnd(404);
    for (int round = 0; round < 4; round++) {
      for (int i = 0; i < 400; i++) {
        char key[32];
        snprintf(key, sizeof(key), "key%05u", rnd.Uniform(600));
        if (rnd.OneIn(5)) {
          ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
          model_.erase(key);
        } else {
          std::string value = "r" + std::to_string(round) + "-" + std::to_string(i);
          ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
          model_[key] = value;
        }
      }
      if (round < 3) {
        ASSERT_TRUE(db_->FlushMemTable().ok());
      }
    }
    db_->WaitForBackgroundWork();
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
  std::map<std::string, std::string> model_;
};

TEST_P(DbIteratorTest, ForwardEqualsModel) {
  BuildLayeredState();
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  for (const auto& [k, v] : model_) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(k, iter->key().ToString());
    EXPECT_EQ(v, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST_P(DbIteratorTest, BackwardEqualsModel) {
  BuildLayeredState();
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToLast();
  for (auto it = model_.rbegin(); it != model_.rend(); ++it) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(it->first, iter->key().ToString());
    EXPECT_EQ(it->second, iter->value().ToString());
    iter->Prev();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST_P(DbIteratorTest, RandomWalkMatchesModel) {
  BuildLayeredState();
  ASSERT_FALSE(model_.empty());
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  Random rnd(99);

  // Walk the iterator and a model iterator in lockstep through random moves.
  auto mit = model_.begin();
  iter->SeekToFirst();
  for (int step = 0; step < 2000; step++) {
    ASSERT_EQ(mit != model_.end(), iter->Valid()) << "step " << step;
    if (mit == model_.end()) {
      // Re-seek somewhere random to keep walking.
      uint32_t target = rnd.Uniform(600);
      char key[32];
      snprintf(key, sizeof(key), "key%05u", target);
      mit = model_.lower_bound(key);
      iter->Seek(key);
      continue;
    }
    ASSERT_EQ(mit->first, iter->key().ToString()) << "step " << step;
    ASSERT_EQ(mit->second, iter->value().ToString()) << "step " << step;

    switch (rnd.Uniform(3)) {
      case 0:  // forward
        ++mit;
        iter->Next();
        break;
      case 1: {  // backward (model iterator needs care at begin())
        if (mit == model_.begin()) {
          mit = model_.end();
          iter->Prev();
          ASSERT_FALSE(iter->Valid());
        } else {
          --mit;
          iter->Prev();
        }
        break;
      }
      default: {  // random seek
        uint32_t target = rnd.Uniform(600);
        char key[32];
        snprintf(key, sizeof(key), "key%05u", target);
        mit = model_.lower_bound(key);
        iter->Seek(key);
        break;
      }
    }
  }
}

TEST_P(DbIteratorTest, DirectionSwitchOnSameKey) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "2").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "c", "3").ok());
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->Seek("b");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", iter->key().ToString());
  iter->Prev();  // forward -> backward immediately after a seek
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("a", iter->key().ToString());
  iter->Next();  // backward -> forward
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", iter->key().ToString());
  iter->Next();
  EXPECT_EQ("c", iter->key().ToString());
}

TEST_P(DbIteratorTest, OverwrittenKeyShowsNewestOnce) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "multi", "v" + std::to_string(i)).ok());
    if (i == 5) {
      ASSERT_TRUE(db_->FlushMemTable().ok());
    }
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("multi", iter->key().ToString());
  EXPECT_EQ("v9", iter->value().ToString());
  iter->Next();
  EXPECT_FALSE(iter->Valid());
  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("v9", iter->value().ToString());
}

TEST_P(DbIteratorTest, SnapshotIteratorIgnoresLaterWrites) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", "old").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", "new").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k2", "invisible").ok());

  ReadOptions ro;
  ro.snapshot = snap;
  std::unique_ptr<Iterator> iter(db_->NewIterator(ro));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("k1", iter->key().ToString());
  EXPECT_EQ("old", iter->value().ToString());
  iter->Next();
  EXPECT_FALSE(iter->Valid());
  db_->ReleaseSnapshot(snap);
}

TEST_P(DbIteratorTest, IteratorPinsStateAcrossFlush) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "pin" + std::to_string(i), "v").ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  // Mutate + flush under the live iterator: it must keep serving its view.
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "pin" + std::to_string(i), "changed").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->WaitForBackgroundWork();
  int count = 0;
  while (iter->Valid()) {
    EXPECT_EQ("v", iter->value().ToString());
    count++;
    iter->Next();
  }
  EXPECT_EQ(100, count);
}

TEST_P(DbIteratorTest, EmptyDbIterator) {
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  iter->SeekToLast();
  EXPECT_FALSE(iter->Valid());
  iter->Seek("anything");
  EXPECT_FALSE(iter->Valid());
}

INSTANTIATE_TEST_SUITE_P(Styles, DbIteratorTest,
                         ::testing::Values(CompactionStyle::kLeveled,
                                           CompactionStyle::kTiered),
                         [](const ::testing::TestParamInfo<CompactionStyle>& info) {
                           return info.param == CompactionStyle::kLeveled ? "leveled"
                                                                          : "tiered";
                         });

}  // namespace
}  // namespace p2kvs
