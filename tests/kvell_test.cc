// KVell-lite tests: sharded CRUD, in-place updates, slot reuse, scans across
// workers, index rebuild on restart, and the architectural signatures §5.5
// relies on (in-memory index growth, no write-amp on overwrite).

#include "src/kvell/kvell_store.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/io/error_injection_env.h"
#include "src/io/mem_env.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

class KvellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.num_workers = 2;
    options_.pin_workers = false;
    options_.page_cache_bytes = 1 << 20;
    Reopen();
  }

  void Reopen() {
    store_.reset();
    ASSERT_TRUE(KvellStore::Open(options_, "/kvell", &store_).ok());
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = store_->Get(key, &value);
    if (s.IsNotFound()) {
      return "NOT_FOUND";
    }
    return s.ok() ? value : s.ToString();
  }

  std::unique_ptr<Env> env_;
  KvellOptions options_;
  std::unique_ptr<KvellStore> store_;
};

TEST_F(KvellTest, PutGetDelete) {
  ASSERT_TRUE(store_->Put("a", "1").ok());
  ASSERT_TRUE(store_->Put("b", "2").ok());
  EXPECT_EQ("1", Get("a"));
  EXPECT_EQ("2", Get("b"));
  EXPECT_EQ("NOT_FOUND", Get("c"));
  ASSERT_TRUE(store_->Delete("a").ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
}

TEST_F(KvellTest, InPlaceUpdateDoesNotGrowSlab) {
  ASSERT_TRUE(store_->Put("key", std::string(100, 'a')).ok());
  KvellStats before = store_->GetStats();
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(store_->Put("key", std::string(100, 'a' + (i % 26))).ok());
  }
  KvellStats after = store_->GetStats();
  // 50 more slot writes but no new index entries: pure in-place updates.
  EXPECT_EQ(before.index_entries, after.index_entries);
  EXPECT_EQ(before.slot_writes + 50, after.slot_writes);
}

TEST_F(KvellTest, SizeClassMigration) {
  ASSERT_TRUE(store_->Put("key", std::string(100, 's')).ok());   // 256B class
  ASSERT_TRUE(store_->Put("key", std::string(2000, 'L')).ok());  // 4096B class
  EXPECT_EQ(std::string(2000, 'L'), Get("key"));
  ASSERT_TRUE(store_->Put("key", std::string(10, 't')).ok());  // back to small
  EXPECT_EQ(std::string(10, 't'), Get("key"));
}

TEST_F(KvellTest, OversizeItemRejected) {
  Status s = store_->Put("key", std::string(10000, 'x'));
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(KvellTest, ScanIsGloballySorted) {
  for (int i = 0; i < 200; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store_->Put(key, std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store_->Scan("key000050", 30, &out).ok());
  ASSERT_EQ(30u, out.size());
  for (int i = 0; i < 30; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", 50 + i);
    EXPECT_EQ(key, out[i].first);
    EXPECT_EQ(std::to_string(50 + i), out[i].second);
  }
}

TEST_F(KvellTest, ScanFromStartAndPastEnd) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store_->Scan(Slice(), 100, &out).ok());
  EXPECT_EQ(10u, out.size());
  ASSERT_TRUE(store_->Scan("zzz", 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(KvellTest, IndexRebuildOnRestart) {
  std::map<std::string, std::string> model;
  Random rnd(11);
  for (int i = 0; i < 500; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06u", rnd.Uniform(300));
    model[key] = "val" + std::to_string(i);
    ASSERT_TRUE(store_->Put(key, model[key]).ok());
  }
  ASSERT_TRUE(store_->Delete(model.begin()->first).ok());
  std::string deleted = model.begin()->first;
  model.erase(model.begin());

  Reopen();  // index must be rebuilt by scanning slabs
  for (const auto& [k, v] : model) {
    ASSERT_EQ(v, Get(k)) << k;
  }
  EXPECT_EQ("NOT_FOUND", Get(deleted));
  EXPECT_EQ(model.size(), store_->GetStats().index_entries);
}

TEST_F(KvellTest, IndexMemoryGrowsWithKeys) {
  KvellStats before = store_->GetStats();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(store_->Put("grow-key-" + std::to_string(i), "v").ok());
  }
  KvellStats after = store_->GetStats();
  EXPECT_EQ(before.index_entries + 2000, after.index_entries);
  // The in-memory index footprint is what makes KVell memory-hungry.
  EXPECT_GT(after.index_memory_bytes, before.index_memory_bytes + 2000 * 10);
}

TEST_F(KvellTest, PageCacheServesRepeatedReads) {
  ASSERT_TRUE(store_->Put("hot", std::string(64, 'h')).ok());
  std::string value;
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(store_->Get("hot", &value).ok());
  }
  EXPECT_GT(store_->GetStats().cache_hits, 10u);
}

TEST_F(KvellTest, ConcurrentClients) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(store_->Put(key, key + "-value").ok());
        std::string value;
        ASSERT_TRUE(store_->Get(key, &value).ok());
        ASSERT_EQ(key + "-value", value);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
}

TEST_F(KvellTest, SlotReuseAfterDelete) {
  ASSERT_TRUE(store_->Put("a", std::string(50, 'a')).ok());
  ASSERT_TRUE(store_->Delete("a").ok());
  // The freed slot should be recycled for the next same-class insert.
  KvellStats before = store_->GetStats();
  ASSERT_TRUE(store_->Put("b", std::string(50, 'b')).ok());
  EXPECT_EQ(std::string(50, 'b'), Get("b"));
  EXPECT_EQ(before.index_entries + 1, store_->GetStats().index_entries);
}

TEST_F(KvellTest, MultiGetBatchesColdReadsAcrossWorkers) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 60; i++) {
    std::string k = "mg" + std::to_string(i);
    std::string v = "val-" + std::to_string(i);
    ASSERT_TRUE(store_->Put(k, v).ok());
    model[k] = v;
  }
  Reopen();  // cold page cache: every page must come off the slab files

  std::vector<std::string> key_storage;
  for (const auto& kv : model) key_storage.push_back(kv.first);
  key_storage.push_back("mg-missing");
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());

  KvellStats before = store_->GetStats();
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);

  ASSERT_EQ(keys.size(), statuses.size());
  for (size_t i = 0; i + 1 < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok()) << key_storage[i];
    EXPECT_EQ(model[key_storage[i]], values[i]);
  }
  EXPECT_TRUE(statuses.back().IsNotFound());

  KvellStats after = store_->GetStats();
  EXPECT_GT(after.slot_reads, before.slot_reads);  // pages really hit "disk"
  // Page-granular batching: distinct pages, not keys, are fetched (60 keys in
  // 256B slots span at most 60 pages but the count must not exceed the keys).
  EXPECT_LE(after.slot_reads - before.slot_reads, 60u);

  // A second MultiGet is served from the cache warmed by the batch.
  KvellStats warm = store_->GetStats();
  statuses = store_->MultiGet(keys, &values);
  for (size_t i = 0; i + 1 < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok());
    EXPECT_EQ(model[key_storage[i]], values[i]);
  }
  EXPECT_EQ(warm.slot_reads, store_->GetStats().slot_reads);
}

TEST_F(KvellTest, MultiGetPartialReadFailureIsContained) {
  // One faulted page read fails only the keys on that page; every other key
  // in the batch succeeds, and a retry after the fault drains succeeds fully.
  auto base = NewMemEnv();
  ErrorInjectionEnv inj(base.get());
  options_.env = &inj;
  options_.num_workers = 1;  // single worker: one batch, deterministic counts
  Reopen();

  std::map<std::string, std::string> model;
  for (int i = 0; i < 16; i++) {
    // 2000-byte values land in the 4096B class: one page per key.
    std::string k = "pf" + std::to_string(i);
    std::string v(2000, static_cast<char>('a' + i));
    ASSERT_TRUE(store_->Put(k, v).ok());
    model[k] = v;
  }
  Reopen();  // cold cache again

  std::vector<std::string> key_storage;
  for (const auto& kv : model) key_storage.push_back(kv.first);
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());

  inj.FailNext(FaultOp::kRead, 1);
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);

  size_t failed = 0;
  for (size_t i = 0; i < keys.size(); i++) {
    if (!statuses[i].ok()) {
      failed++;
      EXPECT_FALSE(statuses[i].IsNotFound());
    } else {
      EXPECT_EQ(model[key_storage[i]], values[i]);
    }
  }
  EXPECT_EQ(1u, failed);  // one page per key -> one fault fails one key
  EXPECT_EQ(1u, inj.injected_faults(FaultOp::kRead));

  // Fault consumed: the whole batch now succeeds.
  statuses = store_->MultiGet(keys, &values);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok()) << key_storage[i];
    EXPECT_EQ(model[key_storage[i]], values[i]);
  }
  // The store references the stack-local injection env; drop it before that
  // env goes out of scope.
  store_.reset();
  options_.env = env_.get();
}

TEST_F(KvellTest, MultiGetSequentialFallbackMatchesAsync) {
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(store_->Put("fb" + std::to_string(i),
                            "v" + std::to_string(i)).ok());
  }
  std::vector<std::string> key_storage;
  for (int i = 0; i < 30; i++) key_storage.push_back("fb" + std::to_string(i));
  key_storage.push_back("fb-nope");
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());

  Reopen();
  std::vector<std::string> async_values;
  std::vector<Status> async_statuses = store_->MultiGet(keys, &async_values);

  options_.async_io = false;
  Reopen();
  std::vector<std::string> seq_values;
  std::vector<Status> seq_statuses = store_->MultiGet(keys, &seq_values);
  options_.async_io = true;

  ASSERT_EQ(async_statuses.size(), seq_statuses.size());
  for (size_t i = 0; i < keys.size(); i++) {
    EXPECT_EQ(async_statuses[i].ok(), seq_statuses[i].ok());
    EXPECT_EQ(async_statuses[i].IsNotFound(), seq_statuses[i].IsNotFound());
    if (async_statuses[i].ok()) {
      EXPECT_EQ(seq_values[i], async_values[i]);
    }
  }
}

}  // namespace
}  // namespace p2kvs
