// KVell-lite tests: sharded CRUD, in-place updates, slot reuse, scans across
// workers, index rebuild on restart, and the architectural signatures §5.5
// relies on (in-memory index growth, no write-amp on overwrite).

#include "src/kvell/kvell_store.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/io/mem_env.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

class KvellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.num_workers = 2;
    options_.pin_workers = false;
    options_.page_cache_bytes = 1 << 20;
    Reopen();
  }

  void Reopen() {
    store_.reset();
    ASSERT_TRUE(KvellStore::Open(options_, "/kvell", &store_).ok());
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = store_->Get(key, &value);
    if (s.IsNotFound()) {
      return "NOT_FOUND";
    }
    return s.ok() ? value : s.ToString();
  }

  std::unique_ptr<Env> env_;
  KvellOptions options_;
  std::unique_ptr<KvellStore> store_;
};

TEST_F(KvellTest, PutGetDelete) {
  ASSERT_TRUE(store_->Put("a", "1").ok());
  ASSERT_TRUE(store_->Put("b", "2").ok());
  EXPECT_EQ("1", Get("a"));
  EXPECT_EQ("2", Get("b"));
  EXPECT_EQ("NOT_FOUND", Get("c"));
  ASSERT_TRUE(store_->Delete("a").ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
}

TEST_F(KvellTest, InPlaceUpdateDoesNotGrowSlab) {
  ASSERT_TRUE(store_->Put("key", std::string(100, 'a')).ok());
  KvellStats before = store_->GetStats();
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(store_->Put("key", std::string(100, 'a' + (i % 26))).ok());
  }
  KvellStats after = store_->GetStats();
  // 50 more slot writes but no new index entries: pure in-place updates.
  EXPECT_EQ(before.index_entries, after.index_entries);
  EXPECT_EQ(before.slot_writes + 50, after.slot_writes);
}

TEST_F(KvellTest, SizeClassMigration) {
  ASSERT_TRUE(store_->Put("key", std::string(100, 's')).ok());   // 256B class
  ASSERT_TRUE(store_->Put("key", std::string(2000, 'L')).ok());  // 4096B class
  EXPECT_EQ(std::string(2000, 'L'), Get("key"));
  ASSERT_TRUE(store_->Put("key", std::string(10, 't')).ok());  // back to small
  EXPECT_EQ(std::string(10, 't'), Get("key"));
}

TEST_F(KvellTest, OversizeItemRejected) {
  Status s = store_->Put("key", std::string(10000, 'x'));
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(KvellTest, ScanIsGloballySorted) {
  for (int i = 0; i < 200; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store_->Put(key, std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store_->Scan("key000050", 30, &out).ok());
  ASSERT_EQ(30u, out.size());
  for (int i = 0; i < 30; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", 50 + i);
    EXPECT_EQ(key, out[i].first);
    EXPECT_EQ(std::to_string(50 + i), out[i].second);
  }
}

TEST_F(KvellTest, ScanFromStartAndPastEnd) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store_->Scan(Slice(), 100, &out).ok());
  EXPECT_EQ(10u, out.size());
  ASSERT_TRUE(store_->Scan("zzz", 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(KvellTest, IndexRebuildOnRestart) {
  std::map<std::string, std::string> model;
  Random rnd(11);
  for (int i = 0; i < 500; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06u", rnd.Uniform(300));
    model[key] = "val" + std::to_string(i);
    ASSERT_TRUE(store_->Put(key, model[key]).ok());
  }
  ASSERT_TRUE(store_->Delete(model.begin()->first).ok());
  std::string deleted = model.begin()->first;
  model.erase(model.begin());

  Reopen();  // index must be rebuilt by scanning slabs
  for (const auto& [k, v] : model) {
    ASSERT_EQ(v, Get(k)) << k;
  }
  EXPECT_EQ("NOT_FOUND", Get(deleted));
  EXPECT_EQ(model.size(), store_->GetStats().index_entries);
}

TEST_F(KvellTest, IndexMemoryGrowsWithKeys) {
  KvellStats before = store_->GetStats();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(store_->Put("grow-key-" + std::to_string(i), "v").ok());
  }
  KvellStats after = store_->GetStats();
  EXPECT_EQ(before.index_entries + 2000, after.index_entries);
  // The in-memory index footprint is what makes KVell memory-hungry.
  EXPECT_GT(after.index_memory_bytes, before.index_memory_bytes + 2000 * 10);
}

TEST_F(KvellTest, PageCacheServesRepeatedReads) {
  ASSERT_TRUE(store_->Put("hot", std::string(64, 'h')).ok());
  std::string value;
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(store_->Get("hot", &value).ok());
  }
  EXPECT_GT(store_->GetStats().cache_hits, 10u);
}

TEST_F(KvellTest, ConcurrentClients) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(store_->Put(key, key + "-value").ok());
        std::string value;
        ASSERT_TRUE(store_->Get(key, &value).ok());
        ASSERT_EQ(key + "-value", value);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
}

TEST_F(KvellTest, SlotReuseAfterDelete) {
  ASSERT_TRUE(store_->Put("a", std::string(50, 'a')).ok());
  ASSERT_TRUE(store_->Delete("a").ok());
  // The freed slot should be recycled for the next same-class insert.
  KvellStats before = store_->GetStats();
  ASSERT_TRUE(store_->Put("b", std::string(50, 'b')).ok());
  EXPECT_EQ(std::string(50, 'b'), Get("b"));
  EXPECT_EQ(before.index_entries + 1, store_->GetStats().index_entries);
}

}  // namespace
}  // namespace p2kvs
