// Error-governance tests: Status severity classification, bounded
// retry-with-backoff, the ErrorInjectionEnv fault classes, engine behaviour
// under transient faults (B+-tree WAL and KVell slot IO, fail-fast and
// retry-succeeds paths), the LSM's sticky bg_error_ + Resume(), and the
// framework-level degrade / read-only / resume protocol.

#include "src/io/error_injection_env.h"

#include <gtest/gtest.h>

#include "src/btree/btree_store.h"
#include "src/core/p2kvs.h"
#include "src/io/mem_env.h"
#include "src/io/retry.h"
#include "src/kvell/kvell_store.h"
#include "src/lsm/db.h"
#include "src/util/perf_context.h"

namespace p2kvs {
namespace {

// ---------------- Status severity ----------------

TEST(StatusSeverityTest, Classification) {
  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_FALSE(Status::OK().IsHardStorageError());

  Status transient = Status::TransientIOError("flaky sync");
  EXPECT_TRUE(transient.IsIOError());
  EXPECT_TRUE(transient.IsTransient());
  EXPECT_FALSE(transient.IsHardStorageError());
  EXPECT_EQ(StatusSeverity::kTransient, transient.severity());

  Status hard = Status::IOError("device gone");
  EXPECT_FALSE(hard.IsTransient());
  EXPECT_TRUE(hard.IsHardStorageError());

  EXPECT_TRUE(Status::Corruption("bad block").IsHardStorageError());
  // Busy is a resource conflict, inherently retryable, never a storage fault.
  EXPECT_TRUE(Status::Busy("locked").IsTransient());
  EXPECT_FALSE(Status::Busy("locked").IsHardStorageError());
  // Semantic outcomes are neither transient nor storage errors.
  EXPECT_FALSE(Status::NotFound("k").IsTransient());
  EXPECT_FALSE(Status::NotFound("k").IsHardStorageError());
  EXPECT_FALSE(Status::InvalidArgument("x").IsHardStorageError());
}

TEST(StatusSeverityTest, ToStringMarksTransient) {
  EXPECT_NE(std::string::npos,
            Status::TransientIOError("flaky").ToString().find("(transient)"));
  EXPECT_EQ(std::string::npos, Status::IOError("dead").ToString().find("(transient)"));
}

// ---------------- RunWithRetry ----------------

TEST(RunWithRetryTest, RetriesTransientUntilSuccess) {
  GetPerfContext().Reset();
  IoStatsSnapshot before = IoStats::Instance().Snapshot();
  int calls = 0;
  Status s = RunWithRetry(nullptr, RetryPolicy(), [&] {
    calls++;
    return calls < 3 ? Status::TransientIOError("flaky") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(3, calls);
  EXPECT_EQ(2u, GetPerfContext().retry_count);
  EXPECT_EQ(2u, IoStats::Instance().Snapshot().Since(before).retries);
}

TEST(RunWithRetryTest, NeverRetriesHardErrors) {
  int calls = 0;
  Status s = RunWithRetry(nullptr, RetryPolicy(), [&] {
    calls++;
    return Status::IOError("hard");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(1, calls);
}

TEST(RunWithRetryTest, GivesUpAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  Status s = RunWithRetry(nullptr, policy, [&] {
    calls++;
    return Status::TransientIOError("always flaky");
  });
  EXPECT_TRUE(s.IsTransient());
  EXPECT_EQ(3, calls);
}

TEST(RunWithRetryTest, MaxAttemptsOneDisablesRetry) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  int calls = 0;
  Status s = RunWithRetry(nullptr, policy, [&] {
    calls++;
    return Status::TransientIOError("flaky");
  });
  EXPECT_TRUE(s.IsTransient());
  EXPECT_EQ(1, calls);
}

// ---------------- ErrorInjectionEnv ----------------

class ErrorInjectionEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    env_ = std::make_unique<ErrorInjectionEnv>(base_env_.get());
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<ErrorInjectionEnv> env_;
};

TEST_F(ErrorInjectionEnvTest, ScriptedAppendFaults) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("/f", &file).ok());
  env_->FailNext(FaultOp::kAppend, 2);
  Status s1 = file->Append("a");
  Status s2 = file->Append("b");
  Status s3 = file->Append("c");
  EXPECT_TRUE(s1.IsIOError() && s1.IsTransient());
  EXPECT_TRUE(s2.IsIOError());
  EXPECT_TRUE(s3.ok());
  EXPECT_EQ(2u, env_->injected_faults());
  EXPECT_EQ(2u, env_->injected_faults(FaultOp::kAppend));
  // Injection happens before delegation: the failed appends left no bytes.
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize("/f", &size).ok());
  EXPECT_EQ(1u, size);
}

TEST_F(ErrorInjectionEnvTest, HardFaultsWhenRequested) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("/f", &file).ok());
  env_->FailNext(FaultOp::kSync, 1, /*transient=*/false);
  ASSERT_TRUE(file->Append("x").ok());
  Status s = file->Sync();
  EXPECT_TRUE(s.IsIOError());
  EXPECT_FALSE(s.IsTransient());
  EXPECT_TRUE(s.IsHardStorageError());
}

TEST_F(ErrorInjectionEnvTest, PathFilterRestrictsInjection) {
  env_->SetPathFilter(".log");
  env_->FailNext(FaultOp::kAppend, 1);
  std::unique_ptr<WritableFile> other;
  ASSERT_TRUE(env_->NewWritableFile("/data.sst", &other).ok());
  EXPECT_TRUE(other->Append("safe").ok());  // filtered out; fault still armed
  std::unique_ptr<WritableFile> wal;
  ASSERT_TRUE(env_->NewWritableFile("/000001.log", &wal).ok());
  EXPECT_TRUE(wal->Append("boom").IsIOError());
  EXPECT_EQ(1u, env_->injected_faults());
}

TEST_F(ErrorInjectionEnvTest, SeededOddsAreDeterministic) {
  auto run = [&](uint32_t seed) {
    ErrorInjectionEnv env(base_env_.get());
    env.SetSeed(seed);
    env.SetFailureOdds(FaultOp::kAppend, 4);
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env.NewWritableFile("/seeded", &file).ok());
    std::string pattern;
    for (int i = 0; i < 64; i++) {
      pattern.push_back(file->Append("x").ok() ? '.' : 'F');
    }
    return pattern;
  };
  std::string a = run(42);
  std::string b = run(42);
  std::string c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(std::string::npos, a.find('F'));
  EXPECT_NE(std::string::npos, a.find('.'));
}

TEST_F(ErrorInjectionEnvTest, ShortReadsTruncateResult) {
  ASSERT_TRUE(WriteStringToFile(env_.get(), "0123456789abcdef", "/f", true).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile("/f", &file).ok());
  char scratch[32];
  Slice result;
  env_->FailNext(FaultOp::kShortRead, 1);
  ASSERT_TRUE(file->Read(0, 16, &result, scratch).ok());
  EXPECT_EQ(8u, result.size());  // strict prefix, not an error
  ASSERT_TRUE(file->Read(0, 16, &result, scratch).ok());
  EXPECT_EQ(16u, result.size());
  EXPECT_EQ(1u, env_->injected_faults(FaultOp::kShortRead));
}

TEST_F(ErrorInjectionEnvTest, RandomWritableFaultsCoverKvellPath) {
  std::unique_ptr<RandomWritableFile> file;
  ASSERT_TRUE(env_->NewRandomWritableFile("/slab-256.kv", &file).ok());
  env_->FailNext(FaultOp::kRandomWrite, 1);
  EXPECT_TRUE(file->Write(0, "payload").IsIOError());
  EXPECT_TRUE(file->Write(0, "payload").ok());
  env_->FailNext(FaultOp::kRandomSync, 1);
  EXPECT_TRUE(file->Sync().IsIOError());
  EXPECT_TRUE(file->Sync().ok());
  env_->FailNext(FaultOp::kNewWritableFile, 1);
  std::unique_ptr<RandomWritableFile> blocked;
  EXPECT_TRUE(env_->NewRandomWritableFile("/slab-1024.kv", &blocked).IsIOError());
}

TEST_F(ErrorInjectionEnvTest, CountersFlowIntoIoStats) {
  IoStatsSnapshot before = IoStats::Instance().Snapshot();
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("/f", &file).ok());
  env_->FailNext(FaultOp::kAppend, 3);
  for (int i = 0; i < 3; i++) {
    EXPECT_TRUE(file->Append("x").IsIOError());
  }
  IoStatsSnapshot delta = IoStats::Instance().Snapshot().Since(before);
  EXPECT_EQ(3u, delta.injected_faults);
  EXPECT_NE(std::string::npos, delta.ToString().find("faults=3"));
}

// ---------------- B+-tree WAL under transient faults ----------------

class BTreeWalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    env_ = std::make_unique<ErrorInjectionEnv>(base_env_.get());
    options_.env = env_.get();
    options_.sync_writes = true;  // every acked put is WAL-synced
    env_->SetPathFilter("wal.log");
  }

  void Open() { ASSERT_TRUE(BTreeStore::Open(options_, "/bt", &store_).ok()); }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<ErrorInjectionEnv> env_;
  BTreeOptions options_;
  std::unique_ptr<BTreeStore> store_;
};

TEST_F(BTreeWalFaultTest, FailedSyncFailsFastWithoutRetry) {
  options_.wal_retry.max_attempts = 1;
  Open();
  ASSERT_TRUE(store_->Put("acked", "v1").ok());
  env_->FailNext(FaultOp::kSync, 1);
  Status s = store_->Put("doomed", "v2");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(s.IsTransient());
  EXPECT_EQ(1u, env_->injected_faults(FaultOp::kSync));
  // The store keeps serving after the fault: reads and later writes succeed.
  std::string value;
  ASSERT_TRUE(store_->Get("acked", &value).ok());
  EXPECT_EQ("v1", value);
  EXPECT_TRUE(store_->Put("after", "v3").ok());
}

TEST_F(BTreeWalFaultTest, TransientSyncFaultsAreRetriedToSuccess) {
  // Default policy: up to 4 attempts; two injected faults are absorbed.
  Open();
  env_->FailNext(FaultOp::kSync, 2);
  IoStatsSnapshot before = IoStats::Instance().Snapshot();
  EXPECT_TRUE(store_->Put("resilient", "v").ok());
  EXPECT_EQ(2u, env_->injected_faults(FaultOp::kSync));
  EXPECT_GE(IoStats::Instance().Snapshot().Since(before).retries, 2u);
  std::string value;
  ASSERT_TRUE(store_->Get("resilient", &value).ok());
  EXPECT_EQ("v", value);
}

TEST_F(BTreeWalFaultTest, RecoversAfterFailedSync) {
  options_.wal_retry.max_attempts = 1;
  Open();
  ASSERT_TRUE(store_->Put("a", "1").ok());
  ASSERT_TRUE(store_->Put("b", "2").ok());
  env_->FailNext(FaultOp::kSync, 1);
  EXPECT_TRUE(store_->Put("c", "3").IsIOError());
  env_->DisableAll();
  store_.reset();  // checkpoint + close
  Open();
  std::string value;
  ASSERT_TRUE(store_->Get("a", &value).ok());
  EXPECT_EQ("1", value);
  ASSERT_TRUE(store_->Get("b", &value).ok());
  EXPECT_EQ("2", value);
  // The failed put must not be half-applied: absent, or exactly its value.
  Status s = store_->Get("c", &value);
  ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
  if (s.ok()) {
    EXPECT_EQ("3", value);
  }
}

// ---------------- KVell slot IO under transient faults ----------------

class KvellFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    env_ = std::make_unique<ErrorInjectionEnv>(base_env_.get());
    options_.env = env_.get();
    options_.num_workers = 1;
    options_.pin_workers = false;
    env_->SetPathFilter("slab-");
  }

  void Open() { ASSERT_TRUE(KvellStore::Open(options_, "/kvell", &store_).ok()); }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<ErrorInjectionEnv> env_;
  KvellOptions options_;
  std::unique_ptr<KvellStore> store_;
};

TEST_F(KvellFaultTest, TransientSlotWriteIsRetriedToSuccess) {
  Open();
  env_->FailNext(FaultOp::kRandomWrite, 2);
  EXPECT_TRUE(store_->Put("k", "v").ok());
  EXPECT_EQ(2u, env_->injected_faults(FaultOp::kRandomWrite));
  std::string value;
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ("v", value);
}

TEST_F(KvellFaultTest, FailFastAndRecoverAfterFailedWrite) {
  options_.retry.max_attempts = 1;
  Open();
  ASSERT_TRUE(store_->Put("acked", "v1").ok());
  env_->FailNext(FaultOp::kRandomWrite, 1);
  Status s = store_->Put("doomed", "v2");
  EXPECT_TRUE(s.IsIOError());
  // Fault fires before any slot byte lands: the store stays consistent.
  std::string value;
  ASSERT_TRUE(store_->Get("acked", &value).ok());
  EXPECT_EQ("v1", value);
  EXPECT_TRUE(store_->Get("doomed", &value).IsNotFound());
  env_->DisableAll();
  store_.reset();  // clean close syncs the slabs
  Open();          // recovery = slab scan rebuilds the index
  ASSERT_TRUE(store_->Get("acked", &value).ok());
  EXPECT_EQ("v1", value);
  EXPECT_TRUE(store_->Get("doomed", &value).IsNotFound());
}

// ---------------- LSM sticky bg_error_ + Resume ----------------

class LsmResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    env_ = std::make_unique<ErrorInjectionEnv>(base_env_.get());
    options_.env = env_.get();
    options_.wal_retry.max_attempts = 1;
    env_->SetPathFilter(".log");
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<ErrorInjectionEnv> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(LsmResumeTest, HardSyncFaultSticksUntilResume) {
  WriteOptions sync_wo;
  sync_wo.sync = true;
  ASSERT_TRUE(db_->Put(sync_wo, "before", "v").ok());

  env_->FailNext(FaultOp::kSync, 1, /*transient=*/false);
  EXPECT_TRUE(db_->Put(sync_wo, "boom", "x").IsIOError());

  // The error is sticky: even fault-free writes are refused now.
  EXPECT_TRUE(db_->Put(WriteOptions(), "still-broken", "x").IsIOError());

  // Reads keep working on the partition.
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "before", &value).ok());
  EXPECT_EQ("v", value);

  // Resume rotates the WAL, re-flushes and restores service.
  ASSERT_TRUE(db_->Resume().ok());
  ASSERT_TRUE(db_->Put(sync_wo, "after", "v2").ok());
  ASSERT_TRUE(db_->Get(ReadOptions(), "after", &value).ok());
  EXPECT_EQ("v2", value);
  ASSERT_TRUE(db_->Get(ReadOptions(), "before", &value).ok());
  EXPECT_EQ("v", value);
}

TEST_F(LsmResumeTest, ResumeOnHealthyDbIsANoop) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  EXPECT_TRUE(db_->Resume().ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ("v", value);
}

TEST_F(LsmResumeTest, TransientSyncFaultIsAbsorbedByWalRetry) {
  options_.wal_retry.max_attempts = 4;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, "/db-retry", &db).ok());
  WriteOptions sync_wo;
  sync_wo.sync = true;
  env_->FailNext(FaultOp::kSync, 2);
  EXPECT_TRUE(db->Put(sync_wo, "k", "v").ok());
  // No sticky error: the next write needs no Resume.
  EXPECT_TRUE(db->Put(sync_wo, "k2", "v2").ok());
}

// ---------------- Framework-level degrade / resume ----------------

class P2kvsGovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    env_ = std::make_unique<ErrorInjectionEnv>(base_env_.get());
    Options lsm;
    lsm.env = env_.get();
    lsm.wal_retry.max_attempts = 1;
    options_.env = env_.get();
    options_.num_workers = 2;
    options_.pin_workers = false;
    options_.retry.max_attempts = 1;
    options_.engine_factory = MakeRocksLiteFactory(lsm);
    ASSERT_TRUE(P2KVS::Open(options_, "/p2", &store_).ok());
    // One key per partition, to tell the degraded one from the healthy one.
    for (int i = 0; keys_[0].empty() || keys_[1].empty(); i++) {
      std::string key = "key-" + std::to_string(i);
      keys_[static_cast<size_t>(store_->PartitionOf(key))] = key;
    }
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<ErrorInjectionEnv> env_;
  P2kvsOptions options_;
  std::unique_ptr<P2KVS> store_;
  std::string keys_[2];
};

TEST_F(P2kvsGovernanceTest, HardFaultDegradesOnePartitionResumeRestores) {
  ASSERT_TRUE(store_->Put(keys_[0], "v0").ok());
  ASSERT_TRUE(store_->Put(keys_[1], "v1").ok());
  ASSERT_TRUE(store_->Health().AllHealthy());

  // Every Sync inside the victim instance's directory now fails hard: the
  // WAL sync wedges the engine (sticky bg_error_), and the SST sync during
  // the re-flush makes every auto-resume attempt fail too — so the partition
  // stays read-only for as long as the fault persists.
  int victim = store_->PartitionOf(keys_[0]);
  env_->SetPathFilter("instance-" + std::to_string(victim) + "/");
  env_->SetFailureOdds(FaultOp::kSync, 1, /*transient=*/false);

  // A transaction forces a synced WAL write on the victim partition.
  WriteBatch txn;
  txn.Put(keys_[0], "v0-txn");
  EXPECT_FALSE(store_->WriteTxn(&txn).ok());

  P2kvsHealth health = store_->Health();
  EXPECT_FALSE(health.AllHealthy());
  EXPECT_EQ(1, health.NumUnhealthy());
  EXPECT_NE(WorkerHealth::kHealthy, health.workers[static_cast<size_t>(victim)].health);

  // Degraded partition: reads served, writes refused immediately.
  std::string value;
  ASSERT_TRUE(store_->Get(keys_[0], &value).ok());
  EXPECT_EQ("v0", value);
  EXPECT_TRUE(store_->Put(keys_[0], "v0c").IsIOError());
  EXPECT_TRUE(store_->Put(keys_[0], "v0d").IsIOError());
  EXPECT_GT(store_->Health().workers[static_cast<size_t>(victim)].degraded_rejects, 0u);

  // The other partition is unaffected.
  ASSERT_TRUE(store_->Put(keys_[1], "v1b").ok());
  ASSERT_TRUE(store_->Get(keys_[1], &value).ok());
  EXPECT_EQ("v1b", value);

  // Once the fault clears, explicit Resume restores full service.
  env_->DisableAll();
  ASSERT_TRUE(store_->Resume().ok());
  EXPECT_TRUE(store_->Health().AllHealthy());
  ASSERT_TRUE(store_->Put(keys_[0], "v0e").ok());
  ASSERT_TRUE(store_->Get(keys_[0], &value).ok());
  EXPECT_EQ("v0e", value);
}

// The framework's own transaction log is a WAL writer too: transient faults
// on its appends/syncs are absorbed by the configured retry policy instead of
// failing the whole transaction.
TEST(TxnLogGovernanceTest, TransientTxnLogFaultsAreRetried) {
  auto base = NewMemEnv();
  ErrorInjectionEnv env(base.get());
  P2kvsOptions options;  // default retry: bounded retry on
  options.env = &env;
  options.num_workers = 2;
  options.pin_workers = false;
  Options lsm;
  lsm.env = &env;
  options.engine_factory = MakeRocksLiteFactory(lsm);
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2", &store).ok());

  env.SetPathFilter("TXNLOG");
  env.FailNext(FaultOp::kSync, 2, /*transient=*/true);
  WriteBatch txn;
  txn.Put("txnlog-key", "v1");
  EXPECT_TRUE(store->WriteTxn(&txn).ok());
  EXPECT_EQ(2u, env.injected_faults(FaultOp::kSync));
  std::string value;
  ASSERT_TRUE(store->Get("txnlog-key", &value).ok());
  EXPECT_EQ("v1", value);

  // A hard txn-log fault is not retried: the transaction fails up front.
  env.FailNext(FaultOp::kSync, 1, /*transient=*/false);
  WriteBatch txn2;
  txn2.Put("txnlog-key", "v2");
  EXPECT_TRUE(store->WriteTxn(&txn2).IsIOError());
}

}  // namespace
}  // namespace p2kvs
