// Crash-consistency tests (paper §4.5): power-loss simulation via
// FaultInjectionEnv for the LSM engine alone and for p2KVS GSN transactions
// ("we kill the p2KVS process during writing data and the results show that
// p2KVS can always be recovered to a consistent state").

#include <gtest/gtest.h>

#include <thread>

#include "src/core/p2kvs.h"
#include "src/io/fault_injection_env.h"
#include "src/io/mem_env.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

class LsmCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    fault_env_ = std::make_unique<FaultInjectionEnv>(base_env_.get());
    options_.env = fault_env_.get();
    options_.write_buffer_size = 64 * 1024;
    Open();
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }

  void CrashAndReopen() {
    db_.reset();
    ASSERT_TRUE(fault_env_->Crash().ok());
    Open();
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<FaultInjectionEnv> fault_env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(LsmCrashTest, SyncedWritesSurviveCrash) {
  WriteOptions sync_wo;
  sync_wo.sync = true;
  ASSERT_TRUE(db_->Put(sync_wo, "durable1", "v1").ok());
  ASSERT_TRUE(db_->Put(sync_wo, "durable2", "v2").ok());
  CrashAndReopen();
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "durable1", &value).ok());
  EXPECT_EQ("v1", value);
  ASSERT_TRUE(db_->Get(ReadOptions(), "durable2", &value).ok());
  EXPECT_EQ("v2", value);
}

TEST_F(LsmCrashTest, UnsyncedTailMayVanishButPrefixSurvives) {
  WriteOptions sync_wo;
  sync_wo.sync = true;
  WriteOptions async_wo;
  ASSERT_TRUE(db_->Put(sync_wo, "synced", "yes").ok());
  // Async writes after the sync point may be lost — crash must not corrupt.
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(async_wo, "maybe" + std::to_string(i), "v").ok());
  }
  CrashAndReopen();
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "synced", &value).ok());
  EXPECT_EQ("yes", value);
  // Whatever survived must be readable without corruption errors.
  for (int i = 0; i < 100; i++) {
    Status s = db_->Get(ReadOptions(), "maybe" + std::to_string(i), &value);
    ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
  }
}

TEST_F(LsmCrashTest, BatchIsAtomicAcrossCrash) {
  WriteOptions sync_wo;
  sync_wo.sync = true;
  // A synced batch is all-or-nothing in the WAL.
  WriteBatch batch;
  batch.Put("atom-a", "1");
  batch.Put("atom-b", "2");
  batch.Put("atom-c", "3");
  ASSERT_TRUE(db_->Write(sync_wo, &batch).ok());
  CrashAndReopen();
  std::string a, b, c;
  Status sa = db_->Get(ReadOptions(), "atom-a", &a);
  Status sb = db_->Get(ReadOptions(), "atom-b", &b);
  Status sc = db_->Get(ReadOptions(), "atom-c", &c);
  EXPECT_TRUE(sa.ok() && sb.ok() && sc.ok());
}

TEST_F(LsmCrashTest, RepeatedCrashesConvergeToConsistentState) {
  Random rnd(303);
  WriteOptions sync_wo;
  sync_wo.sync = true;
  int generation = 0;
  for (int crash = 0; crash < 5; crash++) {
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(
          db_->Put(sync_wo, "gen", std::to_string(generation)).ok());
      generation++;
    }
    CrashAndReopen();
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), "gen", &value).ok());
    EXPECT_EQ(std::to_string(generation - 1), value);
  }
}

// --- p2KVS transaction crash tests ---

class P2kvsCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    fault_env_ = std::make_unique<FaultInjectionEnv>(base_env_.get());
    Open();
  }

  void Open() {
    Options lsm;
    lsm.env = fault_env_.get();
    lsm.write_buffer_size = 64 * 1024;
    P2kvsOptions options;
    options.env = fault_env_.get();
    options.num_workers = 4;
    options.pin_workers = false;
    options.engine_factory = MakeRocksLiteFactory(lsm);
    ASSERT_TRUE(P2KVS::Open(options, "/p2", &store_).ok());
  }

  void CrashAndReopen() {
    store_.reset();
    ASSERT_TRUE(fault_env_->Crash().ok());
    Open();
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<FaultInjectionEnv> fault_env_;
  std::unique_ptr<P2KVS> store_;
};

TEST_F(P2kvsCrashTest, CommittedTxnSurvivesCrash) {
  WriteBatch batch;
  for (int i = 0; i < 40; i++) {
    batch.Put("ckey" + std::to_string(i), "cval" + std::to_string(i));
  }
  ASSERT_TRUE(store_->WriteTxn(&batch).ok());
  CrashAndReopen();
  // The txn spanned all 4 instances; every piece must be present.
  for (int i = 0; i < 40; i++) {
    std::string value;
    ASSERT_TRUE(store_->Get("ckey" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ("cval" + std::to_string(i), value);
  }
}

TEST_F(P2kvsCrashTest, UncommittedTxnRollsBackEverywhere) {
  // Simulate a crash *between* the sub-batch writes and the commit record:
  // write the sub-batches with a GSN directly (bypassing WriteTxn's commit).
  // After recovery none of the keys may be visible, even though every
  // instance durably logged its sub-batch.
  const uint64_t fake_gsn = 9999;
  // Log only the begin record, as WriteTxn would.
  {
    // Reach into the same txn-log file the store uses.
    std::unique_ptr<TxnLog> log;
    // The store holds the file open; emulate instead by writing sub-batches
    // through the instances and never committing:
    for (int i = 0; i < 20; i++) {
      std::string key = "ukey" + std::to_string(i);
      int w = store_->PartitionOf(key);
      WriteBatch sub;
      sub.Put(key, "uval");
      KvWriteOptions kwo;
      kwo.gsn = fake_gsn;
      kwo.sync = true;
      ASSERT_TRUE(store_->instance(w)->Write(&sub, kwo).ok());
    }
  }
  // While running, the writes are visible (dirty state before crash)...
  std::string value;
  ASSERT_TRUE(store_->Get("ukey0", &value).ok());

  CrashAndReopen();
  // ...but recovery rolls back the whole transaction: gsn 9999 has no commit
  // record in the txn log.
  for (int i = 0; i < 20; i++) {
    Status s = store_->Get("ukey" + std::to_string(i), &value);
    EXPECT_TRUE(s.IsNotFound()) << "ukey" << i << " survived an uncommitted txn";
  }
}

TEST_F(P2kvsCrashTest, CommittedAndUncommittedMix) {
  // Committed txn A.
  WriteBatch a;
  a.Put("A1", "a1");
  a.Put("A2", "a2");
  ASSERT_TRUE(store_->WriteTxn(&a).ok());

  // Uncommitted writes with a GSN (simulated partial txn B).
  WriteBatch b;
  b.Put("B1", "b1");
  KvWriteOptions kwo;
  kwo.gsn = 123456;
  kwo.sync = true;
  ASSERT_TRUE(store_->instance(store_->PartitionOf("B1"))->Write(&b, kwo).ok());

  // Regular non-transactional synced write C.
  // (Routed through an instance directly so it is durable despite the
  // simulated crash cutting unsynced data.)
  WriteBatch c;
  c.Put("C1", "c1");
  KvWriteOptions c_kwo;
  c_kwo.sync = true;
  ASSERT_TRUE(store_->instance(store_->PartitionOf("C1"))->Write(&c, c_kwo).ok());

  CrashAndReopen();
  std::string value;
  EXPECT_TRUE(store_->Get("A1", &value).ok());
  EXPECT_TRUE(store_->Get("A2", &value).ok());
  EXPECT_TRUE(store_->Get("B1", &value).IsNotFound());
  EXPECT_TRUE(store_->Get("C1", &value).ok());
}

TEST_F(P2kvsCrashTest, KillDuringConcurrentWritesRecoversConsistently) {
  // The paper's experiment: kill during writing, recover, check consistency.
  std::atomic<bool> stop{false};
  std::atomic<int> committed_txns{0};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      WriteBatch batch;
      batch.Put("t" + std::to_string(i) + "-x", std::to_string(i));
      batch.Put("t" + std::to_string(i) + "-y", std::to_string(i));
      if (store_->WriteTxn(&batch).ok()) {
        committed_txns.fetch_add(1);
      }
      i++;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  writer.join();

  CrashAndReopen();
  // Every committed transaction must be atomically present: x present iff y
  // present with the same value.
  int present = 0;
  for (int i = 0; i < committed_txns.load() + 10; i++) {
    std::string x, y;
    Status sx = store_->Get("t" + std::to_string(i) + "-x", &x);
    Status sy = store_->Get("t" + std::to_string(i) + "-y", &y);
    ASSERT_EQ(sx.ok(), sy.ok()) << "torn transaction " << i;
    if (sx.ok()) {
      ASSERT_EQ(x, y) << "inconsistent transaction " << i;
      present++;
    }
  }
  // All transactions whose commit record was synced must be present.
  EXPECT_GE(present, committed_txns.load());
}

}  // namespace
}  // namespace p2kvs
