// p2KVS framework tests: partition routing, sync/async interfaces, OBM
// batching, RANGE/SCAN strategies, global iterator, transactions, and the
// three engine ports (RocksLite, LevelLite, WTLite).

#include "src/core/p2kvs.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <thread>

#include "src/io/mem_env.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

Options SmallLsmOptions(Env* env) {
  Options options;
  options.env = env;
  options.write_buffer_size = 64 * 1024;
  options.target_file_size = 32 * 1024;
  options.max_bytes_for_level_base = 128 * 1024;
  return options;
}

struct EngineCase {
  const char* name;
  enum Kind { kRocks, kLevel, kPebbles, kWt } kind;
};

class P2kvsEngineTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    p2options_.env = env_.get();
    p2options_.num_workers = 4;
    p2options_.pin_workers = false;
    p2options_.engine_factory = Factory();
    Reopen();
  }

  EngineFactory Factory() {
    switch (GetParam().kind) {
      case EngineCase::kRocks:
        return MakeRocksLiteFactory(SmallLsmOptions(env_.get()));
      case EngineCase::kLevel:
        return MakeLevelLiteFactory(SmallLsmOptions(env_.get()));
      case EngineCase::kPebbles:
        return MakePebblesLiteFactory(SmallLsmOptions(env_.get()));
      case EngineCase::kWt: {
        BTreeOptions bt;
        bt.env = env_.get();
        bt.buffer_pool_pages = 256;
        return MakeWTLiteFactory(bt);
      }
    }
    return nullptr;
  }

  void Reopen() {
    store_.reset();
    ASSERT_TRUE(P2KVS::Open(p2options_, "/p2", &store_).ok());
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = store_->Get(key, &value);
    if (s.IsNotFound()) {
      return "NOT_FOUND";
    }
    return s.ok() ? value : s.ToString();
  }

  std::unique_ptr<Env> env_;
  P2kvsOptions p2options_;
  std::unique_ptr<P2KVS> store_;
};

TEST_P(P2kvsEngineTest, PutGetDelete) {
  ASSERT_TRUE(store_->Put("alpha", "1").ok());
  ASSERT_TRUE(store_->Put("beta", "2").ok());
  EXPECT_EQ("1", Get("alpha"));
  EXPECT_EQ("2", Get("beta"));
  EXPECT_EQ("NOT_FOUND", Get("gamma"));
  ASSERT_TRUE(store_->Delete("alpha").ok());
  EXPECT_EQ("NOT_FOUND", Get("alpha"));
}

TEST_P(P2kvsEngineTest, KeysAreSpreadAcrossPartitions) {
  std::vector<int> hits(static_cast<size_t>(store_->num_workers()), 0);
  for (int i = 0; i < 4000; i++) {
    hits[static_cast<size_t>(store_->PartitionOf("user" + std::to_string(i)))]++;
  }
  for (int w = 0; w < store_->num_workers(); w++) {
    EXPECT_GT(hits[w], 4000 / store_->num_workers() / 2) << "partition " << w;
  }
}

TEST_P(P2kvsEngineTest, ManyKeysRoundTrip) {
  std::map<std::string, std::string> model;
  Random rnd(5);
  for (int i = 0; i < 3000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06u", rnd.Uniform(1500));
    model[key] = "v" + std::to_string(i);
    ASSERT_TRUE(store_->Put(key, model[key]).ok());
  }
  for (const auto& [k, v] : model) {
    ASSERT_EQ(v, Get(k)) << k;
  }
}

TEST_P(P2kvsEngineTest, ConcurrentUserThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(store_->Put(key, key).ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 37) {
      std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_EQ(key, Get(key));
    }
  }
}

TEST_P(P2kvsEngineTest, AsyncPutCompletes) {
  std::atomic<int> completions{0};
  std::atomic<int> errors{0};
  constexpr int kOps = 500;
  for (int i = 0; i < kOps; i++) {
    store_->PutAsync("async" + std::to_string(i), "v" + std::to_string(i),
                     [&](const Status& s) {
                       if (!s.ok()) {
                         errors.fetch_add(1);
                       }
                       completions.fetch_add(1);
                     });
  }
  while (completions.load() < kOps) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(0, errors.load());
  EXPECT_EQ("v123", Get("async123"));
}

TEST_P(P2kvsEngineTest, RangeSpansPartitions) {
  for (int i = 0; i < 300; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store_->Put(key, std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store_->Range("key000100", "key000110", &out).ok());
  ASSERT_EQ(10u, out.size());
  for (int i = 0; i < 10; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", 100 + i);
    EXPECT_EQ(key, out[i].first);
    EXPECT_EQ(std::to_string(100 + i), out[i].second);
  }
}

TEST_P(P2kvsEngineTest, ScanBothStrategiesAgree) {
  for (int i = 0; i < 300; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store_->Put(key, std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> parallel_out;
  ASSERT_TRUE(store_->Scan("key000050", 40, &parallel_out).ok());

  // Re-open with the serial global-merge strategy and compare.
  p2options_.scan_mode = P2kvsOptions::ScanMode::kGlobalMerge;
  Reopen();
  std::vector<std::pair<std::string, std::string>> merge_out;
  ASSERT_TRUE(store_->Scan("key000050", 40, &merge_out).ok());

  ASSERT_EQ(40u, parallel_out.size());
  ASSERT_EQ(parallel_out.size(), merge_out.size());
  for (size_t i = 0; i < parallel_out.size(); i++) {
    EXPECT_EQ(parallel_out[i], merge_out[i]) << i;
  }
}

TEST_P(P2kvsEngineTest, GlobalIteratorIsSorted) {
  for (int i = 0; i < 200; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store_->Put(key, "v").ok());
  }
  std::unique_ptr<Iterator> iter(store_->NewGlobalIterator());
  iter->SeekToFirst();
  int count = 0;
  std::string last;
  while (iter->Valid()) {
    ASSERT_GT(iter->key().ToString(), last);
    last = iter->key().ToString();
    count++;
    iter->Next();
  }
  EXPECT_EQ(200, count);
}

TEST_P(P2kvsEngineTest, WaitIdleDrainsAsyncSubmissions) {
  constexpr int kOps = 300;
  std::atomic<int> completions{0};
  for (int i = 0; i < kOps; i++) {
    store_->PutAsync("drain" + std::to_string(i), std::to_string(i),
                     [&](const Status&) { completions.fetch_add(1); });
  }
  // WaitIdle must drain the worker queues (per-worker barriers), not just
  // quiesce engine background work: once it returns, every callback has
  // fired and every write is readable.
  store_->WaitIdle().IgnoreError();
  EXPECT_EQ(kOps, completions.load());
  for (int i = 0; i < kOps; i += 13) {
    ASSERT_EQ(std::to_string(i), Get("drain" + std::to_string(i)));
  }
}

TEST_P(P2kvsEngineTest, ReopenRecoversData) {
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(store_->Put("persist" + std::to_string(i), std::to_string(i)).ok());
  }
  store_->FlushAll().IgnoreError();
  Reopen();
  for (int i = 0; i < 500; i += 17) {
    ASSERT_EQ(std::to_string(i), Get("persist" + std::to_string(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, P2kvsEngineTest,
    ::testing::Values(EngineCase{"rockslite", EngineCase::kRocks},
                      EngineCase{"levellite", EngineCase::kLevel},
                      EngineCase{"pebbleslite", EngineCase::kPebbles},
                      EngineCase{"wtlite", EngineCase::kWt}),
    [](const ::testing::TestParamInfo<EngineCase>& info) { return info.param.name; });

// --- OBM-specific behaviour (RocksLite engine) ---

class P2kvsObmTest : public ::testing::Test {
 protected:
  void Open(bool enable_obm, int num_workers = 2) {
    env_ = NewMemEnv();
    P2kvsOptions options;
    options.env = env_.get();
    options.num_workers = num_workers;
    options.pin_workers = false;
    options.enable_obm = enable_obm;
    options.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env_.get()));
    ASSERT_TRUE(P2KVS::Open(options, "/p2", &store_).ok());
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<P2KVS> store_;
};

TEST_F(P2kvsObmTest, BatchesFormUnderConcurrency) {
  Open(/*enable_obm=*/true, /*num_workers=*/1);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(
            store_->Put("t" + std::to_string(t) + "k" + std::to_string(i), "v").ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  P2kvsStats stats = store_->GetStats();
  // With 8 concurrent submitters and one worker, the queue backs up and the
  // OBM must merge at least some runs of writes.
  EXPECT_GT(stats.write_batches, 0u);
  EXPECT_GT(stats.AvgWriteBatchSize(), 1.0);
}

TEST_F(P2kvsObmTest, DisabledObmProcessesSingles) {
  Open(/*enable_obm=*/false);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v").ok());
  }
  P2kvsStats stats = store_->GetStats();
  EXPECT_EQ(0u, stats.write_batches);
  EXPECT_EQ(0u, stats.read_batches);
  EXPECT_GE(stats.singles, 100u);
}

TEST_F(P2kvsObmTest, ReadBatchesUseMultiGet) {
  Open(/*enable_obm=*/true, /*num_workers=*/1);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), std::to_string(i)).ok());
  }
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 300; i++) {
        std::string value;
        Status s = store_->Get("k" + std::to_string(i % 200), &value);
        if (!s.ok() || value != std::to_string(i % 200)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(0, mismatches.load());
  EXPECT_GT(store_->GetStats().read_batches, 0u);
}

TEST_F(P2kvsObmTest, MixedTypesNeverMergeAcrossType) {
  // Interleave writes and reads from many threads; correctness is the check
  // (a type-confused merge would corrupt results).
  Open(/*enable_obm=*/true, /*num_workers=*/1);
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 6; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 300; i++) {
        std::string key = "mixed" + std::to_string(i % 50);
        if (t % 2 == 0) {
          if (!store_->Put(key, "x").ok()) {
            errors.fetch_add(1);
          }
        } else {
          std::string value;
          Status s = store_->Get(key, &value);
          if (!s.ok() && !s.IsNotFound()) {
            errors.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(0, errors.load());
}

// --- Transactions ---

class P2kvsTxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    P2kvsOptions options;
    options.env = env_.get();
    options.num_workers = 4;
    options.pin_workers = false;
    options.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env_.get()));
    ASSERT_TRUE(P2KVS::Open(options, "/p2", &store_).ok());
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<P2KVS> store_;
};

TEST_F(P2kvsTxnTest, CrossInstanceTxnApplies) {
  WriteBatch batch;
  for (int i = 0; i < 50; i++) {
    batch.Put("txn-key-" + std::to_string(i), "txn-val-" + std::to_string(i));
  }
  ASSERT_TRUE(store_->WriteTxn(&batch).ok());
  for (int i = 0; i < 50; i++) {
    std::string value;
    ASSERT_TRUE(store_->Get("txn-key-" + std::to_string(i), &value).ok());
    EXPECT_EQ("txn-val-" + std::to_string(i), value);
  }
}

TEST_F(P2kvsTxnTest, TxnWithDeletes) {
  ASSERT_TRUE(store_->Put("a", "1").ok());
  ASSERT_TRUE(store_->Put("b", "2").ok());
  WriteBatch batch;
  batch.Delete("a");
  batch.Put("c", "3");
  ASSERT_TRUE(store_->WriteTxn(&batch).ok());
  std::string value;
  EXPECT_TRUE(store_->Get("a", &value).IsNotFound());
  ASSERT_TRUE(store_->Get("c", &value).ok());
  EXPECT_EQ("3", value);
}

// --- Bounded queues / backpressure ---

TEST(P2kvsBackpressureTest, BoundedQueuesCompleteEverythingAndReportDepth) {
  auto env = NewMemEnv();
  P2kvsOptions options;
  options.env = env.get();
  options.num_workers = 2;
  options.pin_workers = false;
  options.queue_capacity = 4;
  options.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env.get()));
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2", &store).ok());

  // Hammer the tiny queues from several threads with the SYNCHRONOUS API:
  // sync producers park at capacity (backpressure) rather than dropping or
  // failing, so every op completes. (The async API makes the opposite
  // promise — never block — and sheds instead; see AsyncShedsOnFullQueue.)
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        Status s = store->Put("bp" + std::to_string(t) + "-" + std::to_string(i), "v");
        if (!s.ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_TRUE(store->WaitIdle().ok());
  EXPECT_EQ(0, errors.load());

  P2kvsStats stats = store->GetStats();
  ASSERT_EQ(2u, stats.queue_depths.size());
  for (size_t depth : stats.queue_depths) {
    EXPECT_EQ(0u, depth);  // drained after WaitIdle
  }
  EXPECT_EQ(0u, stats.degraded_rejects);
  EXPECT_EQ(0u, stats.shed);  // sync path parks, never sheds
  EXPECT_EQ(static_cast<uint64_t>(kThreads * kPerThread),
            stats.writes_batched + stats.singles);
}

TEST(P2kvsBackpressureTest, AsyncShedsOnFullQueue) {
  auto env = NewMemEnv();
  P2kvsOptions options;
  options.env = env.get();
  options.num_workers = 1;
  options.pin_workers = false;
  options.queue_capacity = 2;
  options.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env.get()));
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2", &store).ok());

  // Wedge the single worker inside one request so the queue backs up, then
  // overfill it from this thread. PutAsync must never block: each submission
  // either enqueues or completes inline with the Busy shed status.
  std::promise<void> release;
  std::shared_future<void> released(release.get_future().share());
  std::atomic<int> gate_done{0};
  store->PutAsync("gate", "v", [&, released](const Status&) {
    released.wait();
    gate_done.fetch_add(1);
  });

  constexpr int kSubmissions = 64;
  std::atomic<int> ok_count{0};
  std::atomic<int> busy_count{0};
  std::atomic<int> other_count{0};
  for (int i = 0; i < kSubmissions; i++) {
    store->PutAsync("k" + std::to_string(i), "v", [&](const Status& s) {
      if (s.ok()) {
        ok_count.fetch_add(1);
      } else if (s.IsBusy()) {
        busy_count.fetch_add(1);
      } else {
        other_count.fetch_add(1);
      }
    });
  }
  // All submissions returned while the worker was still wedged: the loop
  // above finishing before release is the "never parks" assertion.
  release.set_value();
  ASSERT_TRUE(store->WaitIdle().ok());

  EXPECT_EQ(1, gate_done.load());
  EXPECT_EQ(kSubmissions, ok_count.load() + busy_count.load() + other_count.load());
  EXPECT_GT(busy_count.load(), 0);  // capacity 2 cannot absorb 64 submissions
  EXPECT_EQ(0, other_count.load());

  P2kvsStats stats = store->GetStats();
  EXPECT_EQ(static_cast<uint64_t>(busy_count.load()), stats.shed);
}

TEST(P2kvsBackpressureTest, GetStatsAsyncFromWorkerCallbackCompletes) {
  auto env = NewMemEnv();
  P2kvsOptions options;
  options.env = env.get();
  options.num_workers = 1;
  options.pin_workers = false;
  options.queue_capacity = 1;  // any parking submit from the callback deadlocks
  options.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env.get()));
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2", &store).ok());

  // A stats request issued from a completion callback runs on the worker
  // thread itself. The control-plane path (SubmitControl) bypasses the
  // capacity bound, so this completes even with the tiny full queue — the
  // exact self-deadlock the blocking-context lint rule rejects for Submit.
  std::promise<bool> got_stats;
  store->PutAsync("k", "v", [&](const Status&) {
    store->GetStatsAsync([&](P2kvsStats stats) {
      got_stats.set_value(stats.queue_depths.size() == 1);
    });
  });
  auto fut = got_stats.get_future();
  ASSERT_EQ(std::future_status::ready, fut.wait_for(std::chrono::seconds(30)));
  EXPECT_TRUE(fut.get());
  ASSERT_TRUE(store->WaitIdle().ok());
}

TEST_F(P2kvsTxnTest, WtLiteRejectsTxn) {
  BTreeOptions bt;
  bt.env = env_.get();
  P2kvsOptions options;
  options.env = env_.get();
  options.num_workers = 2;
  options.pin_workers = false;
  options.engine_factory = MakeWTLiteFactory(bt);
  std::unique_ptr<P2KVS> wt_store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2wt", &wt_store).ok());
  WriteBatch batch;
  batch.Put("x", "1");
  EXPECT_TRUE(wt_store->WriteTxn(&batch).IsNotSupported());
}

}  // namespace
}  // namespace p2kvs
