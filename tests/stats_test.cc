// Observability tests: race-free GetStats() aggregation via kStats drain
// requests, stage/batch accounting invariants (P2kvsStats::SelfCheck), the
// EventListener callback surface, the periodic stats reporter, and the
// stats-disabled mode. ConcurrentGetStatsUnderLoad is the TSan regression
// test for the racy live cross-worker aggregation this subsystem replaced.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/p2kvs.h"
#include "src/io/error_injection_env.h"
#include "src/io/mem_env.h"

namespace p2kvs {
namespace {

Options SmallLsmOptions(Env* env) {
  Options options;
  options.env = env;
  options.write_buffer_size = 64 * 1024;
  options.target_file_size = 32 * 1024;
  options.max_bytes_for_level_base = 128 * 1024;
  return options;
}

class StatsTest : public ::testing::Test {
 protected:
  void Open(int num_workers = 2, bool enable_stats = true) {
    env_ = NewMemEnv();
    options_ = P2kvsOptions();
    options_.env = env_.get();
    options_.num_workers = num_workers;
    options_.pin_workers = false;
    options_.enable_stats = enable_stats;
    options_.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env_.get()));
    ASSERT_TRUE(P2KVS::Open(options_, "/p2", &store_).ok());
  }

  std::unique_ptr<Env> env_;
  P2kvsOptions options_;
  std::unique_ptr<P2KVS> store_;
};

TEST_F(StatsTest, StageAndBatchAccountingIsExact) {
  Open();
  constexpr int kPuts = 60;
  constexpr int kGets = 40;
  for (int i = 0; i < kPuts; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  std::string value;
  for (int i = 0; i < kGets; i++) {
    ASSERT_TRUE(store_->Get("k" + std::to_string(i), &value).ok());
  }

  std::vector<std::string> storage;
  for (int i = 0; i < kPuts; i++) {
    storage.push_back("k" + std::to_string(i));
  }
  std::vector<Slice> keys(storage.begin(), storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  for (const Status& s : statuses) {
    ASSERT_TRUE(s.ok());
  }

  // MultiWrite dispatches one pre-built kWriteBatch request per involved
  // partition; each counts as one single dispatch at the request granularity.
  WriteBatch batch;
  std::set<int> mw_partitions;
  for (int i = 0; i < 30; i++) {
    std::string key = "mw" + std::to_string(i);
    batch.Put(key, "x");
    mw_partitions.insert(store_->PartitionOf(key));
  }
  ASSERT_TRUE(store_->MultiWrite(&batch).ok());

  std::vector<std::pair<std::string, std::string>> pairs;
  ASSERT_TRUE(store_->Range("", "", &pairs).ok());  // one sub-RANGE per worker

  store_->WaitIdle().IgnoreError();
  P2kvsStats stats = store_->GetStats();
  ASSERT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();

  // Sequential sync ops never find a batching partner: each Put/Get is one
  // single dispatch. MultiGet covers every key through pre-merged groups.
  const uint64_t expected_singles =
      kPuts + kGets + mw_partitions.size() + static_cast<size_t>(store_->num_workers());
  EXPECT_EQ(expected_singles, stats.totals.singles);
  EXPECT_EQ(static_cast<uint64_t>(kPuts), stats.totals.reads_batched);
  EXPECT_EQ(expected_singles + kPuts, stats.totals.requests_executed());
  EXPECT_EQ(stats.requests_submitted, stats.totals.requests_executed());

  // The batch-size histogram counts dispatches and covers every request.
  EXPECT_EQ(stats.totals.write_batches + stats.totals.read_batches + stats.totals.singles,
            stats.totals.batch_size.Count());

  // Every stage observed time, and the per-stage split stays inside the
  // end-to-end window.
  const WorkerStatsSnapshot& t = stats.totals;
  EXPECT_GT(t.queue_wait_us.Count(), 0u);
  EXPECT_GT(t.execute_us.Count(), 0u);
  EXPECT_GT(t.end_to_end_us.Count(), 0u);
  EXPECT_GT(t.execute_nanos, 0u);
  EXPECT_GT(t.end_to_end_nanos, 0u);
  EXPECT_LE(t.stage_nanos_sum(), t.end_to_end_nanos);

  // Engine-side breakdown and foreground IO were harvested from the worker
  // threads' thread-locals.
  EXPECT_GT(t.engine.wal_nanos + t.engine.memtable_nanos, 0u);
  EXPECT_GT(t.fg_bytes_written, 0u);
  EXPECT_GT(t.fg_write_ops, 0u);

  // Per-worker snapshots carry ids and sum to the totals.
  ASSERT_EQ(static_cast<size_t>(store_->num_workers()), stats.workers.size());
  uint64_t sum = 0;
  for (int i = 0; i < store_->num_workers(); i++) {
    EXPECT_EQ(i, stats.workers[static_cast<size_t>(i)].worker_id);
    sum += stats.workers[static_cast<size_t>(i)].requests_executed();
  }
  EXPECT_EQ(t.requests_executed(), sum);
}

TEST_F(StatsTest, StatsRequestsAreNotCountedAsTraffic) {
  Open();
  ASSERT_TRUE(store_->Put("a", "1").ok());
  store_->WaitIdle().IgnoreError();
  P2kvsStats first = store_->GetStats();
  // Drains (GetStats barriers) must not perturb the counters they read.
  for (int i = 0; i < 10; i++) {
    store_->GetStats();
    store_->WaitIdle().IgnoreError();
  }
  P2kvsStats second = store_->GetStats();
  EXPECT_EQ(first.totals.requests_executed(), second.totals.requests_executed());
  EXPECT_EQ(first.totals.batch_size.Count(), second.totals.batch_size.Count());
}

// The TSan regression test for the bug this subsystem fixed: aggregation used
// to read live workers' counters and thread-locals while the workers were
// mutating them. Writers, readers, and concurrent GetStats() callers now race
// against nothing: every snapshot travels through a kStats drain request.
TEST_F(StatsTest, ConcurrentGetStatsUnderLoad) {
  Open(/*num_workers=*/4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([this, t, &stop] {
      int i = 0;
      std::string value;
      while (!stop.load(std::memory_order_relaxed)) {
        std::string key = "w" + std::to_string(t) + "-" + std::to_string(i % 256);
        store_->Put(key, std::to_string(i)).IgnoreError();
        store_->Get(key, &value).IgnoreError();
        i++;
      }
    });
  }
  for (int t = 0; t < 2; t++) {
    threads.emplace_back([this, &stop] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        P2kvsStats stats = store_->GetStats();
        Status s = stats.SelfCheck();
        EXPECT_TRUE(s.ok()) << s.ToString();
        // Executed-request totals are monotone across snapshots.
        EXPECT_GE(stats.totals.requests_executed(), last);
        last = stats.totals.requests_executed();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : threads) {
    t.join();
  }
  store_->WaitIdle().IgnoreError();
  EXPECT_TRUE(store_->GetStats().SelfCheck().ok());
}

TEST_F(StatsTest, DisabledStatsKeepsCountersAndSkipsTimings) {
  Open(/*num_workers=*/2, /*enable_stats=*/false);
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(store_->Put("d" + std::to_string(i), "v").ok());
  }
  store_->WaitIdle().IgnoreError();
  P2kvsStats stats = store_->GetStats();
  // Throughput counters keep working; the recorder was never fed (the hot
  // path takes zero clock reads), and SelfCheck knows that mode.
  EXPECT_EQ(50u, stats.totals.requests_executed());
  EXPECT_EQ(0u, stats.totals.stage_nanos_sum());
  EXPECT_EQ(0u, stats.totals.end_to_end_nanos);
  EXPECT_EQ(0u, stats.totals.batch_size.Count());
  EXPECT_TRUE(stats.SelfCheck().ok());
}

TEST_F(StatsTest, StatsStringAndJsonCarryTheBreakdown) {
  Open();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(store_->Put("s" + std::to_string(i), "v").ok());
  }
  store_->WaitIdle().IgnoreError();

  std::string text = store_->GetStatsString();
  EXPECT_NE(std::string::npos, text.find("queue_wait")) << text;
  EXPECT_NE(std::string::npos, text.find("execute")) << text;
  EXPECT_NE(std::string::npos, text.find("end_to_end")) << text;
  EXPECT_NE(std::string::npos, text.find("batch_size")) << text;
  EXPECT_NE(std::string::npos, text.find("wal=")) << text;
  EXPECT_NE(std::string::npos, text.find("worker 0:")) << text;
  EXPECT_NE(std::string::npos, text.find("worker 1:")) << text;

  std::string json = store_->GetStats().ToJson();
  EXPECT_NE(std::string::npos, json.find("\"p2kvs_stats\"")) << json;
  EXPECT_NE(std::string::npos, json.find("\"workers\"")) << json;
  EXPECT_NE(std::string::npos, json.find("\"totals\"")) << json;
  EXPECT_NE(std::string::npos, json.find("\"engine\"")) << json;
  EXPECT_NE(std::string::npos, json.find("\"batch_size\"")) << json;
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ---------------- EventListener surface ----------------

class CountingListener : public EventListener {
 public:
  void OnFlushCompleted(int worker_id, const FlushEventInfo& info) override {
    flushes.fetch_add(1);
    if (info.bytes_written > 0) {
      flush_bytes.fetch_add(info.bytes_written);
    }
    last_worker.store(worker_id);
  }
  void OnCompactionCompleted(int, const CompactionEventInfo&) override {
    compactions.fetch_add(1);
  }
  void OnWriteStalled(int, const StallEventInfo&) override { stalls.fetch_add(1); }
  void OnHealthTransition(int worker_id, WorkerHealth from, WorkerHealth to) override {
    transitions.fetch_add(1);
    if (from == WorkerHealth::kHealthy && to == WorkerHealth::kDegraded) {
      degradations.fetch_add(1);
    }
    if (to == WorkerHealth::kHealthy) {
      recoveries.fetch_add(1);
    }
    last_worker.store(worker_id);
  }
  void OnStatsDump(const std::string& stats_json) override {
    dumps.fetch_add(1);
    json_ok.store(stats_json.find("\"p2kvs_stats\"") != std::string::npos);
  }

  std::atomic<int> flushes{0};
  std::atomic<uint64_t> flush_bytes{0};
  std::atomic<int> compactions{0};
  std::atomic<int> stalls{0};
  std::atomic<int> transitions{0};
  std::atomic<int> degradations{0};
  std::atomic<int> recoveries{0};
  std::atomic<int> dumps{0};
  std::atomic<bool> json_ok{false};
  std::atomic<int> last_worker{-1};
};

TEST(EventListenerTest, FlushEventsCarryWorkerAttribution) {
  auto env = NewMemEnv();
  auto listener = std::make_shared<CountingListener>();
  P2kvsOptions options;
  options.env = env.get();
  options.num_workers = 2;
  options.pin_workers = false;
  options.listener = listener;
  options.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env.get()));
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2", &store).ok());

  std::string value(1024, 'x');
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(store->Put("f" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(store->FlushAll().ok());
  store->WaitIdle().IgnoreError();
  EXPECT_GE(listener->flushes.load(), 1);
  EXPECT_GT(listener->flush_bytes.load(), 0u);
  EXPECT_GE(listener->last_worker.load(), 0);
  store.reset();  // listener must outlive the store
}

TEST(EventListenerTest, HealthTransitionsAreReported) {
  auto base = NewMemEnv();
  ErrorInjectionEnv env(base.get());
  auto listener = std::make_shared<CountingListener>();
  Options lsm = SmallLsmOptions(&env);
  lsm.wal_retry.max_attempts = 1;
  P2kvsOptions options;
  options.env = &env;
  options.num_workers = 2;
  options.pin_workers = false;
  options.retry.max_attempts = 1;
  options.listener = listener;
  options.engine_factory = MakeRocksLiteFactory(lsm);
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2", &store).ok());

  // Find a key on partition 0 and wedge that instance with a hard sync fault.
  std::string key0;
  for (int i = 0; key0.empty(); i++) {
    std::string key = "h" + std::to_string(i);
    if (store->PartitionOf(key) == 0) {
      key0 = key;
    }
  }
  ASSERT_TRUE(store->Put(key0, "before").ok());
  env.SetPathFilter("instance-0/");
  env.SetFailureOdds(FaultOp::kSync, 1, /*transient=*/false);
  WriteBatch txn;
  txn.Put(key0, "wedge");
  ASSERT_FALSE(store->WriteTxn(&txn).ok());
  EXPECT_EQ(1, listener->degradations.load());
  EXPECT_EQ(0, listener->last_worker.load());

  // Recovery is a transition too, and the counter surfaces in GetStats().
  env.DisableAll();
  ASSERT_TRUE(store->Resume().ok());
  EXPECT_GE(listener->recoveries.load(), 1);
  EXPECT_GE(listener->transitions.load(), 2);
  P2kvsStats stats = store->GetStats();
  EXPECT_GE(stats.totals.health_transitions, 2u);
  store.reset();
}

TEST(EventListenerTest, PeriodicReporterDumpsJson) {
  auto env = NewMemEnv();
  auto listener = std::make_shared<CountingListener>();
  P2kvsOptions options;
  options.env = env.get();
  options.num_workers = 2;
  options.pin_workers = false;
  options.listener = listener;
  options.stats_dump_period_ms = 20;
  options.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env.get()));
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2", &store).ok());

  ASSERT_TRUE(store->Put("p", "v").ok());
  // The reporter thread calls GetStats() every period and hands the JSON to
  // the listener; give it a few periods.
  for (int i = 0; i < 100 && listener->dumps.load() < 2; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(listener->dumps.load(), 2);
  EXPECT_TRUE(listener->json_ok.load());
  store.reset();  // joins the reporter before stopping workers
}

// ---------------- Worker-thread caller detection ----------------
//
// GetStats()'s drain request and WaitIdle()'s barrier both queue behind the
// request whose handler is currently running — calling either from a worker
// thread used to be a guaranteed silent self-deadlock. They must now detect
// the worker-thread caller and fail fast. If detection regresses, these
// tests hang and the ctest timeout catches it.

TEST_F(StatsTest, GetStatsAndWaitIdleFromWorkerCallbackFailFast) {
  Open(/*num_workers=*/2);
  std::atomic<bool> done{false};
  Status stats_status, idle_status;
  P2kvsStats scratch;
  store_->PutAsync("wk", "v", [&](const Status& s) {
    ASSERT_TRUE(s.ok());
    stats_status = store_->GetStats(&scratch);  // runs on the worker thread
    idle_status = store_->WaitIdle();
    done.store(true, std::memory_order_release);
  });
  for (int i = 0; i < 5000 && !done.load(std::memory_order_acquire); i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(done.load(std::memory_order_acquire));
  EXPECT_TRUE(stats_status.IsInvalidArgument()) << stats_status.ToString();
  EXPECT_TRUE(idle_status.IsInvalidArgument()) << idle_status.ToString();
  // From a non-worker thread both still work.
  EXPECT_TRUE(store_->GetStats(&scratch).ok());
  EXPECT_TRUE(store_->WaitIdle().ok());
}

TEST_F(StatsTest, GetStatsAsyncWorksFromWorkerCallback) {
  Open(/*num_workers=*/2);
  ASSERT_TRUE(store_->Put("seed", "v").ok());
  std::atomic<bool> done{false};
  P2kvsStats observed;
  store_->PutAsync("wk2", "v", [&](const Status& s) {
    ASSERT_TRUE(s.ok());
    // The non-blocking alternative the fail-fast error message points at.
    store_->GetStatsAsync([&](P2kvsStats stats) {
      observed = std::move(stats);
      done.store(true, std::memory_order_release);
    });
  });
  for (int i = 0; i < 5000 && !done.load(std::memory_order_acquire); i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(done.load(std::memory_order_acquire));
  EXPECT_GE(observed.requests_submitted, 2u);
  EXPECT_TRUE(observed.SelfCheck().ok()) << observed.SelfCheck().ToString();
}

// The original bug report: an EventListener hook (which runs on a worker
// thread for health transitions) calling GetStats()/WaitIdle().
class StatsCallingListener : public EventListener {
 public:
  void OnHealthTransition(int, WorkerHealth, WorkerHealth to) override {
    if (to != WorkerHealth::kHealthy) {
      P2KVS* store = store_ptr.load(std::memory_order_acquire);
      P2kvsStats scratch;
      stats_status = store->GetStats(&scratch);
      idle_status = store->WaitIdle();
      fired.store(true, std::memory_order_release);
    }
  }
  std::atomic<P2KVS*> store_ptr{nullptr};
  Status stats_status, idle_status;  // written before `fired` release-store
  std::atomic<bool> fired{false};
};

TEST(EventListenerTest, GetStatsFromHealthTransitionCallbackFailsFast) {
  auto base = NewMemEnv();
  ErrorInjectionEnv env(base.get());
  auto listener = std::make_shared<StatsCallingListener>();
  Options lsm = SmallLsmOptions(&env);
  lsm.wal_retry.max_attempts = 1;
  P2kvsOptions options;
  options.env = &env;
  options.num_workers = 2;
  options.pin_workers = false;
  options.retry.max_attempts = 1;
  options.listener = listener;
  options.engine_factory = MakeRocksLiteFactory(lsm);
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2", &store).ok());
  listener->store_ptr.store(store.get(), std::memory_order_release);

  std::string key0;
  for (int i = 0; key0.empty(); i++) {
    std::string key = "h" + std::to_string(i);
    if (store->PartitionOf(key) == 0) {
      key0 = key;
    }
  }
  ASSERT_TRUE(store->Put(key0, "before").ok());
  // Hard sync fault on instance 0: the next synced write degrades the
  // partition, firing OnHealthTransition on the worker thread itself.
  env.SetPathFilter("instance-0/");
  env.SetFailureOdds(FaultOp::kSync, 1, /*transient=*/false);
  WriteBatch txn;
  txn.Put(key0, "wedge");
  ASSERT_FALSE(store->WriteTxn(&txn).ok());

  ASSERT_TRUE(listener->fired.load(std::memory_order_acquire));
  EXPECT_TRUE(listener->stats_status.IsInvalidArgument())
      << listener->stats_status.ToString();
  EXPECT_TRUE(listener->idle_status.IsInvalidArgument())
      << listener->idle_status.ToString();

  env.DisableAll();
  store.reset();
}

}  // namespace
}  // namespace p2kvs
