// Direct unit tests of the Worker's opportunistic batching mechanism (paper
// Algorithm 1) against a mock engine that records every engine call. These
// pin down the algorithm's exact semantics: merge only consecutive same-type
// requests, respect the max-batch bound, never merge GSN-tagged batches,
// fall back per-request when the engine lacks batch APIs, and never wait for
// more requests.

#include "src/core/worker.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <map>
#include <thread>

#include "src/util/iterator.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {
namespace {

// Engine call trace: "write(3)" = batch of 3, "put", "get", "multiget(4)".
class MockEngine final : public KVStore {
 public:
  struct Behavior {
    bool batch_write = true;
    bool multi_get = true;
    // The worker outruns producers unless processing is slowed a little.
    int op_delay_us = 0;
    // Fault knobs (error governance): >0 fails that many write ops, then
    // succeeds; -1 fails every write until Resume() clears it; 0 disables.
    int fail_writes = 0;
    // Injected write faults are tagged transient (retryable) vs hard.
    bool transient_faults = false;
    // Every MultiGet returns IOError for all keys.
    bool fail_multiget = false;
    // Whether Resume() succeeds (a refused resume keeps the worker degraded).
    bool allow_resume = true;
  };

  explicit MockEngine(Behavior behavior)
      : behavior_(behavior),
        fail_writes_(behavior.fail_writes),
        allow_resume_(behavior.allow_resume) {}

  EngineCaps caps() const override {
    EngineCaps caps;
    caps.batch_write = behavior_.batch_write;
    caps.multi_get = behavior_.multi_get;
    return caps;
  }

  Status Put(const Slice& key, const Slice& value, const KvWriteOptions&) override {
    Record("put");
    Status s = MaybeFailWrite();
    if (!s.ok()) {
      return s;
    }
    data_[key.ToString()] = value.ToString();
    return Status::OK();
  }

  Status Delete(const Slice& key, const KvWriteOptions&) override {
    Record("delete");
    Status s = MaybeFailWrite();
    if (!s.ok()) {
      return s;
    }
    data_.erase(key.ToString());
    return Status::OK();
  }

  Status Write(WriteBatch* batch, const KvWriteOptions& options) override {
    Record("write(" + std::to_string(batch->Count()) + ")" +
           (options.gsn != 0 ? "+gsn" : ""));
    Status s = MaybeFailWrite();
    if (!s.ok()) {
      return s;
    }
    struct Applier : public WriteBatch::Handler {
      std::map<std::string, std::string>* data;
      void Put(const Slice& k, const Slice& v) override { (*data)[k.ToString()] = v.ToString(); }
      void Delete(const Slice& k) override { data->erase(k.ToString()); }
    };
    Applier applier;
    applier.data = &data_;
    return batch->Iterate(&applier);
  }

  Status Get(const Slice& key, std::string* value) override {
    Record("get");
    auto it = data_.find(key.ToString());
    if (it == data_.end()) {
      return Status::NotFound(key);
    }
    *value = it->second;
    return Status::OK();
  }

  std::vector<Status> MultiGet(const std::vector<Slice>& keys,
                               std::vector<std::string>* values) override {
    Record("multiget(" + std::to_string(keys.size()) + ")");
    std::vector<Status> statuses(keys.size());
    values->assign(keys.size(), std::string());
    if (behavior_.fail_multiget) {
      for (Status& s : statuses) {
        s = Status::IOError("mock multiget fault");
      }
      return statuses;
    }
    for (size_t i = 0; i < keys.size(); i++) {
      auto it = data_.find(keys[i].ToString());
      if (it == data_.end()) {
        statuses[i] = Status::NotFound(keys[i]);
      } else {
        (*values)[i] = it->second;
      }
    }
    return statuses;
  }

  Iterator* NewIterator() override { return NewEmptyIterator(); }

  // Error governance: a successful resume clears any sticky write failure.
  // Not recorded in the trace so tests can assert "the engine saw no write".
  Status Resume() override {
    MutexLock lock(&mu_);
    resume_calls_++;
    if (!allow_resume_) {
      return Status::IOError("mock resume refused");
    }
    fail_writes_ = 0;
    return Status::OK();
  }

  void FailWrites(int n) {
    MutexLock lock(&mu_);
    fail_writes_ = n;
  }

  void AllowResume(bool allow) {
    MutexLock lock(&mu_);
    allow_resume_ = allow;
  }

  int resume_calls() const {
    MutexLock lock(&mu_);
    return resume_calls_;
  }

  std::vector<std::string> Trace() const {
    MutexLock lock(&mu_);
    return trace_;
  }

 private:
  void Record(const std::string& event) {
    if (behavior_.op_delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(behavior_.op_delay_us));
    }
    MutexLock lock(&mu_);
    trace_.push_back(event);
  }

  Status MaybeFailWrite() {
    MutexLock lock(&mu_);
    if (fail_writes_ == 0) {
      return Status::OK();
    }
    if (fail_writes_ > 0) {
      fail_writes_--;
    }
    return behavior_.transient_faults ? Status::TransientIOError("mock transient write fault")
                                      : Status::IOError("mock write fault");
  }

  const Behavior behavior_;
  mutable Mutex mu_;
  std::vector<std::string> trace_ GUARDED_BY(mu_);
  // Touched only by the worker thread that owns this engine; the tests read
  // it after Stop() joins the worker, so no lock is needed.
  std::map<std::string, std::string> data_;
  int fail_writes_ GUARDED_BY(mu_) = 0;
  bool allow_resume_ GUARDED_BY(mu_) = true;
  int resume_calls_ GUARDED_BY(mu_) = 0;
};

class ObmWorkerTest : public ::testing::Test {
 protected:
  void Start(MockEngine::Behavior behavior, bool enable_obm = true, int max_batch = 32,
             const std::function<void(Worker::Config&)>& tweak = nullptr) {
    auto engine = std::make_unique<MockEngine>(behavior);
    engine_ = engine.get();
    Worker::Config config;
    config.id = 0;
    config.pin_to_cpu = false;
    config.enable_obm = enable_obm;
    config.max_batch_size = max_batch;
    if (tweak) {
      tweak(config);
    }
    worker_ = std::make_unique<Worker>(config, std::move(engine));
    // Note: Start() is deferred so tests can pre-fill the queue; a batch can
    // only form from requests that are *already* queued (opportunism).
  }

  // Enqueue a sync put without waiting.
  std::unique_ptr<Request> MakePut(const std::string& key, uint64_t gsn = 0) {
    auto r = std::make_unique<Request>();
    r->type = RequestType::kPut;
    r->key = key;
    r->value = "v";
    r->gsn = gsn;
    return r;
  }

  std::unique_ptr<Request> MakeGet(const std::string& key, std::string* out) {
    auto r = std::make_unique<Request>();
    r->type = RequestType::kGet;
    r->key = key;
    r->get_out = out;
    return r;
  }

  MockEngine* engine_ = nullptr;
  std::unique_ptr<Worker> worker_;
};

TEST_F(ObmWorkerTest, ConsecutiveWritesMergeIntoOneBatch) {
  Start(MockEngine::Behavior{});
  std::vector<std::unique_ptr<Request>> requests;
  for (int i = 0; i < 5; i++) {
    requests.push_back(MakePut("k" + std::to_string(i)));
    worker_->Submit(requests.back().get());
  }
  worker_->Start();
  for (auto& r : requests) {
    ASSERT_TRUE(r->Wait().ok());
  }
  auto trace = engine_->Trace();
  ASSERT_EQ(1u, trace.size());
  EXPECT_EQ("write(5)", trace[0]);
  EXPECT_EQ(1u, worker_->write_batches());
  EXPECT_EQ(5u, worker_->writes_batched());
}

TEST_F(ObmWorkerTest, MaxBatchBoundIsRespected) {
  Start(MockEngine::Behavior{}, true, /*max_batch=*/3);
  std::vector<std::unique_ptr<Request>> requests;
  for (int i = 0; i < 7; i++) {
    requests.push_back(MakePut("k" + std::to_string(i)));
    worker_->Submit(requests.back().get());
  }
  worker_->Start();
  for (auto& r : requests) {
    ASSERT_TRUE(r->Wait().ok());
  }
  auto trace = engine_->Trace();
  // 7 requests at bound 3 -> 3+3+1: two merged batches and one single put.
  ASSERT_EQ(3u, trace.size());
  EXPECT_EQ("write(3)", trace[0]);
  EXPECT_EQ("write(3)", trace[1]);
  EXPECT_EQ("put", trace[2]);
}

TEST_F(ObmWorkerTest, TypeChangeBreaksBatch) {
  Start(MockEngine::Behavior{});
  std::string out1, out2;
  std::vector<std::unique_ptr<Request>> requests;
  requests.push_back(MakePut("a"));
  requests.push_back(MakePut("b"));
  requests.push_back(MakeGet("a", &out1));
  requests.push_back(MakeGet("b", &out2));
  requests.push_back(MakePut("c"));
  for (auto& r : requests) {
    worker_->Submit(r.get());
  }
  worker_->Start();
  for (auto& r : requests) {
    ASSERT_TRUE(r->Wait().ok());
  }
  auto trace = engine_->Trace();
  ASSERT_EQ(3u, trace.size());
  EXPECT_EQ("write(2)", trace[0]);
  EXPECT_EQ("multiget(2)", trace[1]);
  EXPECT_EQ("put", trace[2]);
  EXPECT_EQ("v", out1);
  EXPECT_EQ("v", out2);
}

TEST_F(ObmWorkerTest, GsnBatchesNeverMerge) {
  Start(MockEngine::Behavior{});
  WriteBatch txn_batch;
  txn_batch.Put("txn-key", "txn-value");
  auto txn = std::make_unique<Request>();
  txn->type = RequestType::kWriteBatch;
  txn->batch = &txn_batch;
  txn->gsn = 99;

  std::vector<std::unique_ptr<Request>> requests;
  requests.push_back(MakePut("a"));
  worker_->Submit(requests.back().get());
  worker_->Submit(txn.get());
  requests.push_back(MakePut("b"));
  worker_->Submit(requests.back().get());
  worker_->Start();
  for (auto& r : requests) {
    ASSERT_TRUE(r->Wait().ok());
  }
  ASSERT_TRUE(txn->Wait().ok());
  auto trace = engine_->Trace();
  // "a" alone (the txn behind it is not mergeable), the txn alone, "b" alone.
  ASSERT_EQ(3u, trace.size());
  EXPECT_EQ("put", trace[0]);
  EXPECT_EQ("write(1)+gsn", trace[1]);
  EXPECT_EQ("put", trace[2]);
}

TEST_F(ObmWorkerTest, NoBatchWriteEngineGetsSingles) {
  MockEngine::Behavior behavior;
  behavior.batch_write = false;  // the WTLite profile
  Start(behavior);
  std::vector<std::unique_ptr<Request>> requests;
  for (int i = 0; i < 4; i++) {
    requests.push_back(MakePut("k" + std::to_string(i)));
    worker_->Submit(requests.back().get());
  }
  worker_->Start();
  for (auto& r : requests) {
    ASSERT_TRUE(r->Wait().ok());
  }
  auto trace = engine_->Trace();
  ASSERT_EQ(4u, trace.size());
  for (const std::string& event : trace) {
    EXPECT_EQ("put", event);
  }
  EXPECT_EQ(0u, worker_->write_batches());
}

TEST_F(ObmWorkerTest, ObmDisabledProcessesEverythingSingly) {
  Start(MockEngine::Behavior{}, /*enable_obm=*/false);
  std::vector<std::unique_ptr<Request>> requests;
  for (int i = 0; i < 4; i++) {
    requests.push_back(MakePut("k" + std::to_string(i)));
    worker_->Submit(requests.back().get());
  }
  worker_->Start();
  for (auto& r : requests) {
    ASSERT_TRUE(r->Wait().ok());
  }
  EXPECT_EQ(4u, engine_->Trace().size());
}

TEST_F(ObmWorkerTest, SingleRequestIsNotWrappedInABatch) {
  Start(MockEngine::Behavior{});
  worker_->Start();
  auto r = MakePut("lonely");
  worker_->Submit(r.get());
  ASSERT_TRUE(r->Wait().ok());
  auto trace = engine_->Trace();
  ASSERT_EQ(1u, trace.size());
  // A batch of one is executed as a plain put (no WriteBatch overhead).
  EXPECT_EQ("put", trace[0]);
}

TEST_F(ObmWorkerTest, ReadsMergeIntoMultiGet) {
  Start(MockEngine::Behavior{});
  // Seed data first.
  auto seed = MakePut("hot");
  worker_->Submit(seed.get());

  std::vector<std::string> outs(6);
  std::vector<std::unique_ptr<Request>> requests;
  for (int i = 0; i < 6; i++) {
    requests.push_back(MakeGet("hot", &outs[static_cast<size_t>(i)]));
    worker_->Submit(requests.back().get());
  }
  worker_->Start();
  ASSERT_TRUE(seed->Wait().ok());
  for (auto& r : requests) {
    ASSERT_TRUE(r->Wait().ok());
  }
  auto trace = engine_->Trace();
  ASSERT_EQ(2u, trace.size());
  EXPECT_EQ("put", trace[0]);
  EXPECT_EQ("multiget(6)", trace[1]);
  for (const std::string& out : outs) {
    EXPECT_EQ("v", out);
  }
}

TEST_F(ObmWorkerTest, StoppedWorkerAbortsNewRequests) {
  Start(MockEngine::Behavior{});
  worker_->Start();
  worker_->Stop();
  auto r = MakePut("too-late");
  worker_->Submit(r.get());
  EXPECT_TRUE(r->Wait().IsAborted());
}

// --- Error governance: failed groups, retries, degrade / resume. ---

// Regression: when the engine write for a merged group fails, EVERY request
// folded into that WriteBatch must observe the error — none may be silently
// acknowledged.
TEST_F(ObmWorkerTest, FailedWriteGroupFailsEveryMember) {
  MockEngine::Behavior behavior;
  behavior.fail_writes = 1;  // hard fault: exactly one engine write fails
  Start(behavior);
  std::vector<std::unique_ptr<Request>> requests;
  for (int i = 0; i < 5; i++) {
    requests.push_back(MakePut("k" + std::to_string(i)));
    worker_->Submit(requests.back().get());
  }
  worker_->Start();
  for (auto& r : requests) {
    EXPECT_TRUE(r->Wait().IsIOError());
  }
  auto trace = engine_->Trace();
  // One merged write reached the engine; its failure fanned out to all 5.
  ASSERT_EQ(1u, trace.size());
  EXPECT_EQ("write(5)", trace[0]);
  // A hard write fault degrades the partition.
  EXPECT_EQ(WorkerHealth::kDegraded, worker_->health());
}

// Same contract for a failed merged MultiGet: every read in the group
// observes its error status. Read faults do not degrade the partition.
TEST_F(ObmWorkerTest, FailedMultiGetGroupFailsEveryMember) {
  MockEngine::Behavior behavior;
  behavior.fail_multiget = true;
  Start(behavior);
  std::vector<std::string> outs(4);
  std::vector<std::unique_ptr<Request>> requests;
  for (int i = 0; i < 4; i++) {
    requests.push_back(MakeGet("k" + std::to_string(i), &outs[static_cast<size_t>(i)]));
    worker_->Submit(requests.back().get());
  }
  worker_->Start();
  for (auto& r : requests) {
    EXPECT_TRUE(r->Wait().IsIOError());
  }
  auto trace = engine_->Trace();
  ASSERT_EQ(1u, trace.size());
  EXPECT_EQ("multiget(4)", trace[0]);
  EXPECT_EQ(WorkerHealth::kHealthy, worker_->health());
}

TEST_F(ObmWorkerTest, TransientWriteFaultsAreRetriedToSuccess) {
  MockEngine::Behavior behavior;
  behavior.fail_writes = 2;
  behavior.transient_faults = true;
  Start(behavior);
  worker_->Start();
  auto r = MakePut("resilient");
  worker_->Submit(r.get());
  // Two transient faults are absorbed by the worker's bounded retry.
  EXPECT_TRUE(r->Wait().ok());
  auto trace = engine_->Trace();
  ASSERT_EQ(3u, trace.size());
  for (const std::string& event : trace) {
    EXPECT_EQ("put", event);
  }
  EXPECT_EQ(WorkerHealth::kHealthy, worker_->health());
}

TEST_F(ObmWorkerTest, DegradedWorkerServesReadsRejectsWritesFastThenResumes) {
  MockEngine::Behavior behavior;
  behavior.allow_resume = false;  // auto-resume attempts stay refused
  Start(behavior);
  worker_->Start();

  auto seed = MakePut("stable");
  worker_->Submit(seed.get());
  ASSERT_TRUE(seed->Wait().ok());

  engine_->FailWrites(-1);  // sticky: every engine write fails until Resume
  auto doomed = MakePut("doomed");
  worker_->Submit(doomed.get());
  EXPECT_TRUE(doomed->Wait().IsIOError());
  EXPECT_EQ(WorkerHealth::kDegraded, worker_->health());

  // Degraded partition keeps serving reads.
  std::string out;
  auto get = MakeGet("stable", &out);
  worker_->Submit(get.get());
  ASSERT_TRUE(get->Wait().ok());
  EXPECT_EQ("v", out);

  // Writes are rejected fast, without reaching the engine.
  size_t trace_before = engine_->Trace().size();
  auto rejected = MakePut("rejected");
  worker_->Submit(rejected.get());
  Status s = rejected->Wait();
  EXPECT_TRUE(s.IsIOError());
  EXPECT_NE(std::string::npos, s.ToString().find("degraded"));
  EXPECT_EQ(trace_before, engine_->Trace().size());
  EXPECT_GT(worker_->degraded_rejects(), 0u);

  // Explicit resume restores full service once the engine cooperates.
  engine_->AllowResume(true);
  ASSERT_TRUE(worker_->TryResume().ok());
  EXPECT_EQ(WorkerHealth::kHealthy, worker_->health());
  auto after = MakePut("after");
  worker_->Submit(after.get());
  EXPECT_TRUE(after->Wait().ok());
}

// The degraded worker heals itself: a rejected write triggers an auto-resume
// attempt, and once the engine recovers the write path reopens transparently.
TEST_F(ObmWorkerTest, AutoResumeHealsWhenEngineRecovers) {
  MockEngine::Behavior behavior;
  behavior.fail_writes = -1;  // sticky until Resume
  Start(behavior, true, 32,
        [](Worker::Config& config) { config.auto_resume_interval_us = 0; });
  worker_->Start();

  auto first = MakePut("first");
  worker_->Submit(first.get());
  EXPECT_TRUE(first->Wait().IsIOError());
  EXPECT_EQ(WorkerHealth::kDegraded, worker_->health());

  // Resume succeeds (clearing the sticky fault), so this write goes through
  // without any explicit intervention.
  auto second = MakePut("second");
  worker_->Submit(second.get());
  EXPECT_TRUE(second->Wait().ok());
  EXPECT_EQ(WorkerHealth::kHealthy, worker_->health());
  EXPECT_EQ(1, engine_->resume_calls());
  EXPECT_EQ(1u, worker_->resume_attempts());
}

TEST_F(ObmWorkerTest, AutoResumeGivesUpAfterMaxFailures) {
  MockEngine::Behavior behavior;
  behavior.fail_writes = -1;
  behavior.allow_resume = false;
  Start(behavior, true, 32, [](Worker::Config& config) {
    config.auto_resume_interval_us = 0;
    config.max_auto_resume_failures = 2;
  });
  worker_->Start();

  auto submit_put = [&](const std::string& key) {
    auto r = MakePut(key);
    worker_->Submit(r.get());
    return r->Wait();
  };

  EXPECT_TRUE(submit_put("a").IsIOError());  // engine fault -> degraded
  EXPECT_TRUE(submit_put("b").IsIOError());  // reject; failed auto-resume #1
  EXPECT_TRUE(submit_put("c").IsIOError());  // reject; failed auto-resume #2
  EXPECT_EQ(WorkerHealth::kFailed, worker_->health());

  // A failed partition stops burning resume attempts on every write.
  uint64_t attempts = worker_->resume_attempts();
  EXPECT_TRUE(submit_put("d").IsIOError());
  EXPECT_EQ(attempts, worker_->resume_attempts());

  // But an explicit Resume() can still revive it.
  engine_->AllowResume(true);
  ASSERT_TRUE(worker_->TryResume().ok());
  EXPECT_EQ(WorkerHealth::kHealthy, worker_->health());
  EXPECT_TRUE(submit_put("e").ok());
}

TEST_F(ObmWorkerTest, NotFoundPropagatesThroughMultiGet) {
  Start(MockEngine::Behavior{});
  auto seed = MakePut("exists");
  worker_->Submit(seed.get());
  std::string out1, out2;
  auto g1 = MakeGet("exists", &out1);
  auto g2 = MakeGet("missing", &out2);
  worker_->Submit(g1.get());
  worker_->Submit(g2.get());
  worker_->Start();
  ASSERT_TRUE(seed->Wait().ok());
  EXPECT_TRUE(g1->Wait().ok());
  EXPECT_TRUE(g2->Wait().IsNotFound());
  EXPECT_EQ("v", out1);
}

}  // namespace
}  // namespace p2kvs
