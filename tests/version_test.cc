// Unit tests for LSM metadata machinery: file naming, VersionEdit
// serialization, file-search helpers.

#include <gtest/gtest.h>

#include "src/lsm/filename.h"
#include "src/lsm/version_edit.h"
#include "src/lsm/version_set.h"

namespace p2kvs {
namespace {

// --- Filenames ---

TEST(FileNameTest, Construction) {
  EXPECT_EQ("/db/000007.log", LogFileName("/db", 7));
  EXPECT_EQ("/db/000123.sst", TableFileName("/db", 123));
  EXPECT_EQ("/db/MANIFEST-000005", DescriptorFileName("/db", 5));
  EXPECT_EQ("/db/CURRENT", CurrentFileName("/db"));
}

TEST(FileNameTest, ParseRoundTrip) {
  uint64_t number;
  FileType type;

  ASSERT_TRUE(ParseFileName("000007.log", &number, &type));
  EXPECT_EQ(7u, number);
  EXPECT_EQ(FileType::kLogFile, type);

  ASSERT_TRUE(ParseFileName("000123.sst", &number, &type));
  EXPECT_EQ(123u, number);
  EXPECT_EQ(FileType::kTableFile, type);

  ASSERT_TRUE(ParseFileName("MANIFEST-000005", &number, &type));
  EXPECT_EQ(5u, number);
  EXPECT_EQ(FileType::kDescriptorFile, type);

  ASSERT_TRUE(ParseFileName("CURRENT", &number, &type));
  EXPECT_EQ(FileType::kCurrentFile, type);

  ASSERT_TRUE(ParseFileName("LOCK", &number, &type));
  EXPECT_EQ(FileType::kLockFile, type);

  ASSERT_TRUE(ParseFileName("18446744073709551615.sst", &number, &type));
  EXPECT_EQ(~0ull, number);
}

TEST(FileNameTest, RejectsMalformed) {
  uint64_t number;
  FileType type;
  for (const char* bad : {"", "foo", "foo-dx-100.log", ".log", "100", "100.", "100.lop",
                          "MANIFEST", "MANIFEST-", "MANIFEST-3x", "CURRENT.lock"}) {
    EXPECT_FALSE(ParseFileName(bad, &number, &type)) << bad;
  }
}

// --- VersionEdit ---

static void CheckRoundTrip(const VersionEdit& edit) {
  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  ASSERT_TRUE(parsed.DecodeFrom(encoded).ok());
  std::string encoded2;
  parsed.EncodeTo(&encoded2);
  EXPECT_EQ(encoded, encoded2);
}

TEST(VersionEditTest, EncodeDecodeRoundTrip) {
  static const uint64_t kBig = 1ull << 50;
  VersionEdit edit;
  for (int i = 0; i < 4; i++) {
    CheckRoundTrip(edit);
    edit.AddFile(3, kBig + 300 + i, kBig + 400 + i,
                 InternalKey("foo", kBig + 500 + i, kTypeValue),
                 InternalKey("zoo", kBig + 600 + i, kTypeDeletion));
    edit.RemoveFile(4, kBig + 700 + i);
  }
  edit.SetComparatorName("foo");
  edit.SetLogNumber(kBig + 100);
  edit.SetNextFile(kBig + 200);
  edit.SetLastSequence(kBig + 1000);
  CheckRoundTrip(edit);
}

TEST(VersionEditTest, DecodeRejectsGarbage) {
  VersionEdit edit;
  EXPECT_FALSE(edit.DecodeFrom(Slice("\x99garbage-bytes", 14)).ok());
}

// --- FindFile / overlap helpers ---

class FindFileTest : public ::testing::Test {
 protected:
  ~FindFileTest() override {
    for (FileMetaData* f : files_) {
      delete f;
    }
  }

  void Add(const char* smallest, const char* largest, SequenceNumber smallest_seq = 100,
           SequenceNumber largest_seq = 100) {
    FileMetaData* f = new FileMetaData;
    f->number = files_.size() + 1;
    f->smallest = InternalKey(smallest, smallest_seq, kTypeValue);
    f->largest = InternalKey(largest, largest_seq, kTypeValue);
    files_.push_back(f);
  }

  int Find(const char* key) {
    InternalKey target(key, 100, kTypeValue);
    InternalKeyComparator cmp(BytewiseComparator());
    return FindFile(cmp, files_, target.Encode());
  }

  bool Overlaps(const char* smallest, const char* largest) {
    InternalKeyComparator cmp(BytewiseComparator());
    Slice s(smallest != nullptr ? smallest : "");
    Slice l(largest != nullptr ? largest : "");
    return SomeFileOverlapsRange(cmp, disjoint_sorted_files_, files_,
                                 (smallest != nullptr ? &s : nullptr),
                                 (largest != nullptr ? &l : nullptr));
  }

  bool disjoint_sorted_files_ = true;
  std::vector<FileMetaData*> files_;
};

TEST_F(FindFileTest, Empty) {
  EXPECT_EQ(0, Find("foo"));
  EXPECT_FALSE(Overlaps("a", "z"));
  EXPECT_FALSE(Overlaps(nullptr, "z"));
  EXPECT_FALSE(Overlaps("a", nullptr));
  EXPECT_FALSE(Overlaps(nullptr, nullptr));
}

TEST_F(FindFileTest, Single) {
  Add("p", "q");
  EXPECT_EQ(0, Find("a"));
  EXPECT_EQ(0, Find("p"));
  EXPECT_EQ(0, Find("q"));
  EXPECT_EQ(1, Find("q1"));
  EXPECT_EQ(1, Find("z"));

  EXPECT_FALSE(Overlaps("a", "b"));
  EXPECT_FALSE(Overlaps("z1", "z2"));
  EXPECT_TRUE(Overlaps("a", "p"));
  EXPECT_TRUE(Overlaps("a", "q"));
  EXPECT_TRUE(Overlaps("p", "p1"));
  EXPECT_TRUE(Overlaps("p1", "q"));
  EXPECT_TRUE(Overlaps(nullptr, "p"));
  EXPECT_TRUE(Overlaps("q", nullptr));
  EXPECT_FALSE(Overlaps(nullptr, "j"));
  EXPECT_FALSE(Overlaps("r", nullptr));
}

TEST_F(FindFileTest, Multiple) {
  Add("150", "200");
  Add("200", "250");
  Add("300", "350");
  Add("400", "450");
  EXPECT_EQ(0, Find("100"));
  EXPECT_EQ(0, Find("150"));
  EXPECT_EQ(1, Find("201"));
  EXPECT_EQ(2, Find("251"));
  EXPECT_EQ(2, Find("301"));
  EXPECT_EQ(3, Find("351"));
  EXPECT_EQ(4, Find("451"));

  EXPECT_TRUE(Overlaps("100", "150"));
  EXPECT_TRUE(Overlaps("199", "300"));
  EXPECT_FALSE(Overlaps("251", "299"));
  EXPECT_FALSE(Overlaps("451", "500"));
}

TEST_F(FindFileTest, OverlappedMode) {
  // Overlapped (non-disjoint) levels: every file must be checked.
  disjoint_sorted_files_ = false;
  Add("150", "600");
  Add("400", "500");
  EXPECT_TRUE(Overlaps("100", "150"));
  EXPECT_TRUE(Overlaps("450", "700"));
  EXPECT_FALSE(Overlaps("601", "700"));
  EXPECT_FALSE(Overlaps("100", "149"));
}

}  // namespace
}  // namespace p2kvs
