// End-to-end tests of the LSM engine: CRUD, batches, flush/compaction,
// iterators, snapshots, recovery, MultiGet, concurrency, and the RocksDB vs
// LevelDB vs tiered (PebblesDB-style) feature profiles.

#include "src/lsm/db.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/io/mem_env.h"
#include "src/lsm/db_impl.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

struct DbTestCase {
  const char* name;
  CompatMode compat;
  CompactionStyle style;
  bool concurrent_memtable;
  bool pipelined;
};

class LsmDbTest : public ::testing::TestWithParam<DbTestCase> {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    const DbTestCase& tc = GetParam();
    options_.compat_mode = tc.compat;
    options_.compaction_style = tc.style;
    options_.concurrent_memtable = tc.concurrent_memtable;
    options_.pipelined_write = tc.pipelined;
    // Small sizes so flush/compaction paths run in tests.
    options_.write_buffer_size = 64 * 1024;
    options_.target_file_size = 32 * 1024;
    options_.max_bytes_for_level_base = 128 * 1024;
    Reopen();
  }

  void Reopen() {
    db_.reset();
    ASSERT_TRUE(DB::Open(options_, "/testdb", &db_).ok());
  }

  Status Put(const std::string& k, const std::string& v) {
    return db_->Put(WriteOptions(), k, v);
  }
  std::string Get(const std::string& k) {
    std::string value;
    Status s = db_->Get(ReadOptions(), k, &value);
    if (s.IsNotFound()) {
      return "NOT_FOUND";
    }
    if (!s.ok()) {
      return s.ToString();
    }
    return value;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(LsmDbTest, PutGet) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  EXPECT_EQ("v1", Get("foo"));
  ASSERT_TRUE(Put("bar", "v2").ok());
  EXPECT_EQ("v2", Get("bar"));
  EXPECT_EQ("NOT_FOUND", Get("missing"));
}

TEST_P(LsmDbTest, Overwrite) {
  ASSERT_TRUE(Put("key", "v1").ok());
  ASSERT_TRUE(Put("key", "v2").ok());
  EXPECT_EQ("v2", Get("key"));
}

TEST_P(LsmDbTest, DeleteKey) {
  ASSERT_TRUE(Put("key", "v1").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "key").ok());
  EXPECT_EQ("NOT_FOUND", Get("key"));
  // Deleting an absent key is fine.
  ASSERT_TRUE(db_->Delete(WriteOptions(), "never-there").ok());
}

TEST_P(LsmDbTest, EmptyValue) {
  ASSERT_TRUE(Put("key", "").ok());
  EXPECT_EQ("", Get("key"));
}

TEST_P(LsmDbTest, WriteBatchAtomicAppend) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
  EXPECT_EQ("2", Get("b"));
}

TEST_P(LsmDbTest, GetFromFlushedTable) {
  ASSERT_TRUE(Put("persisted", "on-disk").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ("on-disk", Get("persisted"));
}

TEST_P(LsmDbTest, ManyKeysSurviveFlushesAndCompactions) {
  Random rnd(301);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", static_cast<int>(rnd.Uniform(2000)));
    std::string value(64, static_cast<char>('a' + (i % 26)));
    model[key] = value;
    ASSERT_TRUE(Put(key, value).ok());
  }
  db_->WaitForBackgroundWork();
  for (const auto& [k, v] : model) {
    ASSERT_EQ(v, Get(k)) << "key " << k;
  }
}

TEST_P(LsmDbTest, RecoveryFromWal) {
  ASSERT_TRUE(Put("k1", "v1").ok());
  ASSERT_TRUE(Put("k2", "v2").ok());
  Reopen();  // drops the memtable; recovery must replay the WAL
  EXPECT_EQ("v1", Get("k1"));
  EXPECT_EQ("v2", Get("k2"));
}

TEST_P(LsmDbTest, RecoveryAfterFlushAndMoreWrites) {
  for (int i = 0; i < 2000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(Put(key, std::string(100, 'x')).ok());
  }
  db_->WaitForBackgroundWork();
  ASSERT_TRUE(Put("late", "write").ok());
  Reopen();
  EXPECT_EQ("write", Get("late"));
  EXPECT_EQ(std::string(100, 'x'), Get("key000000"));
  EXPECT_EQ(std::string(100, 'x'), Get("key001999"));
}

TEST_P(LsmDbTest, IteratorForward) {
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("c", "3").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("a", it->key().ToString());
  it->Next();
  EXPECT_EQ("b", it->key().ToString());
  it->Next();
  EXPECT_EQ("c", it->key().ToString());
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST_P(LsmDbTest, IteratorBackwardAndSeek) {
  for (char c = 'a'; c <= 'e'; c++) {
    ASSERT_TRUE(Put(std::string(1, c), std::string(1, c)).ok());
  }
  ASSERT_TRUE(db_->Delete(WriteOptions(), "c").ok());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->Seek("b");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("b", it->key().ToString());
  it->Next();
  EXPECT_EQ("d", it->key().ToString());  // "c" deleted
  it->Prev();
  EXPECT_EQ("b", it->key().ToString());
  it->SeekToLast();
  EXPECT_EQ("e", it->key().ToString());
}

TEST_P(LsmDbTest, IteratorSpansMemtableAndDisk) {
  ASSERT_TRUE(Put("disk", "1").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(Put("mem", "2").ok());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  EXPECT_EQ("disk", it->key().ToString());
  it->Next();
  EXPECT_EQ("mem", it->key().ToString());
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST_P(LsmDbTest, SnapshotIsolation) {
  ASSERT_TRUE(Put("k", "v1").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "v2").ok());

  ReadOptions ro;
  ro.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(ro, "k", &value).ok());
  EXPECT_EQ("v1", value);
  EXPECT_EQ("v2", Get("k"));
  db_->ReleaseSnapshot(snap);
}

TEST_P(LsmDbTest, SnapshotSurvivesFlush) {
  ASSERT_TRUE(Put("k", "old").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "new").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->WaitForBackgroundWork();

  ReadOptions ro;
  ro.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(ro, "k", &value).ok());
  EXPECT_EQ("old", value);
  db_->ReleaseSnapshot(snap);
}

TEST_P(LsmDbTest, MultiGet) {
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(Put("c", "3").ok());

  std::vector<Slice> keys = {"a", "zz", "b", "c"};
  std::vector<std::string> values;
  std::vector<Status> statuses = db_->MultiGet(ReadOptions(), keys, &values);
  ASSERT_EQ(4u, statuses.size());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ("1", values[0]);
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ("2", values[2]);
  EXPECT_TRUE(statuses[3].ok());
  EXPECT_EQ("3", values[3]);
}

TEST_P(LsmDbTest, MultiGetAsyncAndSyncPathsAgree) {
  // Build a multi-file, multi-level tree so MultiGet has to chain through L0
  // candidates, then check the batched async read path returns exactly what
  // the synchronous fallback does.
  std::map<std::string, std::string> model;
  Random rnd(301);
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < 200; i++) {
      std::string k = "key" + std::to_string(rnd.Uniform(300));
      std::string v = k + "#" + std::to_string(round);
      ASSERT_TRUE(Put(k, v).ok());
      model[k] = v;
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  }

  std::vector<Slice> keys;
  std::vector<std::string> key_storage;
  key_storage.reserve(model.size() + 2);
  for (const auto& kv : model) key_storage.push_back(kv.first);
  key_storage.push_back("absent-low");
  key_storage.push_back("zzz-absent-high");
  for (const auto& k : key_storage) keys.push_back(k);

  std::vector<std::string> async_values;
  std::vector<Status> async_statuses =
      db_->MultiGet(ReadOptions(), keys, &async_values);

  options_.async_io = false;
  Reopen();
  std::vector<std::string> sync_values;
  std::vector<Status> sync_statuses =
      db_->MultiGet(ReadOptions(), keys, &sync_values);
  options_.async_io = true;

  ASSERT_EQ(async_statuses.size(), sync_statuses.size());
  for (size_t i = 0; i < keys.size(); i++) {
    EXPECT_EQ(async_statuses[i].ok(), sync_statuses[i].ok()) << key_storage[i];
    EXPECT_EQ(async_statuses[i].IsNotFound(), sync_statuses[i].IsNotFound());
    if (async_statuses[i].ok()) {
      EXPECT_EQ(sync_values[i], async_values[i]) << key_storage[i];
      auto it = model.find(key_storage[i]);
      ASSERT_TRUE(it != model.end()) << key_storage[i];
      EXPECT_EQ(it->second, async_values[i]);
    }
  }
}

TEST_P(LsmDbTest, AsyncWalSyncIsDurableAcrossReopen) {
  // sync writes with the fsync handed to the completion context must still be
  // durable and ordered; with pipelined writes the gate turns the feature off
  // and the test degenerates to plain sync writes, which must also pass.
  options_.async_wal_sync = true;
  Reopen();
  WriteOptions wo;
  wo.sync = true;
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(
        db_->Put(wo, "sk" + std::to_string(i), "sv" + std::to_string(i)).ok());
  }
  EXPECT_EQ("sv7", Get("sk7"));
  Reopen();
  for (int i = 0; i < 20; i++) {
    EXPECT_EQ("sv" + std::to_string(i), Get("sk" + std::to_string(i)));
  }
  options_.async_wal_sync = false;
}

TEST_P(LsmDbTest, ConcurrentWriters) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kPerThread; i++) {
        char key[32];
        snprintf(key, sizeof(key), "t%d-key%05d", t, i);
        char value[32];
        snprintf(value, sizeof(value), "t%d-val%05d", t, i);
        ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 97) {
      char key[32];
      snprintf(key, sizeof(key), "t%d-key%05d", t, i);
      char value[32];
      snprintf(value, sizeof(value), "t%d-val%05d", t, i);
      ASSERT_EQ(std::string(value), Get(key));
    }
  }
}

TEST_P(LsmDbTest, ConcurrentReadersAndWriters) {
  std::atomic<bool> stop{false};
  std::thread writer([this, &stop] {
    int i = 0;
    while (!stop.load()) {
      char key[32];
      snprintf(key, sizeof(key), "w%06d", i++ % 500);
      ASSERT_TRUE(db_->Put(WriteOptions(), key, "value").ok());
    }
  });
  std::thread reader([this, &stop] {
    while (!stop.load()) {
      std::string value;
      Status s = db_->Get(ReadOptions(), "w000000", &value);
      ASSERT_TRUE(s.ok() || s.IsNotFound());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  writer.join();
  reader.join();
}

TEST_P(LsmDbTest, StatsAreAccounted) {
  for (int i = 0; i < 3000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(Put(key, std::string(100, 'x')).ok());
  }
  db_->WaitForBackgroundWork();
  DbStats stats = db_->GetStats();
  EXPECT_GT(stats.flush_count, 0u);
  EXPECT_GT(stats.write_group_count, 0u);
  EXPECT_GE(stats.write_request_count, 3000u);
}

TEST_P(LsmDbTest, SyncWrites) {
  WriteOptions wo;
  wo.sync = true;
  ASSERT_TRUE(db_->Put(wo, "durable", "yes").ok());
  EXPECT_EQ("yes", Get("durable"));
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, LsmDbTest,
    ::testing::Values(
        DbTestCase{"rocksdb", CompatMode::kRocksDB, CompactionStyle::kLeveled, true, true},
        DbTestCase{"rocksdb_nopipeline", CompatMode::kRocksDB, CompactionStyle::kLeveled, true,
                   false},
        DbTestCase{"rocksdb_serial_mem", CompatMode::kRocksDB, CompactionStyle::kLeveled, false,
                   false},
        DbTestCase{"leveldb", CompatMode::kLevelDB, CompactionStyle::kLeveled, false, false},
        DbTestCase{"tiered_pebbles", CompatMode::kLevelDB, CompactionStyle::kTiered, false,
                   false}),
    [](const ::testing::TestParamInfo<DbTestCase>& info) { return info.param.name; });

}  // namespace
}  // namespace p2kvs
