// Partitioner tests (paper §4.2): balance of the default hash under uniform,
// sequential and zipfian key streams; range partitioning semantics; the
// two-choice variant; and P2KVS integration with a custom partitioner.

#include "src/core/partitioner.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/p2kvs.h"
#include "src/io/mem_env.h"
#include "src/ycsb/generator.h"
#include "src/ycsb/workload.h"

namespace p2kvs {
namespace {

std::vector<int> CountAssignments(const Partitioner& p, int workers,
                                  const std::vector<std::string>& keys) {
  std::vector<int> counts(static_cast<size_t>(workers), 0);
  for (const std::string& key : keys) {
    int w = p(key, workers);
    EXPECT_GE(w, 0);
    EXPECT_LT(w, workers);
    counts[static_cast<size_t>(w)]++;
  }
  return counts;
}

void ExpectBalanced(const std::vector<int>& counts, int total, double tolerance) {
  double expected = static_cast<double>(total) / static_cast<double>(counts.size());
  for (size_t w = 0; w < counts.size(); w++) {
    EXPECT_GT(counts[w], expected * (1 - tolerance)) << "worker " << w;
    EXPECT_LT(counts[w], expected * (1 + tolerance)) << "worker " << w;
  }
}

TEST(HashPartitionerTest, BalancesSequentialKeys) {
  std::vector<std::string> keys;
  for (int i = 0; i < 40000; i++) {
    keys.push_back(ycsb::RecordKey(static_cast<uint64_t>(i)));
  }
  ExpectBalanced(CountAssignments(MakeHashPartitioner(), 8, keys), 40000, 0.15);
}

TEST(HashPartitionerTest, BalancesZipfianTraffic) {
  // The paper's claim: even highly skewed (zipfian) *request* streams spread
  // across partitions because hot keys scatter under the hash.
  ycsb::ScrambledZipfianGenerator gen(100000, 42);
  std::vector<std::string> keys;
  for (int i = 0; i < 40000; i++) {
    keys.push_back(ycsb::RecordKey(gen.Next()));
  }
  ExpectBalanced(CountAssignments(MakeHashPartitioner(), 8, keys), 40000, 0.35);
}

TEST(HashPartitionerTest, DeterministicAcrossCalls) {
  Partitioner a = MakeHashPartitioner();
  Partitioner b = MakeHashPartitioner();
  for (int i = 0; i < 100; i++) {
    std::string key = "k" + std::to_string(i);
    EXPECT_EQ(a(key, 8), b(key, 8));
  }
}

TEST(RangePartitionerTest, RoutesByBoundary) {
  Partitioner p = MakeRangePartitioner({"h", "p"});
  EXPECT_EQ(0, p("a", 3));
  EXPECT_EQ(0, p("g", 3));
  EXPECT_EQ(1, p("h", 3));
  EXPECT_EQ(1, p("ooo", 3));
  EXPECT_EQ(2, p("p", 3));
  EXPECT_EQ(2, p("zzz", 3));
}

TEST(RangePartitionerTest, ClampsToWorkerCount) {
  Partitioner p = MakeRangePartitioner({"b", "c", "d", "e"});
  // 5 ranges but only 2 workers: upper ranges clamp to the last worker.
  EXPECT_EQ(0, p("a", 2));
  EXPECT_EQ(1, p("z", 2));
}

TEST(RangePartitionerTest, UnsortedBoundariesAreSorted) {
  Partitioner p = MakeRangePartitioner({"p", "h"});
  EXPECT_EQ(0, p("a", 3));
  EXPECT_EQ(1, p("k", 3));
  EXPECT_EQ(2, p("q", 3));
}

TEST(TwoChoicePartitionerTest, InRangeAndDeterministic) {
  Partitioner p = MakeTwoChoiceHashPartitioner();
  std::map<std::string, int> first;
  for (int i = 0; i < 2000; i++) {
    std::string key = "k" + std::to_string(i);
    int w = p(key, 8);
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 8);
    first[key] = w;
  }
  for (const auto& [key, w] : first) {
    EXPECT_EQ(w, p(key, 8));
  }
}

TEST(TwoChoicePartitionerTest, Balances) {
  std::vector<std::string> keys;
  for (int i = 0; i < 40000; i++) {
    keys.push_back(ycsb::RecordKey(static_cast<uint64_t>(i)));
  }
  ExpectBalanced(CountAssignments(MakeTwoChoiceHashPartitioner(), 8, keys), 40000, 0.2);
}

TEST(P2kvsPartitionerIntegration, RangePartitionerKeepsScansLocal) {
  auto env = NewMemEnv();
  Options lsm;
  lsm.env = env.get();
  P2kvsOptions options;
  options.env = env.get();
  options.num_workers = 2;
  options.pin_workers = false;
  options.engine_factory = MakeRocksLiteFactory(lsm);
  options.partitioner = MakeRangePartitioner({"m"});
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2part", &store).ok());

  ASSERT_TRUE(store->Put("apple", "1").ok());
  ASSERT_TRUE(store->Put("banana", "2").ok());
  ASSERT_TRUE(store->Put("zebra", "3").ok());

  EXPECT_EQ(0, store->PartitionOf("apple"));
  EXPECT_EQ(0, store->PartitionOf("banana"));
  EXPECT_EQ(1, store->PartitionOf("zebra"));

  // Everything below "m" lives entirely on instance 0.
  std::string value;
  EXPECT_TRUE(store->instance(0)->Get("apple", &value).ok());
  EXPECT_TRUE(store->instance(1)->Get("apple", &value).IsNotFound());
  EXPECT_TRUE(store->instance(1)->Get("zebra", &value).ok());

  // Global operations still see the union.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store->Scan("", 10, &out).ok());
  ASSERT_EQ(3u, out.size());
  EXPECT_EQ("apple", out[0].first);
  EXPECT_EQ("zebra", out[2].first);
}

TEST(P2kvsPartitionerIntegration, CustomLambdaPartitioner) {
  auto env = NewMemEnv();
  Options lsm;
  lsm.env = env.get();
  P2kvsOptions options;
  options.env = env.get();
  options.num_workers = 3;
  options.pin_workers = false;
  options.engine_factory = MakeRocksLiteFactory(lsm);
  // Route by first byte (a contrived user-specific strategy).
  options.partitioner = [](const Slice& key, int workers) {
    return key.empty() ? 0 : static_cast<int>(static_cast<uint8_t>(key[0])) % workers;
  };
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2custom", &store).ok());
  ASSERT_TRUE(store->Put("abc", "1").ok());
  std::string value;
  ASSERT_TRUE(store->Get("abc", &value).ok());
  EXPECT_EQ("1", value);
  EXPECT_EQ(static_cast<int>('a') % 3, store->PartitionOf("abc"));
}

}  // namespace
}  // namespace p2kvs
