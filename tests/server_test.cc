// Network front-end tests: protocol framing (malformed / oversized /
// truncated / split-across-read / one-byte-trickle inputs), pipelined
// response ordering, disconnect mid-pipeline with completions still in
// flight, the per-connection pipeline cap, and a >= 64-connection end-to-end
// run with exact server-door vs client-observed accounting.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/p2kvs.h"
#include "src/io/error_injection_env.h"
#include "src/io/mem_env.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/util/coding.h"

namespace p2kvs {
namespace {

using server::Client;
using server::FrameReader;
using server::Opcode;
using server::Response;
using server::Server;
using server::ServerOptions;
using server::ServerStatsSnapshot;
using server::WireStatus;
using server::WriteOp;

Options SmallLsmOptions(Env* env) {
  Options options;
  options.env = env;
  options.write_buffer_size = 64 * 1024;
  options.target_file_size = 32 * 1024;
  options.max_bytes_for_level_base = 128 * 1024;
  return options;
}

// Raw socket speaking hand-crafted bytes — for inputs the Client refuses to
// produce (malformed frames, trickled prefixes).
class RawConn {
 public:
  ~RawConn() { Close(); }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool WriteAll(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0 && errno != EINTR) return false;
      if (n > 0) off += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads one response frame; false on EOF/error.
  bool ReadResponse(Response* out) {
    char buf[4096];
    while (true) {
      std::string body;
      if (reader_.Next(&body) == FrameReader::NextResult::kFrame) {
        out->request_id = DecodeFixed64(body.data());
        out->status_code = static_cast<uint8_t>(body[8]);
        out->payload.assign(body, server::kFrameHeaderBytes,
                            body.size() - server::kFrameHeaderBytes);
        return true;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      reader_.Feed(buf, static_cast<size_t>(n));
    }
  }

  // True when the server has closed the stream (blocking read sees EOF).
  bool ReadEof() {
    char c;
    return ::recv(fd_, &c, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { StartServer(ServerOptions()); }

  void StartServer(ServerOptions server_options) {
    base_env_ = NewMemEnv();
    env_ = std::make_unique<ErrorInjectionEnv>(base_env_.get());
    P2kvsOptions options;
    options.env = env_.get();
    options.num_workers = 4;
    options.pin_workers = false;
    options.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env_.get()));
    ASSERT_TRUE(P2KVS::Open(options, "/p2srv", &store_).ok());
    server_ = std::make_unique<Server>(store_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(0, server_->port());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    store_.reset();
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<ErrorInjectionEnv> env_;
  std::unique_ptr<P2KVS> store_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, SyncRoundTripAllOpcodes) {
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  ASSERT_TRUE(client.Put("alpha", "1").ok());
  ASSERT_TRUE(client.Put("beta", "2").ok());
  std::string value;
  ASSERT_TRUE(client.Get("alpha", &value).ok());
  EXPECT_EQ("1", value);
  EXPECT_TRUE(client.Get("missing", &value).IsNotFound());

  ASSERT_TRUE(client.Delete("alpha").ok());
  EXPECT_TRUE(client.Get("alpha", &value).IsNotFound());

  std::vector<Status> statuses;
  std::vector<std::string> values;
  ASSERT_TRUE(client.MultiGet({"beta", "alpha", "beta"}, &statuses, &values).ok());
  ASSERT_EQ(3u, statuses.size());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ("2", values[0]);
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ("2", values[2]);

  std::vector<WriteOp> ops;
  ops.push_back({true, "gamma", "3"});
  ops.push_back({true, "delta", "4"});
  ops.push_back({false, "beta", ""});
  ASSERT_TRUE(client.MultiWrite(ops).ok());
  EXPECT_TRUE(client.Get("beta", &value).IsNotFound());
  ASSERT_TRUE(client.Get("gamma", &value).ok());
  EXPECT_EQ("3", value);

  std::vector<std::pair<std::string, std::string>> pairs;
  ASSERT_TRUE(client.Scan("", 10, &pairs).ok());
  ASSERT_EQ(2u, pairs.size());  // delta, gamma in bytewise order
  EXPECT_EQ("delta", pairs[0].first);
  EXPECT_EQ("gamma", pairs[1].first);

  std::string json;
  ASSERT_TRUE(client.Stats(&json).ok());
  EXPECT_NE(std::string::npos, json.find("submitted"));
}

TEST_F(ServerTest, PipelinedResponsesArriveInRequestOrder) {
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  constexpr int kOps = 200;
  std::vector<uint64_t> put_ids;
  for (int i = 0; i < kOps; i++) {
    put_ids.push_back(client.SendPut("pipe" + std::to_string(i), "v" + std::to_string(i)));
  }
  std::vector<uint64_t> get_ids;
  for (int i = 0; i < kOps; i++) {
    get_ids.push_back(client.SendGet("pipe" + std::to_string(i)));
  }
  ASSERT_TRUE(client.Flush().ok());
  // The server must deliver responses in request arrival order even though
  // four workers complete them out of order.
  for (int i = 0; i < kOps; i++) {
    Response r;
    ASSERT_TRUE(client.ReadResponse(&r).ok());
    EXPECT_EQ(put_ids[static_cast<size_t>(i)], r.request_id);
    EXPECT_EQ(static_cast<uint8_t>(WireStatus::kOk), r.status_code);
  }
  for (int i = 0; i < kOps; i++) {
    Response r;
    ASSERT_TRUE(client.ReadResponse(&r).ok());
    EXPECT_EQ(get_ids[static_cast<size_t>(i)], r.request_id);
    EXPECT_EQ(static_cast<uint8_t>(WireStatus::kOk), r.status_code);
    EXPECT_EQ("v" + std::to_string(i), r.payload);
  }
  EXPECT_EQ(0u, client.outstanding());
}

TEST_F(ServerTest, MalformedPayloadRepliesInvalidArgumentAndKeepsConnection) {
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  // Well-framed body with an unknown opcode: recoverable — the framing is
  // intact, only this request is bad.
  std::string frame;
  PutFixed32(&frame, 9 + 3);
  PutFixed64(&frame, 42);
  frame.push_back(static_cast<char>(99));  // no such opcode
  frame.append("xyz");
  ASSERT_TRUE(conn.WriteAll(frame));
  Response r;
  ASSERT_TRUE(conn.ReadResponse(&r));
  EXPECT_EQ(42u, r.request_id);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kInvalidArgument), r.status_code);

  // Same connection still serves well-formed requests.
  std::string get;
  server::EncodeGet(&get, 43, "nope");
  ASSERT_TRUE(conn.WriteAll(get));
  ASSERT_TRUE(conn.ReadResponse(&r));
  EXPECT_EQ(43u, r.request_id);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kNotFound), r.status_code);

  // A GET whose inner key length overruns the body is also recoverable.
  std::string bad;
  PutFixed32(&bad, 9 + 4 + 2);
  PutFixed64(&bad, 44);
  bad.push_back(static_cast<char>(Opcode::kGet));
  PutFixed32(&bad, 1000);  // claims 1000 key bytes, provides 2
  bad.append("ab");
  ASSERT_TRUE(conn.WriteAll(bad));
  ASSERT_TRUE(conn.ReadResponse(&r));
  EXPECT_EQ(44u, r.request_id);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kInvalidArgument), r.status_code);
  EXPECT_GE(server_->Stats().protocol_errors, 2u);
}

TEST_F(ServerTest, OversizedFrameGetsErrorThenClose) {
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  std::string frame;
  PutFixed32(&frame, 64u << 20);  // 64MB body announced: over the 32MB cap
  PutFixed64(&frame, 7);
  frame.push_back(static_cast<char>(Opcode::kGet));
  ASSERT_TRUE(conn.WriteAll(frame));
  Response r;
  ASSERT_TRUE(conn.ReadResponse(&r));
  EXPECT_EQ(0u, r.request_id);  // the header is untrusted at this point
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kInvalidArgument), r.status_code);
  EXPECT_TRUE(conn.ReadEof());
}

TEST_F(ServerTest, ShortBodyGetsErrorThenClose) {
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  std::string frame;
  PutFixed32(&frame, 4);  // body shorter than the 9-byte fixed header
  frame.append("abcd");
  ASSERT_TRUE(conn.WriteAll(frame));
  Response r;
  ASSERT_TRUE(conn.ReadResponse(&r));
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kInvalidArgument), r.status_code);
  EXPECT_TRUE(conn.ReadEof());
}

TEST_F(ServerTest, TruncatedFrameThenDisconnectIsHarmless) {
  {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server_->port()));
    std::string full;
    server::EncodePut(&full, 1, "trunc-key", "trunc-value");
    ASSERT_TRUE(conn.WriteAll(full.substr(0, full.size() / 2)));
    // Disconnect mid-frame: the server must just drop the partial bytes.
  }
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Put("after-truncation", "ok").ok());
  std::string value;
  ASSERT_TRUE(client.Get("after-truncation", &value).ok());
  EXPECT_EQ("ok", value);
  EXPECT_EQ(2u, server_->Stats().frames_decoded);  // only the Put and the Get
}

TEST_F(ServerTest, OneByteTrickleClient) {
  ASSERT_TRUE(store_->Put("trickle", "slow-and-steady").ok());
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  std::string frame;
  server::EncodeGet(&frame, 5, "trickle");
  for (char c : frame) {  // worst-case split: every read delivers one byte
    ASSERT_TRUE(conn.WriteAll(std::string(1, c)));
  }
  Response r;
  ASSERT_TRUE(conn.ReadResponse(&r));
  EXPECT_EQ(5u, r.request_id);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kOk), r.status_code);
  EXPECT_EQ("slow-and-steady", r.payload);
}

TEST_F(ServerTest, FramesSplitAcrossArbitraryReadBoundaries) {
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  std::string stream;
  constexpr int kOps = 20;
  for (int i = 0; i < kOps; i++) {
    server::EncodePut(&stream, static_cast<uint64_t>(i + 1), "split" + std::to_string(i),
                      "v" + std::to_string(i));
  }
  // Deliver the request stream in ragged 7-byte chunks so frame prefixes
  // straddle every read boundary.
  for (size_t off = 0; off < stream.size(); off += 7) {
    ASSERT_TRUE(conn.WriteAll(stream.substr(off, 7)));
  }
  for (int i = 0; i < kOps; i++) {
    Response r;
    ASSERT_TRUE(conn.ReadResponse(&r));
    EXPECT_EQ(static_cast<uint64_t>(i + 1), r.request_id);
    EXPECT_EQ(static_cast<uint8_t>(WireStatus::kOk), r.status_code);
  }
  std::string value;
  ASSERT_TRUE(store_->Get("split7", &value).ok());
  EXPECT_EQ("v7", value);
}

TEST_F(ServerTest, DisconnectMidPipelineWithCompletionsInFlight) {
  // Slow every WAL append so completions are guaranteed to still be in
  // flight when the connection dies — the callbacks must land on kept-alive
  // response slots, never on freed connection state (ASan/TSan enforce).
  env_->SetOpLatency(FaultOp::kAppend, 2000);
  for (int round = 0; round < 3; round++) {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    for (int i = 0; i < 64; i++) {
      client.SendPut("dead" + std::to_string(round) + "-" + std::to_string(i), "v");
    }
    ASSERT_TRUE(client.Flush().ok());
    client.Close();  // vanish without reading a single response
  }
  env_->DisableAll();
  // The store must drain cleanly and keep serving.
  EXPECT_TRUE(store_->WaitIdle().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  std::string value;
  ASSERT_TRUE(client.Get("dead0-0", &value).ok());
  EXPECT_EQ("v", value);
  server_->Stop();
  const ServerStatsSnapshot stats = server_->Stats();
  // Every submitted request completed (Stop waits for stragglers), even
  // though most responses had no connection left to go to.
  EXPECT_GE(stats.submitted_to_store, 3u * 64u);
}

TEST_F(ServerTest, PipelineCapAnswersBusyWithoutStoreWork) {
  server_->Stop();
  server_.reset();
  store_.reset();
  ServerOptions server_options;
  server_options.max_pipeline = 4;
  StartServer(server_options);
  // Slow appends so the first 4 requests stay in flight while the rest of
  // the burst arrives — the cap must answer the excess with BUSY.
  env_->SetOpLatency(FaultOp::kAppend, 2000);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; i++) {
    client.SendPut("busy" + std::to_string(i), "v");
  }
  ASSERT_TRUE(client.Flush().ok());
  int ok = 0, busy = 0;
  for (int i = 0; i < kBurst; i++) {
    Response r;
    ASSERT_TRUE(client.ReadResponse(&r).ok());
    if (r.status_code == static_cast<uint8_t>(WireStatus::kOk)) {
      ok++;
    } else {
      ASSERT_EQ(static_cast<uint8_t>(WireStatus::kBusy), r.status_code);
      busy++;
    }
  }
  EXPECT_EQ(kBurst, ok + busy);
  EXPECT_GT(busy, 0);
  EXPECT_GT(ok, 0);
  const ServerStatsSnapshot stats = server_->Stats();
  EXPECT_EQ(static_cast<uint64_t>(busy), stats.pipeline_rejections);
  EXPECT_EQ(static_cast<uint64_t>(ok), stats.submitted_to_store);
}

// The acceptance end-to-end: >= 64 concurrent connections, every one
// pipelining writes then reads, values verified, and EXACT accounting
// between the server's doors and what the clients observed.
TEST_F(ServerTest, SixtyFourConnectionsPipelinedEndToEnd) {
  constexpr int kConnections = 64;
  constexpr int kOpsPerConn = 32;
  std::atomic<uint64_t> client_ok{0};
  std::atomic<uint64_t> client_other{0};
  std::atomic<uint64_t> client_received{0};
  std::atomic<int> value_mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kConnections);
  for (int c = 0; c < kConnections; c++) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        client_other.fetch_add(2 * kOpsPerConn, std::memory_order_relaxed);
        return;
      }
      const std::string prefix = "conn" + std::to_string(c) + "-";
      for (int i = 0; i < kOpsPerConn; i++) {
        client.SendPut(prefix + std::to_string(i), prefix + "value" + std::to_string(i));
      }
      for (int i = 0; i < kOpsPerConn; i++) {
        client.SendGet(prefix + std::to_string(i));
      }
      if (!client.Flush().ok()) {
        client_other.fetch_add(2 * kOpsPerConn, std::memory_order_relaxed);
        return;
      }
      for (int i = 0; i < 2 * kOpsPerConn; i++) {
        Response r;
        if (!client.ReadResponse(&r).ok()) {
          client_other.fetch_add(static_cast<uint64_t>(2 * kOpsPerConn - i),
                                 std::memory_order_relaxed);
          return;
        }
        client_received.fetch_add(1, std::memory_order_relaxed);
        if (r.status_code == static_cast<uint8_t>(WireStatus::kOk)) {
          client_ok.fetch_add(1, std::memory_order_relaxed);
          if (i >= kOpsPerConn) {  // a GET: check the value round-tripped
            const int idx = i - kOpsPerConn;
            if (r.payload != prefix + "value" + std::to_string(idx)) {
              value_mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else {
          client_other.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const uint64_t total = static_cast<uint64_t>(kConnections) * 2 * kOpsPerConn;
  EXPECT_EQ(total, client_ok.load());  // nothing shed, nothing lost, no errors
  EXPECT_EQ(0u, client_other.load());
  EXPECT_EQ(0, value_mismatches.load());

  server_->Stop();
  const ServerStatsSnapshot stats = server_->Stats();
  // Exact doors: every client request was submitted to the store and
  // answered exactly once; client-observed outcomes account for every
  // submission.
  EXPECT_EQ(total, stats.submitted_to_store);
  EXPECT_EQ(total, stats.frames_decoded);
  EXPECT_EQ(client_received.load(), stats.responses_sent);
  EXPECT_EQ(client_ok.load() + client_other.load(), stats.submitted_to_store);
  EXPECT_EQ(0u, stats.protocol_errors);
  EXPECT_EQ(0u, stats.pipeline_rejections);
  EXPECT_GE(stats.connections_accepted, static_cast<uint64_t>(kConnections));

  // The store's own accounting must agree once quiescent.
  EXPECT_TRUE(store_->WaitIdle().ok());
  P2kvsStats store_stats;
  ASSERT_TRUE(store_->GetStats(&store_stats).ok());
  EXPECT_TRUE(store_stats.SelfCheck().ok()) << store_stats.SelfCheck().ToString();
}

TEST_F(ServerTest, ServerStopWhileClientsConnected) {
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Put("k", "v").ok());
  server_->Stop();
  // The client sees a clean close, not a hang.
  std::string value;
  EXPECT_FALSE(client.Get("k", &value).ok());
}

// Regression for the pipelined sender's silent-drop bug: Send*() used to
// discard the Status of its threshold-triggered auto-flush, so a sender that
// only checked the final explicit Flush() could lose frames without ever
// seeing an error. The failure must now be sticky: once any auto-flush
// fails, every later Flush() reports it.
TEST(ClientStickySendError, AutoFlushFailureSurfacesOnLaterFlush) {
  // A bare listener that accepts one connection and immediately closes it:
  // everything the client sends afterwards eventually hits a dead peer.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(0, ::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  ASSERT_EQ(0, ::listen(lfd, 1));
  socklen_t len = sizeof(addr);
  ASSERT_EQ(0, ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len));
  const uint16_t port = ntohs(addr.sin_port);
  std::thread acceptor([lfd] {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd >= 0) ::close(cfd);
  });

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  acceptor.join();
  ::close(lfd);

  // Every Send triggers an auto-flush; once the kernel buffer drains into
  // the closed peer, sends start failing inside Send*() where the old code
  // dropped the Status.
  client.set_flush_threshold(1);
  const std::string value(64 * 1024, 'v');
  for (int i = 0; i < 1000; i++) {
    client.SendPut("key" + std::to_string(i), value);
  }
  const Status first = client.Flush();
  ASSERT_FALSE(first.ok());
  // Sticky: the error persists across Flush() calls (even with nothing
  // buffered), so a sender cannot observe ok() after frames were lost.
  const Status second = client.Flush();
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(first.ToString(), second.ToString());
  client.Close();
}

}  // namespace
}  // namespace p2kvs
