// Telemetry-plane tests: the SpaceSaving hot-key sketch (planted heavy
// hitters under noise, cross-worker top-K merge, accuracy bounds), the
// MetricsRegistry window ring (rate derivation, eviction), the Prometheus
// exposition (well-formedness, required families, bucket monotonicity,
// label escaping), the skew report math, the zero-clock-read contract on
// worker threads (PerfContext::obs_clock_reads), and the admin HTTP
// endpoint end-to-end over raw sockets.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/p2kvs.h"
#include "src/io/mem_env.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/prometheus.h"
#include "src/obs/sketch.h"
#include "src/obs/skew.h"
#include "src/server/admin.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

// --- SpaceSaving sketch ---

TEST(SketchTest, ExactWhenUnderCapacity) {
  obs::SpaceSavingSketch sketch(8);
  for (int i = 0; i < 5; i++) {
    sketch.RecordKey("a");
  }
  sketch.RecordKey("b");
  obs::SketchSnapshot snap;
  sketch.FillSnapshot(&snap, /*worker_id=*/3);
  ASSERT_EQ(2u, snap.entries.size());
  EXPECT_EQ(6u, snap.total_ops);
  for (const obs::SketchEntry& e : snap.entries) {
    EXPECT_EQ(0u, e.error);  // no replacement happened: counts are exact
    EXPECT_EQ(3, e.worker_id);
    if (e.key == "a") {
      EXPECT_EQ(5u, e.count);
    } else {
      EXPECT_EQ("b", e.key);
      EXPECT_EQ(1u, e.count);
    }
  }
}

TEST(SketchTest, FindsPlantedHeavyHittersUnderNoise) {
  // 3 hot keys inside a stream of 2000 distinct noise keys, capacity 16.
  // SpaceSaving guarantees any key with frequency > N/K stays resident; the
  // planted keys are far above that bar.
  obs::SpaceSavingSketch sketch(16);
  Random rnd(42);
  const int kHot0 = 3000, kHot1 = 1500, kHot2 = 800, kNoise = 4000;
  std::vector<std::string> stream;
  for (int i = 0; i < kHot0; i++) stream.push_back("hot-0");
  for (int i = 0; i < kHot1; i++) stream.push_back("hot-1");
  for (int i = 0; i < kHot2; i++) stream.push_back("hot-2");
  for (int i = 0; i < kNoise; i++) {
    stream.push_back("noise-" + std::to_string(rnd.Uniform(2000)));
  }
  // Shuffle so the hot keys are interleaved with noise, not front-loaded.
  for (size_t i = stream.size() - 1; i > 0; i--) {
    std::swap(stream[i], stream[rnd.Uniform(static_cast<int>(i + 1))]);
  }
  for (const std::string& key : stream) {
    sketch.RecordKey(key);
  }

  obs::SketchSnapshot snap;
  sketch.FillSnapshot(&snap, 0);
  EXPECT_EQ(stream.size(), snap.total_ops);
  std::map<std::string, obs::SketchEntry> by_key;
  for (const obs::SketchEntry& e : snap.entries) {
    by_key[e.key] = e;
  }
  const std::map<std::string, uint64_t> truth = {
      {"hot-0", kHot0}, {"hot-1", kHot1}, {"hot-2", kHot2}};
  for (const auto& kv : truth) {
    ASSERT_TRUE(by_key.count(kv.first)) << kv.first << " evicted";
    const obs::SketchEntry& e = by_key[kv.first];
    // Accuracy bound: true count in [count - error, count].
    EXPECT_GE(e.count, kv.second) << kv.first;
    EXPECT_LE(e.count - e.error, kv.second) << kv.first;
  }
}

TEST(SketchTest, TruncatesLongKeysButHashesFullKey) {
  obs::SpaceSavingSketch sketch(4);
  const std::string long_a(100, 'a');
  std::string long_b = long_a;
  long_b[80] = 'b';  // differs beyond the truncation point
  sketch.RecordKey(long_a);
  sketch.RecordKey(long_b);
  obs::SketchSnapshot snap;
  sketch.FillSnapshot(&snap, 0);
  // Identical displayed prefixes, distinct identities.
  ASSERT_EQ(2u, snap.entries.size());
  EXPECT_EQ(obs::SpaceSavingSketch::kMaxKeyBytes, snap.entries[0].key.size());
  EXPECT_NE(snap.entries[0].hash, snap.entries[1].hash);
}

TEST(SketchTest, MergeTopKSumsAcrossWorkersAndRanks) {
  obs::SketchSnapshot w0, w1;
  w0.total_ops = 100;
  w0.entries.push_back({"k-a", Hash64("k-a", 3), 60, 0, 0});
  w0.entries.push_back({"k-b", Hash64("k-b", 3), 40, 5, 0});
  w1.total_ops = 50;
  w1.entries.push_back({"k-b", Hash64("k-b", 3), 30, 0, 1});
  w1.entries.push_back({"k-c", Hash64("k-c", 3), 20, 0, 1});

  std::vector<obs::SketchEntry> top = obs::MergeTopK({w0, w1}, 2);
  ASSERT_EQ(2u, top.size());
  // k-b: 40 + 30 = 70 beats k-a's 60; worker 0 observed more of it.
  EXPECT_EQ("k-b", top[0].key);
  EXPECT_EQ(70u, top[0].count);
  EXPECT_EQ(5u, top[0].error);
  EXPECT_EQ(0, top[0].worker_id);
  EXPECT_EQ("k-a", top[1].key);
  EXPECT_EQ(60u, top[1].count);
}

// --- Skew report ---

WorkerStatsSnapshot SnapshotWithOps(int worker_id, uint64_t singles) {
  WorkerStatsSnapshot snap;
  snap.worker_id = worker_id;
  snap.singles = singles;
  return snap;
}

TEST(SkewReportTest, ComputesSharesImbalanceAndHottestPartition) {
  std::vector<WorkerStatsSnapshot> workers;
  workers.push_back(SnapshotWithOps(0, 100));
  workers.push_back(SnapshotWithOps(1, 100));
  workers.push_back(SnapshotWithOps(2, 600));
  workers.push_back(SnapshotWithOps(3, 200));

  obs::SkewReport report = obs::BuildSkewReport(workers, 8);
  EXPECT_EQ(1000u, report.total_ops);
  EXPECT_EQ(2, report.hottest_partition);
  // max/mean = 600 / 250.
  EXPECT_NEAR(2.4, report.imbalance_max_mean, 1e-9);
  ASSERT_EQ(4u, report.partitions.size());
  EXPECT_NEAR(0.6, report.partitions[2].share, 1e-9);
  EXPECT_GT(report.imbalance_cv, 0.5);
  // JSON must round-trip basic structure.
  const std::string json = report.ToJson();
  EXPECT_NE(std::string::npos, json.find("\"imbalance_max_mean\""));
  EXPECT_NE(std::string::npos, json.find("\"partitions\""));
}

TEST(SkewReportTest, EvenLoadReportsUnitImbalance) {
  std::vector<WorkerStatsSnapshot> workers;
  for (int i = 0; i < 4; i++) {
    workers.push_back(SnapshotWithOps(i, 250));
  }
  obs::SkewReport report = obs::BuildSkewReport(workers, 4);
  EXPECT_NEAR(1.0, report.imbalance_max_mean, 1e-9);
  EXPECT_NEAR(0.0, report.imbalance_cv, 1e-9);
}

TEST(SkewReportTest, EmptyWorkersProduceIdleReport) {
  obs::SkewReport report = obs::BuildSkewReport({}, 4);
  EXPECT_EQ(0u, report.total_ops);
  EXPECT_EQ(-1, report.hottest_partition);
  EXPECT_TRUE(report.top_keys.empty());
}

// --- MetricsRegistry ---

obs::TelemetrySample SampleAt(uint64_t wall_nanos, uint64_t singles, uint64_t shed,
                              uint64_t fg_bytes) {
  obs::TelemetrySample s;
  s.wall_nanos = wall_nanos;
  s.totals.singles = singles;
  s.totals.shed = shed;
  s.totals.fg_bytes_written = fg_bytes;
  for (uint64_t i = 0; i < singles; i++) {
    s.totals.execute_us.Add(100.0);
  }
  return s;
}

TEST(MetricsRegistryTest, DerivesRatesBetweenConsecutiveSamples) {
  obs::MetricsRegistry registry(8);
  obs::MetricsWindow w;
  EXPECT_FALSE(registry.LatestWindow(&w));

  registry.AddSample(SampleAt(1'000'000'000, 1000, 0, 0));
  EXPECT_FALSE(registry.LatestWindow(&w));  // one sample: no window yet

  registry.AddSample(SampleAt(3'000'000'000, 5000, 40, 2'000'000));
  ASSERT_TRUE(registry.LatestWindow(&w));
  EXPECT_NEAR(2.0, w.seconds, 1e-9);
  EXPECT_EQ(4000u, w.requests);
  EXPECT_NEAR(2000.0, w.qps, 1e-6);
  EXPECT_NEAR(20.0, w.shed_per_sec, 1e-6);
  EXPECT_NEAR(1'000'000.0, w.fg_write_bytes_per_sec, 1e-3);
  // The windowed execute histogram holds only this window's 4000 samples.
  EXPECT_EQ(4000u, w.execute_us.Count());
  EXPECT_EQ(2u, registry.samples_ingested());
}

TEST(MetricsRegistryTest, RingEvictsOldestWindows) {
  obs::MetricsRegistry registry(2);
  for (int i = 0; i < 5; i++) {
    registry.AddSample(SampleAt(static_cast<uint64_t>(i + 1) * 1'000'000'000ull,
                                static_cast<uint64_t>(i) * 100, 0, 0));
  }
  std::vector<obs::MetricsWindow> windows = registry.Windows();
  ASSERT_EQ(2u, windows.size());  // capacity bound held
  // Oldest-first; the last window covers samples 4 -> 5.
  EXPECT_EQ(100u, windows[1].requests);
  EXPECT_EQ(windows[0].end_nanos, windows[1].start_nanos);
}

TEST(MetricsRegistryTest, SelfCheckFailuresAccumulate) {
  obs::MetricsRegistry registry(4);
  EXPECT_EQ(0u, registry.self_check_failures());
  registry.CountSelfCheckFailure();
  registry.CountSelfCheckFailure();
  EXPECT_EQ(2u, registry.self_check_failures());
  EXPECT_NE(std::string::npos, registry.ToJson().find("\"self_check_failures\":2"));
}

// --- Prometheus exposition ---

// Validates exposition-format well-formedness the same way the CI checker
// script does: every non-comment line is `name{labels} value`, every # TYPE
// has samples, histogram buckets are cumulative with le="+Inf" == _count.
void ValidateExposition(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::set<std::string> typed_families;
  std::map<std::string, std::vector<std::pair<double, double>>> buckets;  // family -> (le, v)
  std::map<std::string, double> counts;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, family;
      ls >> hash >> kind >> family;
      EXPECT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      if (kind == "TYPE") {
        typed_families.insert(family);
      }
      continue;
    }
    const size_t sp = line.rfind(' ');
    ASSERT_NE(std::string::npos, sp) << line;
    const std::string series = line.substr(0, sp);
    const std::string value_str = line.substr(sp + 1);
    char* end = nullptr;
    double value = std::strtod(value_str.c_str(), &end);
    const bool inf_value = value_str == "+Inf";
    EXPECT_TRUE(inf_value || (end != value_str.c_str() && *end == '\0'))
        << "unparseable value: " << line;
    const size_t brace = series.find('{');
    std::string name = brace == std::string::npos ? series : series.substr(0, brace);
    EXPECT_EQ(0u, name.rfind("p2kvs_", 0)) << "missing prefix: " << line;
    if (brace != std::string::npos) {
      EXPECT_EQ('}', series.back()) << line;
    }
    // Track histogram series for the cumulative check.
    if (name.size() > 7 && name.rfind("_bucket") == name.size() - 7) {
      const size_t le = series.find("le=\"");
      ASSERT_NE(std::string::npos, le) << line;
      std::string le_str = series.substr(le + 4);
      le_str.resize(le_str.find('"'));
      double le_v = le_str == "+Inf" ? std::numeric_limits<double>::infinity()
                                     : std::strtod(le_str.c_str(), nullptr);
      buckets[name.substr(0, name.size() - 7)].push_back({le_v, value});
    } else if (name.size() > 6 && name.rfind("_count") == name.size() - 6) {
      counts[name.substr(0, name.size() - 6)] = value;
    }
  }
  EXPECT_FALSE(typed_families.empty());
  for (const auto& kv : buckets) {
    double last = -1;
    double last_le = -std::numeric_limits<double>::infinity();
    for (const auto& [le_v, v] : kv.second) {
      EXPECT_GT(le_v, last_le) << kv.first << " le bounds must ascend";
      EXPECT_GE(v, last) << kv.first << " buckets must be cumulative";
      last = v;
      last_le = le_v;
    }
    ASSERT_FALSE(kv.second.empty());
    EXPECT_TRUE(std::isinf(kv.second.back().first)) << kv.first << " missing +Inf";
    ASSERT_TRUE(counts.count(kv.first)) << kv.first << " missing _count";
    EXPECT_EQ(counts[kv.first], kv.second.back().second)
        << kv.first << " +Inf bucket must equal _count";
  }
}

obs::TelemetrySample MakeRichSample() {
  obs::TelemetrySample sample;
  sample.wall_nanos = 42'000'000'000ull;
  sample.process_cpu_percent = 55.5;
  sample.process_rss_bytes = 123456789;
  sample.trace_enabled = true;
  sample.trace_events = 10;
  for (int wid = 0; wid < 2; wid++) {
    WorkerStatsSnapshot w;
    w.worker_id = wid;
    w.singles = 100 + static_cast<uint64_t>(wid) * 50;
    w.writes_batched = 30;
    w.write_batches = 10;
    w.shed = 2;
    w.submitted = w.singles + w.writes_batched + w.shed;
    w.completed = w.singles + w.writes_batched;
    w.fg_bytes_written = 10000;
    w.queue_depth = static_cast<size_t>(wid);
    for (int i = 0; i < 50; i++) {
      w.queue_wait_us.Add(10.0 + i);
      w.execute_us.Add(100.0 + i);
      w.end_to_end_us.Add(200.0 + i);
      w.batch_size.Add(3);
    }
    w.hot_keys.total_ops = 100;
    w.hot_keys.entries.push_back(
        {"key-" + std::to_string(wid), Hash64("x", 1) + static_cast<uint64_t>(wid), 40, 1, wid});
    sample.workers.push_back(w);
    sample.totals.MergeFrom(w);
  }
  return sample;
}

TEST(PrometheusTest, ExpositionIsWellFormedAndCoversRequiredFamilies) {
  obs::TelemetrySample sample = MakeRichSample();
  obs::SkewReport skew = obs::BuildSkewReport(sample.workers, 8);
  obs::MetricsRegistry registry(4);
  obs::TelemetrySample earlier = sample;
  earlier.wall_nanos -= 1'000'000'000ull;
  earlier.totals = WorkerStatsSnapshot();
  registry.AddSample(earlier);
  registry.AddSample(sample);
  obs::MetricsWindow window;
  ASSERT_TRUE(registry.LatestWindow(&window));

  const std::string text =
      obs::RenderPrometheusText(sample, &window, skew, /*self_check_failures=*/1);
  ValidateExposition(text);
  for (const char* family : {
           "p2kvs_requests_submitted_total", "p2kvs_requests_completed_total",
           "p2kvs_requests_shed_total", "p2kvs_batches_total", "p2kvs_fg_io_bytes_total",
           "p2kvs_process_cpu_percent", "p2kvs_process_rss_bytes", "p2kvs_partition_healthy",
           "p2kvs_partition_queue_depth", "p2kvs_partition_load_share",
           "p2kvs_skew_imbalance_max_mean", "p2kvs_hot_key_count", "p2kvs_window_qps",
           "p2kvs_window_latency_us", "p2kvs_selfcheck_failures_total",
           "p2kvs_queue_wait_microseconds_bucket", "p2kvs_execute_microseconds_bucket",
           "p2kvs_end_to_end_microseconds_bucket", "p2kvs_batch_size_bucket",
       }) {
    EXPECT_NE(std::string::npos, text.find(family)) << "missing family: " << family;
  }
  EXPECT_NE(std::string::npos, text.find("p2kvs_selfcheck_failures_total 1"));
}

TEST(PrometheusTest, WindowFamiliesAbsentBeforeFirstWindow) {
  obs::TelemetrySample sample = MakeRichSample();
  obs::SkewReport skew = obs::BuildSkewReport(sample.workers, 8);
  const std::string text = obs::RenderPrometheusText(sample, nullptr, skew, 0);
  ValidateExposition(text);
  EXPECT_EQ(std::string::npos, text.find("p2kvs_window_qps"));
  // Cumulative families still render.
  EXPECT_NE(std::string::npos, text.find("p2kvs_requests_submitted_total"));
}

TEST(PrometheusTest, LabelValuesAreEscaped) {
  EXPECT_EQ("a\\\\b", obs::PrometheusLabelEscape("a\\b"));
  EXPECT_EQ("a\\\"b", obs::PrometheusLabelEscape("a\"b"));
  EXPECT_EQ("a\\nb", obs::PrometheusLabelEscape("a\nb"));

  obs::TelemetrySample sample;
  sample.wall_nanos = 1;
  WorkerStatsSnapshot w;
  w.worker_id = 0;
  w.singles = 10;
  w.hot_keys.total_ops = 10;
  w.hot_keys.entries.push_back({"evil\"key\nwith\\stuff", 7, 10, 0, 0});
  sample.workers.push_back(w);
  sample.totals.MergeFrom(w);
  obs::SkewReport skew = obs::BuildSkewReport(sample.workers, 4);
  const std::string text = obs::RenderPrometheusText(sample, nullptr, skew, 0);
  EXPECT_NE(std::string::npos, text.find("evil\\\"key\\nwith\\\\stuff"));
  EXPECT_EQ(std::string::npos, text.find("evil\"key"));
}

// --- Store-level integration ---

Options SmallLsmOptions(Env* env) {
  Options options;
  options.env = env;
  options.write_buffer_size = 64 * 1024;
  options.target_file_size = 32 * 1024;
  options.max_bytes_for_level_base = 128 * 1024;
  return options;
}

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void Open(size_t sketch_k, int metrics_window_ms, int num_workers = 2) {
    env_ = NewMemEnv();
    options_ = P2kvsOptions();
    options_.env = env_.get();
    options_.num_workers = num_workers;
    options_.pin_workers = false;
    options_.enable_stats = true;
    options_.hot_key_sketch_k = sketch_k;
    options_.metrics_window_ms = metrics_window_ms;
    options_.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env_.get()));
    ASSERT_TRUE(P2KVS::Open(options_, "/obs", &store_).ok());
  }

  std::unique_ptr<Env> env_;
  P2kvsOptions options_;
  std::unique_ptr<P2KVS> store_;
};

TEST_F(ObsIntegrationTest, GetStatsReportsHotKeysAndSkew) {
  Open(/*sketch_k=*/8, /*metrics_window_ms=*/0);
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(store_->Put("hot-key", "v").ok());
  }
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(store_->Put("cold-" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(store_->WaitIdle().ok());
  P2kvsStats stats = store_->GetStats();
  ASSERT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();

  ASSERT_FALSE(stats.skew.top_keys.empty());
  EXPECT_EQ("hot-key", stats.skew.top_keys[0].key);
  EXPECT_GE(stats.skew.top_keys[0].count, 300u);
  EXPECT_EQ(store_->PartitionOf("hot-key"), stats.skew.top_keys[0].worker_id);
  EXPECT_EQ(store_->PartitionOf("hot-key"), stats.skew.hottest_partition);
  EXPECT_GT(stats.skew.imbalance_max_mean, 1.0);
  EXPECT_EQ(400u, stats.skew.sketched_ops);
  // The skew report round-trips through the stats JSON.
  EXPECT_NE(std::string::npos, stats.ToJson().find("\"skew\""));
}

TEST_F(ObsIntegrationTest, SketchDisabledMeansNoSketchState) {
  Open(/*sketch_k=*/0, /*metrics_window_ms=*/0);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i % 5), "v").ok());
  }
  ASSERT_TRUE(store_->WaitIdle().ok());
  P2kvsStats stats = store_->GetStats();
  EXPECT_TRUE(stats.skew.top_keys.empty());
  EXPECT_EQ(0u, stats.skew.sketched_ops);
  // Load shares still work without the sketch.
  EXPECT_EQ(100u, stats.skew.total_ops);
  EXPECT_GE(stats.skew.hottest_partition, 0);
}

TEST_F(ObsIntegrationTest, TelemetryLoopFillsTheRegistryRing) {
  Open(/*sketch_k=*/8, /*metrics_window_ms=*/10);
  ASSERT_NE(nullptr, store_->metrics_registry());
  for (int round = 0; round < 10; round++) {
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v").ok());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  obs::MetricsRegistry* registry = store_->metrics_registry();
  obs::MetricsWindow window;
  ASSERT_TRUE(registry->LatestWindow(&window));
  EXPECT_GT(registry->samples_ingested(), 2u);
  EXPECT_GT(window.seconds, 0.0);
  EXPECT_EQ(0u, registry->self_check_failures());
  std::vector<obs::MetricsWindow> windows = registry->Windows();
  uint64_t total_requests = 0;
  for (const obs::MetricsWindow& w : windows) {
    total_requests += w.requests;
  }
  EXPECT_GT(total_requests, 0u);
}

TEST_F(ObsIntegrationTest, WorkerThreadsNeverReadTheClockForTelemetry) {
  // The zero-overhead contract, as a measured property: with the full
  // telemetry plane enabled (sketch + windowed drains), the workers'
  // PerfContexts must show ZERO obs-layer clock reads — recording is
  // clock-free and all timestamps happen on the drain thread.
  Open(/*sketch_k=*/16, /*metrics_window_ms=*/10);
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i % 20), "v").ok());
    if (i % 3 == 0) {
      std::string value;
      store_->Get("k" + std::to_string(i % 20), &value).IgnoreError();
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(store_->WaitIdle().ok());
  P2kvsStats stats = store_->GetStats();
  EXPECT_EQ(0u, stats.totals.engine.obs_clock_reads);
  ASSERT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
}

TEST_F(ObsIntegrationTest, TelemetryOffAlsoMeansZeroObsClockReads) {
  Open(/*sketch_k=*/0, /*metrics_window_ms=*/0);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(store_->WaitIdle().ok());
  P2kvsStats stats = store_->GetStats();
  EXPECT_EQ(0u, stats.totals.engine.obs_clock_reads);
  EXPECT_EQ(nullptr, store_->metrics_registry());
}

// --- Admin endpoint, end-to-end over raw sockets ---

struct HttpResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

HttpResponse HttpGet(uint16_t port, const std::string& request_line) {
  HttpResponse resp;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return resp;
  }
  const std::string request = request_line + "\r\nHost: test\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Connection: close framing — EOF ends the response
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return resp;
  }
  resp.headers = raw.substr(0, header_end);
  resp.body = raw.substr(header_end + 4);
  std::sscanf(resp.headers.c_str(), "HTTP/1.0 %d", &resp.status);
  return resp;
}

class AdminServerTest : public ObsIntegrationTest {
 protected:
  void StartAdmin() {
    server::AdminOptions admin_options;  // port 0: kernel-assigned
    admin_ = std::make_unique<server::AdminServer>(store_.get(), admin_options);
    ASSERT_TRUE(admin_->Start().ok());
    ASSERT_NE(0, admin_->port());
  }

  void TearDown() override {
    if (admin_ != nullptr) {
      admin_->Stop();
    }
  }

  std::unique_ptr<server::AdminServer> admin_;
};

TEST_F(AdminServerTest, ServesMetricsStatsHealthAndTracez) {
  Open(/*sketch_k=*/8, /*metrics_window_ms=*/10);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store_->Put("admin-key-" + std::to_string(i % 10), "v").ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));  // >= 2 windows
  StartAdmin();

  HttpResponse metrics = HttpGet(admin_->port(), "GET /metrics HTTP/1.0");
  EXPECT_EQ(200, metrics.status);
  EXPECT_NE(std::string::npos, metrics.headers.find("text/plain"));
  ValidateExposition(metrics.body);
  EXPECT_NE(std::string::npos, metrics.body.find("p2kvs_requests_submitted_total"));
  EXPECT_NE(std::string::npos, metrics.body.find("p2kvs_hot_key_count"));
  EXPECT_NE(std::string::npos, metrics.body.find("p2kvs_window_qps"));
  EXPECT_NE(std::string::npos, metrics.body.find("p2kvs_process_rss_bytes"));

  HttpResponse stats = HttpGet(admin_->port(), "GET /stats.json HTTP/1.0");
  EXPECT_EQ(200, stats.status);
  EXPECT_NE(std::string::npos, stats.headers.find("application/json"));
  EXPECT_EQ(0u, stats.body.rfind("{\"stats\":", 0));
  EXPECT_NE(std::string::npos, stats.body.find("\"registry\":"));
  EXPECT_NE(std::string::npos, stats.body.find("\"windows\""));

  HttpResponse health = HttpGet(admin_->port(), "GET /healthz HTTP/1.0");
  EXPECT_EQ(200, health.status);
  EXPECT_NE(std::string::npos, health.body.find("\"status\":\"ok\""));

  HttpResponse tracez = HttpGet(admin_->port(), "GET /tracez HTTP/1.0");
  EXPECT_EQ(200, tracez.status);
  EXPECT_NE(std::string::npos, tracez.body.find("\"trace_enabled\":false"));

  HttpResponse missing = HttpGet(admin_->port(), "GET /nope HTTP/1.0");
  EXPECT_EQ(404, missing.status);
  HttpResponse post = HttpGet(admin_->port(), "POST /metrics HTTP/1.0");
  EXPECT_EQ(405, post.status);
}

TEST_F(AdminServerTest, ConcurrentScrapesAllComplete) {
  Open(/*sketch_k=*/8, /*metrics_window_ms=*/10);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v").ok());
  }
  StartAdmin();
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<int> statuses(kClients, 0);
  for (int c = 0; c < kClients; c++) {
    clients.emplace_back([this, c, &statuses] {
      const char* path = c % 2 == 0 ? "GET /metrics HTTP/1.0" : "GET /stats.json HTTP/1.0";
      statuses[c] = HttpGet(admin_->port(), path).status;
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (int c = 0; c < kClients; c++) {
    EXPECT_EQ(200, statuses[c]) << "client " << c;
  }
}

TEST_F(AdminServerTest, SurvivesScrapesUnderConcurrentLoad) {
  Open(/*sketch_k=*/8, /*metrics_window_ms=*/10);
  StartAdmin();
  std::atomic<bool> stop{false};
  std::thread writer([this, &stop] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      store_->Put("load-" + std::to_string(i++ % 50), "v").IgnoreError();
    }
  });
  for (int i = 0; i < 10; i++) {
    HttpResponse metrics = HttpGet(admin_->port(), "GET /metrics HTTP/1.0");
    EXPECT_EQ(200, metrics.status);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  ASSERT_TRUE(store_->WaitIdle().ok());
  P2kvsStats stats = store_->GetStats();
  EXPECT_EQ(0u, stats.totals.engine.obs_clock_reads);
  ASSERT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
}

}  // namespace
}  // namespace p2kvs
