// WAL record format tests: round trips, fragmentation across blocks, torn
// tails, corruption detection.

#include <gtest/gtest.h>

#include "src/io/mem_env.h"
#include "src/util/random.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace p2kvs {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    ASSERT_TRUE(env_->NewWritableFile("/log", &file_).ok());
    writer_ = std::make_unique<log::Writer>(file_.get());
  }

  void Write(const std::string& record) { ASSERT_TRUE(writer_->AddRecord(record).ok()); }

  std::vector<std::string> ReadAll(size_t* corruption_bytes = nullptr) {
    struct CountingReporter : public log::Reader::Reporter {
      size_t bytes = 0;
      void Corruption(size_t n, const Status&) override { bytes += n; }
    };
    std::unique_ptr<SequentialFile> read_file;
    EXPECT_TRUE(env_->NewSequentialFile("/log", &read_file).ok());
    CountingReporter reporter;
    log::Reader reader(read_file.get(), &reporter, true);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    if (corruption_bytes != nullptr) {
      *corruption_bytes = reporter.bytes;
    }
    return records;
  }

  // Truncates the log to `size` bytes (simulating a torn write).
  void Truncate(size_t size) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
    contents.resize(size);
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/log", false).ok());
  }

  void CorruptByte(size_t offset) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
    ASSERT_LT(offset, contents.size());
    contents[offset] ^= 0x55;
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/log", false).ok());
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<WritableFile> file_;
  std::unique_ptr<log::Writer> writer_;
};

TEST_F(WalTest, EmptyLog) { EXPECT_TRUE(ReadAll().empty()); }

TEST_F(WalTest, SmallRecords) {
  Write("foo");
  Write("bar");
  Write("");
  Write("xxxx");
  auto records = ReadAll();
  ASSERT_EQ(4u, records.size());
  EXPECT_EQ("foo", records[0]);
  EXPECT_EQ("bar", records[1]);
  EXPECT_EQ("", records[2]);
  EXPECT_EQ("xxxx", records[3]);
}

TEST_F(WalTest, RecordSpanningBlocks) {
  // Larger than one 32 KiB block: forces FIRST/MIDDLE/LAST fragmentation.
  std::string big(100000, 'q');
  Write("head");
  Write(big);
  Write("tail");
  auto records = ReadAll();
  ASSERT_EQ(3u, records.size());
  EXPECT_EQ("head", records[0]);
  EXPECT_EQ(big, records[1]);
  EXPECT_EQ("tail", records[2]);
}

TEST_F(WalTest, ManyRandomSizes) {
  Random rnd(301);
  std::vector<std::string> expected;
  for (int i = 0; i < 300; i++) {
    expected.push_back(std::string(rnd.Skewed(15), static_cast<char>('a' + i % 26)));
    Write(expected.back());
  }
  auto records = ReadAll();
  ASSERT_EQ(expected.size(), records.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ(expected[i], records[i]) << i;
  }
}

TEST_F(WalTest, TornTailIsSilentlyDropped) {
  Write("complete");
  Write(std::string(50000, 'z'));
  uint64_t full_size;
  ASSERT_TRUE(env_->GetFileSize("/log", &full_size).ok());
  Truncate(full_size - 1);  // cut into the last record
  size_t corruption = 0;
  auto records = ReadAll(&corruption);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("complete", records[0]);
  // A torn tail is a normal crash artifact, not corruption.
  EXPECT_EQ(0u, corruption);
}

TEST_F(WalTest, ChecksumCatchesBitFlip) {
  Write("record-one");
  Write("record-two");
  CorruptByte(10);  // inside the first record's payload
  size_t corruption = 0;
  auto records = ReadAll(&corruption);
  // A checksum failure poisons the rest of its 32 KiB block (leveldb
  // semantics), so record-two is dropped too — but it is *reported*, never
  // silently returned corrupt.
  EXPECT_TRUE(records.empty());
  EXPECT_GT(corruption, 0u);
}

TEST_F(WalTest, CorruptionInOneBlockDoesNotPoisonNextBlock) {
  Write("first-block-record");
  Write(std::string(2 * log::kBlockSize, 'f'));  // spills into later blocks
  Write("tail-record");
  CorruptByte(3);  // clobber the first record's checksum
  size_t corruption = 0;
  auto records = ReadAll(&corruption);
  EXPECT_GT(corruption, 0u);
  // The reader resynchronizes at the next block boundary: the tail record
  // (whose fragments live in clean blocks) is recovered... the large record
  // began in the poisoned block, so only the tail survives.
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("tail-record", records[0]);
}

TEST_F(WalTest, ReopenedLogContinuesAtBlockOffset) {
  Write("first");
  file_->Flush().IgnoreError();
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize("/log", &size).ok());
  // Reopen for append, as the engines do after restart.
  std::unique_ptr<WritableFile> file2;
  ASSERT_TRUE(env_->NewAppendableFile("/log", &file2).ok());
  log::Writer writer2(file2.get(), size);
  ASSERT_TRUE(writer2.AddRecord("second").ok());
  file2->Flush().IgnoreError();
  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("first", records[0]);
  EXPECT_EQ("second", records[1]);
}

TEST_F(WalTest, ExactBlockBoundaryTrailer) {
  // Leave fewer than 7 bytes in the block so the writer must pad.
  std::string almost_block(log::kBlockSize - log::kHeaderSize - 3, 'p');
  Write(almost_block);
  Write("next-block");
  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(almost_block, records[0]);
  EXPECT_EQ("next-block", records[1]);
}

}  // namespace
}  // namespace p2kvs
