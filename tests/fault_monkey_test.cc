// Randomized fault monkey: inject seeded transient/hard storage faults while
// operating each engine, crash (power-loss simulation where the engine has a
// crash-consistency story), reopen, and verify the survivors against a
// per-key model. Every iteration is deterministic for its seed, so a failure
// reproduces. The invariants:
//
//   LSM / B+-tree (WAL engines, sync acks): a key's recovered value must be
//   one of the values ever attempted for it, no older than the last
//   sync-acked one; a key with a sync-acked write must not vanish. Unacked
//   writes MAY surface (their WAL record can ride a later sync) — that is
//   record-granularity atomicity, not a violation.
//
//   KVell (no WAL; durability at clean close): after a clean close + reopen,
//   every key holds exactly its last acked value (faults fire before any
//   slot byte lands, so a failed update never corrupts the previous value).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/btree/btree_store.h"
#include "src/core/p2kvs.h"
#include "src/io/error_injection_env.h"
#include "src/io/fault_injection_env.h"
#include "src/io/mem_env.h"
#include "src/kvell/kvell_store.h"
#include "src/lsm/db.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

constexpr int kIterations = 200;
constexpr int kOpsPerIteration = 18;
constexpr int kKeySpace = 8;

// What the test attempted and what the engine acknowledged, per key.
struct KeyModel {
  std::vector<std::string> attempts;  // every value ever written, in order
  int acked = -1;                     // index of the last acknowledged write
};

using Model = std::map<std::string, KeyModel>;

std::string KeyAt(uint32_t i) { return "key-" + std::to_string(i); }

// Seeded fault mix for one iteration. Most iterations inject transient
// faults (retryable); every few iterations the faults are hard, exercising
// the sticky-error / resume paths.
void ArmFaults(ErrorInjectionEnv* env, int iter) {
  env->SetSeed(static_cast<uint32_t>(7919 * iter + 13));
  bool transient = (iter % 5 != 0);
  env->SetFailureOdds(FaultOp::kAppend, 7, transient);
  env->SetFailureOdds(FaultOp::kSync, 5, transient);
  env->SetFailureOdds(FaultOp::kRandomWrite, 7, transient);
  env->SetFailureOdds(FaultOp::kRandomSync, 9, transient);
}

// WAL-engine invariant (LSM and B+-tree).
void VerifyWalEngine(const Model& model, int iter,
                     const std::function<Status(const std::string&, std::string*)>& get) {
  for (const auto& [key, m] : model) {
    std::string value;
    Status s = get(key, &value);
    if (s.IsNotFound()) {
      EXPECT_EQ(-1, m.acked) << "iter " << iter << ": acked write to " << key
                             << " vanished after crash";
      continue;
    }
    ASSERT_TRUE(s.ok()) << "iter " << iter << " key " << key << ": " << s.ToString();
    auto it = std::find(m.attempts.begin(), m.attempts.end(), value);
    ASSERT_NE(m.attempts.end(), it)
        << "iter " << iter << " key " << key << ": phantom value " << value;
    int idx = static_cast<int>(it - m.attempts.begin());
    EXPECT_GE(idx, m.acked) << "iter " << iter << " key " << key
                            << ": recovered value older than the last acked write";
  }
}

TEST(FaultMonkeyTest, LsmSurvivesInjectedFaultsAndCrashes) {
  for (int iter = 0; iter < kIterations; iter++) {
    auto base = NewMemEnv();
    ErrorInjectionEnv err_env(base.get());
    FaultInjectionEnv fault_env(&err_env);
    Random rng(static_cast<uint32_t>(1000 + iter));

    Options options;
    options.env = &fault_env;
    options.write_buffer_size = 32 * 1024;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, "/db", &db).ok()) << "iter " << iter;

    Model model;
    ArmFaults(&err_env, iter);
    WriteOptions sync_wo;
    sync_wo.sync = true;
    for (int op = 0; op < kOpsPerIteration; op++) {
      std::string key = KeyAt(rng.Uniform(kKeySpace));
      std::string value = "v-" + std::to_string(iter) + "-" + std::to_string(op);
      KeyModel& m = model[key];
      m.attempts.push_back(value);
      Status s = db->Put(sync_wo, key, value);
      if (s.ok()) {
        m.acked = static_cast<int>(m.attempts.size()) - 1;
      } else {
        // Sticky bg_error_ after a hard WAL fault: resume is best-effort
        // here; with faults still armed it may legitimately fail again.
        db->Resume().IgnoreError();
      }
      if (rng.OneIn(4)) {
        std::string unused;
        db->Get(ReadOptions(), key, &unused).IgnoreError();  // reads must never wedge
      }
    }

    // Power loss: drop the store, roll unsynced state back, reopen clean.
    err_env.DisableAll();
    db.reset();
    ASSERT_TRUE(fault_env.Crash().ok()) << "iter " << iter;
    ASSERT_TRUE(DB::Open(options, "/db", &db).ok()) << "iter " << iter;
    VerifyWalEngine(model, iter, [&](const std::string& key, std::string* value) {
      return db->Get(ReadOptions(), key, value);
    });
  }
}

TEST(FaultMonkeyTest, BTreeSurvivesInjectedFaultsAndCrashes) {
  for (int iter = 0; iter < kIterations; iter++) {
    auto base = NewMemEnv();
    ErrorInjectionEnv err_env(base.get());
    FaultInjectionEnv fault_env(&err_env);
    Random rng(static_cast<uint32_t>(5000 + iter));

    BTreeOptions options;
    options.env = &fault_env;
    options.sync_writes = true;  // each acked put is WAL-synced
    std::unique_ptr<BTreeStore> store;
    ASSERT_TRUE(BTreeStore::Open(options, "/bt", &store).ok()) << "iter " << iter;

    Model model;
    ArmFaults(&err_env, iter);
    for (int op = 0; op < kOpsPerIteration; op++) {
      std::string key = KeyAt(rng.Uniform(kKeySpace));
      std::string value = "v-" + std::to_string(iter) + "-" + std::to_string(op);
      KeyModel& m = model[key];
      m.attempts.push_back(value);
      if (store->Put(key, value).ok()) {
        m.acked = static_cast<int>(m.attempts.size()) - 1;
      }
      if (rng.OneIn(4)) {
        std::string unused;
        store->Get(key, &unused).IgnoreError();
      }
    }

    // Destroy with faults still armed: the destructor's checkpoint may fail
    // partway through, exercising the page-file undo log on Crash().
    store.reset();
    err_env.DisableAll();
    ASSERT_TRUE(fault_env.Crash().ok()) << "iter " << iter;
    Status reopen = BTreeStore::Open(options, "/bt", &store);
    ASSERT_TRUE(reopen.ok()) << "iter " << iter << ": " << reopen.ToString();
    VerifyWalEngine(model, iter, [&](const std::string& key, std::string* value) {
      return store->Get(key, value);
    });
  }
}

TEST(FaultMonkeyTest, WriteTxnIsAtomicAcrossFaultsAndCrashes) {
  // GSN-transaction invariant (paper §4.5): after a crash, every WriteTxn is
  // all-or-nothing across the instances it spanned. An acked txn (commit
  // record synced) must be fully present; a failed txn must be fully present
  // or fully absent — "fully present" is legal because a commit record that
  // missed its own sync can still ride a later transaction's sync of the
  // shared txn log, the same record-granularity caveat as unacked WAL writes.
  //
  // Note the invariant is crash-scoped on purpose: DURING the run, a failed
  // WriteTxn's sub-batches may be partially visible (the committed ones
  // landed; rollback happens only at recovery). The in-run loop therefore
  // only requires that reads keep flowing; visibility is asserted post-crash.
  constexpr int kTxnIterations = 60;
  constexpr int kTxnsPerIteration = 10;
  constexpr int kKeysPerTxn = 6;
  for (int iter = 0; iter < kTxnIterations; iter++) {
    auto base = NewMemEnv();
    ErrorInjectionEnv err_env(base.get());
    FaultInjectionEnv fault_env(&err_env);

    Options lsm;
    lsm.env = &fault_env;
    lsm.write_buffer_size = 32 * 1024;
    P2kvsOptions options;
    options.env = &fault_env;
    options.num_workers = 2;
    options.pin_workers = false;
    options.retry.max_attempts = 2;
    options.engine_factory = MakeRocksLiteFactory(lsm);
    std::unique_ptr<P2KVS> store;
    ASSERT_TRUE(P2KVS::Open(options, "/p2", &store).ok()) << "iter " << iter;

    auto txn_key = [](int txn, int k) {
      return "t" + std::to_string(txn) + "-" + std::to_string(k);
    };
    auto txn_value = [iter](int txn) {
      return "v-" + std::to_string(iter) + "-" + std::to_string(txn);
    };

    ArmFaults(&err_env, iter);
    std::vector<bool> acked(kTxnsPerIteration, false);
    for (int txn = 0; txn < kTxnsPerIteration; txn++) {
      WriteBatch batch;
      for (int k = 0; k < kKeysPerTxn; k++) {
        batch.Put(txn_key(txn, k), txn_value(txn));
      }
      acked[static_cast<size_t>(txn)] = store->WriteTxn(&batch).ok();
      if (!acked[static_cast<size_t>(txn)]) {
        // A hard fault may have degraded a partition; best-effort resume so
        // later transactions get a chance (may legitimately fail again).
        store->Resume().IgnoreError();
      }
      // Reads (and stats drains) must never wedge, whatever the txn did.
      std::string unused;
      store->Get(txn_key(txn, 0), &unused).IgnoreError();
    }
    EXPECT_TRUE(store->GetStats().SelfCheck().ok()) << "iter " << iter;

    // Power loss: unsynced state rolls back, uncommitted GSNs roll back at
    // recovery.
    err_env.DisableAll();
    store.reset();
    ASSERT_TRUE(fault_env.Crash().ok()) << "iter " << iter;
    ASSERT_TRUE(P2KVS::Open(options, "/p2", &store).ok()) << "iter " << iter;

    for (int txn = 0; txn < kTxnsPerIteration; txn++) {
      int present = 0;
      for (int k = 0; k < kKeysPerTxn; k++) {
        std::string value;
        Status s = store->Get(txn_key(txn, k), &value);
        if (s.ok()) {
          ASSERT_EQ(txn_value(txn), value)
              << "iter " << iter << " txn " << txn << ": phantom value";
          present++;
        } else {
          ASSERT_TRUE(s.IsNotFound())
              << "iter " << iter << " txn " << txn << ": " << s.ToString();
        }
      }
      EXPECT_TRUE(present == 0 || present == kKeysPerTxn)
          << "iter " << iter << " txn " << txn << ": torn transaction, "
          << present << "/" << kKeysPerTxn << " keys visible after recovery";
      if (acked[static_cast<size_t>(txn)]) {
        EXPECT_EQ(kKeysPerTxn, present)
            << "iter " << iter << " txn " << txn << ": acked txn lost keys";
      }
    }
  }
}

TEST(FaultMonkeyTest, KvellSurvivesInjectedFaultsAcrossReopen) {
  for (int iter = 0; iter < kIterations; iter++) {
    auto base = NewMemEnv();
    ErrorInjectionEnv err_env(base.get());
    Random rng(static_cast<uint32_t>(9000 + iter));

    KvellOptions options;
    options.env = &err_env;
    options.num_workers = 1;
    options.pin_workers = false;
    std::unique_ptr<KvellStore> store;
    ASSERT_TRUE(KvellStore::Open(options, "/kvell", &store).ok()) << "iter " << iter;

    Model model;
    ArmFaults(&err_env, iter);
    for (int op = 0; op < kOpsPerIteration; op++) {
      std::string key = KeyAt(rng.Uniform(kKeySpace));
      std::string value = "v-" + std::to_string(iter) + "-" + std::to_string(op);
      KeyModel& m = model[key];
      m.attempts.push_back(value);
      if (store->Put(key, value).ok()) {
        m.acked = static_cast<int>(m.attempts.size()) - 1;
      }
      if (rng.OneIn(4)) {
        std::string unused;
        store->Get(key, &unused).IgnoreError();
      }
    }

    // Clean close (KVell's durability point: slabs are synced), reopen, and
    // rebuild the index from the slabs.
    err_env.DisableAll();
    store.reset();
    ASSERT_TRUE(KvellStore::Open(options, "/kvell", &store).ok()) << "iter " << iter;
    for (const auto& [key, m] : model) {
      std::string value;
      Status s = store->Get(key, &value);
      if (m.acked < 0) {
        EXPECT_TRUE(s.IsNotFound())
            << "iter " << iter << " key " << key << ": unacked write surfaced";
      } else {
        ASSERT_TRUE(s.ok()) << "iter " << iter << " key " << key << ": " << s.ToString();
        EXPECT_EQ(m.attempts[static_cast<size_t>(m.acked)], value)
            << "iter " << iter << " key " << key;
      }
    }
  }
}

}  // namespace
}  // namespace p2kvs
