// Per-request tracing tests: the TraceRing seqlock protocol, sampling
// semantics, end-to-end event chains through the 2-D pipeline at 100%
// sampling, the zero-clock-reads-when-unsampled contract, the flight
// recorder (hard error + SIGUSR2), and the structural validity of the
// exported Perfetto trace_event JSON.

#include "src/util/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/p2kvs.h"
#include "src/io/error_injection_env.h"
#include "src/io/mem_env.h"
#include "src/kvell/kvell_store.h"
#include "src/util/trace_exporter.h"

namespace p2kvs {
namespace {

// ---------------- TraceRing ----------------

TraceEvent MakeEvent(uint64_t trace_id, TraceEventType type, uint64_t arg1 = 0,
                     uint64_t arg2 = 0, uint32_t worker = 0) {
  TraceEvent e;
  e.trace_id = trace_id;
  e.ts_nanos = trace_id;  // deterministic, distinct
  e.arg1 = arg1;
  e.arg2 = arg2;
  e.type = type;
  e.worker_id = worker;
  return e;
}

TEST(TraceRingTest, AppendAndSnapshotPreservesOrder) {
  TraceRing ring(64);
  EXPECT_EQ(64u, ring.capacity());
  for (uint64_t i = 1; i <= 10; i++) {
    ring.Append(MakeEvent(i, TraceEventType::kEnqueue, i * 10));
  }
  EXPECT_EQ(10u, ring.appended());
  EXPECT_EQ(0u, ring.dropped());

  std::vector<TraceEvent> out;
  EXPECT_EQ(0u, ring.Snapshot(&out));  // quiescent: nothing torn
  ASSERT_EQ(10u, out.size());
  for (uint64_t i = 0; i < 10; i++) {
    EXPECT_EQ(i + 1, out[i].trace_id);
    EXPECT_EQ((i + 1) * 10, out[i].arg1);
    EXPECT_EQ(TraceEventType::kEnqueue, out[i].type);
  }
}

TEST(TraceRingTest, WrapOverwritesOldestAndCountsDrops) {
  TraceRing ring(64);  // minimum capacity
  const uint64_t total = 200;
  for (uint64_t i = 1; i <= total; i++) {
    ring.Append(MakeEvent(i, TraceEventType::kComplete));
  }
  EXPECT_EQ(total, ring.appended());
  EXPECT_EQ(total - ring.capacity(), ring.dropped());

  std::vector<TraceEvent> out;
  EXPECT_EQ(0u, ring.Snapshot(&out));
  ASSERT_EQ(ring.capacity(), out.size());
  // Exactly the newest `capacity` events survive, oldest first.
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(total - ring.capacity() + i + 1, out[i].trace_id);
  }
}

TEST(TraceRingTest, ConcurrentAppendersAndReadersLoseNothing) {
  // Multi-writer + concurrent snapshots: every append is counted, every
  // surviving slot is either a fully committed event or skipped — never a
  // torn mix. Run under TSan to also prove the protocol is race-free at the
  // language level.
  TraceRing ring(1024);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    std::vector<TraceEvent> out;
    while (!stop.load(std::memory_order_acquire)) {
      ring.Snapshot(&out);
      for (const TraceEvent& e : out) {
        // A committed slot decodes to exactly what one writer wrote:
        // arg1 = trace_id * 3 is the torn-read canary.
        ASSERT_EQ(e.trace_id * 3, e.arg1);
        ASSERT_EQ(TraceEventType::kExecuteBegin, e.type);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i + 1;
        ring.Append(MakeEvent(id, TraceEventType::kExecuteBegin, id * 3, 0,
                              static_cast<uint32_t>(t)));
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(kThreads * kPerThread, ring.appended());
  // Loss accounting is exact: wrap overwrites plus any appends abandoned to a
  // concurrent owner of the same slot (writers a full lap apart).
  EXPECT_EQ(kThreads * kPerThread - ring.capacity() + ring.abandoned(),
            ring.dropped());
  std::vector<TraceEvent> out;
  const size_t skipped = ring.Snapshot(&out);
  // Quiescent: a slot is skipped only if its newest ticket was abandoned (the
  // slot then still holds the previous lap's committed event).
  EXPECT_LE(skipped, ring.abandoned());
  EXPECT_EQ(ring.capacity(), out.size() + skipped);
  for (const TraceEvent& e : out) {
    EXPECT_EQ(e.trace_id * 3, e.arg1);
  }
}

// ---------------- Tracer sampling ----------------

TEST(TracerTest, SampleEveryControlsRate) {
  TraceConfig config;
  config.enabled = true;
  config.sample_every = 4;
  Tracer tracer(config, 1);
  int sampled = 0;
  for (int i = 0; i < 100; i++) {
    if (tracer.SampleSubmit() != 0) {
      sampled++;
    }
  }
  EXPECT_EQ(25, sampled);
  EXPECT_EQ(25u, tracer.sampled_submitted());
}

TEST(TracerTest, SampleEveryZeroAndOne) {
  TraceConfig config;
  config.enabled = true;
  config.sample_every = 0;  // trace nothing at submit
  Tracer none(config, 1);
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ(0u, none.SampleSubmit());
  }
  EXPECT_EQ(0u, none.sampled_submitted());
  // Errors still get identities out of band.
  EXPECT_NE(0u, none.NewTraceId());

  config.sample_every = 1;  // trace everything
  Tracer all(config, 1);
  std::set<uint64_t> ids;
  for (int i = 0; i < 50; i++) {
    uint64_t id = all.SampleSubmit();
    EXPECT_NE(0u, id);
    ids.insert(id);
  }
  EXPECT_EQ(50u, ids.size());  // ids are unique
}

// ---------------- TLS context forwarding (KVell internal queue) ----------------

TEST(TraceContextTest, KvellForwardsContextAcrossInternalQueue) {
  // A KVell Put executed inside a traced scope must emit its slot-write into
  // the submitter's ring even though the write happens on KVell's own worker
  // thread, on the other side of its internal queue.
  std::unique_ptr<Env> env = NewMemEnv();
  KvellOptions options;
  options.env = env.get();
  options.num_workers = 1;
  options.pin_workers = false;
  std::unique_ptr<KvellStore> store;
  ASSERT_TRUE(KvellStore::Open(options, "/kvell-trace", &store).ok());

  TraceRing ring(64);
  {
    TraceContext ctx;
    ctx.ring = &ring;
    ctx.trace_id = 77;
    ctx.batch_id = 1234;
    ctx.worker_id = 5;
    ScopedTraceContext scope(ctx);
    ASSERT_TRUE(store->Put("key", "value").ok());
  }
  // Untraced call afterwards: nothing new lands in the ring.
  ASSERT_TRUE(store->Put("key2", "value2").ok());

  std::vector<TraceEvent> out;
  ring.Snapshot(&out);
  ASSERT_EQ(1u, out.size());
  EXPECT_EQ(TraceEventType::kSlotWrite, out[0].type);
  EXPECT_EQ(77u, out[0].trace_id);
  EXPECT_EQ(1234u, out[0].arg1);  // batch id from the scope
  EXPECT_GT(out[0].arg2, 0u);     // slot bytes
  EXPECT_EQ(5u, out[0].worker_id);
}

// ---------------- Exported JSON structure ----------------

// Minimal structural validator: balanced braces/brackets outside strings,
// and the mandatory trace_event keys present once per event object.
void ValidateTraceJson(const std::string& json, size_t* num_events_out = nullptr) {
  ASSERT_FALSE(json.empty());
  ASSERT_EQ('{', json.front());
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      depth--;
      ASSERT_GE(depth, 0);
    }
  }
  ASSERT_FALSE(in_string);
  ASSERT_EQ(0, depth);
  ASSERT_NE(std::string::npos, json.find("\"traceEvents\":["));

  auto count = [&](const std::string& needle) {
    size_t n = 0;
    for (size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      n++;
    }
    return n;
  };
  // "ph" is the canonical per-event key ("name" also appears inside metadata
  // events' args, so it over-counts).
  const size_t events = count("\"ph\":");
  EXPECT_GE(count("\"name\":"), events);
  EXPECT_EQ(events, count("\"ts\":"));
  EXPECT_EQ(events, count("\"pid\":1"));
  EXPECT_EQ(events, count("\"tid\":"));
  EXPECT_EQ(events, count("\"args\":{"));
  if (num_events_out != nullptr) {
    *num_events_out = events;
  }
}

TEST(TraceExporterTest, SyntheticEventsExportStructurally) {
  std::vector<std::vector<TraceEvent>> per_worker(2);
  per_worker[0].push_back(MakeEvent(1, TraceEventType::kEnqueue, 0, 0, 0));
  per_worker[0].push_back(MakeEvent(1, TraceEventType::kDequeue, 0, 0, 0));
  per_worker[0].push_back(MakeEvent(1, TraceEventType::kExecuteBegin, 42, 3, 0));
  per_worker[0].push_back(MakeEvent(1, TraceEventType::kWalAppend, 42, 512, 0));
  per_worker[0].push_back(MakeEvent(1, TraceEventType::kExecuteEnd, 42, 0, 0));
  per_worker[0].push_back(MakeEvent(1, TraceEventType::kComplete, 0, 42, 0));
  per_worker[1].push_back(MakeEvent(0, TraceEventType::kStall, 1000, 0, 1));
  per_worker[1].push_back(MakeEvent(0, TraceEventType::kCompaction, 4096, 1, 1));

  const std::string json = TraceEventsToJson(per_worker, "unit \"test\"\n");
  size_t events = 0;
  ValidateTraceJson(json, &events);
  // Worker 0's six events collapse to five objects (enqueue + complete +
  // wal_append instants, a queue_wait span consuming the dequeue, an execute
  // span consuming the begin/end pair); worker 1 yields a stall span + a
  // compaction instant; plus 1 process_name + 2 thread_name metadata.
  EXPECT_EQ(10u, events);
  EXPECT_NE(std::string::npos, json.find("\"batch\":42"));
  EXPECT_NE(std::string::npos, json.find("queue_wait"));
  EXPECT_NE(std::string::npos, json.find("\"name\":\"execute\""));
  // The reason string survives escaping.
  EXPECT_NE(std::string::npos, json.find("unit \\\"test\\\"\\n"));
}

// ---------------- End-to-end through p2KVS ----------------

Options SmallLsmOptions(Env* env) {
  Options options;
  options.env = env;
  options.write_buffer_size = 64 * 1024;
  options.target_file_size = 32 * 1024;
  options.max_bytes_for_level_base = 128 * 1024;
  return options;
}

class P2kvsTraceTest : public ::testing::Test {
 protected:
  void Open(uint32_t sample_every, int num_workers = 2,
            size_t ring_capacity = 1 << 16) {
    env_ = NewMemEnv();
    options_ = P2kvsOptions();
    options_.env = env_.get();
    options_.num_workers = num_workers;
    options_.pin_workers = false;
    options_.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env_.get()));
    options_.trace.enabled = true;
    options_.trace.sample_every = sample_every;
    options_.trace.ring_capacity = ring_capacity;
    store_.reset();
    ASSERT_TRUE(P2KVS::Open(options_, "/p2-trace", &store_).ok());
  }

  // All events across all rings, grouped by trace id (0 = untraced dropped).
  std::map<uint64_t, std::vector<TraceEvent>> EventsByTraceId() {
    std::map<uint64_t, std::vector<TraceEvent>> by_id;
    for (auto& ring : store_->tracer()->SnapshotAll()) {
      for (const TraceEvent& e : ring) {
        if (e.trace_id != 0) {
          by_id[e.trace_id].push_back(e);
        }
      }
    }
    // Within one trace id, events may span rings; order by timestamp.
    for (auto& [id, events] : by_id) {
      std::stable_sort(events.begin(), events.end(),
                       [](const TraceEvent& a, const TraceEvent& b) {
                         return a.ts_nanos < b.ts_nanos;
                       });
    }
    return by_id;
  }

  static bool Has(const std::vector<TraceEvent>& events, TraceEventType type) {
    for (const TraceEvent& e : events) {
      if (e.type == type) {
        return true;
      }
    }
    return false;
  }

  std::unique_ptr<Env> env_;
  P2kvsOptions options_;
  std::unique_ptr<P2KVS> store_;
};

TEST_F(P2kvsTraceTest, FullySampledMixedWorkloadHasCompleteCausalChains) {
  Open(/*sample_every=*/1, /*num_workers=*/2);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        std::string key = "k-" + std::to_string(t) + "-" + std::to_string(i);
        switch (i % 4) {
          case 0:
          case 1:
            ASSERT_TRUE(store_->Put(key, "v" + std::to_string(i)).ok());
            break;
          case 2: {
            std::string value;
            Status s = store_->Get(key, &value);
            ASSERT_TRUE(s.ok() || s.IsNotFound());
            break;
          }
          case 3: {
            std::vector<std::pair<std::string, std::string>> out;
            ASSERT_TRUE(store_->Scan("k-", 10, &out).ok());
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  store_->WaitIdle().IgnoreError();

  P2kvsStats stats = store_->GetStats();
  ASSERT_TRUE(stats.trace_enabled);
  EXPECT_EQ(0u, stats.trace_dropped);  // ring sized to hold the whole run
  EXPECT_GT(stats.trace_sampled, 0u);
  EXPECT_EQ(stats.trace_sampled, stats.trace_completed);
  ASSERT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();

  // (a) complete, causally ordered chains for every sampled request.
  auto by_id = EventsByTraceId();
  EXPECT_GE(by_id.size(), stats.trace_sampled);  // + scan fan-out sub-requests
  size_t chains = 0;
  for (const auto& [id, events] : by_id) {
    if (!Has(events, TraceEventType::kComplete)) {
      continue;  // error-only ids (none expected here)
    }
    chains++;
    ASSERT_TRUE(Has(events, TraceEventType::kEnqueue)) << "trace " << id;
    ASSERT_TRUE(Has(events, TraceEventType::kDequeue)) << "trace " << id;
    uint64_t enqueue_ts = 0;
    uint64_t dequeue_ts = 0;
    uint64_t complete_ts = 0;
    for (const TraceEvent& e : events) {
      if (e.type == TraceEventType::kEnqueue) enqueue_ts = e.ts_nanos;
      if (e.type == TraceEventType::kDequeue && dequeue_ts == 0) dequeue_ts = e.ts_nanos;
      if (e.type == TraceEventType::kComplete) complete_ts = e.ts_nanos;
    }
    EXPECT_LE(enqueue_ts, dequeue_ts) << "trace " << id;
    EXPECT_LE(dequeue_ts, complete_ts) << "trace " << id;
  }
  EXPECT_EQ(chains, stats.trace_completed);

  // (b) every batch id named by an OBM merge or WAL append is a real
  // dispatch: it appears on an execute_begin span.
  std::set<uint64_t> execute_batches;
  std::set<uint64_t> merge_batches;
  std::set<uint64_t> wal_batches;
  for (auto& ring : store_->tracer()->SnapshotAll()) {
    for (const TraceEvent& e : ring) {
      if (e.type == TraceEventType::kExecuteBegin) execute_batches.insert(e.arg1);
      if (e.type == TraceEventType::kObmMerge) merge_batches.insert(e.arg1);
      if (e.type == TraceEventType::kWalAppend && e.arg1 != 0) {
        wal_batches.insert(e.arg1);
      }
    }
  }
  EXPECT_FALSE(wal_batches.empty());  // the PUTs logged under traced scopes
  for (uint64_t b : merge_batches) {
    EXPECT_TRUE(execute_batches.count(b)) << "merge batch " << b;
  }
  for (uint64_t b : wal_batches) {
    EXPECT_TRUE(execute_batches.count(b)) << "wal batch " << b;
  }

  // Exported JSON for the whole run is structurally valid trace_event data.
  std::string json = store_->ExportTraceJson();
  size_t events = 0;
  ValidateTraceJson(json, &events);
  EXPECT_GT(events, stats.trace_completed);
}

TEST_F(P2kvsTraceTest, AsyncWriteFloodLinksMergesToWalAppends) {
  // A single worker flooded with async PUTs must form OBM groups, and every
  // merge event's batch id must reappear on that group's WAL-append span.
  Open(/*sample_every=*/1, /*num_workers=*/1);
  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; i++) {
    store_->PutAsync("k" + std::to_string(i), "v" + std::to_string(i),
                     [](const Status& s) { ASSERT_TRUE(s.ok()); });
  }
  store_->WaitIdle().IgnoreError();

  P2kvsStats stats = store_->GetStats();
  ASSERT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
  EXPECT_GT(stats.write_batches, 0u);

  std::set<uint64_t> merge_batches;
  std::set<uint64_t> wal_batches;
  for (auto& ring : store_->tracer()->SnapshotAll()) {
    for (const TraceEvent& e : ring) {
      if (e.type == TraceEventType::kObmMerge) merge_batches.insert(e.arg1);
      if (e.type == TraceEventType::kWalAppend && e.arg1 != 0) {
        wal_batches.insert(e.arg1);
      }
    }
  }
  ASSERT_FALSE(merge_batches.empty());  // the flood formed real groups
  for (uint64_t b : merge_batches) {
    EXPECT_TRUE(wal_batches.count(b)) << "merged batch " << b << " never hit the WAL";
  }
}

TEST_F(P2kvsTraceTest, SamplingOffPerformsZeroWorkerClockReads) {
  // trace.enabled with sample_every=0: the Tracer exists, every submit takes
  // the sampling branch, and NOTHING downstream may read the clock. Verified
  // through the same PerfContext channel the stats-off overhead proof uses.
  Open(/*sample_every=*/0, /*num_workers=*/2);
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v").ok());
    if (i % 3 == 0) {
      std::string value;
      store_->Get("k" + std::to_string(i), &value).IgnoreError();
    }
  }
  store_->WaitIdle().IgnoreError();

  P2kvsStats stats = store_->GetStats();
  ASSERT_TRUE(stats.trace_enabled);
  EXPECT_EQ(0u, stats.trace_sampled);
  EXPECT_EQ(0u, stats.trace_events);
  // The worker threads' PerfContexts are aggregated into totals.engine: zero
  // trace clock reads across every dispatch, WAL append and memtable insert.
  EXPECT_EQ(0u, stats.totals.engine.trace_clock_reads);
  ASSERT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
}

TEST_F(P2kvsTraceTest, RingWrapSurfacesDroppedCounter) {
  Open(/*sample_every=*/1, /*num_workers=*/1, /*ring_capacity=*/64);
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v").ok());
  }
  store_->WaitIdle().IgnoreError();
  P2kvsStats stats = store_->GetStats();
  EXPECT_GT(stats.trace_dropped, 0u);  // loss is surfaced, never silent
  EXPECT_GT(stats.trace_events, stats.trace_dropped);
  ASSERT_TRUE(stats.SelfCheck().ok()) << stats.SelfCheck().ToString();
}

TEST(P2kvsTraceFlightTest, HardErrorDumpsFlightRecorderWithFailingRequest) {
  std::unique_ptr<Env> base_env = NewMemEnv();
  auto env = std::make_unique<ErrorInjectionEnv>(base_env.get());
  Options lsm;
  lsm.env = env.get();
  lsm.wal_retry.max_attempts = 1;
  P2kvsOptions options;
  options.env = env.get();
  options.num_workers = 2;
  options.pin_workers = false;
  options.retry.max_attempts = 1;
  options.engine_factory = MakeRocksLiteFactory(lsm);
  options.trace.enabled = true;
  options.trace.sample_every = 1;
  options.trace.dump_path = "trace_test_flight.json";
  std::remove(options.trace.dump_path.c_str());
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2-flight", &store).ok());

  // Find a key per partition, then wedge partition 0's instance directory:
  // every Sync inside it fails hard.
  std::string keys[2];
  for (int i = 0; keys[0].empty() || keys[1].empty(); i++) {
    std::string key = "key-" + std::to_string(i);
    keys[static_cast<size_t>(store->PartitionOf(key))] = key;
  }
  ASSERT_TRUE(store->Put(keys[0], "v0").ok());
  ASSERT_TRUE(store->Put(keys[1], "v1").ok());
  env->SetPathFilter("instance-0/");
  env->SetFailureOdds(FaultOp::kSync, 1, /*transient=*/false);

  // A transaction forces a synced WAL write on partition 0 -> hard error ->
  // degrade -> flight-recorder dump.
  WriteBatch txn;
  txn.Put(keys[0], "new-value");
  EXPECT_FALSE(store->WriteTxn(&txn).ok());

  P2kvsStats stats = store->GetStats();
  EXPECT_GE(stats.trace_flight_dumps, 1u);

  // The dump names the failing request: its error event carries a trace id
  // whose enqueue/dequeue events are in the ring too.
  uint64_t error_trace = 0;
  bool error_chain_has_enqueue = false;
  bool error_chain_has_dequeue = false;
  for (auto& ring : store->tracer()->SnapshotAll()) {
    for (const TraceEvent& e : ring) {
      if (e.type == TraceEventType::kError) {
        error_trace = e.trace_id;
      }
    }
  }
  ASSERT_NE(0u, error_trace);
  for (auto& ring : store->tracer()->SnapshotAll()) {
    for (const TraceEvent& e : ring) {
      if (e.trace_id == error_trace && e.type == TraceEventType::kEnqueue) {
        error_chain_has_enqueue = true;
      }
      if (e.trace_id == error_trace && e.type == TraceEventType::kDequeue) {
        error_chain_has_dequeue = true;
      }
    }
  }
  EXPECT_TRUE(error_chain_has_enqueue);
  EXPECT_TRUE(error_chain_has_dequeue);

  // The dump file itself exists, is valid trace JSON, and contains the error
  // event plus the failing request's trace id.
  std::FILE* f = std::fopen(options.trace.dump_path.c_str(), "rb");
  ASSERT_NE(nullptr, f);
  std::string dump;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    dump.append(buf, n);
  }
  std::fclose(f);
  ValidateTraceJson(dump);
  EXPECT_NE(std::string::npos, dump.find("\"name\":\"error\""));
  char trace_arg[64];
  std::snprintf(trace_arg, sizeof(trace_arg), "\"trace\":%llu",
                static_cast<unsigned long long>(error_trace));
  EXPECT_NE(std::string::npos, dump.find(trace_arg));
  std::remove(options.trace.dump_path.c_str());
}

TEST(P2kvsTraceFlightTest, SigUsr2TriggersDump) {
  std::unique_ptr<Env> env = NewMemEnv();
  P2kvsOptions options;
  options.env = env.get();
  options.num_workers = 1;
  options.pin_workers = false;
  options.engine_factory = MakeRocksLiteFactory(SmallLsmOptions(env.get()));
  options.trace.enabled = true;
  options.trace.sample_every = 1;
  options.trace.dump_path = "trace_test_sigusr2.json";
  options.trace.dump_on_sigusr2 = true;
  std::remove(options.trace.dump_path.c_str());
  std::unique_ptr<P2KVS> store;
  ASSERT_TRUE(P2KVS::Open(options, "/p2-usr2", &store).ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), "v").ok());
  }

  ASSERT_EQ(0, std::raise(SIGUSR2));
  // The watcher thread polls the signal flag every 50ms.
  uint64_t dumps = 0;
  for (int i = 0; i < 200 && dumps == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    dumps = store->GetStats().trace_flight_dumps;
  }
  EXPECT_GE(dumps, 1u);

  std::FILE* f = std::fopen(options.trace.dump_path.c_str(), "rb");
  ASSERT_NE(nullptr, f);
  std::fclose(f);
  std::remove(options.trace.dump_path.c_str());
}

}  // namespace
}  // namespace p2kvs
