// Behavioural tests of the LSM engine's internals: compaction progression
// through levels, tombstone handling across flushes, GSN-filtered recovery,
// write stalls, stage-isolation debug modes, tiered-mode reads across
// overlapping runs, and stats accounting.

#include <gtest/gtest.h>

#include <thread>

#include "src/io/mem_env.h"
#include "src/lsm/db.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

class LsmBehaviorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.write_buffer_size = 16 * 1024;
    options_.target_file_size = 8 * 1024;
    options_.max_bytes_for_level_base = 32 * 1024;
    options_.l0_compaction_trigger = 2;
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/bdb", &db_).ok()); }

  void FillKeys(int n, int value_size = 100, int start = 0) {
    for (int i = start; i < start + n; i++) {
      char key[32];
      snprintf(key, sizeof(key), "key%06d", i);
      ASSERT_TRUE(db_->Put(WriteOptions(), key, std::string(value_size, 'v')).ok());
    }
  }

  int TotalFiles() {
    // Parse "files[ a b c ... ]".
    std::string summary = db_->LevelFilesSummary();
    int total = 0;
    int v = 0;
    bool in_number = false;
    for (char c : summary) {
      if (c >= '0' && c <= '9') {
        v = v * 10 + (c - '0');
        in_number = true;
      } else if (in_number) {
        total += v;
        v = 0;
        in_number = false;
      }
    }
    return total;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(LsmBehaviorTest, DataMigratesBeyondL0) {
  Open();
  FillKeys(4000);
  db_->WaitForBackgroundWork();
  std::string summary = db_->LevelFilesSummary();
  // 400KB of data with a 32KB L1 budget must reach L2 or deeper.
  // Summary format: "files[ l0 l1 l2 ... ]".
  int levels_with_files = 0;
  int v = 0;
  bool in_number = false;
  bool past_l0 = false;
  bool deep = false;
  int index = 0;
  for (char c : summary) {
    if (c >= '0' && c <= '9') {
      v = v * 10 + (c - '0');
      in_number = true;
    } else if (in_number) {
      if (v > 0) {
        levels_with_files++;
        if (index >= 2) {
          deep = true;
        }
        if (index >= 1) {
          past_l0 = true;
        }
      }
      v = 0;
      index++;
      in_number = false;
    }
  }
  EXPECT_TRUE(past_l0) << summary;
  EXPECT_TRUE(deep) << summary;
  EXPECT_GT(db_->GetStats().compaction_count, 0u);

  // Everything still readable after multi-level compaction.
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "key000000", &value).ok());
  ASSERT_TRUE(db_->Get(ReadOptions(), "key003999", &value).ok());
}

TEST_F(LsmBehaviorTest, DeletedKeyStaysDeadThroughCompactions) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "victim", "alive").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "victim").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  // Push the tombstone through several compaction rounds.
  FillKeys(4000);
  db_->WaitForBackgroundWork();
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "victim", &value).IsNotFound());
}

TEST_F(LsmBehaviorTest, ReinsertAfterDeleteWins) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "phoenix", "first").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "phoenix").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "phoenix", "risen").ok());
  FillKeys(2000);
  db_->WaitForBackgroundWork();
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "phoenix", &value).ok());
  EXPECT_EQ("risen", value);
}

TEST_F(LsmBehaviorTest, TieredModeReadsNewestOverlappingRun) {
  options_.compaction_style = CompactionStyle::kTiered;
  options_.tiered_runs_per_level = 4;
  Open();
  // Create several overlapping runs in L0/L1 with conflicting versions.
  for (int generation = 0; generation < 6; generation++) {
    for (int i = 0; i < 50; i++) {
      char key[32];
      snprintf(key, sizeof(key), "key%06d", i);
      ASSERT_TRUE(db_->Put(WriteOptions(), key, "gen" + std::to_string(generation)).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  db_->WaitForBackgroundWork();
  std::string value;
  for (int i = 0; i < 50; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok());
    EXPECT_EQ("gen5", value) << key;
  }
}

TEST_F(LsmBehaviorTest, GsnFilterDropsWalRecordsOnRecovery) {
  Open();
  WriteOptions sync_wo;
  sync_wo.sync = true;

  WriteBatch keep;
  keep.Put("keep-me", "yes");
  ASSERT_TRUE(db_->Write(sync_wo, &keep).ok());

  WriteOptions tagged = sync_wo;
  tagged.gsn = 42;
  WriteBatch drop;
  drop.Put("drop-me", "please");
  ASSERT_TRUE(db_->Write(tagged, &drop).ok());

  db_.reset();
  // Reopen with a filter that refuses GSN 42.
  ASSERT_TRUE(DB::Open(options_, "/bdb", &db_,
                       [](uint64_t gsn) { return gsn != 42; })
                  .ok());
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "keep-me", &value).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "drop-me", &value).IsNotFound());
}

TEST_F(LsmBehaviorTest, SequenceNumbersSurviveFilteredRecovery) {
  Open();
  WriteOptions sync_wo;
  sync_wo.sync = true;
  WriteOptions tagged = sync_wo;
  tagged.gsn = 7;
  WriteBatch dropped;
  dropped.Put("ghost", "x");
  ASSERT_TRUE(db_->Write(tagged, &dropped).ok());
  db_.reset();
  ASSERT_TRUE(DB::Open(options_, "/bdb", &db_, [](uint64_t gsn) { return gsn != 7; }).ok());
  // New writes after recovery must still work and be visible (the dropped
  // batch's sequence numbers were consumed, not reused).
  ASSERT_TRUE(db_->Put(WriteOptions(), "post-recovery", "v").ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "post-recovery", &value).ok());
  EXPECT_EQ("v", value);
}

TEST_F(LsmBehaviorTest, WriteStallsAreAccounted) {
  options_.l0_slowdown_writes_trigger = 2;
  options_.l0_stop_writes_trigger = 4;
  Open();
  FillKeys(3000);
  db_->WaitForBackgroundWork();
  // With aggressive triggers, some writes must have been delayed.
  EXPECT_GT(db_->GetStats().stall_micros, 0u);
}

TEST_F(LsmBehaviorTest, WalOnlyModeSkipsMemtable) {
  options_.debug_disable_memtable = true;
  options_.debug_disable_background = true;
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "logged", "but-not-indexed").ok());
  std::string value;
  // The write went to the WAL only; reads see nothing.
  EXPECT_TRUE(db_->Get(ReadOptions(), "logged", &value).IsNotFound());
  EXPECT_GT(db_->GetStats().write_group_count, 0u);
}

TEST_F(LsmBehaviorTest, MemtableOnlyModeSkipsWal) {
  options_.debug_disable_wal = true;
  options_.debug_disable_background = true;
  Open();
  uint64_t wal_groups_before = db_->GetStats().write_group_count;
  ASSERT_TRUE(db_->Put(WriteOptions(), "unlogged", "indexed").ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "unlogged", &value).ok());
  EXPECT_EQ("indexed", value);
  // Reopen: with no WAL record, the write is gone (by design of the mode).
  db_.reset();
  Open();
  EXPECT_TRUE(db_->Get(ReadOptions(), "unlogged", &value).IsNotFound());
  (void)wal_groups_before;
}

TEST_F(LsmBehaviorTest, ObsoleteFilesAreDeleted) {
  Open();
  FillKeys(4000);
  db_->WaitForBackgroundWork();
  int files_after_load = TotalFiles();
  ASSERT_GT(files_after_load, 0);

  // Overwrite everything; compaction should keep the live file count bounded
  // (obsolete SSTs removed from disk).
  FillKeys(4000);
  db_->WaitForBackgroundWork();
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/bdb", &children).ok());
  int sst_files = 0;
  for (const std::string& name : children) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      sst_files++;
    }
  }
  // On-disk SSTs must match the live set (no unbounded garbage).
  EXPECT_LE(sst_files, TotalFiles() + 2);
}

TEST_F(LsmBehaviorTest, MultiGetSeesConsistentSnapshotUnderWrites) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "pair-a", "0").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "pair-b", "0").ok());

  std::atomic<bool> stop{false};
  // A writer keeps the pair equal via atomic batches.
  std::thread writer([&] {
    int generation = 1;
    while (!stop.load()) {
      WriteBatch batch;
      batch.Put("pair-a", std::to_string(generation));
      batch.Put("pair-b", std::to_string(generation));
      ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
      generation++;
    }
  });

  // MultiGet must never observe a torn pair.
  for (int i = 0; i < 2000; i++) {
    std::vector<std::string> values;
    std::vector<Status> statuses = db_->MultiGet(ReadOptions(), {"pair-a", "pair-b"}, &values);
    ASSERT_TRUE(statuses[0].ok() && statuses[1].ok());
    ASSERT_EQ(values[0], values[1]) << "torn batch at iteration " << i;
  }
  stop.store(true);
  writer.join();
}

TEST_F(LsmBehaviorTest, EngineRejectsMissingDbWhenCreateIfMissingFalse) {
  options_.create_if_missing = false;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options_, "/nonexistent", &db);
  EXPECT_FALSE(s.ok());
}

TEST_F(LsmBehaviorTest, ErrorIfExists) {
  Open();
  db_.reset();
  options_.error_if_exists = true;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options_, "/bdb", &db);
  EXPECT_FALSE(s.ok());
}

TEST_F(LsmBehaviorTest, LargeValuesRoundTrip) {
  Open();
  std::string big(256 * 1024, 'B');  // spans many WAL blocks and SST blocks
  ASSERT_TRUE(db_->Put(WriteOptions(), "big", big).ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "big", &value).ok());
  EXPECT_EQ(big, value);
  db_.reset();
  Open();
  ASSERT_TRUE(db_->Get(ReadOptions(), "big", &value).ok());
  EXPECT_EQ(big, value);
}

}  // namespace
}  // namespace p2kvs
