// p2kvs-lint fixture: every Status below is consumed — propagated, checked,
// or explicitly dropped with IgnoreError(). MUST stay quiet.

class Status {
 public:
  bool ok() const;
  void IgnoreError() const {}
};

Status FlushAllBuffers();

class Env {
 public:
  Status CreateDir();
  Status DeleteFile();
};

class Holder {
 public:
  Status Touch();
  void Drop();
  void Log(const Status& s);

 private:
  Env* env_;
};

Status Holder::Touch() {
  Status s = env_->CreateDir();
  if (!s.ok()) {
    Log(s);
  }
  return env_->DeleteFile();
}

void Holder::Drop() {
  env_->DeleteFile().IgnoreError();
  if (FlushAllBuffers().ok()) {
    Log(Status());
  }
}
