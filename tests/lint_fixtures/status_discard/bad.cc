// p2kvs-lint fixture: every statement below drops a Status and MUST fire
// the status-discard rule. Never compiled; parsed by the lint only.

class Status {
 public:
  bool ok() const;
  void IgnoreError() const {}
};

Status FlushAllBuffers();

class Env {
 public:
  Status CreateDir();
  Status DeleteFile();
};

class Holder {
 public:
  void Touch();
  void Drop();
  Status Commit();

 private:
  Env* env_;
};

void Holder::Touch() {
  env_->CreateDir();
}

void Holder::Drop() {
  FlushAllBuffers();
  (void)env_->DeleteFile();
  Commit();
}
