// p2kvs-lint fixture: the discard below is real but carries a reasoned
// allow-comment; the rule must fire internally and be silenced by it.

class Status {
 public:
  bool ok() const;
  void IgnoreError() const {}
};

class Env {
 public:
  Status CreateDir();
};

class Holder {
 public:
  void Touch();

 private:
  Env* env_;
};

void Holder::Touch() {
  // p2kvs-lint: allow(status-discard) -- fixture: deliberate best-effort drop
  env_->CreateDir();
}
