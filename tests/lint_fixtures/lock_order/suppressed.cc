// p2kvs-lint fixture: the unannotated nesting is silenced by a reasoned
// allow-comment on the inner acquisition line.

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class S {
 public:
  void A();

 private:
  Mutex a_;
  Mutex c_;
};

void S::A() {
  MutexLock l1(&a_);
  // p2kvs-lint: allow(lock-order) -- fixture: locks belong to disjoint shards
  MutexLock l2(&c_);
}
