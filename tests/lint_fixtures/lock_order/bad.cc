// p2kvs-lint fixture: MUST fire lock-order twice over — S::A acquires b_
// then a_ against the annotated a_ -> b_ order (a cycle), and S::B nests
// a_ -> c_ with no ACQUIRED_AFTER annotation on c_.

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class S {
 public:
  void A();
  void B();

 private:
  Mutex a_;
  Mutex b_ ACQUIRED_AFTER(a_);
  Mutex c_;
};

void S::A() {
  MutexLock lb(&b_);
  MutexLock la(&a_);
}

void S::B() {
  MutexLock l1(&a_);
  MutexLock l2(&c_);
}
