// p2kvs-lint fixture: the observed nesting a_ -> b_ matches the annotated
// ACQUIRED_AFTER order, so the lock-order rule MUST stay quiet.

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class S {
 public:
  void A();

 private:
  Mutex a_;
  Mutex b_ ACQUIRED_AFTER(a_);
};

void S::A() {
  MutexLock la(&a_);
  MutexLock lb(&b_);
}
