// p2kvs-lint fixture: the worker context only signals (Notify) and a
// non-worker function may Wait — the blocking-context rule MUST stay quiet.

class Completion {
 public:
  void Wait();
  void Notify();
};

class Pool {
 public:
  void RunJob();
  void JoinFromUserThread();

 private:
  Completion done_;
};

// p2kvs-lint: worker-context
void Pool::RunJob() {
  done_.Notify();
}

void Pool::JoinFromUserThread() {
  done_.Wait();
}
