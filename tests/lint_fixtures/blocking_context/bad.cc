// p2kvs-lint fixture: Pool::RunJob is a marked worker context and reaches
// Completion::Wait through a helper — MUST fire blocking-context.

class Completion {
 public:
  void Wait();
  void Notify();
};

class Pool {
 public:
  void RunJob();
  void Helper();

 private:
  Completion done_;
};

// p2kvs-lint: worker-context
void Pool::RunJob() {
  Helper();
}

void Pool::Helper() {
  done_.Wait();
}
