// p2kvs-lint fixture: the worker context waits on a DIFFERENT pool that
// cannot feed back into this one — the canonical legal cross-pool wait,
// silenced by a reasoned allow-comment.

class Completion {
 public:
  void Wait();
};

class Pool {
 public:
  void RunJob();

 private:
  Completion other_pool_done_;
};

// p2kvs-lint: worker-context
void Pool::RunJob() {
  // p2kvs-lint: allow(blocking-context) -- fixture: cross-pool wait, other pool never enqueues here
  other_pool_done_.Wait();
}
