// p2kvs-lint fixture: a reasoned allow-comment over code that no longer
// trips the rule is stale; the driver flags it so fixed code sheds its
// suppressions instead of accreting them.

class Status {
 public:
  bool ok() const;
  void IgnoreError() const {}
};

class Env {
 public:
  Status CreateDir();
};

class Holder {
 public:
  void Touch();

 private:
  Env* env_;
};

void Holder::Touch() {
  // p2kvs-lint: allow(status-discard) -- fixture: stale, the drop below was
  // fixed long ago
  env_->CreateDir().IgnoreError();
}
