// p2kvs-lint fixture: an allow-comment without `-- <reason>` is itself a
// finding of the "suppression" rule and silences nothing.

class Status {
 public:
  bool ok() const;
  void IgnoreError() const {}
};

class Env {
 public:
  Status CreateDir();
};

class Holder {
 public:
  void Touch();

 private:
  Env* env_;
};

void Holder::Touch() {
  // p2kvs-lint: allow(status-discard)
  env_->CreateDir();
}
