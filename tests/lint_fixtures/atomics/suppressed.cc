#include <atomic>

class Counter {
 public:
  void Bump();

 private:
  std::atomic<int> n_{0};
};

void Counter::Bump() {
  // p2kvs-lint: allow(atomics) -- fixture: default order kept to mirror the upstream call
  n_.fetch_add(1);
}
