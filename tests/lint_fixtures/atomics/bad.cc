#include <atomic>

class Counter {
 public:
  void Bump();

 private:
  std::atomic<int> n_{0};
  std::atomic<bool> flag_{false};
};

void Counter::Bump() {
  n_.fetch_add(1);
  n_++;
  flag_.store(true, std::memory_order_seq_cst);
}
