#include <atomic>

class Counter {
 public:
  void Bump();

 private:
  std::atomic<int> n_{0};
  std::atomic<bool> flag_{false};
};

void Counter::Bump() {
  n_.fetch_add(1, std::memory_order_relaxed);
  // Dekker-style handshake with the drain loop: both sides must observe the
  // other's store, so the full seq_cst barrier is required here.
  flag_.store(true, std::memory_order_seq_cst);
}
