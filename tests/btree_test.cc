// WTLite B+-tree engine tests: CRUD, splits across many pages, cursor scans,
// checkpoint + WAL recovery, concurrent readers with a writer.

#include "src/btree/btree_store.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/io/env_wrapper.h"
#include "src/io/mem_env.h"
#include "src/util/random.h"

namespace p2kvs {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.buffer_pool_pages = 64;  // small pool: exercise eviction
    Reopen();
  }

  void Reopen() {
    store_.reset();
    ASSERT_TRUE(BTreeStore::Open(options_, "/bt", &store_).ok());
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = store_->Get(key, &value);
    if (s.IsNotFound()) {
      return "NOT_FOUND";
    }
    return s.ok() ? value : s.ToString();
  }

  std::unique_ptr<Env> env_;
  BTreeOptions options_;
  std::unique_ptr<BTreeStore> store_;
};

TEST_F(BTreeTest, PutGetDelete) {
  ASSERT_TRUE(store_->Put("k1", "v1").ok());
  ASSERT_TRUE(store_->Put("k2", "v2").ok());
  EXPECT_EQ("v1", Get("k1"));
  EXPECT_EQ("v2", Get("k2"));
  EXPECT_EQ("NOT_FOUND", Get("k3"));
  ASSERT_TRUE(store_->Delete("k1").ok());
  EXPECT_EQ("NOT_FOUND", Get("k1"));
  ASSERT_TRUE(store_->Delete("never").ok());
}

TEST_F(BTreeTest, Overwrite) {
  ASSERT_TRUE(store_->Put("k", "v1").ok());
  ASSERT_TRUE(store_->Put("k", "v2").ok());
  EXPECT_EQ("v2", Get("k"));
}

TEST_F(BTreeTest, ManyKeysForceSplits) {
  std::map<std::string, std::string> model;
  Random rnd(7);
  for (int i = 0; i < 5000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06u", rnd.Uniform(3000));
    std::string value(1 + rnd.Uniform(100), 'v');
    model[key] = value;
    ASSERT_TRUE(store_->Put(key, value).ok());
  }
  EXPECT_GT(store_->GetStats().splits, 0u);
  for (const auto& [k, v] : model) {
    ASSERT_EQ(v, Get(k)) << k;
  }
}

TEST_F(BTreeTest, LargeValuesNearPageSize) {
  // Values close to the page payload must still store (one per leaf).
  std::string big(3000, 'B');
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(store_->Put("big" + std::to_string(i), big).ok());
  }
  for (int i = 0; i < 20; i++) {
    ASSERT_EQ(big, Get("big" + std::to_string(i)));
  }
}

TEST_F(BTreeTest, IteratorOrderedScan) {
  for (int i = 0; i < 500; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store_->Put(key, std::to_string(i)).ok());
  }
  std::unique_ptr<Iterator> iter(store_->NewIterator());
  iter->Seek("key000100");
  for (int i = 100; i < 500; i++) {
    ASSERT_TRUE(iter->Valid()) << i;
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    EXPECT_EQ(key, iter->key().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST_F(BTreeTest, IteratorSkipsDeleted) {
  for (char c = 'a'; c <= 'e'; c++) {
    ASSERT_TRUE(store_->Put(std::string(1, c), "v").ok());
  }
  ASSERT_TRUE(store_->Delete("c").ok());
  std::unique_ptr<Iterator> iter(store_->NewIterator());
  iter->SeekToFirst();
  std::string seen;
  while (iter->Valid()) {
    seen += iter->key().ToString();
    iter->Next();
  }
  EXPECT_EQ("abde", seen);
}

TEST_F(BTreeTest, WalRecoveryWithoutCheckpoint) {
  ASSERT_TRUE(store_->Put("persist-me", "please").ok());
  ASSERT_TRUE(store_->Put("me-too", "yes").ok());
  // Drop the store *without* the destructor checkpoint by re-opening from a
  // copied env state... instead simulate: open a second store after only the
  // WAL was written. The destructor checkpoints, so instead verify recovery
  // by replaying an explicit WAL state: write, checkpoint, write more, then
  // reopen (destructor flushes; the WAL path is covered by crash tests).
  ASSERT_TRUE(store_->Checkpoint().ok());
  ASSERT_TRUE(store_->Put("after-checkpoint", "wal-only").ok());
  Reopen();
  EXPECT_EQ("please", Get("persist-me"));
  EXPECT_EQ("yes", Get("me-too"));
  EXPECT_EQ("wal-only", Get("after-checkpoint"));
}

TEST_F(BTreeTest, CheckpointTruncatesWal) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), std::string(100, 'x')).ok());
  }
  uint64_t wal_before = 0;
  env_->GetFileSize("/bt/wal.log", &wal_before).IgnoreError();
  EXPECT_GT(wal_before, 0u);
  ASSERT_TRUE(store_->Checkpoint().ok());
  uint64_t wal_after = 0;
  env_->GetFileSize("/bt/wal.log", &wal_after).IgnoreError();
  EXPECT_EQ(0u, wal_after);
  EXPECT_GT(store_->GetStats().checkpoints, 0u);
}

TEST_F(BTreeTest, BufferPoolEvictionPreservesData) {
  // 64-page pool, ~1000 leaves: most pages live on disk only.
  for (int i = 0; i < 8000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store_->Put(key, std::string(30, 'd')).ok());
  }
  EXPECT_GT(store_->GetStats().page_writes, 0u);
  for (int i = 0; i < 8000; i += 371) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_EQ(std::string(30, 'd'), Get(key));
  }
  EXPECT_GT(store_->GetStats().page_reads, 0u);
}

TEST_F(BTreeTest, ConcurrentReadersWithWriter) {
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store_->Put("seed" + std::to_string(i), "v").ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      store_->Put("w" + std::to_string(i++ % 1000), "value").IgnoreError();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        std::string value;
        Status s = store_->Get("seed100", &value);
        ASSERT_TRUE(s.ok());
        ASSERT_EQ("v", value);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  writer.join();
  for (auto& t : readers) {
    t.join();
  }
}

TEST_F(BTreeTest, ReopenAfterManyWrites) {
  std::map<std::string, std::string> model;
  Random rnd(99);
  for (int i = 0; i < 3000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06u", rnd.Uniform(1500));
    model[key] = "gen" + std::to_string(i);
    ASSERT_TRUE(store_->Put(key, model[key]).ok());
  }
  Reopen();
  for (const auto& [k, v] : model) {
    ASSERT_EQ(v, Get(k)) << k;
  }
}

// Fails GetFileSize on paths containing a substring; everything else passes
// through. Simulates a device that errors on the stat probe specifically.
class FailingSizeEnv final : public EnvWrapper {
 public:
  explicit FailingSizeEnv(Env* base) : EnvWrapper(base) {}
  void FailSizeFor(const std::string& substring) { fail_substring_ = substring; }
  Status GetFileSize(const std::string& f, uint64_t* s) override {
    if (!fail_substring_.empty() && f.find(fail_substring_) != std::string::npos) {
      return Status::IOError(f, "injected GetFileSize failure");
    }
    return target()->GetFileSize(f, s);
  }

 private:
  std::string fail_substring_;
};

// Regression for a silently-dropped Status in Init: when the page-file size
// probe failed, the store treated size==0 as "fresh" and reformatted an
// existing tree — wiping it. A probe failure must abort the open instead.
TEST(BTreeSizeProbeFailure, OpenFailsInsteadOfReformatting) {
  auto base_env = NewMemEnv();
  FailingSizeEnv env(base_env.get());
  BTreeOptions options;
  options.env = &env;

  // Build a store with real data and close it cleanly.
  std::unique_ptr<BTreeStore> store;
  ASSERT_TRUE(BTreeStore::Open(options, "/bt", &store).ok());
  ASSERT_TRUE(store->Put("k", "v").ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  store.reset();

  // Reopen with the size probe failing: Open must surface the error.
  env.FailSizeFor("pages");
  ASSERT_FALSE(BTreeStore::Open(options, "/bt", &store).ok());

  // With the probe healthy again, the data is still there — nothing was
  // reformatted by the failed open.
  env.FailSizeFor("");
  ASSERT_TRUE(BTreeStore::Open(options, "/bt", &store).ok());
  std::string value;
  ASSERT_TRUE(store->Get("k", &value).ok());
  EXPECT_EQ("v", value);
}

}  // namespace
}  // namespace p2kvs
