// TxnLog tests: GSN allocation, begin/commit persistence, recovery of the
// committed set, uncommitted detection (the rollback basis of paper §4.5).

#include "src/core/txn_log.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/io/mem_env.h"

namespace p2kvs {
namespace {

class TxnLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    Open();
  }

  void Open() { ASSERT_TRUE(TxnLog::Open(env_.get(), "/TXNLOG", &log_).ok()); }

  void Reopen() {
    log_.reset();
    Open();
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<TxnLog> log_;
};

TEST_F(TxnLogTest, GsnsAreStrictlyIncreasingAndNonZero) {
  uint64_t last = 0;
  for (int i = 0; i < 100; i++) {
    uint64_t gsn = log_->NextGsn();
    EXPECT_GT(gsn, last);
    EXPECT_NE(0u, gsn);
    last = gsn;
  }
}

TEST_F(TxnLogTest, GsnZeroIsAlwaysCommitted) { EXPECT_TRUE(log_->IsCommitted(0)); }

TEST_F(TxnLogTest, CommitMakesVisible) {
  uint64_t gsn = log_->NextGsn();
  ASSERT_TRUE(log_->LogBegin(gsn).ok());
  EXPECT_FALSE(log_->IsCommitted(gsn));
  ASSERT_TRUE(log_->LogCommit(gsn).ok());
  EXPECT_TRUE(log_->IsCommitted(gsn));
}

TEST_F(TxnLogTest, RecoveryRestoresCommittedSet) {
  uint64_t committed = log_->NextGsn();
  ASSERT_TRUE(log_->LogBegin(committed).ok());
  ASSERT_TRUE(log_->LogCommit(committed).ok());

  uint64_t torn = log_->NextGsn();
  ASSERT_TRUE(log_->LogBegin(torn).ok());
  // No commit for `torn` — as if the process died here.

  Reopen();
  EXPECT_TRUE(log_->IsCommitted(committed));
  EXPECT_FALSE(log_->IsCommitted(torn));
  EXPECT_EQ(1u, log_->UncommittedAtRecovery());
}

TEST_F(TxnLogTest, GsnAllocationResumesAboveRecoveredMax) {
  uint64_t gsn = 0;
  for (int i = 0; i < 10; i++) {
    gsn = log_->NextGsn();
    ASSERT_TRUE(log_->LogBegin(gsn).ok());
    ASSERT_TRUE(log_->LogCommit(gsn).ok());
  }
  Reopen();
  EXPECT_GT(log_->NextGsn(), gsn);
}

TEST_F(TxnLogTest, ManyTransactionsSurviveReopen) {
  std::vector<uint64_t> committed;
  std::vector<uint64_t> torn;
  for (int i = 0; i < 200; i++) {
    uint64_t gsn = log_->NextGsn();
    ASSERT_TRUE(log_->LogBegin(gsn).ok());
    if (i % 3 != 0) {
      ASSERT_TRUE(log_->LogCommit(gsn).ok());
      committed.push_back(gsn);
    } else {
      torn.push_back(gsn);
    }
  }
  Reopen();
  for (uint64_t gsn : committed) {
    EXPECT_TRUE(log_->IsCommitted(gsn));
  }
  for (uint64_t gsn : torn) {
    EXPECT_FALSE(log_->IsCommitted(gsn));
  }
  EXPECT_EQ(torn.size(), log_->UncommittedAtRecovery());
}

// ---------------- Committed-set watermark compaction ----------------
// The committed set must not grow with lifetime commits (it used to hold one
// std::set entry per committed GSN forever). Contiguously-resolved GSNs fold
// into a single watermark; only out-of-order commits and aborts take entries.

TEST_F(TxnLogTest, WatermarkAdvancesWithContiguousCommits) {
  for (int i = 0; i < 1000; i++) {
    uint64_t gsn = log_->NextGsn();
    ASSERT_TRUE(log_->LogBegin(gsn).ok());
    ASSERT_TRUE(log_->LogCommit(gsn).ok());
  }
  EXPECT_EQ(1000u, log_->CommittedWatermark());
  EXPECT_EQ(0u, log_->CommittedFootprint());
  EXPECT_TRUE(log_->IsCommitted(1));
  EXPECT_TRUE(log_->IsCommitted(1000));
  EXPECT_FALSE(log_->IsCommitted(1001));
}

TEST_F(TxnLogTest, OutOfOrderCommitHoldsTailUntilGapCloses) {
  uint64_t g1 = log_->NextGsn();
  uint64_t g2 = log_->NextGsn();
  uint64_t g3 = log_->NextGsn();
  ASSERT_TRUE(log_->LogCommit(g3).ok());
  ASSERT_TRUE(log_->LogCommit(g2).ok());
  // g1 unresolved: the watermark cannot move, g2/g3 wait in the tail.
  EXPECT_EQ(0u, log_->CommittedWatermark());
  EXPECT_EQ(2u, log_->CommittedFootprint());
  EXPECT_TRUE(log_->IsCommitted(g2));
  EXPECT_TRUE(log_->IsCommitted(g3));
  EXPECT_FALSE(log_->IsCommitted(g1));
  // Closing the gap folds the whole run into the watermark.
  ASSERT_TRUE(log_->LogCommit(g1).ok());
  EXPECT_EQ(g3, log_->CommittedWatermark());
  EXPECT_EQ(0u, log_->CommittedFootprint());
  EXPECT_TRUE(log_->IsCommitted(g1));
  EXPECT_TRUE(log_->IsCommitted(g3));
}

TEST_F(TxnLogTest, MarkAbortedResolvesGsnAndAdvancesWatermark) {
  uint64_t dead = log_->NextGsn();
  uint64_t live = log_->NextGsn();
  ASSERT_TRUE(log_->LogCommit(live).ok());
  EXPECT_EQ(0u, log_->CommittedWatermark());  // dead still unresolved
  log_->MarkAborted(dead);
  EXPECT_EQ(live, log_->CommittedWatermark());
  EXPECT_FALSE(log_->IsCommitted(dead));  // below watermark, but excepted
  EXPECT_TRUE(log_->IsCommitted(live));
  // Only the abort exception remains; repeated aborts are idempotent.
  EXPECT_EQ(1u, log_->CommittedFootprint());
  log_->MarkAborted(dead);
  EXPECT_EQ(1u, log_->CommittedFootprint());
}

TEST_F(TxnLogTest, MarkAbortedIgnoresCommittedAndZeroGsns) {
  uint64_t gsn = log_->NextGsn();
  ASSERT_TRUE(log_->LogCommit(gsn).ok());
  log_->MarkAborted(0);
  log_->MarkAborted(gsn);
  EXPECT_TRUE(log_->IsCommitted(gsn));
  EXPECT_TRUE(log_->IsCommitted(0));
  EXPECT_EQ(0u, log_->CommittedFootprint());
}

TEST_F(TxnLogTest, FootprintBoundedByAbortsNotCommits) {
  size_t aborts = 0;
  for (int i = 0; i < 3000; i++) {
    uint64_t gsn = log_->NextGsn();
    ASSERT_TRUE(log_->LogBegin(gsn).ok());
    if (i % 100 == 7) {
      log_->MarkAborted(gsn);
      aborts++;
    } else {
      ASSERT_TRUE(log_->LogCommit(gsn).ok());
    }
  }
  // 3000 lifetime transactions, footprint = the 30 aborts only.
  EXPECT_EQ(3000u, log_->CommittedWatermark());
  EXPECT_EQ(aborts, log_->CommittedFootprint());
}

TEST_F(TxnLogTest, RecoveryAcrossWatermark) {
  // Interleave committed / torn / aborted transactions, then reopen. The
  // recovered representation must answer IsCommitted identically on both
  // sides of the recovered watermark (= max replayed GSN).
  std::vector<uint64_t> committed;
  std::vector<uint64_t> unresolved;  // torn (begun, no commit) or aborted
  for (int i = 0; i < 300; i++) {
    uint64_t gsn = log_->NextGsn();
    ASSERT_TRUE(log_->LogBegin(gsn).ok());
    if (i % 5 == 3) {
      unresolved.push_back(gsn);  // torn: died before commit
    } else if (i % 7 == 2) {
      log_->MarkAborted(gsn);  // aborted in-run: no durable record either
      unresolved.push_back(gsn);
    } else {
      ASSERT_TRUE(log_->LogCommit(gsn).ok());
      committed.push_back(gsn);
    }
  }
  Reopen();
  EXPECT_EQ(300u, log_->CommittedWatermark());
  EXPECT_EQ(unresolved.size(), log_->CommittedFootprint());
  for (uint64_t gsn : committed) {
    EXPECT_TRUE(log_->IsCommitted(gsn)) << gsn;
  }
  for (uint64_t gsn : unresolved) {
    EXPECT_FALSE(log_->IsCommitted(gsn)) << gsn;
  }
  // Post-recovery transactions resolve above the recovered watermark.
  uint64_t fresh = log_->NextGsn();
  EXPECT_FALSE(log_->IsCommitted(fresh));
  ASSERT_TRUE(log_->LogBegin(fresh).ok());
  ASSERT_TRUE(log_->LogCommit(fresh).ok());
  EXPECT_TRUE(log_->IsCommitted(fresh));
  EXPECT_EQ(fresh, log_->CommittedWatermark());
}

TEST_F(TxnLogTest, ConcurrentAllocationIsUnique) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        seen[static_cast<size_t>(t)].push_back(log_->NextGsn());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::vector<uint64_t> all;
  for (const auto& v : seen) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.end(), std::adjacent_find(all.begin(), all.end()));
}

}  // namespace
}  // namespace p2kvs
