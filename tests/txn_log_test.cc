// TxnLog tests: GSN allocation, begin/commit persistence, recovery of the
// committed set, uncommitted detection (the rollback basis of paper §4.5).

#include "src/core/txn_log.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/io/mem_env.h"

namespace p2kvs {
namespace {

class TxnLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    Open();
  }

  void Open() { ASSERT_TRUE(TxnLog::Open(env_.get(), "/TXNLOG", &log_).ok()); }

  void Reopen() {
    log_.reset();
    Open();
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<TxnLog> log_;
};

TEST_F(TxnLogTest, GsnsAreStrictlyIncreasingAndNonZero) {
  uint64_t last = 0;
  for (int i = 0; i < 100; i++) {
    uint64_t gsn = log_->NextGsn();
    EXPECT_GT(gsn, last);
    EXPECT_NE(0u, gsn);
    last = gsn;
  }
}

TEST_F(TxnLogTest, GsnZeroIsAlwaysCommitted) { EXPECT_TRUE(log_->IsCommitted(0)); }

TEST_F(TxnLogTest, CommitMakesVisible) {
  uint64_t gsn = log_->NextGsn();
  ASSERT_TRUE(log_->LogBegin(gsn).ok());
  EXPECT_FALSE(log_->IsCommitted(gsn));
  ASSERT_TRUE(log_->LogCommit(gsn).ok());
  EXPECT_TRUE(log_->IsCommitted(gsn));
}

TEST_F(TxnLogTest, RecoveryRestoresCommittedSet) {
  uint64_t committed = log_->NextGsn();
  ASSERT_TRUE(log_->LogBegin(committed).ok());
  ASSERT_TRUE(log_->LogCommit(committed).ok());

  uint64_t torn = log_->NextGsn();
  ASSERT_TRUE(log_->LogBegin(torn).ok());
  // No commit for `torn` — as if the process died here.

  Reopen();
  EXPECT_TRUE(log_->IsCommitted(committed));
  EXPECT_FALSE(log_->IsCommitted(torn));
  EXPECT_EQ(1u, log_->UncommittedAtRecovery());
}

TEST_F(TxnLogTest, GsnAllocationResumesAboveRecoveredMax) {
  uint64_t gsn = 0;
  for (int i = 0; i < 10; i++) {
    gsn = log_->NextGsn();
    ASSERT_TRUE(log_->LogBegin(gsn).ok());
    ASSERT_TRUE(log_->LogCommit(gsn).ok());
  }
  Reopen();
  EXPECT_GT(log_->NextGsn(), gsn);
}

TEST_F(TxnLogTest, ManyTransactionsSurviveReopen) {
  std::vector<uint64_t> committed;
  std::vector<uint64_t> torn;
  for (int i = 0; i < 200; i++) {
    uint64_t gsn = log_->NextGsn();
    ASSERT_TRUE(log_->LogBegin(gsn).ok());
    if (i % 3 != 0) {
      ASSERT_TRUE(log_->LogCommit(gsn).ok());
      committed.push_back(gsn);
    } else {
      torn.push_back(gsn);
    }
  }
  Reopen();
  for (uint64_t gsn : committed) {
    EXPECT_TRUE(log_->IsCommitted(gsn));
  }
  for (uint64_t gsn : torn) {
    EXPECT_FALSE(log_->IsCommitted(gsn));
  }
  EXPECT_EQ(torn.size(), log_->UncommittedAtRecovery());
}

TEST_F(TxnLogTest, ConcurrentAllocationIsUnique) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        seen[static_cast<size_t>(t)].push_back(log_->NextGsn());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::vector<uint64_t> all;
  for (const auto& v : seen) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.end(), std::adjacent_find(all.begin(), all.end()));
}

}  // namespace
}  // namespace p2kvs
