# Empty dependencies file for p2kvs_ycsb.
# This may be replaced when dependencies are built.
