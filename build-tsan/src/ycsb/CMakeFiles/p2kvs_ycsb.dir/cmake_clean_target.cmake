file(REMOVE_RECURSE
  "libp2kvs_ycsb.a"
)
