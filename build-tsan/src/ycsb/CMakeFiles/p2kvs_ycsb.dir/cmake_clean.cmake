file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_ycsb.dir/workload.cc.o"
  "CMakeFiles/p2kvs_ycsb.dir/workload.cc.o.d"
  "libp2kvs_ycsb.a"
  "libp2kvs_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
