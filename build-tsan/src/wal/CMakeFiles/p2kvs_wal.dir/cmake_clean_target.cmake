file(REMOVE_RECURSE
  "libp2kvs_wal.a"
)
