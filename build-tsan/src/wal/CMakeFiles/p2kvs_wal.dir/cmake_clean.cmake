file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_wal.dir/log_reader.cc.o"
  "CMakeFiles/p2kvs_wal.dir/log_reader.cc.o.d"
  "CMakeFiles/p2kvs_wal.dir/log_writer.cc.o"
  "CMakeFiles/p2kvs_wal.dir/log_writer.cc.o.d"
  "libp2kvs_wal.a"
  "libp2kvs_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
