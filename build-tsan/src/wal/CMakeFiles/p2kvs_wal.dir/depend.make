# Empty dependencies file for p2kvs_wal.
# This may be replaced when dependencies are built.
