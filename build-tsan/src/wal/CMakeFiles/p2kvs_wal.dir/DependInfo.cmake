
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wal/log_reader.cc" "src/wal/CMakeFiles/p2kvs_wal.dir/log_reader.cc.o" "gcc" "src/wal/CMakeFiles/p2kvs_wal.dir/log_reader.cc.o.d"
  "/root/repo/src/wal/log_writer.cc" "src/wal/CMakeFiles/p2kvs_wal.dir/log_writer.cc.o" "gcc" "src/wal/CMakeFiles/p2kvs_wal.dir/log_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/io/CMakeFiles/p2kvs_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/p2kvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
