# Empty dependencies file for p2kvs_core.
# This may be replaced when dependencies are built.
