file(REMOVE_RECURSE
  "libp2kvs_core.a"
)
