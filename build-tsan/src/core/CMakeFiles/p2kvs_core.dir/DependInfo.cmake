
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_policy.cc" "src/core/CMakeFiles/p2kvs_core.dir/batch_policy.cc.o" "gcc" "src/core/CMakeFiles/p2kvs_core.dir/batch_policy.cc.o.d"
  "/root/repo/src/core/engines.cc" "src/core/CMakeFiles/p2kvs_core.dir/engines.cc.o" "gcc" "src/core/CMakeFiles/p2kvs_core.dir/engines.cc.o.d"
  "/root/repo/src/core/p2kvs.cc" "src/core/CMakeFiles/p2kvs_core.dir/p2kvs.cc.o" "gcc" "src/core/CMakeFiles/p2kvs_core.dir/p2kvs.cc.o.d"
  "/root/repo/src/core/partitioner.cc" "src/core/CMakeFiles/p2kvs_core.dir/partitioner.cc.o" "gcc" "src/core/CMakeFiles/p2kvs_core.dir/partitioner.cc.o.d"
  "/root/repo/src/core/txn_log.cc" "src/core/CMakeFiles/p2kvs_core.dir/txn_log.cc.o" "gcc" "src/core/CMakeFiles/p2kvs_core.dir/txn_log.cc.o.d"
  "/root/repo/src/core/worker.cc" "src/core/CMakeFiles/p2kvs_core.dir/worker.cc.o" "gcc" "src/core/CMakeFiles/p2kvs_core.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/lsm/CMakeFiles/p2kvs_lsm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/btree/CMakeFiles/p2kvs_btree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wal/CMakeFiles/p2kvs_wal.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/p2kvs_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/p2kvs_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sst/CMakeFiles/p2kvs_sst.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/memtable/CMakeFiles/p2kvs_memtable.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
