file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_core.dir/batch_policy.cc.o"
  "CMakeFiles/p2kvs_core.dir/batch_policy.cc.o.d"
  "CMakeFiles/p2kvs_core.dir/engines.cc.o"
  "CMakeFiles/p2kvs_core.dir/engines.cc.o.d"
  "CMakeFiles/p2kvs_core.dir/p2kvs.cc.o"
  "CMakeFiles/p2kvs_core.dir/p2kvs.cc.o.d"
  "CMakeFiles/p2kvs_core.dir/partitioner.cc.o"
  "CMakeFiles/p2kvs_core.dir/partitioner.cc.o.d"
  "CMakeFiles/p2kvs_core.dir/txn_log.cc.o"
  "CMakeFiles/p2kvs_core.dir/txn_log.cc.o.d"
  "CMakeFiles/p2kvs_core.dir/worker.cc.o"
  "CMakeFiles/p2kvs_core.dir/worker.cc.o.d"
  "libp2kvs_core.a"
  "libp2kvs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
