file(REMOVE_RECURSE
  "libp2kvs_io.a"
)
