
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/device_model.cc" "src/io/CMakeFiles/p2kvs_io.dir/device_model.cc.o" "gcc" "src/io/CMakeFiles/p2kvs_io.dir/device_model.cc.o.d"
  "/root/repo/src/io/error_injection_env.cc" "src/io/CMakeFiles/p2kvs_io.dir/error_injection_env.cc.o" "gcc" "src/io/CMakeFiles/p2kvs_io.dir/error_injection_env.cc.o.d"
  "/root/repo/src/io/fault_injection_env.cc" "src/io/CMakeFiles/p2kvs_io.dir/fault_injection_env.cc.o" "gcc" "src/io/CMakeFiles/p2kvs_io.dir/fault_injection_env.cc.o.d"
  "/root/repo/src/io/io_stats.cc" "src/io/CMakeFiles/p2kvs_io.dir/io_stats.cc.o" "gcc" "src/io/CMakeFiles/p2kvs_io.dir/io_stats.cc.o.d"
  "/root/repo/src/io/mem_env.cc" "src/io/CMakeFiles/p2kvs_io.dir/mem_env.cc.o" "gcc" "src/io/CMakeFiles/p2kvs_io.dir/mem_env.cc.o.d"
  "/root/repo/src/io/posix_env.cc" "src/io/CMakeFiles/p2kvs_io.dir/posix_env.cc.o" "gcc" "src/io/CMakeFiles/p2kvs_io.dir/posix_env.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/p2kvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
