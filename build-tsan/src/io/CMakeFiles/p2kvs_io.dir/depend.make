# Empty dependencies file for p2kvs_io.
# This may be replaced when dependencies are built.
