file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_io.dir/device_model.cc.o"
  "CMakeFiles/p2kvs_io.dir/device_model.cc.o.d"
  "CMakeFiles/p2kvs_io.dir/error_injection_env.cc.o"
  "CMakeFiles/p2kvs_io.dir/error_injection_env.cc.o.d"
  "CMakeFiles/p2kvs_io.dir/fault_injection_env.cc.o"
  "CMakeFiles/p2kvs_io.dir/fault_injection_env.cc.o.d"
  "CMakeFiles/p2kvs_io.dir/io_stats.cc.o"
  "CMakeFiles/p2kvs_io.dir/io_stats.cc.o.d"
  "CMakeFiles/p2kvs_io.dir/mem_env.cc.o"
  "CMakeFiles/p2kvs_io.dir/mem_env.cc.o.d"
  "CMakeFiles/p2kvs_io.dir/posix_env.cc.o"
  "CMakeFiles/p2kvs_io.dir/posix_env.cc.o.d"
  "libp2kvs_io.a"
  "libp2kvs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
