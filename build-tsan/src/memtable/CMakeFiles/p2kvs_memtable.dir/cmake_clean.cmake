file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_memtable.dir/dbformat.cc.o"
  "CMakeFiles/p2kvs_memtable.dir/dbformat.cc.o.d"
  "CMakeFiles/p2kvs_memtable.dir/memtable.cc.o"
  "CMakeFiles/p2kvs_memtable.dir/memtable.cc.o.d"
  "libp2kvs_memtable.a"
  "libp2kvs_memtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_memtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
