file(REMOVE_RECURSE
  "libp2kvs_memtable.a"
)
