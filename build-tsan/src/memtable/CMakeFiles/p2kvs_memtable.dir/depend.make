# Empty dependencies file for p2kvs_memtable.
# This may be replaced when dependencies are built.
