
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/builder.cc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/builder.cc.o" "gcc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/builder.cc.o.d"
  "/root/repo/src/lsm/db_impl.cc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/db_impl.cc.o" "gcc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/db_impl.cc.o.d"
  "/root/repo/src/lsm/db_iter.cc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/db_iter.cc.o" "gcc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/db_iter.cc.o.d"
  "/root/repo/src/lsm/filename.cc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/filename.cc.o" "gcc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/filename.cc.o.d"
  "/root/repo/src/lsm/merging_iterator.cc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/merging_iterator.cc.o" "gcc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/merging_iterator.cc.o.d"
  "/root/repo/src/lsm/table_cache.cc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/table_cache.cc.o" "gcc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/table_cache.cc.o.d"
  "/root/repo/src/lsm/version_edit.cc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/version_edit.cc.o" "gcc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/version_edit.cc.o.d"
  "/root/repo/src/lsm/version_set.cc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/version_set.cc.o" "gcc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/version_set.cc.o.d"
  "/root/repo/src/lsm/write_batch.cc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/write_batch.cc.o" "gcc" "src/lsm/CMakeFiles/p2kvs_lsm.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sst/CMakeFiles/p2kvs_sst.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/memtable/CMakeFiles/p2kvs_memtable.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wal/CMakeFiles/p2kvs_wal.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/p2kvs_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/p2kvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
