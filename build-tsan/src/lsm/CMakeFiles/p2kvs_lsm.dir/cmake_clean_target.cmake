file(REMOVE_RECURSE
  "libp2kvs_lsm.a"
)
