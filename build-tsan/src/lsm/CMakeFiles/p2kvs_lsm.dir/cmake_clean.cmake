file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_lsm.dir/builder.cc.o"
  "CMakeFiles/p2kvs_lsm.dir/builder.cc.o.d"
  "CMakeFiles/p2kvs_lsm.dir/db_impl.cc.o"
  "CMakeFiles/p2kvs_lsm.dir/db_impl.cc.o.d"
  "CMakeFiles/p2kvs_lsm.dir/db_iter.cc.o"
  "CMakeFiles/p2kvs_lsm.dir/db_iter.cc.o.d"
  "CMakeFiles/p2kvs_lsm.dir/filename.cc.o"
  "CMakeFiles/p2kvs_lsm.dir/filename.cc.o.d"
  "CMakeFiles/p2kvs_lsm.dir/merging_iterator.cc.o"
  "CMakeFiles/p2kvs_lsm.dir/merging_iterator.cc.o.d"
  "CMakeFiles/p2kvs_lsm.dir/table_cache.cc.o"
  "CMakeFiles/p2kvs_lsm.dir/table_cache.cc.o.d"
  "CMakeFiles/p2kvs_lsm.dir/version_edit.cc.o"
  "CMakeFiles/p2kvs_lsm.dir/version_edit.cc.o.d"
  "CMakeFiles/p2kvs_lsm.dir/version_set.cc.o"
  "CMakeFiles/p2kvs_lsm.dir/version_set.cc.o.d"
  "CMakeFiles/p2kvs_lsm.dir/write_batch.cc.o"
  "CMakeFiles/p2kvs_lsm.dir/write_batch.cc.o.d"
  "libp2kvs_lsm.a"
  "libp2kvs_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
