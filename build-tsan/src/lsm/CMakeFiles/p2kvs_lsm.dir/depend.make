# Empty dependencies file for p2kvs_lsm.
# This may be replaced when dependencies are built.
