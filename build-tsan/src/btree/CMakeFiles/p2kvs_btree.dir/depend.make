# Empty dependencies file for p2kvs_btree.
# This may be replaced when dependencies are built.
