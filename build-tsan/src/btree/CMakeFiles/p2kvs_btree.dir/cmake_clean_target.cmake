file(REMOVE_RECURSE
  "libp2kvs_btree.a"
)
