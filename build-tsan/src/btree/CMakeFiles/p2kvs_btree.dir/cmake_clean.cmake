file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_btree.dir/btree_store.cc.o"
  "CMakeFiles/p2kvs_btree.dir/btree_store.cc.o.d"
  "libp2kvs_btree.a"
  "libp2kvs_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
