# Empty dependencies file for p2kvs_sst.
# This may be replaced when dependencies are built.
