
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sst/block.cc" "src/sst/CMakeFiles/p2kvs_sst.dir/block.cc.o" "gcc" "src/sst/CMakeFiles/p2kvs_sst.dir/block.cc.o.d"
  "/root/repo/src/sst/block_builder.cc" "src/sst/CMakeFiles/p2kvs_sst.dir/block_builder.cc.o" "gcc" "src/sst/CMakeFiles/p2kvs_sst.dir/block_builder.cc.o.d"
  "/root/repo/src/sst/bloom.cc" "src/sst/CMakeFiles/p2kvs_sst.dir/bloom.cc.o" "gcc" "src/sst/CMakeFiles/p2kvs_sst.dir/bloom.cc.o.d"
  "/root/repo/src/sst/cache.cc" "src/sst/CMakeFiles/p2kvs_sst.dir/cache.cc.o" "gcc" "src/sst/CMakeFiles/p2kvs_sst.dir/cache.cc.o.d"
  "/root/repo/src/sst/filter_block.cc" "src/sst/CMakeFiles/p2kvs_sst.dir/filter_block.cc.o" "gcc" "src/sst/CMakeFiles/p2kvs_sst.dir/filter_block.cc.o.d"
  "/root/repo/src/sst/format.cc" "src/sst/CMakeFiles/p2kvs_sst.dir/format.cc.o" "gcc" "src/sst/CMakeFiles/p2kvs_sst.dir/format.cc.o.d"
  "/root/repo/src/sst/table.cc" "src/sst/CMakeFiles/p2kvs_sst.dir/table.cc.o" "gcc" "src/sst/CMakeFiles/p2kvs_sst.dir/table.cc.o.d"
  "/root/repo/src/sst/table_builder.cc" "src/sst/CMakeFiles/p2kvs_sst.dir/table_builder.cc.o" "gcc" "src/sst/CMakeFiles/p2kvs_sst.dir/table_builder.cc.o.d"
  "/root/repo/src/sst/two_level_iterator.cc" "src/sst/CMakeFiles/p2kvs_sst.dir/two_level_iterator.cc.o" "gcc" "src/sst/CMakeFiles/p2kvs_sst.dir/two_level_iterator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/io/CMakeFiles/p2kvs_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/p2kvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
