file(REMOVE_RECURSE
  "libp2kvs_sst.a"
)
