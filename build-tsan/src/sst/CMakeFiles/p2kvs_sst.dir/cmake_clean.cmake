file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_sst.dir/block.cc.o"
  "CMakeFiles/p2kvs_sst.dir/block.cc.o.d"
  "CMakeFiles/p2kvs_sst.dir/block_builder.cc.o"
  "CMakeFiles/p2kvs_sst.dir/block_builder.cc.o.d"
  "CMakeFiles/p2kvs_sst.dir/bloom.cc.o"
  "CMakeFiles/p2kvs_sst.dir/bloom.cc.o.d"
  "CMakeFiles/p2kvs_sst.dir/cache.cc.o"
  "CMakeFiles/p2kvs_sst.dir/cache.cc.o.d"
  "CMakeFiles/p2kvs_sst.dir/filter_block.cc.o"
  "CMakeFiles/p2kvs_sst.dir/filter_block.cc.o.d"
  "CMakeFiles/p2kvs_sst.dir/format.cc.o"
  "CMakeFiles/p2kvs_sst.dir/format.cc.o.d"
  "CMakeFiles/p2kvs_sst.dir/table.cc.o"
  "CMakeFiles/p2kvs_sst.dir/table.cc.o.d"
  "CMakeFiles/p2kvs_sst.dir/table_builder.cc.o"
  "CMakeFiles/p2kvs_sst.dir/table_builder.cc.o.d"
  "CMakeFiles/p2kvs_sst.dir/two_level_iterator.cc.o"
  "CMakeFiles/p2kvs_sst.dir/two_level_iterator.cc.o.d"
  "libp2kvs_sst.a"
  "libp2kvs_sst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_sst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
