file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_kvell.dir/kvell_store.cc.o"
  "CMakeFiles/p2kvs_kvell.dir/kvell_store.cc.o.d"
  "libp2kvs_kvell.a"
  "libp2kvs_kvell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_kvell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
