file(REMOVE_RECURSE
  "libp2kvs_kvell.a"
)
