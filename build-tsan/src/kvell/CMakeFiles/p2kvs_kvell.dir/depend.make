# Empty dependencies file for p2kvs_kvell.
# This may be replaced when dependencies are built.
