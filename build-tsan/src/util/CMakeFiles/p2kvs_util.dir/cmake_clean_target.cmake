file(REMOVE_RECURSE
  "libp2kvs_util.a"
)
