
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/arena.cc" "src/util/CMakeFiles/p2kvs_util.dir/arena.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/arena.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/util/CMakeFiles/p2kvs_util.dir/coding.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/coding.cc.o.d"
  "/root/repo/src/util/comparator.cc" "src/util/CMakeFiles/p2kvs_util.dir/comparator.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/comparator.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/util/CMakeFiles/p2kvs_util.dir/crc32c.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/crc32c.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/util/CMakeFiles/p2kvs_util.dir/hash.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/hash.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/p2kvs_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/iterator.cc" "src/util/CMakeFiles/p2kvs_util.dir/iterator.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/iterator.cc.o.d"
  "/root/repo/src/util/perf_context.cc" "src/util/CMakeFiles/p2kvs_util.dir/perf_context.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/perf_context.cc.o.d"
  "/root/repo/src/util/rate_limiter.cc" "src/util/CMakeFiles/p2kvs_util.dir/rate_limiter.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/rate_limiter.cc.o.d"
  "/root/repo/src/util/resource_usage.cc" "src/util/CMakeFiles/p2kvs_util.dir/resource_usage.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/resource_usage.cc.o.d"
  "/root/repo/src/util/stats_recorder.cc" "src/util/CMakeFiles/p2kvs_util.dir/stats_recorder.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/stats_recorder.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/p2kvs_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/status.cc.o.d"
  "/root/repo/src/util/thread_util.cc" "src/util/CMakeFiles/p2kvs_util.dir/thread_util.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/thread_util.cc.o.d"
  "/root/repo/src/util/trace.cc" "src/util/CMakeFiles/p2kvs_util.dir/trace.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/trace.cc.o.d"
  "/root/repo/src/util/trace_exporter.cc" "src/util/CMakeFiles/p2kvs_util.dir/trace_exporter.cc.o" "gcc" "src/util/CMakeFiles/p2kvs_util.dir/trace_exporter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
