file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_util.dir/arena.cc.o"
  "CMakeFiles/p2kvs_util.dir/arena.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/coding.cc.o"
  "CMakeFiles/p2kvs_util.dir/coding.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/comparator.cc.o"
  "CMakeFiles/p2kvs_util.dir/comparator.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/crc32c.cc.o"
  "CMakeFiles/p2kvs_util.dir/crc32c.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/hash.cc.o"
  "CMakeFiles/p2kvs_util.dir/hash.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/histogram.cc.o"
  "CMakeFiles/p2kvs_util.dir/histogram.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/iterator.cc.o"
  "CMakeFiles/p2kvs_util.dir/iterator.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/perf_context.cc.o"
  "CMakeFiles/p2kvs_util.dir/perf_context.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/rate_limiter.cc.o"
  "CMakeFiles/p2kvs_util.dir/rate_limiter.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/resource_usage.cc.o"
  "CMakeFiles/p2kvs_util.dir/resource_usage.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/stats_recorder.cc.o"
  "CMakeFiles/p2kvs_util.dir/stats_recorder.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/status.cc.o"
  "CMakeFiles/p2kvs_util.dir/status.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/thread_util.cc.o"
  "CMakeFiles/p2kvs_util.dir/thread_util.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/trace.cc.o"
  "CMakeFiles/p2kvs_util.dir/trace.cc.o.d"
  "CMakeFiles/p2kvs_util.dir/trace_exporter.cc.o"
  "CMakeFiles/p2kvs_util.dir/trace_exporter.cc.o.d"
  "libp2kvs_util.a"
  "libp2kvs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
