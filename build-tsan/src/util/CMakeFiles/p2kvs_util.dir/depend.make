# Empty dependencies file for p2kvs_util.
# This may be replaced when dependencies are built.
