# Empty dependencies file for bench_fig06_latency_breakdown.
# This may be replaced when dependencies are built.
