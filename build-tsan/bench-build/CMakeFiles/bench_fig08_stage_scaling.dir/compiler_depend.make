# Empty compiler generated dependencies file for bench_fig08_stage_scaling.
# This may be replaced when dependencies are built.
