file(REMOVE_RECURSE
  "../bench/bench_fig13_latency_intensity"
  "../bench/bench_fig13_latency_intensity.pdb"
  "CMakeFiles/bench_fig13_latency_intensity.dir/bench_fig13_latency_intensity.cc.o"
  "CMakeFiles/bench_fig13_latency_intensity.dir/bench_fig13_latency_intensity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_latency_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
