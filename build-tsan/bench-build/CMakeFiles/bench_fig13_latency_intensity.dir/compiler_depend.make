# Empty compiler generated dependencies file for bench_fig13_latency_intensity.
# This may be replaced when dependencies are built.
