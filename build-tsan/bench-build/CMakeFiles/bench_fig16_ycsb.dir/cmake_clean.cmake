file(REMOVE_RECURSE
  "../bench/bench_fig16_ycsb"
  "../bench/bench_fig16_ycsb.pdb"
  "CMakeFiles/bench_fig16_ycsb.dir/bench_fig16_ycsb.cc.o"
  "CMakeFiles/bench_fig16_ycsb.dir/bench_fig16_ycsb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
