# Empty compiler generated dependencies file for bench_fig18_kv_size.
# This may be replaced when dependencies are built.
