file(REMOVE_RECURSE
  "../bench/bench_fig07_batching_effect"
  "../bench/bench_fig07_batching_effect.pdb"
  "CMakeFiles/bench_fig07_batching_effect.dir/bench_fig07_batching_effect.cc.o"
  "CMakeFiles/bench_fig07_batching_effect.dir/bench_fig07_batching_effect.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_batching_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
