# Empty dependencies file for bench_fig07_batching_effect.
# This may be replaced when dependencies are built.
