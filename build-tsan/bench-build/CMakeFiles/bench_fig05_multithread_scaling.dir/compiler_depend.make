# Empty compiler generated dependencies file for bench_fig05_multithread_scaling.
# This may be replaced when dependencies are built.
