# Empty dependencies file for bench_fig22_portability_leveldb.
# This may be replaced when dependencies are built.
