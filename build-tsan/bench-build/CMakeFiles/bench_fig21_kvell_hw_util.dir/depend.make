# Empty dependencies file for bench_fig21_kvell_hw_util.
# This may be replaced when dependencies are built.
