file(REMOVE_RECURSE
  "../bench/bench_fig21_kvell_hw_util"
  "../bench/bench_fig21_kvell_hw_util.pdb"
  "CMakeFiles/bench_fig21_kvell_hw_util.dir/bench_fig21_kvell_hw_util.cc.o"
  "CMakeFiles/bench_fig21_kvell_hw_util.dir/bench_fig21_kvell_hw_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_kvell_hw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
