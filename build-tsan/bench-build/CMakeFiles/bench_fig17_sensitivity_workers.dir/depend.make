# Empty dependencies file for bench_fig17_sensitivity_workers.
# This may be replaced when dependencies are built.
