file(REMOVE_RECURSE
  "../bench/bench_fig17_sensitivity_workers"
  "../bench/bench_fig17_sensitivity_workers.pdb"
  "CMakeFiles/bench_fig17_sensitivity_workers.dir/bench_fig17_sensitivity_workers.cc.o"
  "CMakeFiles/bench_fig17_sensitivity_workers.dir/bench_fig17_sensitivity_workers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_sensitivity_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
