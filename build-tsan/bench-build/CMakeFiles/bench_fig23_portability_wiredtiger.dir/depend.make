# Empty dependencies file for bench_fig23_portability_wiredtiger.
# This may be replaced when dependencies are built.
