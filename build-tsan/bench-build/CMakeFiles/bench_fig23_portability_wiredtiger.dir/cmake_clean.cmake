file(REMOVE_RECURSE
  "../bench/bench_fig23_portability_wiredtiger"
  "../bench/bench_fig23_portability_wiredtiger.pdb"
  "CMakeFiles/bench_fig23_portability_wiredtiger.dir/bench_fig23_portability_wiredtiger.cc.o"
  "CMakeFiles/bench_fig23_portability_wiredtiger.dir/bench_fig23_portability_wiredtiger.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_portability_wiredtiger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
