file(REMOVE_RECURSE
  "../bench/bench_fig15_range_scan"
  "../bench/bench_fig15_range_scan.pdb"
  "CMakeFiles/bench_fig15_range_scan.dir/bench_fig15_range_scan.cc.o"
  "CMakeFiles/bench_fig15_range_scan.dir/bench_fig15_range_scan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_range_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
