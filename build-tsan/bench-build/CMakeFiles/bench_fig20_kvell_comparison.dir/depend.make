# Empty dependencies file for bench_fig20_kvell_comparison.
# This may be replaced when dependencies are built.
