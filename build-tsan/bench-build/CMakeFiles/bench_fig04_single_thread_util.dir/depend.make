# Empty dependencies file for bench_fig04_single_thread_util.
# This may be replaced when dependencies are built.
