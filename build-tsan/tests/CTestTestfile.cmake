# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/btree_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/crash_recovery_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/error_injection_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/fanout_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/fault_monkey_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/histogram_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/io_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/iterator_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/kvell_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/lsm_behavior_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/lsm_db_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/model_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/memtable_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/p2kvs_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/partitioner_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/obm_worker_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/read_committed_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sst_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/stats_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/trace_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/txn_log_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/version_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/wal_test[1]_include.cmake")
