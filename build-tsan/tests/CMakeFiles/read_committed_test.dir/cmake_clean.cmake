file(REMOVE_RECURSE
  "CMakeFiles/read_committed_test.dir/read_committed_test.cc.o"
  "CMakeFiles/read_committed_test.dir/read_committed_test.cc.o.d"
  "read_committed_test"
  "read_committed_test.pdb"
  "read_committed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_committed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
