# Empty compiler generated dependencies file for read_committed_test.
# This may be replaced when dependencies are built.
