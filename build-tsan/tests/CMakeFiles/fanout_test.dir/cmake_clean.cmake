file(REMOVE_RECURSE
  "CMakeFiles/fanout_test.dir/fanout_test.cc.o"
  "CMakeFiles/fanout_test.dir/fanout_test.cc.o.d"
  "fanout_test"
  "fanout_test.pdb"
  "fanout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
