# Empty dependencies file for fanout_test.
# This may be replaced when dependencies are built.
