file(REMOVE_RECURSE
  "CMakeFiles/sst_test.dir/sst_test.cc.o"
  "CMakeFiles/sst_test.dir/sst_test.cc.o.d"
  "sst_test"
  "sst_test.pdb"
  "sst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
