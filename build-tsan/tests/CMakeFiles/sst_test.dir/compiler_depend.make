# Empty compiler generated dependencies file for sst_test.
# This may be replaced when dependencies are built.
