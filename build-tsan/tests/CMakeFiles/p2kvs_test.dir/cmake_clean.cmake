file(REMOVE_RECURSE
  "CMakeFiles/p2kvs_test.dir/p2kvs_test.cc.o"
  "CMakeFiles/p2kvs_test.dir/p2kvs_test.cc.o.d"
  "p2kvs_test"
  "p2kvs_test.pdb"
  "p2kvs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2kvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
