# Empty compiler generated dependencies file for p2kvs_test.
# This may be replaced when dependencies are built.
