file(REMOVE_RECURSE
  "CMakeFiles/lsm_db_test.dir/lsm_db_test.cc.o"
  "CMakeFiles/lsm_db_test.dir/lsm_db_test.cc.o.d"
  "lsm_db_test"
  "lsm_db_test.pdb"
  "lsm_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
