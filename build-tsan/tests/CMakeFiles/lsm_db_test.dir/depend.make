# Empty dependencies file for lsm_db_test.
# This may be replaced when dependencies are built.
