file(REMOVE_RECURSE
  "CMakeFiles/error_injection_test.dir/error_injection_test.cc.o"
  "CMakeFiles/error_injection_test.dir/error_injection_test.cc.o.d"
  "error_injection_test"
  "error_injection_test.pdb"
  "error_injection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
