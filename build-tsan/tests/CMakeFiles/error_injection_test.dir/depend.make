# Empty dependencies file for error_injection_test.
# This may be replaced when dependencies are built.
