# Empty dependencies file for lsm_behavior_test.
# This may be replaced when dependencies are built.
