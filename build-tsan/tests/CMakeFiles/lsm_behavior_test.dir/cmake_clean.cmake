file(REMOVE_RECURSE
  "CMakeFiles/lsm_behavior_test.dir/lsm_behavior_test.cc.o"
  "CMakeFiles/lsm_behavior_test.dir/lsm_behavior_test.cc.o.d"
  "lsm_behavior_test"
  "lsm_behavior_test.pdb"
  "lsm_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
