# Empty compiler generated dependencies file for kvell_test.
# This may be replaced when dependencies are built.
