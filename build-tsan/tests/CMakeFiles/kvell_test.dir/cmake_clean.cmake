file(REMOVE_RECURSE
  "CMakeFiles/kvell_test.dir/kvell_test.cc.o"
  "CMakeFiles/kvell_test.dir/kvell_test.cc.o.d"
  "kvell_test"
  "kvell_test.pdb"
  "kvell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
