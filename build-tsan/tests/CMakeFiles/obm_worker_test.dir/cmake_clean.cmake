file(REMOVE_RECURSE
  "CMakeFiles/obm_worker_test.dir/obm_worker_test.cc.o"
  "CMakeFiles/obm_worker_test.dir/obm_worker_test.cc.o.d"
  "obm_worker_test"
  "obm_worker_test.pdb"
  "obm_worker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obm_worker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
