# Empty dependencies file for obm_worker_test.
# This may be replaced when dependencies are built.
