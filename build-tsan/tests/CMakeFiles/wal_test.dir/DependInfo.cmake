
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wal_test.cc" "tests/CMakeFiles/wal_test.dir/wal_test.cc.o" "gcc" "tests/CMakeFiles/wal_test.dir/wal_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/p2kvs_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ycsb/CMakeFiles/p2kvs_ycsb.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/kvell/CMakeFiles/p2kvs_kvell.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/btree/CMakeFiles/p2kvs_btree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lsm/CMakeFiles/p2kvs_lsm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sst/CMakeFiles/p2kvs_sst.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/memtable/CMakeFiles/p2kvs_memtable.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wal/CMakeFiles/p2kvs_wal.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/p2kvs_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/p2kvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
