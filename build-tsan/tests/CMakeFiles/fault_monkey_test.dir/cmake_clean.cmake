file(REMOVE_RECURSE
  "CMakeFiles/fault_monkey_test.dir/fault_monkey_test.cc.o"
  "CMakeFiles/fault_monkey_test.dir/fault_monkey_test.cc.o.d"
  "fault_monkey_test"
  "fault_monkey_test.pdb"
  "fault_monkey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_monkey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
