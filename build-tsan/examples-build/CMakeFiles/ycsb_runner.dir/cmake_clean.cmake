file(REMOVE_RECURSE
  "../examples/ycsb_runner"
  "../examples/ycsb_runner.pdb"
  "CMakeFiles/ycsb_runner.dir/ycsb_runner.cpp.o"
  "CMakeFiles/ycsb_runner.dir/ycsb_runner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
