# Empty dependencies file for ycsb_runner.
# This may be replaced when dependencies are built.
