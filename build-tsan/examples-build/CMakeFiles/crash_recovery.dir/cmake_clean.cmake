file(REMOVE_RECURSE
  "../examples/crash_recovery"
  "../examples/crash_recovery.pdb"
  "CMakeFiles/crash_recovery.dir/crash_recovery.cpp.o"
  "CMakeFiles/crash_recovery.dir/crash_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
