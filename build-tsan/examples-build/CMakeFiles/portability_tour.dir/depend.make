# Empty dependencies file for portability_tour.
# This may be replaced when dependencies are built.
