file(REMOVE_RECURSE
  "../examples/portability_tour"
  "../examples/portability_tour.pdb"
  "CMakeFiles/portability_tour.dir/portability_tour.cpp.o"
  "CMakeFiles/portability_tour.dir/portability_tour.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portability_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
