// YCSB runner: a small db_bench-style CLI for driving any of the bundled
// systems with the paper's workloads (Table 1).
//
//   ./examples/ycsb_runner [--workload=load|a..f] [--threads=N] [--ops=N]
//                          [--records=N] [--value=BYTES]
//                          [--system=p2kvs|rocks|level|pebbles|wt|kvell]
//                          [--workers=N] [--no-obm] [--dir=PATH]
//
// Example: load 100k records then run workload A with 8 threads on p2KVS-8:
//   ./examples/ycsb_runner --workload=load --ops=100000 --system=p2kvs
//   ./examples/ycsb_runner --workload=a --records=100000 --ops=100000

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "src/core/p2kvs.h"

using namespace p2kvs;         // NOLINT — example brevity
using namespace p2kvs::bench;  // NOLINT

namespace {

struct Args {
  std::string workload = "a";
  int threads = 8;
  uint64_t ops = 100000;
  uint64_t records = 100000;
  size_t value_size = 128;
  std::string system = "p2kvs";
  int workers = 8;
  bool obm = true;
  std::string dir = "./ycsb-data";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = strlen(name);
  if (strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; i++) {
    std::string v;
    if (ParseFlag(argv[i], "--workload", &v)) {
      args.workload = v;
    } else if (ParseFlag(argv[i], "--threads", &v)) {
      args.threads = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--ops", &v)) {
      args.ops = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--records", &v)) {
      args.records = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--value", &v)) {
      args.value_size = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--system", &v)) {
      args.system = v;
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      args.workers = std::atoi(v.c_str());
    } else if (strcmp(argv[i], "--no-obm") == 0) {
      args.obm = false;
    } else if (ParseFlag(argv[i], "--dir", &v)) {
      args.dir = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n", argv[i]);
      std::exit(1);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);

  std::unique_ptr<DB> db;
  std::unique_ptr<P2KVS> p2;
  std::unique_ptr<KvellStore> kvell;
  Target target;

  if (args.system == "p2kvs") {
    P2kvsOptions options;
    options.num_workers = args.workers;
    options.enable_obm = args.obm;
    options.engine_factory = MakeRocksLiteFactory();
    if (!P2KVS::Open(options, args.dir, &p2).ok()) {
      std::fprintf(stderr, "open failed\n");
      return 1;
    }
    target = MakeP2kvsTarget("p2kvs", p2.get());
  } else if (args.system == "kvell") {
    KvellOptions options;
    options.num_workers = args.workers;
    if (!KvellStore::Open(options, args.dir, &kvell).ok()) {
      std::fprintf(stderr, "open failed\n");
      return 1;
    }
    target = MakeKvellTarget("kvell", kvell.get());
  } else {
    Options options;
    if (args.system == "level") {
      options.compat_mode = CompatMode::kLevelDB;
    } else if (args.system == "pebbles") {
      options.compat_mode = CompatMode::kLevelDB;
      options.compaction_style = CompactionStyle::kTiered;
    } else if (args.system != "rocks") {
      std::fprintf(stderr, "unknown system %s\n", args.system.c_str());
      return 1;
    }
    if (!DB::Open(options, args.dir, &db).ok()) {
      std::fprintf(stderr, "open failed\n");
      return 1;
    }
    target = MakeDbTarget(args.system, db.get());
  }

  ycsb::KeySpace space(args.workload == "load" ? 0 : args.records);
  YcsbRunConfig config;
  config.workload = args.workload;
  config.threads = args.threads;
  config.ops = args.ops;
  config.value_size = args.value_size;
  config.key_space = &space;

  std::printf("system=%s workload=%s threads=%d ops=%llu records=%llu value=%zuB\n",
              args.system.c_str(), args.workload.c_str(), args.threads,
              static_cast<unsigned long long>(args.ops),
              static_cast<unsigned long long>(args.records), args.value_size);

  RunResult result = RunYcsb(target, config);
  std::printf("throughput: %s  (%.2fs)\n", FmtQps(result.qps).c_str(), result.seconds);
  std::printf("latency us: %s\n", result.latency.ToString().c_str());
  return 0;
}
