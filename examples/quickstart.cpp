// Quickstart: open a p2KVS store, write, read, scan, delete, and run a
// cross-instance transaction.
//
//   ./examples/quickstart [directory]   (default: ./p2kvs-quickstart-data)

#include <cstdio>
#include <string>

#include "src/core/p2kvs.h"

using namespace p2kvs;  // NOLINT — example brevity

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "./p2kvs-quickstart-data";

  // Configure the framework: 4 workers (=> 4 independent RocksLite
  // instances), opportunistic batching on.
  P2kvsOptions options;
  options.num_workers = 4;
  options.enable_obm = true;
  options.engine_factory = MakeRocksLiteFactory();  // default LSM engine

  std::unique_ptr<P2KVS> store;
  Status s = P2KVS::Open(options, path, &store);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("opened p2KVS at %s with %d workers\n", path.c_str(), store->num_workers());

  // --- Basic KV operations. Each key routes to Hash(key) %% N. ---
  store->Put("language", "C++20").IgnoreError();
  store->Put("paper", "p2KVS (EuroSys'22)").IgnoreError();
  store->Put("engine", "RocksLite").IgnoreError();

  std::string value;
  s = store->Get("paper", &value);
  std::printf("get(paper) -> %s (%s)\n", value.c_str(), s.ToString().c_str());
  std::printf("  (key 'paper' lives on worker %d)\n", store->PartitionOf("paper"));

  store->Delete("engine").IgnoreError();
  s = store->Get("engine", &value);
  std::printf("get(engine) after delete -> %s\n", s.ToString().c_str());

  // --- Asynchronous writes (the paper's Put(K, V, callback) interface). ---
  std::atomic<int> pending{100};
  for (int i = 0; i < 100; i++) {
    store->PutAsync("async-" + std::to_string(i), "value-" + std::to_string(i),
                    [&pending](const Status& st) {
                      if (st.ok()) {
                        pending.fetch_sub(1);
                      }
                    });
  }
  while (pending.load() > 0) {
  }
  std::printf("100 async puts completed\n");

  // --- Ordered scans across all instances. ---
  std::vector<std::pair<std::string, std::string>> out;
  store->Scan("async-00", 5, &out).IgnoreError();
  std::printf("scan(async-00, 5):\n");
  for (const auto& [k, v] : out) {
    std::printf("  %s = %s\n", k.c_str(), v.c_str());
  }

  // --- A cross-instance transaction: atomic even across workers. ---
  WriteBatch txn;
  txn.Put("account-alice", "90");
  txn.Put("account-bob", "110");
  s = store->WriteTxn(&txn);
  std::printf("transaction commit: %s\n", s.ToString().c_str());

  P2kvsStats stats = store->GetStats();
  std::printf("stats: %llu requests, %llu write batches (avg %.1f writes/batch)\n",
              static_cast<unsigned long long>(stats.requests_submitted),
              static_cast<unsigned long long>(stats.write_batches), stats.AvgWriteBatchSize());
  return 0;
}
