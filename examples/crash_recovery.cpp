// Crash-recovery walkthrough (paper §4.5 / Figure 11): runs GSN-tagged
// transactions against p2KVS on a fault-injection environment, simulates a
// power loss at the worst moment (sub-batches durable, commit record not),
// and shows that recovery rolls the whole transaction back on every
// instance.
//
//   ./examples/crash_recovery

#include <cstdio>

#include "src/core/p2kvs.h"
#include "src/io/fault_injection_env.h"
#include "src/io/mem_env.h"

using namespace p2kvs;  // NOLINT — example brevity

namespace {

std::unique_ptr<P2KVS> OpenStore(Env* env) {
  Options lsm;
  lsm.env = env;
  P2kvsOptions options;
  options.env = env;
  options.num_workers = 4;
  options.engine_factory = MakeRocksLiteFactory(lsm);
  std::unique_ptr<P2KVS> store;
  Status s = P2KVS::Open(options, "/crashdemo", &store);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return store;
}

const char* Lookup(P2KVS* store, const std::string& key) {
  static std::string value;
  Status s = store->Get(key, &value);
  if (s.ok()) {
    return value.c_str();
  }
  return s.IsNotFound() ? "<not found>" : "<error>";
}

}  // namespace

int main() {
  auto base_env = NewMemEnv();
  FaultInjectionEnv fault_env(base_env.get());
  auto store = OpenStore(&fault_env);

  std::printf("== phase 1: a committed cross-instance transaction ==\n");
  {
    WriteBatch txn;
    txn.Put("alice", "100");
    txn.Put("bob", "100");
    Status s = store->WriteTxn(&txn);
    std::printf("txn{alice=100, bob=100} -> %s\n", s.ToString().c_str());
    std::printf("  alice spans worker %d, bob spans worker %d\n", store->PartitionOf("alice"),
                store->PartitionOf("bob"));
  }

  std::printf("\n== phase 2: a transaction that crashes before its commit record ==\n");
  {
    // Simulate the torn middle of WriteTxn: the per-instance WriteBatches
    // are durably logged with GSN 777, but no commit record is ever written
    // (as if the machine died right there).
    const uint64_t torn_gsn = 777;
    for (const char* key : {"alice", "bob"}) {
      WriteBatch sub;
      sub.Put(key, "999999");  // a transfer that must never half-apply
      KvWriteOptions kwo;
      kwo.gsn = torn_gsn;
      kwo.sync = true;
      store->instance(store->PartitionOf(key))->Write(&sub, kwo).IgnoreError();
    }
    std::printf("before crash: alice=%s bob=%s (dirty state visible)\n",
                Lookup(store.get(), "alice"), Lookup(store.get(), "bob"));
  }

  std::printf("\n== phase 3: power loss ==\n");
  store.reset();          // drop the process state
  fault_env.Crash().IgnoreError();      // discard every byte not fsync'ed
  std::printf("crashed; reopening...\n");

  store = OpenStore(&fault_env);
  std::printf("\n== phase 4: after recovery ==\n");
  std::printf("alice=%s bob=%s\n", Lookup(store.get(), "alice"), Lookup(store.get(), "bob"));
  std::printf("the committed transaction survived; the torn one (gsn=777) was rolled\n"
              "back on every instance because its commit record never reached the\n"
              "transaction log.\n");

  bool consistent = std::string(Lookup(store.get(), "alice")) == "100" &&
                    std::string(Lookup(store.get(), "bob")) == "100";
  std::printf("\nconsistency check: %s\n", consistent ? "PASS" : "FAIL");
  return consistent ? 0 : 1;
}
