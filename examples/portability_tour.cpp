// Portability tour (paper §4.6): the same p2KVS code drives three different
// engines — RocksLite (full RocksDB profile), LevelLite (LevelDB profile),
// and WTLite (B+-tree, no batch APIs) — and reports how the opportunistic
// batching adapts to each engine's capabilities.
//
//   ./examples/portability_tour

#include <cstdio>
#include <thread>
#include <vector>

#include "src/core/p2kvs.h"
#include "src/io/mem_env.h"
#include "src/util/clock.h"

using namespace p2kvs;  // NOLINT — example brevity

namespace {

void Drive(const char* name, Env* env, EngineFactory factory) {
  P2kvsOptions options;
  options.env = env;
  options.num_workers = 4;
  options.engine_factory = std::move(factory);
  std::unique_ptr<P2KVS> store;
  Status s = P2KVS::Open(options, std::string("/tour-") + name, &store);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: open failed: %s\n", name, s.ToString().c_str());
    return;
  }

  EngineCaps caps = store->instance(0)->caps();
  std::printf("\n== %s ==\n", name);
  std::printf("engine capabilities: batch_write=%s multi_get=%s gsn_wal=%s\n",
              caps.batch_write ? "yes" : "no", caps.multi_get ? "yes" : "no",
              caps.gsn_wal ? "yes" : "no");

  // Concurrent writes followed by concurrent reads, identical code for all
  // engines — the framework adapts.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  uint64_t t0 = NowNanos();
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; i++) {
        store->Put("key-" + std::to_string(t) + "-" + std::to_string(i), "value").IgnoreError();
      }
    });
  }
  for (auto& th : writers) {
    th.join();
  }
  double write_secs = static_cast<double>(NowNanos() - t0) / 1e9;

  t0 = NowNanos();
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; t++) {
    readers.emplace_back([&store, t] {
      std::string value;
      for (int i = 0; i < kPerThread; i++) {
        store->Get("key-" + std::to_string(t) + "-" + std::to_string(i), &value).IgnoreError();
      }
    });
  }
  for (auto& th : readers) {
    th.join();
  }
  double read_secs = static_cast<double>(NowNanos() - t0) / 1e9;

  P2kvsStats stats = store->GetStats();
  std::printf("writes: %.0f KQPS; reads: %.0f KQPS\n",
              kThreads * kPerThread / write_secs / 1000,
              kThreads * kPerThread / read_secs / 1000);
  std::printf("OBM usage: %llu write batches (avg %.1f req/batch), %llu read batches, "
              "%llu singles\n",
              static_cast<unsigned long long>(stats.write_batches), stats.AvgWriteBatchSize(),
              static_cast<unsigned long long>(stats.read_batches),
              static_cast<unsigned long long>(stats.singles));
  if (!caps.batch_write) {
    std::printf("(no batch-write: the OBM falls back to per-request execution, as the\n"
                " paper does for WiredTiger)\n");
  }

  // Scans work everywhere: every engine exposes an ordered iterator.
  std::vector<std::pair<std::string, std::string>> out;
  store->Scan("key-0-", 3, &out).IgnoreError();
  std::printf("scan(key-0-, 3): ");
  for (const auto& [k, v] : out) {
    std::printf("%s ", k.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto env = NewMemEnv();

  Options lsm;
  lsm.env = env.get();
  Drive("RocksLite", env.get(), MakeRocksLiteFactory(lsm));
  Drive("LevelLite", env.get(), MakeLevelLiteFactory(lsm));

  BTreeOptions bt;
  bt.env = env.get();
  Drive("WTLite", env.get(), MakeWTLiteFactory(bt));
  return 0;
}
