// Figure 21 — hardware utilization of KVell-lite vs p2KVS-8 under a
// continuous random write workload: IO bandwidth, memory, CPU time series.
//
// Paper result: KVell drives only ~300 MB/s of small-write IO and needs >2x
// the memory (all-in-memory index); p2KVS keeps the device busy via LSM
// write aggregation and spreads CPU across cores.

#include "bench/bench_common.h"

#include <cstdio>
#include <thread>

#include "src/util/clock.h"
#include "src/util/hash.h"

namespace p2kvs {
namespace bench {
namespace {

void RunCase(const char* name, const Target& target, const SimulatedDevice& dev,
             double seconds, int threads) {
  std::printf("\n-- %s: continuous 128B random writes (%d client threads) --\n", name, threads);
  IoStats::Instance().Reset();
  std::atomic<uint64_t> ops{0};
  std::atomic<bool> stop{false};

  std::vector<ResourceSample> samples = SampleWhile(
      [&] {
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; t++) {
          pool.emplace_back([&] {
            uint64_t i = 0;
            uint64_t deadline = NowNanos() + static_cast<uint64_t>(seconds * 1e9);
            while (NowNanos() < deadline && !stop.load(std::memory_order_relaxed)) {
              uint64_t x = ops.fetch_add(1, std::memory_order_relaxed);
              uint64_t k = Hash64(reinterpret_cast<const char*>(&x), 8) % 2000000;
              target.put(Key(k), Value(i++, 112)).IgnoreError();
            }
          });
        }
        for (auto& th : pool) {
          th.join();
        }
      },
      /*interval_ms=*/250);

  TablePrinter table({"t (s)", "write MB/s", "engine mem", "CPU %"});
  for (const ResourceSample& s : samples) {
    table.AddRow({Fmt(s.at_seconds, 2), Fmt(s.write_mbps),
                  FmtBytes(static_cast<double>(target.memory_usage())), Fmt(s.cpu_percent, 0)});
  }
  table.Print();
  double total_secs = samples.empty() ? seconds : samples.back().at_seconds;
  std::printf("throughput: %s; engine memory at end: %s\n",
              FmtQps(static_cast<double>(ops.load()) / total_secs).c_str(),
              FmtBytes(static_cast<double>(target.memory_usage())).c_str());
  (void)dev;
}

void Run() {
  const int kThreads = 8;
  double seconds = 2.5;
  PrintHeader("Figure 21", "hardware utilization: KVell-lite-8 vs p2KVS-8 (random writes)",
              "p2KVS: higher bandwidth, less memory; KVell: low IO use, fat index");

  {
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    KvellOptions options;
    options.env = dev.env.get();
    options.num_workers = 8;
    std::unique_ptr<KvellStore> store;
    if (!KvellStore::Open(options, "/f21", &store).ok()) std::abort();
    RunCase("KVell-lite-8", MakeKvellTarget("kvell", store.get()), dev, seconds, kThreads);
  }
  {
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    P2kvsOptions options;
    options.env = dev.env.get();
    options.num_workers = 8;
    options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
    std::unique_ptr<P2KVS> store;
    if (!P2KVS::Open(options, "/f21", &store).ok()) std::abort();
    RunCase("p2KVS-8", MakeP2kvsTarget("p2kvs", store.get()), dev, seconds, kThreads);
  }
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
