// Figures 18 & 19 — sensitivity to KV size on workloads LOAD / A / C:
// RocksLite vs p2KVS-8 with OBM off and on, value sizes 64 B .. 4 KiB
// (the 1 KiB rows reproduce Figure 19's comparison).
//
// Paper result: small KVs benefit most from the OBM; at 1 KiB the write-side
// OBM gain shrinks (merging large logging IOs buys little) while read-side
// batching stays effective.

#include "bench/bench_common.h"

#include <cstdio>

namespace p2kvs {
namespace bench {
namespace {

double RunOne(bool p2kvs_system, bool obm, const std::string& workload, size_t value_size,
              uint64_t records, uint64_t ops, int threads) {
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  std::unique_ptr<DB> db;
  std::unique_ptr<P2KVS> store;
  Target target;
  if (!p2kvs_system) {
    if (!DB::Open(DefaultLsmOptions(dev.env.get()), "/f18", &db).ok()) std::abort();
    target = MakeDbTarget("rocks", db.get());
  } else {
    P2kvsOptions options;
    options.env = dev.env.get();
    options.num_workers = 8;
    options.enable_obm = obm;
    options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
    if (!P2KVS::Open(options, "/f18", &store).ok()) std::abort();
    target = MakeP2kvsTarget("p2kvs", store.get());
  }

  ycsb::KeySpace space(0);
  if (workload == "load") {
    YcsbRunConfig config;
    config.workload = "load";
    config.threads = threads;
    config.ops = ops;
    config.value_size = value_size;
    config.key_space = &space;
    return RunYcsb(target, config).qps;
  }
  Preload(target, records, value_size);
  space.record_count.store(records);
  YcsbRunConfig config;
  config.workload = workload;
  config.threads = threads;
  config.ops = ops;
  config.value_size = value_size;
  config.key_space = &space;
  return RunYcsb(target, config).qps;
}

void Run() {
  const int kThreads = 16;
  PrintHeader("Figures 18/19", "KV-size sensitivity on LOAD/A/C (RocksLite vs p2KVS-8)",
              "small KVs gain most from OBM; at >=1KiB the write-side gain shrinks");

  for (const char* workload : {"load", "a", "c"}) {
    std::printf("\n-- workload %s, %d user threads --\n", workload, kThreads);
    TablePrinter table(
        {"value size", "RocksLite", "p2KVS-8 no OBM", "p2KVS-8 OBM", "speedup (OBM/rocks)"});
    for (size_t value_size : {64u, 128u, 256u, 1024u, 4096u}) {
      // Keep total data volume roughly constant across sizes.
      uint64_t ops = std::max<uint64_t>(Scaled(2000000) / value_size, 500);
      uint64_t records = ops;
      double rocks = RunOne(false, false, workload, value_size, records, ops, kThreads);
      double p2_off = RunOne(true, false, workload, value_size, records, ops, kThreads);
      double p2_on = RunOne(true, true, workload, value_size, records, ops, kThreads);
      table.AddRow({std::to_string(value_size) + "B", FmtQps(rocks), FmtQps(p2_off),
                    FmtQps(p2_on), Fmt(rocks > 0 ? p2_on / rocks : 0, 2) + "x"});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
