// Figure 1 — RocksDB throughput across storage devices (HDD / SATA SSD /
// NVMe SSD), single user thread and 8 user threads, 128-byte KVs.
//
// Paper result: reads gain up to 2 orders of magnitude from faster devices,
// but write throughput barely moves (small writes are CPU-bound, not
// IO-bound), and 8 threads improve writes far less than 8x.

#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>

#include "src/util/hash.h"
#include "src/util/random.h"

namespace p2kvs {
namespace bench {
namespace {

struct OpResult {
  double seq_put, rand_put, rand_update, seq_get, rand_get;
};

OpResult RunOnDevice(const DeviceProfile& profile, int threads, uint64_t ops) {
  SimulatedDevice dev = MakeDevice(profile);
  Options options = DefaultLsmOptions(dev.env.get());
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/fig01", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    std::abort();
  }
  Target target = MakeDbTarget("rockslite", db.get());
  const size_t kValue = 128 - 16;  // ~128B KV pairs
  OpResult r{};

  // Sequential PUT.
  r.seq_put = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                target.put(Key(i), Value(i, kValue)).IgnoreError();
              }).qps;
  // Random PUT (fresh key space region).
  Random64 seed(1);
  r.rand_put = RunClosedLoop(threads, ops, [&](int t, uint64_t i) {
                 uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 4) + ops;
                 (void)t;
                 target.put(Key(k), Value(i, kValue)).IgnoreError();
               }).qps;
  // Random UPDATE over the sequentially-loaded range.
  r.rand_update = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                    uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % ops;
                    target.put(Key(k), Value(i + 1, kValue)).IgnoreError();
                  }).qps;
  target.wait_idle();
  // Sequential GET.
  r.seq_get = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                std::string value;
                target.get(Key(i % ops), &value).IgnoreError();
              }).qps;
  // Random GET over the full written key space (~5x ops keys, larger than
  // the block cache, so device latency is exposed). Slow devices get fewer
  // ops to keep the benchmark bounded.
  const uint64_t get_ops = profile.rand_latency_us >= 1000 ? std::max<uint64_t>(ops / 20, 1) : ops;
  r.rand_get = RunClosedLoop(threads, get_ops, [&](int, uint64_t i) {
                 uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 5);
                 std::string value;
                 target.get(Key(k), &value).IgnoreError();
               }).qps;
  return r;
}

void Run() {
  const uint64_t ops = Scaled(20000);
  PrintHeader("Figure 1", "RocksLite QPS on HDD vs SATA SSD vs NVMe SSD (128B KV)",
              "reads scale strongly with device speed; writes barely move");

  for (int threads : {1, 8}) {
    std::printf("\n-- %d user thread(s), %llu ops per op-type --\n", threads,
                static_cast<unsigned long long>(ops));
    TablePrinter table({"device", "seq PUT", "rand PUT", "rand UPDATE", "seq GET", "rand GET"});
    for (const DeviceProfile& profile :
         {DeviceProfile::Hdd(), DeviceProfile::SataSsd(), DeviceProfile::NvmeSsd()}) {
      OpResult r = RunOnDevice(profile, threads, ops);
      table.AddRow({profile.name, FmtQps(r.seq_put), FmtQps(r.rand_put), FmtQps(r.rand_update),
                    FmtQps(r.seq_get), FmtQps(r.rand_get)});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
