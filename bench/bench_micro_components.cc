// Component microbenchmarks (google-benchmark): skiplist inserts (serial vs
// CAS), WAL appends, bloom filter probes, CRC32C, block builder, and the
// hash partitioner. These calibrate the building blocks behind the paper's
// latency-breakdown numbers (Figure 6's ~2.1us WAL / ~2.9us MemTable at one
// thread).

#include <benchmark/benchmark.h>

#include "src/io/mem_env.h"
#include "src/memtable/memtable.h"
#include "src/memtable/skiplist.h"
#include "src/sst/block_builder.h"
#include "src/sst/filter_policy.h"
#include "src/util/crc32c.h"
#include "src/util/hash.h"
#include "src/wal/log_writer.h"
#include "src/ycsb/workload.h"

namespace p2kvs {
namespace {

void BM_SkipListInsertSerial(benchmark::State& state) {
  Arena arena;
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable mem(icmp);
  uint64_t i = 0;
  std::string value(100, 'v');
  for (auto _ : state) {
    ++i;
    mem.Add(i, kTypeValue, ycsb::RecordKey(i * 2654435761u % 10000000), value, false);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_SkipListInsertSerial);

void BM_SkipListInsertConcurrentPath(benchmark::State& state) {
  Arena arena;
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable mem(icmp);
  uint64_t i = 0;
  std::string value(100, 'v');
  for (auto _ : state) {
    ++i;
    mem.Add(i, kTypeValue, ycsb::RecordKey(i * 2654435761u % 10000000), value, true);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_SkipListInsertConcurrentPath);

void BM_MemTableGet(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable mem(icmp);
  for (uint64_t i = 0; i < 100000; i++) {
    mem.Add(i + 1, kTypeValue, ycsb::RecordKey(i), "value", false);
  }
  uint64_t i = 0;
  std::string value;
  Status s;
  for (auto _ : state) {
    LookupKey lkey(ycsb::RecordKey(i++ % 100000), kMaxSequenceNumber);
    benchmark::DoNotOptimize(mem.Get(lkey, &value, &s));
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_MemTableGet);

void BM_WalAppend(benchmark::State& state) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> file;
  env->NewWritableFile("/wal", &file).IgnoreError();
  log::Writer writer(file.get());
  std::string record(static_cast<size_t>(state.range(0)), 'r');
  int64_t bytes = 0;
  for (auto _ : state) {
    writer.AddRecord(record).IgnoreError();
    bytes += static_cast<int64_t>(record.size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_WalAppend)->Arg(128)->Arg(1024)->Arg(16384);

void BM_BloomProbe(benchmark::State& state) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::vector<std::string> storage;
  std::vector<Slice> keys;
  for (int i = 0; i < 10000; i++) {
    storage.push_back(ycsb::RecordKey(static_cast<uint64_t>(i)));
  }
  for (const auto& k : storage) {
    keys.push_back(k);
  }
  std::string filter;
  policy->CreateFilter(keys.data(), static_cast<int>(keys.size()), &filter);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->KeyMayMatch(storage[i++ % storage.size()], filter));
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_BloomProbe);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  int64_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
    bytes += static_cast<int64_t>(data.size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_Crc32c)->Arg(128)->Arg(4096)->Arg(65536);

void BM_BlockBuilderAdd(benchmark::State& state) {
  std::string value(100, 'v');
  uint64_t i = 0;
  BlockBuilder builder(BytewiseComparator(), 16);
  for (auto _ : state) {
    if (builder.CurrentSizeEstimate() > 64 * 1024) {
      state.PauseTiming();
      builder.Reset();
      i = 0;
      state.ResumeTiming();
    }
    builder.Add(ycsb::RecordKey(i++), value);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockBuilderAdd);

void BM_PartitionHash(benchmark::State& state) {
  uint64_t i = 0;
  for (auto _ : state) {
    std::string key = ycsb::RecordKey(i++);
    benchmark::DoNotOptimize(Hash(key.data(), key.size(), 0x70324b56u) % 8);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_PartitionHash);

}  // namespace
}  // namespace p2kvs

BENCHMARK_MAIN();
