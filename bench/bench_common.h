// Shared benchmark harness: environment knobs, closed-loop multi-threaded
// drivers, uniform "target" wrappers over every system under test, ASCII
// table output, and resource/IO sampling.
//
// Global knobs (environment variables):
//   P2KVS_BENCH_SCALE    — multiplies every op/record count (default 1.0).
//   P2KVS_DEVICE_SCALE   — slows the simulated device down uniformly
//                          (latency x S, bandwidth / S; default 1.0).
//   P2KVS_BENCH_THREADS_MAX — caps thread sweeps (default 32).

#ifndef P2KVS_BENCH_BENCH_COMMON_H_
#define P2KVS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/p2kvs.h"
#include "src/io/device_model.h"
#include "src/io/io_stats.h"
#include "src/io/mem_env.h"
#include "src/kvell/kvell_store.h"
#include "src/lsm/db.h"
#include "src/util/histogram.h"
#include "src/util/resource_usage.h"
#include "src/ycsb/workload.h"

namespace p2kvs {
namespace bench {

// --- Environment knobs ---

double BenchScale();
double DeviceScale();
int MaxThreads();

// n * P2KVS_BENCH_SCALE, at least 1.
uint64_t Scaled(uint64_t n);

// --- Keys/values ---

std::string Key(uint64_t index);                      // zero-padded "user..." key
std::string Value(uint64_t index, size_t value_size);  // deterministic payload

// --- Uniform target interface over all systems under test ---

struct Target {
  std::string name;
  std::function<Status(const Slice& key, const Slice& value)> put;
  std::function<Status(const Slice& key, std::string* value)> get;
  // May be empty if the system has no ordered scan.
  std::function<Status(const Slice& begin, size_t n,
                       std::vector<std::pair<std::string, std::string>>*)> scan;
  std::function<void()> wait_idle;     // block until background work quiesces
  std::function<size_t()> memory_usage;  // approximate resident structures
};

Target MakeDbTarget(const std::string& name, DB* db);
// The multi-instance baseline of §3.2: user threads hash keys and call the
// owning instance directly (no accessing layer, no workers).
Target MakeMultiInstanceTarget(const std::string& name, const std::vector<DB*>& dbs);
Target MakeP2kvsTarget(const std::string& name, P2KVS* store);
Target MakeKvellTarget(const std::string& name, KvellStore* store);

// --- Closed-loop run driver ---

struct RunResult {
  double seconds = 0;
  uint64_t ops = 0;
  double qps = 0;
  Histogram latency;  // microseconds
};

// Runs `total_ops` operations across `threads` threads; op(thread_id,
// op_index) executes one operation. Latency is sampled 1-in-16.
// `per_thread_done` (optional) runs on each pool thread after its last op —
// use it to harvest thread-local state (e.g. PerfContext).
RunResult RunClosedLoop(int threads, uint64_t total_ops,
                        const std::function<void(int, uint64_t)>& op,
                        const std::function<void(int)>& per_thread_done = nullptr);

// Preloads keys [0, n) with `value_size`-byte values through `target`.
void Preload(const Target& target, uint64_t n, size_t value_size);

// --- Open-loop arrival-rate driver (overload robustness; Figure 13) ---

struct OpenLoopConfig {
  double offered_qps = 100000;  // arrival rate held across all dispatchers
  uint64_t ops = 20000;         // total arrivals to generate
  int dispatchers = 4;          // pacing threads
  size_t value_size = 112;
  uint64_t key_space = 1000000;
};

struct OpenLoopResult {
  uint64_t attempted = 0;   // arrivals dispatched
  uint64_t ok = 0;          // completed OK
  uint64_t shed = 0;        // refused by admission control (Status::Busy)
  uint64_t expired = 0;     // Status::DeadlineExceeded
  uint64_t failed = 0;      // any other error
  double seconds = 0;       // first arrival -> last completion drained
  double goodput_qps = 0;   // ok / seconds
  Histogram ok_latency_us;  // latency of successful requests only
  double max_lag_ms = 0;    // worst slip of any dispatcher off its schedule

  uint64_t refused() const { return shed + expired + failed; }
};

// Open-loop writes: dispatchers hold a fixed arrival schedule and submit via
// PutAsync, so arrivals never wait for completions — unlike the closed-loop
// driver, the offered load does not collapse to the service rate under
// overload. Returns after every in-flight callback has fired. Outcomes are
// classified per request from the completion status (the accounting the
// framework reports via GetStats() must match what clients observed).
OpenLoopResult RunOpenLoopPut(P2KVS* store, const OpenLoopConfig& config);

struct YcsbRunConfig {
  std::string workload;  // "load", "a" ... "f"
  int threads = 8;
  uint64_t ops = 10000;
  size_t value_size = 128;
  ycsb::KeySpace* key_space = nullptr;  // carries record count across phases
};

// Runs a YCSB workload (paper Table 1) against the target with per-thread
// operation streams.
RunResult RunYcsb(const Target& target, const YcsbRunConfig& config);

// --- Output helpers ---

// Prints "### <figure/table id>: <title>" plus a paper-expectation note.
void PrintHeader(const std::string& id, const std::string& title, const std::string& expect);

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);
  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Fmt(double v, int precision = 1);
std::string FmtBytes(double bytes);
std::string FmtQps(double qps);

// --- Sampling (Figures 4, 21; Table 2) ---

struct ResourceSample {
  double at_seconds;
  double write_mbps;      // device write bandwidth in the interval
  double read_mbps;
  double cpu_percent;     // of one core (100% == one busy core)
  double rss_mb;
};

// Samples IO/CPU/RSS every `interval_ms` while `body` runs.
std::vector<ResourceSample> SampleWhile(const std::function<void()>& body, int interval_ms);

// --- Device-model environments ---

// A MemEnv-backed environment throttled to the given profile (scaled by
// P2KVS_DEVICE_SCALE). Returns {owner-of-base, owner-of-throttled}.
struct SimulatedDevice {
  std::unique_ptr<Env> base;
  std::unique_ptr<Env> env;
  DeviceProfile profile;
};
SimulatedDevice MakeDevice(const DeviceProfile& profile);

// Default benchmark LSM options (scaled-down RocksDB-ish sizing).
Options DefaultLsmOptions(Env* env);

}  // namespace bench
}  // namespace p2kvs

#endif  // P2KVS_BENCH_BENCH_COMMON_H_
