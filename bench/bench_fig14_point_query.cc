// Figure 14 — point-query (GET) throughput vs user threads, with the OBM
// disabled (a) and enabled (b), against plain RocksLite.
//
// Paper result: without OBM p2KVS matches RocksDB; with OBM it scales almost
// linearly (multiget fast path), up to 7.5x over OBM-off and 5.4x over
// RocksDB.

#include "bench/bench_common.h"

#include <cstdio>

#include "src/util/hash.h"

namespace p2kvs {
namespace bench {
namespace {

double RunGets(const Target& target, int threads, uint64_t ops, uint64_t key_space) {
  return RunClosedLoop(threads, ops, [&](int, uint64_t i) {
           uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % key_space;
           std::string value;
           target.get(Key(k), &value).IgnoreError();
         }).qps;
}

void Run() {
  const uint64_t preload = Scaled(50000);
  const uint64_t ops = Scaled(40000);
  PrintHeader("Figure 14", "GET throughput vs threads: RocksLite vs p2KVS-8 (OBM off/on)",
              "OBM-on scales nearly linearly; OBM-off matches RocksDB");

  TablePrinter table({"threads", "RocksLite", "p2KVS-8 (no OBM)", "p2KVS-8 (OBM)"});
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    if (threads > MaxThreads()) {
      break;
    }
    std::vector<std::string> row = {std::to_string(threads)};

    {
      SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
      std::unique_ptr<DB> db;
      if (!DB::Open(DefaultLsmOptions(dev.env.get()), "/f14", &db).ok()) std::abort();
      Target target = MakeDbTarget("rocks", db.get());
      Preload(target, preload, 112);
      row.push_back(FmtQps(RunGets(target, threads, ops, preload)));
    }
    for (bool obm : {false, true}) {
      SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
      P2kvsOptions options;
      options.env = dev.env.get();
      options.num_workers = 8;
      options.enable_obm = obm;
      options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
      std::unique_ptr<P2KVS> store;
      if (!P2KVS::Open(options, "/f14", &store).ok()) std::abort();
      Target target = MakeP2kvsTarget("p2kvs", store.get());
      Preload(target, preload, 112);
      row.push_back(FmtQps(RunGets(target, threads, ops, preload)));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
