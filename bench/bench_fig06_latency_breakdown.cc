// Figure 6 — write latency breakdown of the single-instance engine under
// 1..32 user threads: WAL, MemTable, WAL lock, MemTable lock, Others.
//
// Paper result: at 1 thread WAL+MemTable are ~90% of latency; by 32 threads
// the two lock components grow to ~81% (WAL lock alone > 50% at 8 threads),
// which is the contention p2KVS removes.

#include "bench/bench_common.h"

#include <cstdio>
#include <mutex>

#include "src/util/clock.h"
#include "src/util/hash.h"
#include "src/util/perf_context.h"

namespace p2kvs {
namespace bench {
namespace {

void Run() {
  const uint64_t ops = Scaled(30000);
  PrintHeader("Figure 6", "write latency breakdown vs user threads (single instance)",
              "lock components grow from ~0% to dominate as threads increase");

  TablePrinter table({"threads", "avg us/op", "WAL %", "MemTable %", "WAL lock %",
                      "MemTable lock %", "Others %", "WAL us", "MemTable us"});

  for (int threads : {1, 2, 4, 8, 16, 32}) {
    if (threads > MaxThreads()) {
      break;
    }
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    Options options = DefaultLsmOptions(dev.env.get());
    // Isolate the foreground write path: a large buffer avoids flush-induced
    // stalls that would otherwise dominate on small hosts (the paper's
    // 44-core testbed absorbs compactions on spare cores).
    options.write_buffer_size = 1ull << 30;
    options.debug_disable_background = true;
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/fig06", &db).ok()) {
      std::abort();
    }

    PerfContext total;
    std::mutex merge_mu;
    std::atomic<bool> reset_done{false};
    RunClosedLoop(
        threads, ops,
        [&](int, uint64_t i) {
          uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 4);
          db->Put(WriteOptions(), Key(k), Value(i, 112));
        },
        [&](int) {
          // Harvest each pool thread's thread-local breakdown.
          std::lock_guard<std::mutex> lock(merge_mu);
          total.MergeFrom(GetPerfContext());
          GetPerfContext().Reset();
          (void)reset_done;
        });

    double n = static_cast<double>(total.write_count > 0 ? total.write_count : 1);
    double avg_total = static_cast<double>(total.total_write_nanos) / n / 1000.0;
    double sum = static_cast<double>(total.total_write_nanos);
    if (sum <= 0) {
      sum = 1;
    }
    auto pct = [&](uint64_t v) { return 100.0 * static_cast<double>(v) / sum; };
    table.AddRow({std::to_string(threads), Fmt(avg_total, 2), Fmt(pct(total.wal_nanos)),
                  Fmt(pct(total.memtable_nanos)), Fmt(pct(total.wal_lock_nanos)),
                  Fmt(pct(total.memtable_lock_nanos)), Fmt(pct(total.others_nanos())),
                  Fmt(static_cast<double>(total.wal_nanos) / n / 1000.0, 2),
                  Fmt(static_cast<double>(total.memtable_nanos) / n / 1000.0, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
