// Figure 6 — write latency breakdown: WAL, MemTable, WAL lock, MemTable
// lock, Others.
//
// Two sections:
//   1. The paper's experiment — user threads writing ONE shared instance
//      directly. Lock components grow with threads (the contention p2KVS
//      removes). Breakdown harvested per pool thread from its PerfContext.
//   2. The same workload through p2KVS (single instance behind one worker),
//      with the whole breakdown read from P2KVS::GetStats(): the framework's
//      own per-stage accounting (queue-wait / batch-build / execute /
//      complete) plus the engine-side PerfContext split the stats spine
//      snapshots from the worker thread. Lock components stay ~0 — one
//      writer thread ever touches the instance.
//
// Paper result (section 1): at 1 thread WAL+MemTable are ~90% of latency; by
// 32 threads the two lock components grow to ~81% (WAL lock alone > 50% at 8
// threads).
//
// --smoke: CI mode — run a small p2KVS workload, print the stats JSON, and
// fail (exit 1) if P2kvsStats::SelfCheck() finds a counter inconsistency.

#include "bench/bench_common.h"

#include <cstdio>
#include <cstring>
#include <mutex>

#include "src/util/clock.h"
#include "src/util/hash.h"
#include "src/util/perf_context.h"

namespace p2kvs {
namespace bench {
namespace {

void RunDirectSharedInstance(uint64_t ops) {
  TablePrinter table({"threads", "avg us/op", "WAL %", "MemTable %", "WAL lock %",
                      "MemTable lock %", "Others %", "WAL us", "MemTable us"});

  for (int threads : {1, 2, 4, 8, 16, 32}) {
    if (threads > MaxThreads()) {
      break;
    }
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    Options options = DefaultLsmOptions(dev.env.get());
    // Isolate the foreground write path: a large buffer avoids flush-induced
    // stalls that would otherwise dominate on small hosts (the paper's
    // 44-core testbed absorbs compactions on spare cores).
    options.write_buffer_size = 1ull << 30;
    options.debug_disable_background = true;
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/fig06", &db).ok()) {
      std::abort();
    }

    PerfContext total;
    std::mutex merge_mu;
    RunClosedLoop(
        threads, ops,
        [&](int, uint64_t i) {
          uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 4);
          db->Put(WriteOptions(), Key(k), Value(i, 112)).IgnoreError();
        },
        [&](int) {
          // Harvest each pool thread's thread-local breakdown.
          std::lock_guard<std::mutex> lock(merge_mu);
          total.MergeFrom(GetPerfContext());
          GetPerfContext().Reset();
        });

    double n = static_cast<double>(total.write_count > 0 ? total.write_count : 1);
    double avg_total = static_cast<double>(total.total_write_nanos) / n / 1000.0;
    double sum = static_cast<double>(total.total_write_nanos);
    if (sum <= 0) {
      sum = 1;
    }
    auto pct = [&](uint64_t v) { return 100.0 * static_cast<double>(v) / sum; };
    table.AddRow({std::to_string(threads), Fmt(avg_total, 2), Fmt(pct(total.wal_nanos)),
                  Fmt(pct(total.memtable_nanos)), Fmt(pct(total.wal_lock_nanos)),
                  Fmt(pct(total.memtable_lock_nanos)), Fmt(pct(total.others_nanos())),
                  Fmt(static_cast<double>(total.wal_nanos) / n / 1000.0, 2),
                  Fmt(static_cast<double>(total.memtable_nanos) / n / 1000.0, 2)});
  }
  table.Print();
}

std::unique_ptr<P2KVS> OpenP2kvs(SimulatedDevice* dev, int num_workers, bool stats,
                                 bool trace = false) {
  Options lsm = DefaultLsmOptions(dev->env.get());
  lsm.write_buffer_size = 256ull << 20;
  lsm.debug_disable_background = true;
  P2kvsOptions options;
  options.env = dev->env.get();
  options.num_workers = num_workers;
  options.pin_workers = false;
  options.enable_stats = stats;
  if (trace) {
    options.trace.enabled = true;
    options.trace.sample_every = 1;  // trace every request in the smoke run
  }
  options.engine_factory = MakeRocksLiteFactory(lsm);
  std::unique_ptr<P2KVS> store;
  if (!P2KVS::Open(options, "/fig06-p2", &store).ok()) {
    std::abort();
  }
  return store;
}

void RunViaP2kvsStats(uint64_t ops) {
  TablePrinter table({"threads", "engine us/op", "WAL %", "MemTable %", "locks %",
                      "queue-wait us/op", "execute us/op", "e2e p95 us", "batch avg"});

  for (int threads : {1, 2, 4, 8, 16, 32}) {
    if (threads > MaxThreads()) {
      break;
    }
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    std::unique_ptr<P2KVS> store = OpenP2kvs(&dev, /*num_workers=*/1, /*stats=*/true);
    RunClosedLoop(threads, ops, [&](int, uint64_t i) {
      uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 4);
      store->Put(Key(k), Value(i, 112)).IgnoreError();
    });

    // The whole breakdown comes from the framework's stats spine — no bench
    // timers, no thread-local harvest; one race-free snapshot per sweep.
    P2kvsStats stats = store->GetStats();
    const WorkerStatsSnapshot& t = stats.totals;
    const double n = static_cast<double>(
        t.requests_executed() > 0 ? t.requests_executed() : 1);
    double engine_sum = static_cast<double>(t.engine.total_write_nanos);
    if (engine_sum <= 0) {
      engine_sum = 1;
    }
    auto pct = [&](uint64_t v) { return 100.0 * static_cast<double>(v) / engine_sum; };
    const double writes = static_cast<double>(
        t.engine.write_count > 0 ? t.engine.write_count : 1);
    table.AddRow(
        {std::to_string(threads),
         Fmt(static_cast<double>(t.engine.total_write_nanos) / writes / 1000.0, 2),
         Fmt(pct(t.engine.wal_nanos)), Fmt(pct(t.engine.memtable_nanos)),
         Fmt(pct(t.engine.wal_lock_nanos + t.engine.memtable_lock_nanos)),
         Fmt(static_cast<double>(t.queue_wait_nanos) / n / 1000.0, 2),
         Fmt(static_cast<double>(t.execute_nanos) / n / 1000.0, 2),
         Fmt(t.end_to_end_us.Percentile(95), 1), Fmt(stats.AvgWriteBatchSize(), 2)});
  }
  table.Print();
  std::printf("note: behind p2KVS the lock components collapse (single writer per\n"
              "instance); queued submissions surface as queue-wait instead.\n");
}

// CI smoke: emit the stats JSON, verify the counter invariants (stats +
// trace), and export the fully-sampled run as a Perfetto trace JSON that the
// build workflow uploads as an artifact.
int RunSmoke() {
  const uint64_t ops = 5000;
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  std::unique_ptr<P2KVS> store =
      OpenP2kvs(&dev, /*num_workers=*/2, /*stats=*/true, /*trace=*/true);
  RunClosedLoop(4, ops, [&](int, uint64_t i) {
    uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 4);
    if (i % 4 == 3) {
      std::string value;
      store->Get(Key(k), &value).IgnoreError();
    } else {
      store->Put(Key(k), Value(i, 112)).IgnoreError();
    }
  });
  store->WaitIdle().IgnoreError();
  P2kvsStats stats = store->GetStats();
  std::printf("%s\n", stats.ToJson().c_str());
  Status check = stats.SelfCheck();
  if (!check.ok()) {
    std::fprintf(stderr, "stats self-check FAILED: %s\n", check.ToString().c_str());
    return 1;
  }
  if (stats.totals.requests_executed() == 0) {
    std::fprintf(stderr, "stats self-check FAILED: no requests recorded\n");
    return 1;
  }
  if (stats.trace_sampled == 0 || stats.trace_events == 0) {
    std::fprintf(stderr, "trace smoke FAILED: tracing on but no events recorded\n");
    return 1;
  }
  const char* trace_path = "fig06_smoke_trace.json";
  Status exported = store->ExportTrace(trace_path);
  if (!exported.ok()) {
    std::fprintf(stderr, "trace export FAILED: %s\n", exported.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "stats self-check OK: %llu requests, %llu dispatches; trace: "
               "%llu events (%llu dropped) -> %s\n",
               static_cast<unsigned long long>(stats.totals.requests_executed()),
               static_cast<unsigned long long>(stats.totals.batch_size.Count()),
               static_cast<unsigned long long>(stats.trace_events),
               static_cast<unsigned long long>(stats.trace_dropped), trace_path);
  return 0;
}

void Run() {
  const uint64_t ops = Scaled(30000);
  PrintHeader("Figure 6", "write latency breakdown vs user threads (single instance)",
              "lock components grow from ~0% to dominate as threads increase");
  std::printf("-- direct shared instance (paper's experiment) --\n");
  RunDirectSharedInstance(ops);
  std::printf("\n-- via p2KVS, breakdown from P2KVS::GetStats() --\n");
  RunViaP2kvsStats(ops);
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return p2kvs::bench::RunSmoke();
  }
  p2kvs::bench::Run();
  return 0;
}
