// Microbenchmark — queue-depth sweep of the batched MultiGet read path.
//
// The QD-aware device model serves up to `channels` concurrent reads at the
// base latency (NVMe: 16 channels, 12us random reads), so an engine that
// keeps only one read in flight leaves the device idle. This sweep issues
// the same MultiGet workload with the synchronous one-read-at-a-time path
// and with the async submission/completion context at queue depths 1/4/16/64,
// on a cold-ish block cache so the reads actually reach the device.
//
// Expectation: batched matches sequential at QD=1 and beats it at QD>1,
// saturating around the device's channel count. Run with --smoke for CI.

#include "bench/bench_common.h"

#include <cstdio>
#include <cstring>

#include "src/util/clock.h"
#include "src/util/hash.h"

namespace p2kvs {
namespace bench {

bool g_smoke = false;

namespace {

struct SweepResult {
  double keys_per_sec = 0;
  double us_per_batch = 0;
};

SweepResult RunMultiGets(bool async_io, int queue_depth, uint64_t preload,
                         uint64_t batches, size_t batch_size) {
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  Options options = DefaultLsmOptions(dev.env.get());
  options.async_io = async_io;
  options.io_queue_depth = queue_depth;
  // Small block cache: a wide random key space mostly misses, so MultiGet
  // block reads hit the simulated device instead of memory.
  options.block_cache_bytes = 256 * 1024;

  std::unique_ptr<DB> db;
  if (!DB::Open(options, "/io_depth", &db).ok()) std::abort();
  Target target = MakeDbTarget("lsm", db.get());
  Preload(target, preload, 112);
  if (!db->FlushMemTable().ok()) std::abort();  // serve from SSTs, not memtable
  target.wait_idle();

  std::vector<std::string> key_storage(batch_size);
  std::vector<Slice> keys(batch_size);
  std::vector<std::string> values;
  uint64_t ok = 0;

  const uint64_t start = NowMicros();
  for (uint64_t b = 0; b < batches; b++) {
    for (size_t i = 0; i < batch_size; i++) {
      uint64_t seed = b * batch_size + i;
      key_storage[i] =
          Key(Hash64(reinterpret_cast<const char*>(&seed), 8) % preload);
      keys[i] = key_storage[i];
    }
    std::vector<Status> statuses = db->MultiGet(ReadOptions(), keys, &values);
    for (const Status& s : statuses) {
      if (!s.ok()) std::abort();
      ok++;
    }
  }
  const double seconds = static_cast<double>(NowMicros() - start) / 1e6;

  SweepResult r;
  r.keys_per_sec = static_cast<double>(ok) / seconds;
  r.us_per_batch = seconds * 1e6 / static_cast<double>(batches);
  return r;
}

void Run() {
  const uint64_t preload = Scaled(g_smoke ? 6000 : 30000);
  const uint64_t batches = Scaled(g_smoke ? 20 : 150);
  const size_t batch_size = 64;

  PrintHeader("micro/io-depth",
              "MultiGet queue-depth sweep on the QD-aware NVMe model",
              "batched reads beat sequential at QD>1, saturating near the "
              "device's 16 channels");

  const SweepResult seq =
      RunMultiGets(/*async_io=*/false, /*queue_depth=*/1, preload, batches,
                   batch_size);

  TablePrinter table({"mode", "QD", "keys/s", "us/batch", "vs sequential"});
  table.AddRow({"sequential", "-", FmtQps(seq.keys_per_sec),
                Fmt(seq.us_per_batch, 0), "1.00x"});
  for (int qd : {1, 4, 16, 64}) {
    const SweepResult r =
        RunMultiGets(/*async_io=*/true, qd, preload, batches, batch_size);
    table.AddRow({"batched", std::to_string(qd), FmtQps(r.keys_per_sec),
                  Fmt(r.us_per_batch, 0),
                  Fmt(r.keys_per_sec / seq.keys_per_sec, 2) + "x"});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      p2kvs::bench::g_smoke = true;
    }
  }
  p2kvs::bench::Run();
  return 0;
}
