// Figure 15 — RANGE and SCAN throughput vs scan size, single user thread:
// RocksLite vs p2KVS-8 (both SCAN strategies, plus the parallel RANGE).
//
// Paper result: p2KVS wins RANGE by up to 2.9x and short SCANs by ~1.5x;
// at scan-size >= 1000 the read amplification of the parallel SCAN eats the
// advantage and the two systems converge.

#include "bench/bench_common.h"

#include <cstdio>

#include "src/util/random.h"

namespace p2kvs {
namespace bench {
namespace {

void Run() {
  const uint64_t preload = Scaled(60000);
  PrintHeader("Figure 15", "RANGE / SCAN throughput vs scan size (1 user thread)",
              "p2KVS leads small scans; converges at large scan sizes");

  // RocksLite baseline.
  SimulatedDevice rocks_dev = MakeDevice(DeviceProfile::NvmeSsd());
  std::unique_ptr<DB> db;
  if (!DB::Open(DefaultLsmOptions(rocks_dev.env.get()), "/f15", &db).ok()) std::abort();
  Target rocks = MakeDbTarget("rocks", db.get());
  Preload(rocks, preload, 112);

  // p2KVS with both scan strategies.
  SimulatedDevice p2_dev = MakeDevice(DeviceProfile::NvmeSsd());
  P2kvsOptions options;
  options.env = p2_dev.env.get();
  options.num_workers = 8;
  options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(p2_dev.env.get()));
  std::unique_ptr<P2KVS> store;
  if (!P2KVS::Open(options, "/f15", &store).ok()) std::abort();
  Target p2 = MakeP2kvsTarget("p2kvs", store.get());
  Preload(p2, preload, 112);

  TablePrinter table({"scan size", "op", "RocksLite", "p2KVS (parallel)", "p2KVS (merge-iter)"});
  Random64 rnd(42);

  for (size_t scan_size : {10u, 100u, 1000u, 10000u}) {
    uint64_t ops = std::max<uint64_t>(Scaled(20000) / scan_size, 20);

    auto run_scan = [&](const Target& t) {
      return RunClosedLoop(1, ops, [&](int, uint64_t i) {
               uint64_t start = rnd.Uniform(preload > scan_size ? preload - scan_size : 1);
               std::vector<std::pair<std::string, std::string>> out;
               t.scan(Key(start), scan_size, &out).IgnoreError();
               (void)i;
             }).qps;
    };
    auto run_range = [&](const std::function<Status(const Slice&, const Slice&,
                                                    std::vector<std::pair<std::string,
                                                                          std::string>>*)>& fn) {
      return RunClosedLoop(1, ops, [&](int, uint64_t i) {
               uint64_t start = rnd.Uniform(preload > scan_size ? preload - scan_size : 1);
               std::vector<std::pair<std::string, std::string>> out;
               fn(Key(start), Key(start + scan_size), &out).IgnoreError();
               (void)i;
             }).qps;
    };

    // SCAN rows.
    double rocks_scan = run_scan(rocks);
    double p2_parallel_scan = run_scan(p2);

    std::vector<std::pair<std::string, std::string>> tmp;
    // Global-merge SCAN via the global iterator.
    double p2_merge_scan = RunClosedLoop(1, ops, [&](int, uint64_t i) {
                             uint64_t start =
                                 rnd.Uniform(preload > scan_size ? preload - scan_size : 1);
                             std::unique_ptr<Iterator> iter(store->NewGlobalIterator());
                             iter->Seek(Key(start));
                             size_t n = 0;
                             while (iter->Valid() && n < scan_size) {
                               n++;
                               iter->Next();
                             }
                             (void)i;
                           }).qps;
    table.AddRow({std::to_string(scan_size), "SCAN", FmtQps(rocks_scan),
                  FmtQps(p2_parallel_scan), FmtQps(p2_merge_scan)});

    // RANGE rows (RocksLite range == iterator until end key).
    double rocks_range = RunClosedLoop(1, ops, [&](int, uint64_t i) {
                           uint64_t start =
                               rnd.Uniform(preload > scan_size ? preload - scan_size : 1);
                           std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
                           std::string end = Key(start + scan_size);
                           for (iter->Seek(Key(start));
                                iter->Valid() && iter->key().compare(end) < 0; iter->Next()) {
                           }
                           (void)i;
                         }).qps;
    double p2_range = run_range([&](const Slice& b, const Slice& e, auto* out) {
      return store->Range(b, e, out);
    });
    table.AddRow({std::to_string(scan_size), "RANGE", FmtQps(rocks_range), FmtQps(p2_range),
                  "-"});
    (void)tmp;
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
