// Figure 22 — portability: p2KVS over LevelLite (LevelDB profile: batch
// writes but no concurrent MemTable / pipelined write / multiget). Random
// write and random read throughput vs threads, p2KVS instances == threads.
//
// Paper result: p2KVS lifts LevelDB's random writes up to 3.4x and reads up
// to 5.3x over single-threaded LevelDB, despite LevelDB's lack of
// intra-instance parallel features.

#include "bench/bench_common.h"

#include <cstdio>

#include "src/util/hash.h"

namespace p2kvs {
namespace bench {
namespace {

Options LevelLiteOptions(Env* env) {
  Options options = DefaultLsmOptions(env);
  options.compat_mode = CompatMode::kLevelDB;
  return options;
}

void Run() {
  const uint64_t ops = Scaled(30000);
  PrintHeader("Figure 22", "p2KVS on LevelLite: random write / read scaling",
              "write up to ~3.4x and read up to ~5.3x over 1-thread LevelDB");

  TablePrinter table({"threads(=instances)", "LevelLite write", "p2KVS write",
                      "LevelLite read", "p2KVS read"});
  for (int threads : {1, 2, 4, 8}) {
    if (threads > MaxThreads()) {
      break;
    }
    std::vector<std::string> row = {std::to_string(threads)};
    double lvl_write, p2_write, lvl_read, p2_read;
    {
      SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
      std::unique_ptr<DB> db;
      if (!DB::Open(LevelLiteOptions(dev.env.get()), "/f22", &db).ok()) std::abort();
      Target t = MakeDbTarget("leveldb", db.get());
      lvl_write = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                    uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 2);
                    t.put(Key(k), Value(i, 112)).IgnoreError();
                  }).qps;
      t.wait_idle();
      lvl_read = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                   uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 2);
                   std::string v;
                   t.get(Key(k), &v).IgnoreError();
                 }).qps;
    }
    {
      SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
      P2kvsOptions options;
      options.env = dev.env.get();
      options.num_workers = threads;  // instances == user threads, as in the paper
      options.engine_factory = MakeLevelLiteFactory(LevelLiteOptions(dev.env.get()));
      std::unique_ptr<P2KVS> store;
      if (!P2KVS::Open(options, "/f22", &store).ok()) std::abort();
      Target t = MakeP2kvsTarget("p2kvs-leveldb", store.get());
      p2_write = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                   uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 2);
                   t.put(Key(k), Value(i, 112)).IgnoreError();
                 }).qps;
      t.wait_idle();
      p2_read = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                  uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 2);
                  std::string v;
                  t.get(Key(k), &v).IgnoreError();
                }).qps;
    }
    row.push_back(FmtQps(lvl_write));
    row.push_back(FmtQps(p2_write));
    row.push_back(FmtQps(lvl_read));
    row.push_back(FmtQps(p2_read));
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
