// Network front-end benchmark: the full 2-D pipeline behind a loopback TCP
// server, driven open-loop (arrival-rate schedules that never wait for
// completions) across many pipelined connections.
//
// Modes:
//   (default)        sweep offered load over defended vs no-defense stores;
//                    the defended store turns admission sheds and deadline
//                    expiries into protocol-level BUSY / DEADLINE_EXCEEDED
//                    replies, holding the served tail bounded past saturation
//                    while the no-defense tail grows with every queued arrival.
//   --ycsb <wl>      YCSB workload (load, a..f) over TCP, closed loop.
//   --smoke          CI leg: loopback server + YCSB-over-TCP + a small
//                    open-loop overload comparison. Asserts nonzero goodput,
//                    EXACT server-door vs client-observed accounting
//                    (submitted == ok+shed+expired+failed, responses ==
//                    client-received), clean P2kvsStats::SelfCheck(), and a
//                    defended p99 below the no-defense control.
//
// Each connection runs two threads: a sender pacing its slice of the global
// arrival schedule (requests are pipelined — never blocked on responses) and
// a reader classifying responses by wire status. Send timestamps live in a
// per-connection array of atomics indexed by request id, so the reader's
// latency math is race-free under TSan without any lock on the hot path.

#include "bench/bench_common.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "src/server/client.h"
#include "src/server/server.h"
#include "src/util/clock.h"
#include "src/util/random.h"

namespace p2kvs {
namespace bench {
namespace {

using server::Client;
using server::Response;
using server::Server;
using server::ServerOptions;
using server::ServerStatsSnapshot;
using server::WireStatus;

P2kvsOptions MakeStoreOptions(SimulatedDevice& dev, int workers, bool defended) {
  P2kvsOptions options;
  options.env = dev.env.get();
  options.num_workers = workers;
  options.pin_workers = false;  // benchmark hosts are shared
  options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
  if (defended) {
    options.queue_capacity = 1024;
    options.admission.enabled = true;
    options.admission.target_queue_wait_us = 2000;
    options.default_deadline_ms = 20;
  }
  return options;
}

struct TcpOpenLoopResult {
  uint64_t attempted = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;     // protocol BUSY (admission shed or pipeline cap)
  uint64_t expired = 0;  // protocol DEADLINE_EXCEEDED
  uint64_t failed = 0;   // any other non-OK response or a lost connection
  uint64_t responses = 0;
  double seconds = 0;
  double goodput_qps = 0;
  Histogram ok_latency_us;

  uint64_t classified() const { return ok + shed + expired + failed; }
};

// Open-loop PUT driver over `connections` pipelined TCP connections sharing
// one global arrival rate.
TcpOpenLoopResult RunOpenLoopTcp(uint16_t port, int connections, double offered_qps,
                                 uint64_t total_ops, size_t value_size,
                                 uint64_t key_space) {
  struct ConnResult {
    uint64_t ok = 0, shed = 0, expired = 0, failed = 0, responses = 0;
    uint64_t first_send_ns = 0, last_done_ns = 0;
    Histogram lat_us;
  };
  std::vector<ConnResult> per_conn(static_cast<size_t>(connections));
  std::vector<std::thread> threads;
  const double per_conn_interval_ns = 1e9 * connections / offered_qps;

  for (int c = 0; c < connections; c++) {
    const uint64_t ops =
        total_ops / connections + (static_cast<uint64_t>(c) < total_ops % connections ? 1 : 0);
    threads.emplace_back([=, &per_conn] {
      ConnResult& res = per_conn[static_cast<size_t>(c)];
      Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        res.failed = ops;
        return;
      }
      client.set_flush_threshold(1);  // paced arrivals: one frame per flush
      // request_id i+1 -> send_ns[i]; atomics because the reader thread on
      // this connection loads them without any lock.
      std::unique_ptr<std::atomic<uint64_t>[]> send_ns(new std::atomic<uint64_t>[ops]());

      std::thread reader([&] {
        for (uint64_t i = 0; i < ops; i++) {
          Response resp;
          if (!client.ReadResponse(&resp).ok()) {
            res.failed += ops - i;  // connection lost: the rest never arrives
            return;
          }
          const uint64_t now = NowNanos();
          res.responses++;
          res.last_done_ns = now;
          switch (static_cast<WireStatus>(resp.status_code)) {
            case WireStatus::kOk: {
              res.ok++;
              const uint64_t sent =
                  send_ns[resp.request_id - 1].load(std::memory_order_acquire);
              res.lat_us.Add(static_cast<double>(now - sent) / 1000.0);
              break;
            }
            case WireStatus::kBusy:
              res.shed++;
              break;
            case WireStatus::kDeadlineExceeded:
              res.expired++;
              break;
            default:
              res.failed++;
              break;
          }
        }
      });

      Random64 rnd(0x5bd1e995ull * static_cast<uint64_t>(c + 1));
      const uint64_t start = NowNanos();
      res.first_send_ns = start;
      for (uint64_t i = 0; i < ops; i++) {
        const uint64_t due =
            start + static_cast<uint64_t>(static_cast<double>(i) * per_conn_interval_ns);
        uint64_t now = NowNanos();
        while (now < due) {  // open loop: hold the schedule, never the reply
          std::this_thread::sleep_for(std::chrono::nanoseconds(due - now));
          now = NowNanos();
        }
        const uint64_t idx = rnd.Next() % key_space;
        send_ns[i].store(NowNanos(), std::memory_order_release);
        client.SendPut(Key(idx), Value(idx, value_size));
      }
      client.Flush().IgnoreError();
      reader.join();
    });
  }
  for (std::thread& t : threads) t.join();

  TcpOpenLoopResult out;
  out.attempted = total_ops;
  uint64_t first = UINT64_MAX, last = 0;
  for (const ConnResult& r : per_conn) {
    out.ok += r.ok;
    out.shed += r.shed;
    out.expired += r.expired;
    out.failed += r.failed;
    out.responses += r.responses;
    out.ok_latency_us.Merge(r.lat_us);
    if (r.first_send_ns != 0 && r.first_send_ns < first) first = r.first_send_ns;
    if (r.last_done_ns > last) last = r.last_done_ns;
  }
  if (last > first) {
    out.seconds = static_cast<double>(last - first) / 1e9;
    out.goodput_qps = static_cast<double>(out.ok) / out.seconds;
  }
  return out;
}

// YCSB over TCP, closed loop, one Client per thread. Outcome classification
// is kept per status so accounting can be checked against the server's door
// counters exactly.
struct YcsbTcpResult {
  RunResult run;
  uint64_t ok = 0, shed = 0, expired = 0, failed = 0;
  uint64_t requests_sent = 0;  // protocol requests (RMW sends two)
};

YcsbTcpResult RunYcsbOverTcp(uint16_t port, const std::string& workload, int threads,
                             uint64_t ops, size_t value_size, ycsb::KeySpace* key_space) {
  const ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::ByName(workload);
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::unique_ptr<ycsb::OperationStream>> streams;
  for (int t = 0; t < threads; t++) {
    clients.push_back(std::make_unique<Client>());
    if (!clients.back()->Connect("127.0.0.1", port).ok()) {
      std::fprintf(stderr, "ycsb-over-tcp: connect failed\n");
      std::abort();
    }
    streams.push_back(std::make_unique<ycsb::OperationStream>(
        spec, key_space, 0x9e3779b9ull * static_cast<uint64_t>(t + 1)));
  }
  struct PerThread {
    uint64_t ok = 0, shed = 0, expired = 0, failed = 0, sent = 0;
  };
  std::vector<PerThread> per_thread(static_cast<size_t>(threads));

  YcsbTcpResult out;
  out.run = RunClosedLoop(threads, ops, [&](int thread, uint64_t i) {
    Client& client = *clients[static_cast<size_t>(thread)];
    PerThread& acc = per_thread[static_cast<size_t>(thread)];
    ycsb::Operation op = streams[static_cast<size_t>(thread)]->Next();
    auto classify = [&acc](const Status& s, bool not_found_ok) {
      if (s.ok() || (not_found_ok && s.IsNotFound())) {
        acc.ok++;
      } else if (s.IsBusy()) {
        acc.shed++;
      } else if (s.IsDeadlineExceeded()) {
        acc.expired++;
      } else {
        acc.failed++;
      }
    };
    switch (op.type) {
      case ycsb::OpType::kInsert:
      case ycsb::OpType::kUpdate:
        acc.sent++;
        classify(client.Put(op.key, Value(i, value_size)), false);
        break;
      case ycsb::OpType::kRead: {
        std::string value;
        acc.sent++;
        classify(client.Get(op.key, &value), true);
        break;
      }
      case ycsb::OpType::kScan: {
        std::vector<std::pair<std::string, std::string>> pairs;
        acc.sent++;
        classify(client.Scan(op.key, static_cast<uint32_t>(op.scan_length), &pairs), false);
        break;
      }
      case ycsb::OpType::kReadModifyWrite: {
        std::string value;
        acc.sent++;
        const Status r = client.Get(op.key, &value);
        if (r.ok() || r.IsNotFound()) {
          acc.sent++;
          classify(client.Put(op.key, Value(i, value_size)), false);
        } else {
          classify(r, false);
        }
        break;
      }
    }
  });
  for (const PerThread& t : per_thread) {
    out.ok += t.ok;
    out.shed += t.shed;
    out.expired += t.expired;
    out.failed += t.failed;
    out.requests_sent += t.sent;
  }
  return out;
}

void RunSweep() {
  const uint64_t ops = Scaled(20000);
  const int kConnections = 8;
  PrintHeader("server open-loop",
              "goodput & p99 over the TCP front-end vs offered load (open loop)",
              "admission-defended BUSY/DEADLINE replies keep the served tail "
              "bounded past saturation; no-defense tail grows with the backlog");

  TablePrinter table({"system", "offered KQPS", "goodput KQPS", "ok %", "shed %",
                      "expired %", "p99 us", "srv submitted", "srv busy-cap"});
  struct SystemConfig {
    const char* name;
    bool defended;
  };
  constexpr SystemConfig kSystems[] = {
      {"p2KVS-8/tcp no-defense", false},
      {"p2KVS-8/tcp overload-ctl", true},
  };
  for (const SystemConfig& system : kSystems) {
    for (double offered : {20e3, 50e3, 100e3, 200e3}) {
      SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
      std::unique_ptr<P2KVS> store;
      if (!P2KVS::Open(MakeStoreOptions(dev, 8, system.defended), "/srv", &store).ok()) {
        std::abort();
      }
      Server srv(store.get(), ServerOptions());
      if (!srv.Start().ok()) {
        std::abort();
      }
      TcpOpenLoopResult r =
          RunOpenLoopTcp(srv.port(), kConnections, offered, ops, 112, 1000000);
      srv.Stop();
      const ServerStatsSnapshot ss = srv.Stats();
      const double n = static_cast<double>(r.attempted);
      table.AddRow({system.name, Fmt(offered / 1000.0, 0), Fmt(r.goodput_qps / 1000.0, 0),
                    Fmt(100.0 * static_cast<double>(r.ok) / n),
                    Fmt(100.0 * static_cast<double>(r.shed) / n),
                    Fmt(100.0 * static_cast<double>(r.expired) / n),
                    Fmt(r.ok_latency_us.Percentile(99)),
                    std::to_string(ss.submitted_to_store),
                    std::to_string(ss.pipeline_rejections)});
    }
  }
  table.Print();
}

void RunYcsbMode(const std::string& workload) {
  const uint64_t records = Scaled(20000);
  const uint64_t ops = Scaled(40000);
  const int threads = 8;
  PrintHeader("server ycsb", "YCSB-" + workload + " over the TCP front-end", "");
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  std::unique_ptr<P2KVS> store;
  if (!P2KVS::Open(MakeStoreOptions(dev, 8, false), "/srvycsb", &store).ok()) {
    std::abort();
  }
  Server srv(store.get(), ServerOptions());
  if (!srv.Start().ok()) {
    std::abort();
  }
  ycsb::KeySpace key_space(records);
  YcsbTcpResult load = RunYcsbOverTcp(srv.port(), "load", threads, records, 128, &key_space);
  YcsbTcpResult run = RunYcsbOverTcp(srv.port(), workload, threads, ops, 128, &key_space);
  srv.Stop();
  TablePrinter table({"phase", "KQPS", "avg us", "p99 us", "ok", "failed"});
  table.AddRow({"load", FmtQps(load.run.qps), Fmt(load.run.latency.Average()),
                Fmt(load.run.latency.Percentile(99)), std::to_string(load.ok),
                std::to_string(load.failed)});
  table.AddRow({workload, FmtQps(run.run.qps), Fmt(run.run.latency.Average()),
                Fmt(run.run.latency.Percentile(99)), std::to_string(run.ok),
                std::to_string(run.failed)});
  table.Print();
}

// CI smoke. Phase 1: YCSB-A over TCP on a healthy store — nonzero goodput,
// zero failures, exact door accounting (client-observed == server counters ==
// store's own submitted/completed doors), clean SelfCheck. Phase 2: a small
// open-loop overload — the defended store's served p99 must come in below the
// no-defense control and its BUSY/DEADLINE replies must be nonzero.
int RunSmoke() {
  // --- Phase 1: correctness + accounting under a normal mixed workload.
  {
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    std::unique_ptr<P2KVS> store;
    if (!P2KVS::Open(MakeStoreOptions(dev, 4, false), "/srvsmoke", &store).ok()) {
      std::fprintf(stderr, "server smoke FAILED: open\n");
      return 1;
    }
    Server srv(store.get(), ServerOptions());
    if (!srv.Start().ok()) {
      std::fprintf(stderr, "server smoke FAILED: server start\n");
      return 1;
    }
    const uint64_t records = Scaled(2000);
    const uint64_t ops = Scaled(4000);
    ycsb::KeySpace key_space(records);
    YcsbTcpResult load = RunYcsbOverTcp(srv.port(), "load", 4, records, 128, &key_space);
    YcsbTcpResult run = RunYcsbOverTcp(srv.port(), "a", 4, ops, 128, &key_space);
    srv.Stop();
    const ServerStatsSnapshot ss = srv.Stats();

    if (load.ok != records || load.failed + load.shed + load.expired != 0) {
      std::fprintf(stderr, "server smoke FAILED: load phase lost writes (ok=%llu of %llu)\n",
                   static_cast<unsigned long long>(load.ok),
                   static_cast<unsigned long long>(records));
      return 1;
    }
    if (run.ok == 0 || run.failed != 0) {
      std::fprintf(stderr, "server smoke FAILED: ycsb-a ok=%llu failed=%llu\n",
                   static_cast<unsigned long long>(run.ok),
                   static_cast<unsigned long long>(run.failed));
      return 1;
    }
    // Exact server-door accounting: every protocol request the clients sent
    // was submitted to the store (no pipeline-cap BUSYs here), answered
    // exactly once, and classified by the client.
    const uint64_t client_sent = load.requests_sent + run.requests_sent;
    const uint64_t client_classified =
        load.ok + load.shed + load.expired + load.failed + run.ok + run.shed + run.expired +
        run.failed;
    if (ss.submitted_to_store != client_sent || ss.responses_sent != client_sent ||
        client_classified != client_sent || ss.pipeline_rejections != 0 ||
        ss.protocol_errors != 0) {
      std::fprintf(stderr,
                   "server smoke FAILED: door accounting: client sent %llu classified %llu, "
                   "server submitted %llu responded %llu (cap-busy %llu, proto-err %llu)\n",
                   static_cast<unsigned long long>(client_sent),
                   static_cast<unsigned long long>(client_classified),
                   static_cast<unsigned long long>(ss.submitted_to_store),
                   static_cast<unsigned long long>(ss.responses_sent),
                   static_cast<unsigned long long>(ss.pipeline_rejections),
                   static_cast<unsigned long long>(ss.protocol_errors));
      return 1;
    }
    store->WaitIdle().IgnoreError();
    P2kvsStats stats;
    Status s = store->GetStats(&stats);
    if (!s.ok()) {
      std::fprintf(stderr, "server smoke FAILED: GetStats: %s\n", s.ToString().c_str());
      return 1;
    }
    const Status check = stats.SelfCheck();
    if (!check.ok()) {
      std::fprintf(stderr, "server smoke FAILED: SelfCheck: %s\n", check.ToString().c_str());
      return 1;
    }
    std::printf("server smoke phase1 OK: %llu tcp requests, goodput %.0f qps, "
                "exact door accounting\n",
                static_cast<unsigned long long>(client_sent), run.run.qps);
  }

  // --- Phase 2: overload defense visible through the protocol.
  TcpOpenLoopResult results[2];
  for (int i = 0; i < 2; i++) {
    const bool defended = i == 1;
    SimulatedDevice dev = MakeDevice(DeviceProfile::SataSsd().Scaled(10));
    std::unique_ptr<P2KVS> store;
    P2kvsOptions options = MakeStoreOptions(dev, 2, defended);
    if (defended) {
      options.queue_capacity = 256;
      options.default_deadline_ms = 25;
    }
    if (!P2KVS::Open(options, "/srvsmoke2", &store).ok()) {
      std::fprintf(stderr, "server smoke FAILED: open (phase2)\n");
      return 1;
    }
    Server srv(store.get(), ServerOptions());
    if (!srv.Start().ok()) {
      std::fprintf(stderr, "server smoke FAILED: server start (phase2)\n");
      return 1;
    }
    results[i] = RunOpenLoopTcp(srv.port(), 4, 50e3, Scaled(4000), 4096, 100000);
    srv.Stop();
    const ServerStatsSnapshot ss = srv.Stats();
    if (results[i].responses != ss.responses_sent ||
        results[i].classified() != results[i].attempted) {
      std::fprintf(stderr,
                   "server smoke FAILED: phase2 accounting: client saw %llu of %llu, "
                   "server sent %llu\n",
                   static_cast<unsigned long long>(results[i].responses),
                   static_cast<unsigned long long>(results[i].attempted),
                   static_cast<unsigned long long>(ss.responses_sent));
      return 1;
    }
  }
  const TcpOpenLoopResult& control = results[0];
  const TcpOpenLoopResult& defended = results[1];
  if (defended.ok == 0) {
    std::fprintf(stderr, "server smoke FAILED: defended goodput is zero\n");
    return 1;
  }
  if (defended.shed + defended.expired == 0) {
    std::fprintf(stderr, "server smoke FAILED: overload never shed through the protocol\n");
    return 1;
  }
  const double control_p99 = control.ok_latency_us.Percentile(99);
  const double defended_p99 = defended.ok_latency_us.Percentile(99);
  if (defended_p99 >= control_p99) {
    std::fprintf(stderr, "server smoke FAILED: defended p99 %.0fus not below control %.0fus\n",
                 defended_p99, control_p99);
    return 1;
  }
  std::printf(
      "{\"server_smoke\":{\"no_defense\":{\"goodput_qps\":%.0f,\"p99_us\":%.0f},"
      "\"overload_ctl\":{\"goodput_qps\":%.0f,\"p99_us\":%.0f,\"shed\":%llu,"
      "\"expired\":%llu}}}\n",
      control.goodput_qps, control_p99, defended.goodput_qps, defended_p99,
      static_cast<unsigned long long>(defended.shed),
      static_cast<unsigned long long>(defended.expired));
  std::printf("server smoke OK: defended p99 %.0fus vs no-defense %.0fus over TCP\n",
              defended_p99, control_p99);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return p2kvs::bench::RunSmoke();
  }
  if (argc > 2 && std::strcmp(argv[1], "--ycsb") == 0) {
    p2kvs::bench::RunYcsbMode(argv[2]);
    return 0;
  }
  p2kvs::bench::RunSweep();
  return 0;
}
