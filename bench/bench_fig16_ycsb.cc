// Figure 16 — YCSB macro-benchmark (Table 1 mixes) at 8 and 32 user
// threads: RocksLite vs p2KVS-4 vs p2KVS-8. (PebblesDB is excluded, as in
// the paper, where it could not complete the runs.)
//
// Paper result: LOAD gains grow with concurrency (2.4x at 8 threads, 5.2x at
// 32 for p2KVS-8); read-heavy B/C/D gain ~1-2x; E is a wash (scan read
// amplification); mixed A/F gain 1.5-3.5x.

#include "bench/bench_common.h"

#include <cstdio>

namespace p2kvs {
namespace bench {
namespace {

struct System {
  std::string name;
  int workers;  // 0 = plain RocksLite
};

double RunWorkloads(const System& sys, const std::string& workload, int threads,
                    uint64_t preload_records, uint64_t ops) {
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  std::unique_ptr<DB> db;
  std::unique_ptr<P2KVS> store;
  Target target;
  if (sys.workers == 0) {
    if (!DB::Open(DefaultLsmOptions(dev.env.get()), "/f16", &db).ok()) std::abort();
    target = MakeDbTarget(sys.name, db.get());
  } else {
    P2kvsOptions options;
    options.env = dev.env.get();
    options.num_workers = sys.workers;
    options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
    if (!P2KVS::Open(options, "/f16", &store).ok()) std::abort();
    target = MakeP2kvsTarget(sys.name, store.get());
  }

  ycsb::KeySpace space(0);
  if (workload == "load") {
    YcsbRunConfig config;
    config.workload = "load";
    config.threads = threads;
    config.ops = preload_records;
    config.key_space = &space;
    return RunYcsb(target, config).qps;
  }

  // Non-LOAD workloads run over a preloaded store.
  Preload(target, preload_records, 112);
  space.record_count.store(preload_records);
  YcsbRunConfig config;
  config.workload = workload;
  config.threads = threads;
  config.ops = (workload == "e") ? std::max<uint64_t>(ops / 20, 100) : ops;
  config.key_space = &space;
  return RunYcsb(target, config).qps;
}

void Run() {
  const uint64_t records = Scaled(30000);
  const uint64_t ops = Scaled(20000);
  PrintHeader("Figure 16", "YCSB LOAD + A-F: RocksLite vs p2KVS-4 vs p2KVS-8",
              "p2KVS-8 up to ~5x on LOAD at high concurrency; 1-2x on reads; ~1x on E");

  const std::vector<System> systems = {{"RocksLite", 0}, {"p2KVS-4", 4}, {"p2KVS-8", 8}};
  for (int threads : {8, 32}) {
    if (threads > MaxThreads()) {
      break;
    }
    std::printf("\n-- %d user threads --\n", threads);
    TablePrinter table({"workload", systems[0].name, systems[1].name, systems[2].name,
                        "p2KVS-8 speedup"});
    for (const char* workload : {"load", "a", "b", "c", "d", "e", "f"}) {
      std::vector<double> qps;
      for (const System& sys : systems) {
        qps.push_back(RunWorkloads(sys, workload, threads, records, ops));
      }
      table.AddRow({workload, FmtQps(qps[0]), FmtQps(qps[1]), FmtQps(qps[2]),
                    Fmt(qps[0] > 0 ? qps[2] / qps[0] : 0, 2) + "x"});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
