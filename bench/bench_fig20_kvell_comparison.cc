// Figure 20 — KVell-lite vs p2KVS on the YCSB workloads, 4 and 8 workers.
//
// Paper result: p2KVS wins write-intensive LOAD/A/F (LSM aggregates small
// writes; KVell pays page-granular slot IO), roughly ties point reads (B, D),
// loses pure-read C (KVell's all-in-memory index + page cache), and wins
// scans (E).

#include "bench/bench_common.h"

#include <cstdio>

namespace p2kvs {
namespace bench {
namespace {

double RunOne(bool kvell_system, int workers, const std::string& workload, uint64_t records,
              uint64_t ops, int threads) {
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  std::unique_ptr<KvellStore> kvell;
  std::unique_ptr<P2KVS> p2;
  Target target;
  if (kvell_system) {
    KvellOptions options;
    options.env = dev.env.get();
    options.num_workers = workers;
    if (!KvellStore::Open(options, "/f20", &kvell).ok()) std::abort();
    target = MakeKvellTarget("kvell", kvell.get());
  } else {
    P2kvsOptions options;
    options.env = dev.env.get();
    options.num_workers = workers;
    options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
    if (!P2KVS::Open(options, "/f20", &p2).ok()) std::abort();
    target = MakeP2kvsTarget("p2kvs", p2.get());
  }

  ycsb::KeySpace space(0);
  if (workload == "load") {
    YcsbRunConfig config;
    config.workload = "load";
    config.threads = threads;
    config.ops = records;
    config.key_space = &space;
    return RunYcsb(target, config).qps;
  }
  Preload(target, records, 112);
  space.record_count.store(records);
  YcsbRunConfig config;
  config.workload = workload;
  config.threads = threads;
  config.ops = (workload == "e") ? std::max<uint64_t>(ops / 20, 100) : ops;
  config.key_space = &space;
  return RunYcsb(target, config).qps;
}

void Run() {
  const uint64_t records = Scaled(25000);
  const uint64_t ops = Scaled(15000);
  const int kThreads = 16;
  PrintHeader("Figure 20", "KVell-lite vs p2KVS across YCSB",
              "p2KVS wins writes & scans; KVell wins pure reads (in-memory index)");

  TablePrinter table({"workload", "KVell-4", "KVell-8", "p2KVS-4", "p2KVS-8"});
  for (const char* workload : {"load", "a", "b", "c", "d", "e", "f"}) {
    table.AddRow({workload, FmtQps(RunOne(true, 4, workload, records, ops, kThreads)),
                  FmtQps(RunOne(true, 8, workload, records, ops, kThreads)),
                  FmtQps(RunOne(false, 4, workload, records, ops, kThreads)),
                  FmtQps(RunOne(false, 8, workload, records, ops, kThreads))});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
