// Figure 7 — effect of WriteBatch size on the WAL stage: device bandwidth
// and CPU cost when batching 128 B KVs into 256 B .. 16 KiB WriteBatches
// (async logging; MemTable and compaction disabled to isolate WAL).
//
// Paper result: larger batches raise SSD bandwidth utilization and cut CPU
// per KV (fewer traversals of the IO stack).
//
// Also: a queue-handoff microbenchmark comparing the old mutex+condvar
// MpscQueue against the lock-free IntrusiveMpscQueue now backing every
// worker (the submission-side cost the OBM sits behind). Run with --smoke
// for a fast CI-sized pass.

#include "bench/bench_common.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "src/util/clock.h"
#include "src/util/intrusive_mpsc_queue.h"
#include "src/util/mpsc_queue.h"
#include "src/util/resource_usage.h"

namespace p2kvs {
namespace bench {
namespace {

bool g_smoke = false;

void Run() {
  const uint64_t total_kvs = Scaled(g_smoke ? 20000 : 200000);
  PrintHeader("Figure 7", "WriteBatch size sweep on the isolated WAL stage (128B KVs)",
              "bigger batches -> higher bandwidth and lower CPU per KV");

  TablePrinter table({"batch bytes", "KVs/batch", "KQPS (KVs)", "WAL MB/s",
                      "CPU us per KV"});

  for (size_t batch_bytes : {256u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    Options options = DefaultLsmOptions(dev.env.get());
    options.debug_disable_memtable = true;  // WAL-only mode
    options.debug_disable_background = true;
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/fig07", &db).ok()) {
      std::abort();
    }

    const size_t kv_bytes = 128;
    const size_t kvs_per_batch = batch_bytes / kv_bytes == 0 ? 1 : batch_bytes / kv_bytes;
    const uint64_t batches = total_kvs / kvs_per_batch;

    IoStats::Instance().Reset();
    uint64_t cpu_before = ProcessCpuNanos();
    uint64_t t0 = NowNanos();
    uint64_t key = 0;
    WriteOptions wo;  // async logging (no fsync per batch)
    for (uint64_t b = 0; b < batches; b++) {
      WriteBatch batch;
      for (size_t i = 0; i < kvs_per_batch; i++) {
        batch.Put(Key(key), Value(key, kv_bytes - 16));
        key++;
      }
      db->Write(wo, &batch).IgnoreError();
    }
    double seconds = static_cast<double>(NowNanos() - t0) / 1e9;
    double cpu_us_per_kv =
        static_cast<double>(ProcessCpuNanos() - cpu_before) / 1000.0 /
        static_cast<double>(batches * kvs_per_batch);
    IoStatsSnapshot io = IoStats::Instance().Snapshot();
    double mbps = seconds > 0 ? static_cast<double>(io.TotalWritten()) / 1e6 / seconds : 0;
    double kqps =
        seconds > 0 ? static_cast<double>(batches * kvs_per_batch) / seconds / 1000.0 : 0;

    table.AddRow({std::to_string(batch_bytes), std::to_string(kvs_per_batch), Fmt(kqps),
                  Fmt(mbps), Fmt(cpu_us_per_kv, 2)});
  }
  table.Print();
}

// ---------------- Queue-handoff microbenchmark ----------------

// A node that works with both queues: the intrusive link for
// IntrusiveMpscQueue, and an in_use flag so each producer can recycle a
// small preallocated pool (set on push, cleared by the consumer on pop).
// Both queues hand off HandoffNode pointers, so the protocol cost is
// identical and only the queue differs.
struct HandoffNode : MpscQueueNode {
  std::atomic<bool> in_use{false};
  uint64_t payload = 0;
};

constexpr size_t kPoolPerProducer = 1024;

template <typename PushFn, typename PopFn>
double HandoffTrial(int producers, uint64_t per_producer, PushFn push, PopFn pop) {
  std::vector<std::vector<HandoffNode>> pools(static_cast<size_t>(producers));
  for (auto& pool : pools) {
    pool = std::vector<HandoffNode>(kPoolPerProducer);
  }

  const uint64_t total = static_cast<uint64_t>(producers) * per_producer;
  uint64_t t0 = NowNanos();
  std::vector<std::thread> threads;
  for (int t = 0; t < producers; t++) {
    threads.emplace_back([&, t] {
      auto& pool = pools[static_cast<size_t>(t)];
      size_t slot = 0;
      for (uint64_t i = 0; i < per_producer; i++) {
        HandoffNode* node = &pool[slot];
        slot = (slot + 1) % pool.size();
        while (node->in_use.load(std::memory_order_acquire)) {
          std::this_thread::yield();  // pool exhausted: wait for the consumer
        }
        node->in_use.store(true, std::memory_order_relaxed);
        node->payload = i;
        push(node);
      }
    });
  }
  std::thread consumer([&] {
    for (uint64_t i = 0; i < total; i++) {
      HandoffNode* node = pop();
      node->in_use.store(false, std::memory_order_release);
    }
  });
  for (auto& t : threads) {
    t.join();
  }
  consumer.join();
  double seconds = static_cast<double>(NowNanos() - t0) / 1e9;
  return seconds > 0 ? static_cast<double>(total) / seconds : 0;
}

double LockedHandoff(int producers, uint64_t per_producer) {
  MpscQueue<HandoffNode*> queue;
  return HandoffTrial(
      producers, per_producer,
      [&](HandoffNode* n) {
        if (!queue.Push(n)) {
          std::abort();  // the trial never closes the queue
        }
      },
      [&] { return *queue.Pop(); });
}

double LockFreeHandoff(int producers, uint64_t per_producer) {
  IntrusiveMpscQueue<HandoffNode> queue;
  return HandoffTrial(
      producers, per_producer,
      [&](HandoffNode* n) {
        if (!queue.Push(n)) {
          std::abort();  // the trial never closes the queue
        }
      },
      [&] { return *queue.Pop(); });
}

double BestOf3(double (*trial)(int, uint64_t), int producers, uint64_t per_producer) {
  double best = 0;
  for (int i = 0; i < 3; i++) {
    best = std::max(best, trial(producers, per_producer));
  }
  return best;
}

void RunQueueHandoff() {
  const uint64_t per_producer = Scaled(g_smoke ? 20000 : 300000);
  PrintHeader("Queue handoff",
              "MPSC request-queue handoff: mutex+condvar vs lock-free (Vyukov)",
              "producers never lock; consumer parks only when provably empty");

  TablePrinter table({"producers", "locked Mops/s", "lock-free Mops/s", "speedup"});
  for (int producers : {1, 2, 4, 8, 16}) {
    double locked = BestOf3(LockedHandoff, producers, per_producer);
    double lock_free = BestOf3(LockFreeHandoff, producers, per_producer);
    table.AddRow({std::to_string(producers), Fmt(locked / 1e6, 2),
                  Fmt(lock_free / 1e6, 2), Fmt(lock_free / locked, 2) + "x"});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      p2kvs::bench::g_smoke = true;
    }
  }
  p2kvs::bench::Run();
  p2kvs::bench::RunQueueHandoff();
  return 0;
}
