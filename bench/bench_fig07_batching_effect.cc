// Figure 7 — effect of WriteBatch size on the WAL stage: device bandwidth
// and CPU cost when batching 128 B KVs into 256 B .. 16 KiB WriteBatches
// (async logging; MemTable and compaction disabled to isolate WAL).
//
// Paper result: larger batches raise SSD bandwidth utilization and cut CPU
// per KV (fewer traversals of the IO stack).

#include "bench/bench_common.h"

#include <cstdio>

#include "src/util/clock.h"
#include "src/util/resource_usage.h"

namespace p2kvs {
namespace bench {
namespace {

void Run() {
  const uint64_t total_kvs = Scaled(200000);
  PrintHeader("Figure 7", "WriteBatch size sweep on the isolated WAL stage (128B KVs)",
              "bigger batches -> higher bandwidth and lower CPU per KV");

  TablePrinter table({"batch bytes", "KVs/batch", "KQPS (KVs)", "WAL MB/s",
                      "CPU us per KV"});

  for (size_t batch_bytes : {256u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    Options options = DefaultLsmOptions(dev.env.get());
    options.debug_disable_memtable = true;  // WAL-only mode
    options.debug_disable_background = true;
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/fig07", &db).ok()) {
      std::abort();
    }

    const size_t kv_bytes = 128;
    const size_t kvs_per_batch = batch_bytes / kv_bytes == 0 ? 1 : batch_bytes / kv_bytes;
    const uint64_t batches = total_kvs / kvs_per_batch;

    IoStats::Instance().Reset();
    uint64_t cpu_before = ProcessCpuNanos();
    uint64_t t0 = NowNanos();
    uint64_t key = 0;
    WriteOptions wo;  // async logging (no fsync per batch)
    for (uint64_t b = 0; b < batches; b++) {
      WriteBatch batch;
      for (size_t i = 0; i < kvs_per_batch; i++) {
        batch.Put(Key(key), Value(key, kv_bytes - 16));
        key++;
      }
      db->Write(wo, &batch);
    }
    double seconds = static_cast<double>(NowNanos() - t0) / 1e9;
    double cpu_us_per_kv =
        static_cast<double>(ProcessCpuNanos() - cpu_before) / 1000.0 /
        static_cast<double>(batches * kvs_per_batch);
    IoStatsSnapshot io = IoStats::Instance().Snapshot();
    double mbps = seconds > 0 ? static_cast<double>(io.TotalWritten()) / 1e6 / seconds : 0;
    double kqps =
        seconds > 0 ? static_cast<double>(batches * kvs_per_batch) / seconds / 1000.0 : 0;

    table.AddRow({std::to_string(batch_bytes), std::to_string(kvs_per_batch), Fmt(kqps),
                  Fmt(mbps), Fmt(cpu_us_per_kv, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
