// Figure 12 + Table 2 — random-write comparison with 16 user threads:
// RocksLite vs PebblesLite (tiered/fragmented LSM) vs p2KVS-4 vs p2KVS-8.
// Reports throughput, IO amplification, device bandwidth utilization, and
// memory / CPU usage.
//
// Paper result: p2KVS-4/-8 beat RocksDB by 2.7x/4.6x; p2KVS-8 has the lowest
// IO amplification (wider, shallower global LSM) and nearly saturates the
// SSD while the baselines use <20%.

#include "bench/bench_common.h"

#include <cstdio>

#include <thread>

#include "src/util/clock.h"
#include "src/util/hash.h"
#include "src/util/resource_usage.h"

namespace p2kvs {
namespace bench {
namespace {

struct CaseResult {
  double qps = 0;
  double io_amp = 0;
  double bw_util_percent = 0;
  double avg_mem_mb = 0;
  double max_mem_mb = 0;
  double avg_cpu_percent = 0;
  double max_cpu_percent = 0;
};

// p2KVS runs use the asynchronous write interface, as in the paper ("The
// asynchronous interface of p2KVS is enabled to show peak performance"):
// dispatchers keep a bounded window of outstanding PutAsync requests.
RunResult RunAsyncWrites(P2KVS* store, int threads, uint64_t ops, size_t value_size) {
  RunResult result;
  std::atomic<uint64_t> inflight{0};
  constexpr uint64_t kWindow = 2048;
  uint64_t t0 = NowNanos();
  RunClosedLoop(threads, ops, [&](int, uint64_t i) {
    while (inflight.load(std::memory_order_relaxed) >= kWindow) {
      std::this_thread::yield();
    }
    inflight.fetch_add(1, std::memory_order_relaxed);
    uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 4);
    store->PutAsync(Key(k), Value(i, value_size),
                    [&inflight](const Status&) { inflight.fetch_sub(1, std::memory_order_relaxed); });
  });
  while (inflight.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  result.seconds = static_cast<double>(NowNanos() - t0) / 1e9;
  result.ops = ops;
  result.qps = result.seconds > 0 ? static_cast<double>(ops) / result.seconds : 0;
  return result;
}

CaseResult Measure(const Target& target, const SimulatedDevice& dev, int threads, uint64_t ops,
                   size_t value_size, P2KVS* async_store = nullptr) {
  IoStats::Instance().Reset();
  IoStatsSnapshot before = IoStats::Instance().Snapshot();

  CaseResult result;
  double mem_sum = 0;
  int mem_n = 0;
  RunResult run;
  std::vector<ResourceSample> samples = SampleWhile(
      [&] {
        if (async_store != nullptr) {
          run = RunAsyncWrites(async_store, threads, ops, value_size);
        } else {
          run = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
            uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 4);
            target.put(Key(k), Value(i, value_size)).IgnoreError();
          });
        }
      },
      /*interval_ms=*/200);
  target.wait_idle();

  for (const ResourceSample& s : samples) {
    double mem_mb = static_cast<double>(target.memory_usage()) / 1e6;
    mem_sum += mem_mb;
    mem_n++;
    result.max_mem_mb = std::max(result.max_mem_mb, mem_mb);
    result.avg_cpu_percent += s.cpu_percent;
    result.max_cpu_percent = std::max(result.max_cpu_percent, s.cpu_percent);
  }
  if (!samples.empty()) {
    result.avg_cpu_percent /= static_cast<double>(samples.size());
  }
  result.avg_mem_mb = mem_n > 0 ? mem_sum / mem_n : 0;

  IoStatsSnapshot delta = IoStats::Instance().Snapshot().Since(before);
  double user_bytes = static_cast<double>(ops) * (static_cast<double>(value_size) + 16);
  result.qps = run.qps;
  result.io_amp = user_bytes > 0 ? static_cast<double>(delta.TotalWritten()) / user_bytes : 0;
  double device_bw = static_cast<double>(dev.profile.write_bw_bytes_per_sec);
  result.bw_util_percent =
      (run.seconds > 0 && device_bw > 0)
          ? 100.0 * static_cast<double>(delta.TotalWritten()) / run.seconds / device_bw
          : 0;
  return result;
}

// Smaller LSM sizing so the benchmark data volume spans several levels and
// compaction policies actually differentiate (as the paper's 100M-op runs
// do at production sizing).
Options Fig12LsmOptions(Env* env) {
  Options options = DefaultLsmOptions(env);
  options.write_buffer_size = 512 * 1024;
  options.target_file_size = 512 * 1024;
  options.max_bytes_for_level_base = 2 * 1024 * 1024;
  return options;
}

void Run() {
  const int kThreads = 16;
  const uint64_t ops = Scaled(150000);
  const size_t kValue = 112;
  PrintHeader("Figure 12 + Table 2", "16-thread random writes: RocksLite / PebblesLite / p2KVS",
              "p2KVS-8 wins by ~4.6x, lowest IO amp, near-full bandwidth");

  TablePrinter fig12({"system", "QPS", "IO amplification", "bandwidth util %"});
  TablePrinter tab2({"system", "avg mem (engine)", "max mem (engine)", "avg CPU %", "max CPU %"});

  auto report = [&](const std::string& name, const CaseResult& r) {
    fig12.AddRow({name, FmtQps(r.qps), Fmt(r.io_amp, 2), Fmt(r.bw_util_percent)});
    tab2.AddRow({name, FmtBytes(r.avg_mem_mb * 1e6), FmtBytes(r.max_mem_mb * 1e6),
                 Fmt(r.avg_cpu_percent, 0), Fmt(r.max_cpu_percent, 0)});
  };

  {
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    std::unique_ptr<DB> db;
    if (!DB::Open(Fig12LsmOptions(dev.env.get()), "/rocks", &db).ok()) std::abort();
    report("RocksLite", Measure(MakeDbTarget("rocks", db.get()), dev, kThreads, ops, kValue));
  }
  {
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    Options options = Fig12LsmOptions(dev.env.get());
    options.compat_mode = CompatMode::kLevelDB;
    options.compaction_style = CompactionStyle::kTiered;
    // FLSM tolerates more overlapping runs per guard before merging, which
    // is where its write-amplification savings come from.
    options.tiered_runs_per_level = 8;
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/pebbles", &db).ok()) std::abort();
    report("PebblesLite", Measure(MakeDbTarget("pebbles", db.get()), dev, kThreads, ops, kValue));
  }
  for (int workers : {4, 8}) {
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    P2kvsOptions options;
    options.env = dev.env.get();
    options.num_workers = workers;
    options.engine_factory = MakeRocksLiteFactory(Fig12LsmOptions(dev.env.get()));
    std::unique_ptr<P2KVS> store;
    if (!P2KVS::Open(options, "/p2kvs", &store).ok()) std::abort();
    report("p2KVS-" + std::to_string(workers) + " (async)",
           Measure(MakeP2kvsTarget("p2kvs", store.get()), dev, kThreads, ops, kValue,
                   store.get()));
  }

  std::printf("\n(Figure 12)\n");
  fig12.Print();
  std::printf("\n(Table 2 — engine-resident memory & process CPU during the run)\n");
  tab2.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
