// Figure 17 — sensitivity to the number of workers and to the OBM, on YCSB
// LOAD / A / B / C, normalized to the single-worker OBM-off configuration.
// Also sweeps the OBM max-batch bound (an ablation beyond the paper, which
// fixes it at 32).
//
// Paper result: inter-instance parallelism alone gives 3-6.5x at 8 workers;
// OBM multiplies writes by up to 2x and reads by up to 5x (less at high
// worker counts where the SSD is already saturated); 8 workers is optimal.

#include "bench/bench_common.h"

#include <cstdio>

namespace p2kvs {
namespace bench {
namespace {

double RunOne(int workers, bool obm, int max_batch, const std::string& workload,
              uint64_t records, uint64_t ops, int threads) {
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  P2kvsOptions options;
  options.env = dev.env.get();
  options.num_workers = workers;
  options.enable_obm = obm;
  options.max_batch_size = max_batch;
  options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
  std::unique_ptr<P2KVS> store;
  if (!P2KVS::Open(options, "/f17", &store).ok()) std::abort();
  Target target = MakeP2kvsTarget("p2kvs", store.get());

  ycsb::KeySpace space(0);
  if (workload == "load") {
    YcsbRunConfig config;
    config.workload = "load";
    config.threads = threads;
    config.ops = ops;
    config.key_space = &space;
    return RunYcsb(target, config).qps;
  }
  Preload(target, records, 112);
  space.record_count.store(records);
  YcsbRunConfig config;
  config.workload = workload;
  config.threads = threads;
  config.ops = ops;
  config.key_space = &space;
  return RunYcsb(target, config).qps;
}

void Run() {
  const uint64_t records = Scaled(20000);
  const uint64_t ops = Scaled(15000);
  const int kThreads = 16;
  PrintHeader("Figure 17", "sensitivity to workers x OBM (normalized to 1 worker, OBM off)",
              "workers scale to ~8; OBM adds up to 2x (writes) / 5x (reads)");

  for (const char* workload : {"load", "a", "b", "c"}) {
    std::printf("\n-- workload %s, %d user threads --\n", workload, kThreads);
    TablePrinter table({"workers", "OBM off (x)", "OBM on (x)", "OBM off QPS", "OBM on QPS"});
    double baseline = 0;
    for (int workers : {1, 2, 4, 8}) {
      double off = RunOne(workers, false, 32, workload, records, ops, kThreads);
      double on = RunOne(workers, true, 32, workload, records, ops, kThreads);
      if (baseline == 0) {
        baseline = off;
      }
      table.AddRow({std::to_string(workers), Fmt(off / baseline, 2), Fmt(on / baseline, 2),
                    FmtQps(off), FmtQps(on)});
    }
    table.Print();
  }

  // Ablation: OBM max-batch bound (paper default 32).
  std::printf("\n-- ablation: OBM max-batch bound (LOAD, 8 workers, %d threads) --\n", kThreads);
  TablePrinter ablation({"max batch", "QPS"});
  for (int max_batch : {1, 4, 8, 32, 128}) {
    ablation.AddRow({std::to_string(max_batch),
                     FmtQps(RunOne(8, true, max_batch, "load", records, ops, kThreads))});
  }
  ablation.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
