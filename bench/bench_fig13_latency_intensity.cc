// Figure 13 — write latency as a function of offered load (open-loop):
// RocksLite vs RocksLite+OBM (single instance behind one p2KVS worker) vs
// p2KVS-8. Reports average and p99 latency per intensity.
//
// Paper result: latencies are comparable at light load; RocksDB's tail
// explodes past ~100 KQPS while p2KVS holds p99 < 1ms up to ~400 KQPS.

#include "bench/bench_common.h"

#include <cstdio>
#include <thread>
#include <thread>

#include "src/util/clock.h"
#include "src/util/hash.h"

namespace p2kvs {
namespace bench {
namespace {

struct LoadPoint {
  double offered_kqps;
  double achieved_kqps;
  double avg_us;
  double p99_us;
};

// Open-loop-ish pacing: `threads` dispatchers each send at rate/threads,
// sleeping to hold the arrival schedule; latency measured per request.
LoadPoint RunAtIntensity(const Target& target, double offered_qps, uint64_t ops, int threads) {
  Histogram hist;
  std::mutex hist_mu;
  std::atomic<uint64_t> sent{0};

  uint64_t t_start = NowNanos();
  std::vector<std::thread> pool;
  const double per_thread_interval_ns = 1e9 * threads / offered_qps;
  for (int t = 0; t < threads; t++) {
    pool.emplace_back([&, t] {
      Histogram local;
      uint64_t next_send = NowNanos();
      uint64_t i;
      while ((i = sent.fetch_add(1)) < ops) {
        // Hold the arrival schedule (open loop); sleep rather than spin so
        // dispatchers do not starve the workers on small hosts.
        uint64_t now = NowNanos();
        if (now < next_send) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(next_send - now));
        }
        next_send += static_cast<uint64_t>(per_thread_interval_ns);
        uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % 1000000;
        uint64_t t0 = NowNanos();
        target.put(Key(k), Value(i, 112));
        local.Add(static_cast<double>(NowNanos() - t0) / 1000.0);
        (void)t;
      }
      std::lock_guard<std::mutex> lock(hist_mu);
      hist.Merge(local);
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  double seconds = static_cast<double>(NowNanos() - t_start) / 1e9;

  LoadPoint p;
  p.offered_kqps = offered_qps / 1000.0;
  p.achieved_kqps = seconds > 0 ? static_cast<double>(ops) / seconds / 1000.0 : 0;
  p.avg_us = hist.Average();
  p.p99_us = hist.Percentile(99);
  return p;
}

void Run() {
  const uint64_t ops = Scaled(20000);
  const int kDispatchers = 4;
  PrintHeader("Figure 13", "avg & p99 write latency vs offered load",
              "p2KVS sustains much higher intensity before the tail explodes");

  struct System {
    std::string name;
    std::function<Target(SimulatedDevice&)> open;
    std::unique_ptr<DB> db;
    std::unique_ptr<P2KVS> p2;
  };

  TablePrinter table({"system", "offered KQPS", "achieved KQPS", "avg us", "p99 us"});

  for (const char* system : {"RocksLite", "RocksLite+OBM", "p2KVS-8"}) {
    for (double offered : {20e3, 50e3, 100e3, 200e3, 400e3}) {
      SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
      std::unique_ptr<DB> db;
      std::unique_ptr<P2KVS> p2;
      Target target;
      if (std::string(system) == "RocksLite") {
        if (!DB::Open(DefaultLsmOptions(dev.env.get()), "/f13", &db).ok()) std::abort();
        target = MakeDbTarget(system, db.get());
      } else {
        P2kvsOptions options;
        options.env = dev.env.get();
        options.num_workers = std::string(system) == "p2KVS-8" ? 8 : 1;
        options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
        if (!P2KVS::Open(options, "/f13", &p2).ok()) std::abort();
        target = MakeP2kvsTarget(system, p2.get());
      }
      LoadPoint p = RunAtIntensity(target, offered, ops, kDispatchers);
      table.AddRow({system, Fmt(p.offered_kqps, 0), Fmt(p.achieved_kqps, 0), Fmt(p.avg_us),
                    Fmt(p.p99_us)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
