// Figure 13 — latency and goodput as a function of offered load, OPEN loop:
// arrivals follow a fixed schedule and never wait for completions, so unlike
// a closed-loop driver the offered intensity does not collapse to the service
// rate when the store saturates.
//
// Two p2KVS-8 configurations face the same arrival schedules:
//
//   no-defense    unbounded queues, no admission control, no deadlines — the
//                 store accepts everything and serves it arbitrarily late;
//                 past saturation the queues (and the tail) grow with every
//                 arrival.
//
//   overload-ctl  bounded queues + CoDel-style admission control + request
//                 deadlines — excess arrivals are shed or expire instead of
//                 queueing without bound, so requests that ARE served complete
//                 within a bounded tail (graceful brown-out).
//
// Paper context (§5, Figure 13): p2KVS holds p99 < 1ms up to ~400 KQPS while
// single-instance RocksDB's tail explodes past ~100 KQPS. This benchmark
// extends that question past the saturation point: what happens to the tail
// when the offered load exceeds what even p2KVS-8 can serve?
//
// --smoke: CI mode — drive a deliberately overloaded 2-worker store on a slow
// simulated device, assert that admission control yields nonzero goodput AND
// nonzero shedding with a tail bounded far below the no-defense control run,
// verify P2kvsStats::SelfCheck() (including the overload-accounting door
// invariant), and emit a JSON summary.

#include "bench/bench_common.h"

#include <cstdio>
#include <cstring>

#include "src/util/clock.h"

namespace p2kvs {
namespace bench {
namespace {

struct SystemConfig {
  const char* name;
  bool defended;
};

constexpr SystemConfig kSystems[] = {
    {"p2KVS-8 no-defense", false},
    {"p2KVS-8 overload-ctl", true},
};

P2kvsOptions MakeOptions(SimulatedDevice& dev, int workers, bool defended) {
  P2kvsOptions options;
  options.env = dev.env.get();
  options.num_workers = workers;
  options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
  if (defended) {
    options.queue_capacity = 1024;
    options.admission.enabled = true;
    options.admission.target_queue_wait_us = 2000;
    options.default_deadline_ms = 20;
  }
  return options;
}

void Run() {
  const uint64_t ops = Scaled(20000);
  const int kDispatchers = 4;
  PrintHeader("Figure 13", "goodput & p99 latency vs offered load (open loop)",
              "overload control holds the tail bounded past saturation; "
              "no-defense latency grows with every queued arrival");

  TablePrinter table({"system", "offered KQPS", "goodput KQPS", "ok %", "shed %",
                      "expired %", "avg us", "p99 us", "max lag ms"});

  for (const SystemConfig& system : kSystems) {
    for (double offered : {20e3, 50e3, 100e3, 200e3, 400e3}) {
      SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
      std::unique_ptr<P2KVS> p2;
      if (!P2KVS::Open(MakeOptions(dev, 8, system.defended), "/f13", &p2).ok()) {
        std::abort();
      }
      OpenLoopConfig config;
      config.offered_qps = offered;
      config.ops = ops;
      config.dispatchers = kDispatchers;
      OpenLoopResult r = RunOpenLoopPut(p2.get(), config);
      const double n = static_cast<double>(r.attempted);
      table.AddRow({system.name, Fmt(offered / 1000.0, 0), Fmt(r.goodput_qps / 1000.0, 0),
                    Fmt(100.0 * static_cast<double>(r.ok) / n),
                    Fmt(100.0 * static_cast<double>(r.shed) / n),
                    Fmt(100.0 * static_cast<double>(r.expired) / n),
                    Fmt(r.ok_latency_us.Average()), Fmt(r.ok_latency_us.Percentile(99)),
                    Fmt(r.max_lag_ms)});
    }
  }
  table.Print();
}

// CI smoke: a 2-worker store on a SATA-class simulated device, offered far
// more load than it can serve. The no-defense run is the control; the
// defended run must shed/expire the excess while still making progress with
// a bounded tail.
int RunSmoke() {
  const uint64_t ops = Scaled(4000);
  const double offered_qps = 50e3;  // far above a 2-worker SATA-class store
  const int deadline_ms = 25;

  OpenLoopResult results[2];
  uint64_t stats_shed = 0;
  uint64_t stats_expired = 0;
  for (int i = 0; i < 2; i++) {
    const bool defended = kSystems[i].defended;
    // SATA-class bandwidth slowed 10x (~52 MB/s) against 4KB values at
    // 50 KQPS (~210 MB/s offered): an unambiguous ~4x bandwidth overload
    // that group commit cannot batch away.
    SimulatedDevice dev = MakeDevice(DeviceProfile::SataSsd().Scaled(10));
    std::unique_ptr<P2KVS> p2;
    P2kvsOptions options = MakeOptions(dev, 2, defended);
    if (defended) {
      options.queue_capacity = 256;
      options.default_deadline_ms = deadline_ms;
    }
    if (!P2KVS::Open(options, "/f13smoke", &p2).ok()) {
      std::fprintf(stderr, "fig13 smoke FAILED: open\n");
      return 1;
    }
    OpenLoopConfig config;
    config.offered_qps = offered_qps;
    config.ops = ops;
    config.dispatchers = 2;
    config.value_size = 4096;
    results[i] = RunOpenLoopPut(p2.get(), config);

    p2->WaitIdle().IgnoreError();
    P2kvsStats stats = p2->GetStats();
    Status check = stats.SelfCheck();
    if (!check.ok()) {
      std::fprintf(stderr, "fig13 smoke FAILED: SelfCheck: %s\n",
                   check.ToString().c_str());
      return 1;
    }
    // Quiescent now: every submitted request went through exactly one door,
    // and the framework's accounting must match what the client callbacks
    // observed.
    if (stats.completed + stats.shed + stats.expired != stats.submitted) {
      std::fprintf(stderr,
                   "fig13 smoke FAILED: doors %llu+%llu+%llu != submitted %llu\n",
                   static_cast<unsigned long long>(stats.completed),
                   static_cast<unsigned long long>(stats.shed),
                   static_cast<unsigned long long>(stats.expired),
                   static_cast<unsigned long long>(stats.submitted));
      return 1;
    }
    if (defended) {
      if (stats.shed != results[i].shed || stats.expired != results[i].expired) {
        std::fprintf(stderr,
                     "fig13 smoke FAILED: stats shed/expired %llu/%llu != "
                     "client-observed %llu/%llu\n",
                     static_cast<unsigned long long>(stats.shed),
                     static_cast<unsigned long long>(stats.expired),
                     static_cast<unsigned long long>(results[i].shed),
                     static_cast<unsigned long long>(results[i].expired));
        return 1;
      }
      stats_shed = stats.shed;
      stats_expired = stats.expired;
    }
  }

  const OpenLoopResult& control = results[0];
  const OpenLoopResult& defended = results[1];
  if (defended.ok == 0) {
    std::fprintf(stderr, "fig13 smoke FAILED: overload control starved goodput to zero\n");
    return 1;
  }
  if (defended.shed + defended.expired == 0) {
    std::fprintf(stderr,
                 "fig13 smoke FAILED: %.0f qps against a 2-worker SATA store "
                 "shed nothing — admission control never engaged\n",
                 offered_qps);
    return 1;
  }
  // The control run queues every arrival, so its served tail stretches toward
  // the run duration; the defended run must keep the tail of what it DOES
  // serve in the same order of magnitude as the deadline.
  const double control_p99 = control.ok_latency_us.Percentile(99);
  const double defended_p99 = defended.ok_latency_us.Percentile(99);
  if (defended_p99 >= control_p99) {
    std::fprintf(stderr,
                 "fig13 smoke FAILED: defended p99 %.0fus not below no-defense "
                 "p99 %.0fus\n",
                 defended_p99, control_p99);
    return 1;
  }

  std::printf(
      "{\"fig13_smoke\":{\"offered_qps\":%.0f,\"ops\":%llu,"
      "\"no_defense\":{\"goodput_qps\":%.0f,\"p99_us\":%.0f},"
      "\"overload_ctl\":{\"goodput_qps\":%.0f,\"p99_us\":%.0f,"
      "\"shed\":%llu,\"expired\":%llu}}}\n",
      offered_qps, static_cast<unsigned long long>(ops), control.goodput_qps,
      control_p99, defended.goodput_qps, defended_p99,
      static_cast<unsigned long long>(stats_shed),
      static_cast<unsigned long long>(stats_expired));
  std::printf("fig13 smoke OK: goodput with shedding %.0f qps, defended p99 "
              "%.0fus vs no-defense %.0fus\n",
              defended.goodput_qps, defended_p99, control_p99);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return p2kvs::bench::RunSmoke();
  }
  p2kvs::bench::Run();
  return 0;
}
