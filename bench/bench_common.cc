#include "bench/bench_common.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "src/util/clock.h"
#include "src/util/hash.h"
#include "src/ycsb/workload.h"

namespace p2kvs {
namespace bench {

static double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::atof(v);
}

double BenchScale() {
  static double scale = EnvDouble("P2KVS_BENCH_SCALE", 1.0);
  return scale;
}

double DeviceScale() {
  static double scale = EnvDouble("P2KVS_DEVICE_SCALE", 1.0);
  return scale;
}

int MaxThreads() {
  static int threads = static_cast<int>(EnvDouble("P2KVS_BENCH_THREADS_MAX", 32));
  return threads;
}

uint64_t Scaled(uint64_t n) {
  double scaled = static_cast<double>(n) * BenchScale();
  return scaled < 1 ? 1 : static_cast<uint64_t>(scaled);
}

std::string Key(uint64_t index) { return ycsb::RecordKey(index); }

std::string Value(uint64_t index, size_t value_size) {
  return ycsb::MakeValue(index, value_size);
}

// --- Targets ---

Target MakeDbTarget(const std::string& name, DB* db) {
  Target t;
  t.name = name;
  t.put = [db](const Slice& k, const Slice& v) { return db->Put(WriteOptions(), k, v); };
  t.get = [db](const Slice& k, std::string* v) { return db->Get(ReadOptions(), k, v); };
  t.scan = [db](const Slice& begin, size_t n,
                std::vector<std::pair<std::string, std::string>>* out) {
    out->clear();
    std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
    if (begin.empty()) {
      iter->SeekToFirst();
    } else {
      iter->Seek(begin);
    }
    while (iter->Valid() && out->size() < n) {
      out->emplace_back(iter->key().ToString(), iter->value().ToString());
      iter->Next();
    }
    return iter->status();
  };
  t.wait_idle = [db] { db->WaitForBackgroundWork(); };
  t.memory_usage = [db] { return db->ApproximateMemoryUsage(); };
  return t;
}

Target MakeMultiInstanceTarget(const std::string& name, const std::vector<DB*>& dbs) {
  Target t;
  t.name = name;
  auto pick = [dbs](const Slice& k) {
    return dbs[Hash(k.data(), k.size(), 0x70324b56u) % dbs.size()];
  };
  t.put = [pick](const Slice& k, const Slice& v) { return pick(k)->Put(WriteOptions(), k, v); };
  t.get = [pick](const Slice& k, std::string* v) { return pick(k)->Get(ReadOptions(), k, v); };
  t.wait_idle = [dbs] {
    for (DB* db : dbs) {
      db->WaitForBackgroundWork();
    }
  };
  t.memory_usage = [dbs] {
    size_t total = 0;
    for (DB* db : dbs) {
      total += db->ApproximateMemoryUsage();
    }
    return total;
  };
  return t;
}

Target MakeP2kvsTarget(const std::string& name, P2KVS* store) {
  Target t;
  t.name = name;
  t.put = [store](const Slice& k, const Slice& v) { return store->Put(k, v); };
  t.get = [store](const Slice& k, std::string* v) { return store->Get(k, v); };
  t.scan = [store](const Slice& begin, size_t n,
                   std::vector<std::pair<std::string, std::string>>* out) {
    return store->Scan(begin, n, out);
  };
  t.wait_idle = [store] { store->WaitIdle().IgnoreError(); };
  t.memory_usage = [store] { return store->ApproximateMemoryUsage(); };
  return t;
}

Target MakeKvellTarget(const std::string& name, KvellStore* store) {
  Target t;
  t.name = name;
  t.put = [store](const Slice& k, const Slice& v) { return store->Put(k, v); };
  t.get = [store](const Slice& k, std::string* v) { return store->Get(k, v); };
  t.scan = [store](const Slice& begin, size_t n,
                   std::vector<std::pair<std::string, std::string>>* out) {
    return store->Scan(begin, n, out);
  };
  t.wait_idle = [] {};
  t.memory_usage = [store] { return store->ApproximateMemoryUsage(); };
  return t;
}

// --- Run driver ---

RunResult RunClosedLoop(int threads, uint64_t total_ops,
                        const std::function<void(int, uint64_t)>& op,
                        const std::function<void(int)>& per_thread_done) {
  RunResult result;
  result.ops = total_ops;
  std::vector<Histogram> latencies(static_cast<size_t>(threads));
  std::atomic<uint64_t> next_op{0};

  uint64_t start = NowNanos();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; t++) {
    pool.emplace_back([&, t] {
      Histogram& hist = latencies[static_cast<size_t>(t)];
      uint64_t sampled = 0;
      while (true) {
        uint64_t i = next_op.fetch_add(1, std::memory_order_relaxed);
        if (i >= total_ops) {
          break;
        }
        bool sample = (sampled++ & 0xf) == 0;
        uint64_t t0 = sample ? NowNanos() : 0;
        op(t, i);
        if (sample) {
          hist.Add(static_cast<double>(NowNanos() - t0) / 1000.0);
        }
      }
      if (per_thread_done) {
        per_thread_done(t);
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  result.seconds = static_cast<double>(NowNanos() - start) / 1e9;
  result.qps = result.seconds > 0 ? static_cast<double>(total_ops) / result.seconds : 0;
  for (auto& h : latencies) {
    result.latency.Merge(h);
  }
  return result;
}

void Preload(const Target& target, uint64_t n, size_t value_size) {
  for (uint64_t i = 0; i < n; i++) {
    Status s = target.put(Key(i), Value(i, value_size));
    if (!s.ok()) {
      std::fprintf(stderr, "preload failed at %llu: %s\n",
                   static_cast<unsigned long long>(i), s.ToString().c_str());
      std::abort();
    }
  }
  if (target.wait_idle) {
    target.wait_idle();
  }
}

OpenLoopResult RunOpenLoopPut(P2KVS* store, const OpenLoopConfig& config) {
  OpenLoopResult result;
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> expired{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> pending{0};
  std::atomic<uint64_t> max_lag_ns{0};
  Histogram ok_latency;
  std::mutex latency_mu;

  const uint64_t start = NowNanos();
  const double interval_ns = 1e9 * config.dispatchers / config.offered_qps;
  std::vector<std::thread> pool;
  for (int t = 0; t < config.dispatchers; t++) {
    pool.emplace_back([&] {
      uint64_t next_send = NowNanos();
      uint64_t i;
      while ((i = sent.fetch_add(1, std::memory_order_relaxed)) < config.ops) {
        // Hold the arrival schedule. Sleeping (not spinning) keeps the
        // dispatchers from starving the workers on small hosts; any slip is
        // reported as lag rather than silently shrinking the offered load.
        const uint64_t now = NowNanos();
        if (now < next_send) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(next_send - now));
        } else {
          uint64_t lag = now - next_send;
          uint64_t cur = max_lag_ns.load(std::memory_order_relaxed);
          while (lag > cur && !max_lag_ns.compare_exchange_weak(
                                  cur, lag, std::memory_order_relaxed)) {
          }
        }
        next_send += static_cast<uint64_t>(interval_ns);
        const uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % config.key_space;
        const uint64_t t0 = NowNanos();
        pending.fetch_add(1, std::memory_order_relaxed);
        store->PutAsync(
            Key(k), Value(i, config.value_size), [&, t0](const Status& s) {
              if (s.ok()) {
                ok.fetch_add(1, std::memory_order_relaxed);
                const double us = static_cast<double>(NowNanos() - t0) / 1000.0;
                std::lock_guard<std::mutex> lock(latency_mu);
                ok_latency.Add(us);
              } else if (s.IsBusy()) {
                shed.fetch_add(1, std::memory_order_relaxed);
              } else if (s.IsDeadlineExceeded()) {
                expired.fetch_add(1, std::memory_order_relaxed);
              } else {
                failed.fetch_add(1, std::memory_order_relaxed);
              }
              // Last touch of the driver's stacks: the drain loop below may
              // return the moment this hits zero.
              pending.fetch_sub(1, std::memory_order_release);
            });
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  // Arrivals done; wait for the tail of in-flight requests to resolve (the
  // interesting part under overload — this is where queues drain).
  while (pending.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  result.seconds = static_cast<double>(NowNanos() - start) / 1e9;
  result.attempted = config.ops;
  result.ok = ok.load(std::memory_order_relaxed);
  result.shed = shed.load(std::memory_order_relaxed);
  result.expired = expired.load(std::memory_order_relaxed);
  result.failed = failed.load(std::memory_order_relaxed);
  result.goodput_qps =
      result.seconds > 0 ? static_cast<double>(result.ok) / result.seconds : 0;
  result.ok_latency_us = ok_latency;
  result.max_lag_ms = static_cast<double>(max_lag_ns.load(std::memory_order_relaxed)) / 1e6;
  return result;
}

RunResult RunYcsb(const Target& target, const YcsbRunConfig& config) {
  const ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::ByName(config.workload);
  // One operation stream per thread, seeded deterministically.
  std::vector<std::unique_ptr<ycsb::OperationStream>> streams;
  for (int t = 0; t < config.threads; t++) {
    streams.push_back(std::make_unique<ycsb::OperationStream>(
        spec, config.key_space, 0x9e3779b9ull * static_cast<uint64_t>(t + 1)));
  }
  const size_t value_size = config.value_size;
  std::atomic<uint64_t> errors{0};
  RunResult result =
      RunClosedLoop(config.threads, config.ops, [&](int thread, uint64_t i) {
        ycsb::Operation op = streams[static_cast<size_t>(thread)]->Next();
        Status s;
        switch (op.type) {
          case ycsb::OpType::kInsert:
          case ycsb::OpType::kUpdate:
            s = target.put(op.key, Value(i, value_size));
            break;
          case ycsb::OpType::kRead: {
            std::string value;
            s = target.get(op.key, &value);
            if (s.IsNotFound()) {
              s = Status::OK();  // reads of not-yet-inserted latest keys
            }
            break;
          }
          case ycsb::OpType::kScan: {
            std::vector<std::pair<std::string, std::string>> out;
            if (target.scan) {
              s = target.scan(op.key, op.scan_length, &out);
            }
            break;
          }
          case ycsb::OpType::kReadModifyWrite: {
            std::string value;
            s = target.get(op.key, &value);
            if (s.ok() || s.IsNotFound()) {
              s = target.put(op.key, Value(i, value_size));
            }
            break;
          }
        }
        if (!s.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      });
  if (errors.load() > 0) {
    std::fprintf(stderr, "[%s %s] %llu errors\n", target.name.c_str(), spec.name.c_str(),
                 static_cast<unsigned long long>(errors.load()));
  }
  return result;
}

// --- Output ---

void PrintHeader(const std::string& id, const std::string& title, const std::string& expect) {
  std::printf("\n### %s — %s\n", id.c_str(), title.c_str());
  if (!expect.empty()) {
    std::printf("paper expectation: %s\n", expect.c_str());
  }
  std::printf("(scale=%.2f device_scale=%.2f cores=%u)\n", BenchScale(), DeviceScale(),
              std::thread::hardware_concurrency());
}

TablePrinter::TablePrinter(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void TablePrinter::AddRow(const std::vector<std::string>& cells) { rows_.push_back(cells); }

void TablePrinter::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); c++) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); c++) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < columns_.size(); c++) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::printf("|");
  for (size_t c = 0; c < columns_.size(); c++) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    print_row(row);
  }
  std::fflush(stdout);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string FmtQps(double qps) {
  char buf[64];
  if (qps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MQPS", qps / 1e6);
  } else if (qps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f KQPS", qps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f QPS", qps);
  }
  return buf;
}

// --- Sampling ---

std::vector<ResourceSample> SampleWhile(const std::function<void()>& body, int interval_ms) {
  std::vector<ResourceSample> samples;
  std::atomic<bool> done{false};
  CpuUsageSampler cpu;
  IoStatsSnapshot last_io = IoStats::Instance().Snapshot();
  uint64_t start = NowNanos();

  std::thread sampler([&] {
    uint64_t last_t = start;
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      uint64_t now = NowNanos();
      double dt = static_cast<double>(now - last_t) / 1e9;
      IoStatsSnapshot io = IoStats::Instance().Snapshot();
      IoStatsSnapshot delta = io.Since(last_io);
      ResourceSample s;
      s.at_seconds = static_cast<double>(now - start) / 1e9;
      s.write_mbps = dt > 0 ? static_cast<double>(delta.TotalWritten()) / 1e6 / dt : 0;
      s.read_mbps = dt > 0 ? static_cast<double>(delta.TotalRead()) / 1e6 / dt : 0;
      s.cpu_percent = cpu.SampleUtilizationPercent();
      s.rss_mb = static_cast<double>(CurrentRssBytes()) / 1e6;
      samples.push_back(s);
      last_io = io;
      last_t = now;
    }
  });

  body();
  done.store(true, std::memory_order_release);
  sampler.join();
  return samples;
}

SimulatedDevice MakeDevice(const DeviceProfile& profile) {
  SimulatedDevice dev;
  dev.base = NewMemEnv();
  dev.profile = profile.Scaled(DeviceScale());
  dev.env = NewThrottledEnv(dev.base.get(), dev.profile);
  return dev;
}

Options DefaultLsmOptions(Env* env) {
  Options options;
  options.env = env;
  // Scaled-down RocksDB-ish sizing so compactions actually run at benchmark
  // data volumes.
  options.write_buffer_size = 4 * 1024 * 1024;
  options.target_file_size = 2 * 1024 * 1024;
  options.max_bytes_for_level_base = 10 * 1024 * 1024;
  return options;
}

}  // namespace bench
}  // namespace p2kvs
