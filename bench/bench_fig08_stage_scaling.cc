// Figure 8 — throughput of the two foreground write stages in isolation,
// single-instance vs multi-instance, with and without request batching:
//   (a) WAL logging only (MemTable insert disabled),
//   (b) MemTable indexing only (WAL disabled).
//
// Paper result: logging scales poorly in a single instance (group-commit
// serialization) but batching helps ~2x; the multi-instance case peaks
// higher but is limited by SSD parallelism. MemTable updating scales better,
// and multi-instance (no shared skiplist) beats the shared concurrent
// skiplist clearly (10.5x vs 3.7x at 32 threads).

#include "bench/bench_common.h"

#include <cstdio>

#include "src/util/hash.h"

namespace p2kvs {
namespace bench {
namespace {

enum class Stage { kWalOnly, kMemTableOnly };

double RunCase(Stage stage, int threads, bool multi_instance, int batch_kvs, uint64_t ops) {
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  int instances = multi_instance ? threads : 1;
  std::vector<std::unique_ptr<DB>> dbs;
  std::vector<DB*> raw;
  for (int i = 0; i < instances; i++) {
    Options options = DefaultLsmOptions(dev.env.get());
    options.debug_disable_background = true;
    if (stage == Stage::kWalOnly) {
      options.debug_disable_memtable = true;
    } else {
      options.debug_disable_wal = true;
      // Unbounded memtable keeps the stage pure (no flush stalls).
      options.write_buffer_size = 1ull << 40;
    }
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/fig08-" + std::to_string(i), &db).ok()) {
      std::abort();
    }
    raw.push_back(db.get());
    dbs.push_back(std::move(db));
  }

  auto pick = [&](uint64_t k) { return raw[k % raw.size()]; };
  const uint64_t batches = ops / static_cast<uint64_t>(batch_kvs);
  RunResult run = RunClosedLoop(threads, batches, [&](int, uint64_t i) {
    uint64_t h = Hash64(reinterpret_cast<const char*>(&i), 8);
    DB* db = pick(h);
    if (batch_kvs == 1) {
      db->Put(WriteOptions(), Key(h % (ops * 4)), Value(i, 112)).IgnoreError();
    } else {
      WriteBatch batch;
      for (int b = 0; b < batch_kvs; b++) {
        batch.Put(Key((h + static_cast<uint64_t>(b) * 77) % (ops * 4)), Value(i, 112));
      }
      db->Write(WriteOptions(), &batch).IgnoreError();
    }
  });
  return run.qps * batch_kvs;  // KV-per-second
}

void RunStage(Stage stage, const char* label, uint64_t ops) {
  std::printf("\n-- %s --\n", label);
  TablePrinter table({"threads", "single", "single+batch8", "multi", "multi+batch8"});
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    if (threads > MaxThreads()) {
      break;
    }
    table.AddRow({std::to_string(threads),
                  FmtQps(RunCase(stage, threads, false, 1, ops)),
                  FmtQps(RunCase(stage, threads, false, 8, ops)),
                  FmtQps(RunCase(stage, threads, true, 1, ops)),
                  FmtQps(RunCase(stage, threads, true, 8, ops))});
  }
  table.Print();
}

void Run() {
  const uint64_t ops = Scaled(40000);
  PrintHeader("Figure 8", "WAL-only and MemTable-only stage scaling (128B KVs)",
              "batching lifts logging ~2x; multi-instance indexing scales best");
  RunStage(Stage::kWalOnly, "(a) write-ahead logging stage", ops);
  RunStage(Stage::kMemTableOnly, "(b) MemTable index-update stage", ops);
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
