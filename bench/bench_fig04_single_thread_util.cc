// Figure 4 — IO bandwidth and CPU utilization over time while a single user
// thread continuously inserts KV pairs on the NVMe model; 128 B and 1 KiB
// value sizes.
//
// Paper result: 128 B writes saturate the CPU core but use a small fraction
// of device bandwidth; 1 KiB writes shift the bottleneck toward IO (periodic
// compaction bursts dominate bandwidth).

#include "bench/bench_common.h"

#include <cstdio>

#include "src/util/clock.h"
#include "src/util/hash.h"

namespace p2kvs {
namespace bench {
namespace {

void RunCase(const char* label, size_t value_size, double seconds) {
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  Options options = DefaultLsmOptions(dev.env.get());
  std::unique_ptr<DB> db;
  if (!DB::Open(options, "/fig04", &db).ok()) {
    std::abort();
  }

  std::printf("\n-- %s values, single writer, %.1fs --\n", label, seconds);
  IoStats::Instance().Reset();
  std::atomic<uint64_t> written_ops{0};

  std::vector<ResourceSample> samples = SampleWhile(
      [&] {
        uint64_t deadline = NowNanos() + static_cast<uint64_t>(seconds * 1e9);
        uint64_t i = 0;
        WriteOptions wo;
        while (NowNanos() < deadline) {
          uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % 10000000;
          db->Put(wo, Key(k), Value(i, value_size)).IgnoreError();
          i++;
        }
        written_ops.store(i);
      },
      /*interval_ms=*/250);

  TablePrinter table({"t (s)", "write MB/s", "read MB/s", "CPU %"});
  for (const ResourceSample& s : samples) {
    table.AddRow({Fmt(s.at_seconds, 2), Fmt(s.write_mbps), Fmt(s.read_mbps),
                  Fmt(s.cpu_percent, 0)});
  }
  table.Print();

  IoStatsSnapshot io = IoStats::Instance().Snapshot();
  double user_bytes =
      static_cast<double>(written_ops.load()) * (static_cast<double>(value_size) + 16);
  double device_write_bw = static_cast<double>(dev.profile.write_bw_bytes_per_sec);
  std::printf("ops=%llu  user-data=%s  device-writes=%s  bw-utilization=%.1f%%\n",
              static_cast<unsigned long long>(written_ops.load()), FmtBytes(user_bytes).c_str(),
              FmtBytes(static_cast<double>(io.TotalWritten())).c_str(),
              device_write_bw > 0
                  ? 100.0 * static_cast<double>(io.TotalWritten()) / seconds / device_write_bw
                  : 0.0);
}

void Run() {
  PrintHeader("Figure 4", "single-writer IO bandwidth & CPU over time (NVMe model)",
              "small KVs: CPU-bound, bandwidth underused; 1KiB KVs: compaction IO dominates");
  double secs = 3.0 * (BenchScale() < 1 ? BenchScale() : 1.0) + 1.0;
  RunCase("128B", 112, secs);
  RunCase("1KB", 1008, secs);
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
