// Figure 5 — concurrent random writes: single-instance vs multi-instance
// (one instance per user thread), thread-count sweep; plus the IO bandwidth
// and CPU utilization of the single-instance case, and the effect of core
// pinning.
//
// Paper result: the single instance gains only ~3x at 32 threads (lock
// contention); multi-instance reaches ~80% higher peak; bandwidth used stays
// well under the device cap; foreground threads burn ~100% CPU each; pinning
// buys 10-15%.

#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>

#include "src/util/clock.h"
#include "src/util/hash.h"
#include "src/util/thread_util.h"

namespace p2kvs {
namespace bench {
namespace {

struct CaseResult {
  double qps = 0;
  double write_mbps = 0;
  double cpu_percent = 0;
};

CaseResult RunCase(int threads, bool multi_instance, bool pin, uint64_t ops) {
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  std::vector<std::unique_ptr<DB>> dbs;
  int instances = multi_instance ? threads : 1;
  std::vector<DB*> raw;
  for (int i = 0; i < instances; i++) {
    Options options = DefaultLsmOptions(dev.env.get());
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/fig05-" + std::to_string(i), &db).ok()) {
      std::abort();
    }
    raw.push_back(db.get());
    dbs.push_back(std::move(db));
  }
  Target target = instances == 1 ? MakeDbTarget("single", raw[0])
                                 : MakeMultiInstanceTarget("multi", raw);

  IoStats::Instance().Reset();
  IoStatsSnapshot io_before = IoStats::Instance().Snapshot();
  CpuUsageSampler cpu;
  CaseResult result;
  RunResult run = RunClosedLoop(threads, ops, [&](int t, uint64_t i) {
    if (pin && i == 0) {
      PinThreadToCpu(t);
    }
    uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 4);
    target.put(Key(k), Value(i, 112)).IgnoreError();
  });
  result.qps = run.qps;
  result.cpu_percent = cpu.SampleUtilizationPercent();
  IoStatsSnapshot delta = IoStats::Instance().Snapshot().Since(io_before);
  result.write_mbps = run.seconds > 0
                          ? static_cast<double>(delta.TotalWritten()) / 1e6 / run.seconds
                          : 0;
  return result;
}

// Observability overhead: the same write workload through p2KVS with the
// stats recorder on vs off. The recorder is a handful of worker-thread-local
// clock reads per dispatch, so the two runs must stay within a few percent.
double RunP2kvsCase(int threads, bool enable_stats, uint64_t ops,
                    uint32_t trace_sample_every = 0, size_t sketch_k = 0,
                    int metrics_window_ms = 0) {
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  P2kvsOptions options;
  options.env = dev.env.get();
  options.num_workers = std::min(4, MaxThreads());
  options.pin_workers = false;
  options.enable_stats = enable_stats;
  options.hot_key_sketch_k = sketch_k;
  options.metrics_window_ms = metrics_window_ms;
  if (trace_sample_every > 0) {
    options.trace.enabled = true;
    options.trace.sample_every = trace_sample_every;
  }
  options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
  std::unique_ptr<P2KVS> store;
  if (!P2KVS::Open(options, "/fig05-p2", &store).ok()) {
    std::abort();
  }
  RunResult run = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
    uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 4);
    store->Put(Key(k), Value(i, 112)).IgnoreError();
  });
  return run.qps;
}

void RunStatsOverhead(uint64_t ops) {
  std::printf("\n-- stats recorder overhead (p2KVS, %d workers) --\n",
              std::min(4, MaxThreads()));
  TablePrinter table({"threads", "stats-on QPS", "stats-off QPS", "overhead %"});
  for (int threads : {1, 4, 8}) {
    if (threads > MaxThreads()) {
      break;
    }
    // Interleaved best-of-3: scheduler noise on small shared hosts dwarfs the
    // few clock reads per dispatch being measured; peak throughput is the
    // stable statistic.
    double on = 0;
    double off = 0;
    for (int trial = 0; trial < 3; trial++) {
      on = std::max(on, RunP2kvsCase(threads, /*enable_stats=*/true, ops));
      off = std::max(off, RunP2kvsCase(threads, /*enable_stats=*/false, ops));
    }
    double overhead = off > 0 ? 100.0 * (off - on) / off : 0;
    table.AddRow({std::to_string(threads), FmtQps(on), FmtQps(off), Fmt(overhead, 2)});
  }
  table.Print();
}

// Tracing overhead, same methodology as the stats rows: tracing off (no
// Tracer constructed) vs sampled at 1% (one relaxed RMW per submit) vs
// sampled at 100% (one clock read + wait-free ring append per hop).
void RunTraceOverhead(uint64_t ops) {
  std::printf("\n-- request tracing overhead (p2KVS, %d workers) --\n",
              std::min(4, MaxThreads()));
  TablePrinter table({"threads", "trace-off QPS", "1%-sampled QPS", "100%-sampled QPS",
                      "1% ovh %", "100% ovh %"});
  for (int threads : {1, 4, 8}) {
    if (threads > MaxThreads()) {
      break;
    }
    double off = 0;
    double sampled = 0;
    double full = 0;
    for (int trial = 0; trial < 3; trial++) {
      off = std::max(off, RunP2kvsCase(threads, /*enable_stats=*/false, ops));
      sampled = std::max(sampled, RunP2kvsCase(threads, /*enable_stats=*/false, ops,
                                               /*trace_sample_every=*/100));
      full = std::max(full, RunP2kvsCase(threads, /*enable_stats=*/false, ops,
                                         /*trace_sample_every=*/1));
    }
    auto ovh = [&](double v) { return off > 0 ? 100.0 * (off - v) / off : 0; };
    table.AddRow({std::to_string(threads), FmtQps(off), FmtQps(sampled), FmtQps(full),
                  Fmt(ovh(sampled), 2), Fmt(ovh(full), 2)});
  }
  table.Print();
}

// Telemetry-plane overhead, same methodology. The baseline already runs the
// stats recorder (its cost is the RunStatsOverhead table above); the
// measured case adds the rest of the plane — the per-request hot-key sketch
// (a clock-free hash + small-map update) and 100ms windowed drains on the
// telemetry thread. The increment must stay within a few percent.
void RunTelemetryOverhead(uint64_t ops) {
  std::printf("\n-- telemetry plane overhead (p2KVS, %d workers, sketch k=32, 100ms windows) --\n",
              std::min(4, MaxThreads()));
  TablePrinter table({"threads", "stats-only QPS", "full-telemetry QPS", "overhead %"});
  for (int threads : {1, 4, 8}) {
    if (threads > MaxThreads()) {
      break;
    }
    double off = 0;
    double on = 0;
    for (int trial = 0; trial < 3; trial++) {
      off = std::max(off, RunP2kvsCase(threads, /*enable_stats=*/true, ops));
      on = std::max(on, RunP2kvsCase(threads, /*enable_stats=*/true, ops,
                                     /*trace_sample_every=*/0, /*sketch_k=*/32,
                                     /*metrics_window_ms=*/100));
    }
    double overhead = off > 0 ? 100.0 * (off - on) / off : 0;
    table.AddRow({std::to_string(threads), FmtQps(off), FmtQps(on), Fmt(overhead, 2)});
  }
  table.Print();
}

void Run() {
  const uint64_t ops = Scaled(30000);
  PrintHeader("Figure 5", "concurrent random writes: single vs multi instance (128B KV)",
              "single instance scales ~3x at best; multi-instance higher; IO far below device cap");

  TablePrinter table({"threads", "single QPS", "single+pin QPS", "multi QPS", "single MB/s",
                      "single CPU%"});
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    if (threads > MaxThreads()) {
      break;
    }
    CaseResult single = RunCase(threads, /*multi=*/false, /*pin=*/false, ops);
    CaseResult pinned = RunCase(threads, /*multi=*/false, /*pin=*/true, ops);
    CaseResult multi = RunCase(threads, /*multi=*/true, /*pin=*/false, ops);
    table.AddRow({std::to_string(threads), FmtQps(single.qps), FmtQps(pinned.qps),
                  FmtQps(multi.qps), Fmt(single.write_mbps), Fmt(single.cpu_percent, 0)});
  }
  table.Print();
  std::printf("note: on few-core hosts thread scaling flattens for CPU-bound stages;\n"
              "the single-vs-multi instance gap and low bandwidth utilization remain.\n");
  RunStatsOverhead(ops);
  RunTraceOverhead(ops);
  RunTelemetryOverhead(ops);
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
