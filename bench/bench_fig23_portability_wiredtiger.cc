// Figure 23 — portability: p2KVS over WTLite (B+-tree engine with a shared
// tree latch and no batch-write API). Random write and read scaling vs
// threads, p2KVS instances == threads.
//
// Paper result: WiredTiger's shared index serializes writers, so it barely
// scales; p2KVS reaches up to 8.4x writes / 15x reads over single-threaded
// WiredTiger, with diminishing returns past ~12 instances.

#include "bench/bench_common.h"

#include <cstdio>

#include "src/util/hash.h"

namespace p2kvs {
namespace bench {
namespace {

void Run() {
  const uint64_t ops = Scaled(20000);
  PrintHeader("Figure 23", "p2KVS on WTLite (B+-tree): random write / read scaling",
              "shared-latch WTLite flatlines; p2KVS scales with instances");

  TablePrinter table({"threads(=instances)", "WTLite write", "p2KVS write", "WTLite read",
                      "p2KVS read"});
  for (int threads : {1, 2, 4, 8, 16}) {
    if (threads > MaxThreads()) {
      break;
    }
    double wt_write, p2_write, wt_read, p2_read;
    {
      SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
      BTreeOptions options;
      options.env = dev.env.get();
      std::unique_ptr<BTreeStore> store;
      if (!BTreeStore::Open(options, "/f23", &store).ok()) std::abort();
      wt_write = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                   uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 2);
                   store->Put(Key(k), Value(i, 112)).IgnoreError();
                 }).qps;
      wt_read = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                  uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 2);
                  std::string v;
                  store->Get(Key(k), &v).IgnoreError();
                }).qps;
    }
    {
      SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
      BTreeOptions bt;
      bt.env = dev.env.get();
      P2kvsOptions options;
      options.env = dev.env.get();
      options.num_workers = threads;
      options.engine_factory = MakeWTLiteFactory(bt);
      std::unique_ptr<P2KVS> store;
      if (!P2KVS::Open(options, "/f23p", &store).ok()) std::abort();
      Target t = MakeP2kvsTarget("p2kvs-wt", store.get());
      p2_write = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                   uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 2);
                   t.put(Key(k), Value(i, 112)).IgnoreError();
                 }).qps;
      p2_read = RunClosedLoop(threads, ops, [&](int, uint64_t i) {
                  uint64_t k = Hash64(reinterpret_cast<const char*>(&i), 8) % (ops * 2);
                  std::string v;
                  t.get(Key(k), &v).IgnoreError();
                }).qps;
    }
    table.AddRow({std::to_string(threads), FmtQps(wt_write), FmtQps(p2_write), FmtQps(wt_read),
                  FmtQps(p2_read)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
