// Skew sensing: Zipfian theta sweep through p2KVS with the hot-key sketch
// on, reporting what the telemetry plane sees — per-partition QPS shares,
// imbalance coefficients, and the global top-K heavy hitters with their
// SpaceSaving error bounds.
//
// Expectation: imbalance grows with theta (uniform-ish at 0.5, one partition
// clearly hot by 1.2), and the top of the key ranking is the true Zipfian
// head. `--smoke` plants known hot keys under uniform noise and asserts the
// report finds them: the planted keys appear in the global top-K, the
// hottest partition is the one the dominant key hashes to, and the
// imbalance coefficient flags it. CI runs the smoke mode.

#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/skew.h"
#include "src/ycsb/generator.h"

namespace p2kvs {
namespace bench {
namespace {

constexpr int kWorkers = 4;
constexpr size_t kSketchK = 32;
constexpr uint64_t kKeySpace = 10000;

std::unique_ptr<P2KVS> OpenStore(SimulatedDevice* dev) {
  P2kvsOptions options;
  options.env = dev->env.get();
  options.num_workers = std::min(kWorkers, MaxThreads());
  options.pin_workers = false;
  options.enable_stats = true;
  options.hot_key_sketch_k = kSketchK;
  options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev->env.get()));
  std::unique_ptr<P2KVS> store;
  if (!P2KVS::Open(options, "/bench-skew", &store).ok()) {
    std::abort();
  }
  return store;
}

std::string ShareString(const obs::SkewReport& skew) {
  std::string out;
  for (const obs::PartitionLoad& p : skew.partitions) {
    if (!out.empty()) {
      out += '/';
    }
    out += Fmt(100.0 * p.share, 0);
  }
  return out + "%";
}

void RunThetaSweep(uint64_t ops) {
  PrintHeader("Skew sensing", "Zipfian theta sweep through the hot-key sketch",
              "imbalance grows with theta; the sketch ranks the Zipfian head first");
  TablePrinter table({"theta", "QPS", "per-partition share", "max/mean", "CV",
                      "top key", "top-8 coverage"});
  for (double theta : {0.5, 0.8, 0.99, 1.2}) {
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    std::unique_ptr<P2KVS> store = OpenStore(&dev);
    std::vector<ycsb::ZipfianGenerator> gens;
    const int threads = std::min(4, MaxThreads());
    for (int t = 0; t < threads; t++) {
      gens.emplace_back(kKeySpace, /*seed=*/1000 + t, theta);
    }
    RunResult run = RunClosedLoop(threads, ops, [&](int t, uint64_t i) {
      const std::string key = Key(gens[t].Next());
      if (i % 4 == 0) {
        store->Put(key, Value(i, 112)).IgnoreError();
      } else {
        std::string value;
        store->Get(key, &value).IgnoreError();
      }
    });
    store->WaitIdle().IgnoreError();
    P2kvsStats stats = store->GetStats();
    const obs::SkewReport& skew = stats.skew;
    double top8 = 0;
    uint64_t covered = 0;
    for (size_t i = 0; i < skew.top_keys.size() && i < 8; i++) {
      covered += skew.top_keys[i].count;
    }
    if (skew.sketched_ops > 0) {
      top8 = static_cast<double>(covered) / static_cast<double>(skew.sketched_ops);
    }
    table.AddRow({Fmt(theta, 2), FmtQps(run.qps), ShareString(skew),
                  Fmt(skew.imbalance_max_mean, 2), Fmt(skew.imbalance_cv, 2),
                  skew.top_keys.empty() ? "-" : skew.top_keys[0].key,
                  Fmt(100.0 * top8, 0) + "%"});
  }
  table.Print();
}

// Plants a known hot-key mix — 40% of ops on one key, 10% on each of two
// more, the rest uniform over the key space — and asserts the skew report
// recovers it. Returns 0 on success (the CI gate).
int RunSmoke() {
  const uint64_t ops = Scaled(20000);
  SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
  std::unique_ptr<P2KVS> store = OpenStore(&dev);

  const std::string hot0 = "hot-key-alpha";   // 40% of traffic
  const std::string hot1 = "hot-key-beta";    // 10%
  const std::string hot2 = "hot-key-gamma";   // 10%
  RunResult run = RunClosedLoop(std::min(4, MaxThreads()), ops, [&](int, uint64_t i) {
    const uint64_t r = i % 10;
    std::string key;
    if (r < 4) {
      key = hot0;
    } else if (r == 4) {
      key = hot1;
    } else if (r == 5) {
      key = hot2;
    } else {
      key = Key((i * 2654435761u) % kKeySpace);  // uniform noise
    }
    if (i % 4 == 0) {
      store->Put(key, Value(i, 112)).IgnoreError();
    } else {
      std::string value;
      store->Get(key, &value).IgnoreError();
    }
  });
  store->WaitIdle().IgnoreError();
  P2kvsStats stats = store->GetStats();
  Status check = stats.SelfCheck();
  if (!check.ok()) {
    std::fprintf(stderr, "SMOKE FAIL: SelfCheck: %s\n", check.ToString().c_str());
    return 1;
  }
  const obs::SkewReport& skew = stats.skew;

  auto rank_of = [&](const std::string& key) -> int {
    for (size_t i = 0; i < skew.top_keys.size(); i++) {
      if (skew.top_keys[i].key == key) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  int failures = 0;
  if (rank_of(hot0) != 0) {
    std::fprintf(stderr, "SMOKE FAIL: %s should rank first (rank %d)\n", hot0.c_str(),
                 rank_of(hot0));
    failures++;
  }
  for (const std::string& k : {hot1, hot2}) {
    if (rank_of(k) < 0) {
      std::fprintf(stderr, "SMOKE FAIL: planted hot key %s missing from top-K\n", k.c_str());
      failures++;
    }
  }
  const int expected_hot = store->PartitionOf(hot0);
  if (skew.hottest_partition != expected_hot) {
    std::fprintf(stderr, "SMOKE FAIL: hottest partition %d, expected %d (owner of %s)\n",
                 skew.hottest_partition, expected_hot, hot0.c_str());
    failures++;
  }
  // 40% of traffic on one of 4 partitions pushes its share well past the
  // 25% mean; the coefficient must flag it.
  if (skew.imbalance_max_mean < 1.3) {
    std::fprintf(stderr, "SMOKE FAIL: imbalance max/mean %.3f, expected > 1.3\n",
                 skew.imbalance_max_mean);
    failures++;
  }
  if (failures == 0) {
    std::printf("skew smoke OK: %s qps, top key %s (count %llu, err %llu), "
                "hottest partition %d, max/mean %.2f\n",
                FmtQps(run.qps).c_str(), skew.top_keys[0].key.c_str(),
                static_cast<unsigned long long>(skew.top_keys[0].count),
                static_cast<unsigned long long>(skew.top_keys[0].error),
                skew.hottest_partition, skew.imbalance_max_mean);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return p2kvs::bench::RunSmoke();
  }
  p2kvs::bench::RunThetaSweep(p2kvs::bench::Scaled(20000));
  return 0;
}
