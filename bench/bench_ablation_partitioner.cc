// Ablation (beyond the paper): partition strategy of the accessing layer
// (§4.2). Compares the paper's modular hash against range partitioning and
// two-choice hashing on (a) uniform writes, (b) zipfian point reads, and
// (c) short scans, and reports the load balance across workers.
//
// Expectation: hash balances everything but forks every scan; range keeps
// short scans on one instance but is skew-prone; two-choice tracks hash.

#include "bench/bench_common.h"

#include <cstdio>

#include "src/core/partitioner.h"
#include "src/util/hash.h"
#include "src/ycsb/generator.h"

namespace p2kvs {
namespace bench {
namespace {

struct Strategy {
  std::string name;
  Partitioner partitioner;
};

// Max/avg request share across workers (1.0 = perfectly balanced).
double Imbalance(const Partitioner& p, int workers, bool zipfian, uint64_t keys) {
  std::vector<uint64_t> counts(static_cast<size_t>(workers), 0);
  ycsb::ScrambledZipfianGenerator zgen(keys, 77);
  Random64 ugen(77);
  for (int i = 0; i < 50000; i++) {
    uint64_t index = zipfian ? zgen.Next() : ugen.Uniform(keys);
    std::string key = Key(index);
    counts[static_cast<size_t>(p(key, workers))]++;
  }
  uint64_t max = 0, total = 0;
  for (uint64_t c : counts) {
    max = std::max(max, c);
    total += c;
  }
  return static_cast<double>(max) * workers / static_cast<double>(total);
}

void Run() {
  const uint64_t records = Scaled(30000);
  const uint64_t ops = Scaled(20000);
  const int kWorkers = 4;
  const int kThreads = 8;
  PrintHeader("Ablation", "partition strategies: hash vs range vs two-choice (4 workers)",
              "hash balances skew; range keeps scans single-instance but is skew-prone");

  std::vector<std::string> boundaries;
  for (int i = 1; i < kWorkers; i++) {
    boundaries.push_back(Key(records * static_cast<uint64_t>(i) / kWorkers));
  }

  std::vector<Strategy> strategies;
  strategies.push_back({"hash", MakeHashPartitioner()});
  strategies.push_back({"range", MakeRangePartitioner(boundaries)});
  strategies.push_back({"two-choice", MakeTwoChoiceHashPartitioner()});

  TablePrinter table({"strategy", "write KQPS", "zipf read KQPS", "scan-10 QPS",
                      "imbalance (unif)", "imbalance (zipf)"});

  for (const Strategy& strategy : strategies) {
    SimulatedDevice dev = MakeDevice(DeviceProfile::NvmeSsd());
    P2kvsOptions options;
    options.env = dev.env.get();
    options.num_workers = kWorkers;
    options.engine_factory = MakeRocksLiteFactory(DefaultLsmOptions(dev.env.get()));
    options.partitioner = strategy.partitioner;
    std::unique_ptr<P2KVS> store;
    if (!P2KVS::Open(options, "/abl-" + strategy.name, &store).ok()) {
      std::abort();
    }
    Target target = MakeP2kvsTarget(strategy.name, store.get());

    // (a) uniform writes.
    Random64 wrnd(3);
    double write_qps = RunClosedLoop(kThreads, ops, [&](int, uint64_t i) {
                         target.put(Key(wrnd.Uniform(records)), Value(i, 112)).IgnoreError();
                       }).qps;
    Preload(target, records, 112);

    // (b) zipfian point reads.
    ycsb::ScrambledZipfianGenerator zgen(records, 9);
    std::mutex zmu;
    double read_qps = RunClosedLoop(kThreads, ops, [&](int, uint64_t) {
                        uint64_t k;
                        {
                          std::lock_guard<std::mutex> lock(zmu);
                          k = zgen.Next();
                        }
                        std::string value;
                        target.get(Key(k), &value).IgnoreError();
                      }).qps;

    // (c) short scans.
    Random64 srnd(5);
    double scan_qps = RunClosedLoop(1, std::max<uint64_t>(ops / 50, 50), [&](int, uint64_t) {
                        std::vector<std::pair<std::string, std::string>> out;
                        target.scan(Key(srnd.Uniform(records)), 10, &out).IgnoreError();
                      }).qps;

    table.AddRow({strategy.name, Fmt(write_qps / 1000), Fmt(read_qps / 1000), Fmt(scan_qps, 0),
                  Fmt(Imbalance(strategy.partitioner, kWorkers, false, records), 2),
                  Fmt(Imbalance(strategy.partitioner, kWorkers, true, records), 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace p2kvs

int main() {
  p2kvs::bench::Run();
  return 0;
}
