// Binary encoding primitives shared by the WAL, SST, MANIFEST and WriteBatch
// formats: little-endian fixed-width integers and LEB128-style varints.

#ifndef P2KVS_SRC_UTIL_CODING_H_
#define P2KVS_SRC_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/util/slice.h"

namespace p2kvs {

// --- Fixed-width little-endian encoding. ---

inline void EncodeFixed32(char* dst, uint32_t value) { memcpy(dst, &value, sizeof(value)); }
inline void EncodeFixed64(char* dst, uint64_t value) { memcpy(dst, &value, sizeof(value)); }

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

// --- Varint encoding. ---

// Writes the varint encoding of v into dst; returns one past the last byte.
char* EncodeVarint32(char* dst, uint32_t v);
char* EncodeVarint64(char* dst, uint64_t v);

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

// Appends varint-length-prefixed `value` to dst.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

// Parses a varint from [p, limit); returns one past the parsed bytes or
// nullptr on malformed input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

// Slice-consuming variants: advance *input past the parsed value. Return
// false on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

// Number of bytes the varint encoding of v occupies.
int VarintLength(uint64_t v);

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_CODING_H_
