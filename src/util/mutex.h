// Annotated mutex / condition-variable wrappers over the std primitives.
//
// libstdc++'s std::mutex carries no capability attributes, so clang's
// thread-safety analysis cannot reason about it. These thin wrappers attach
// the attributes (zero runtime cost — same layout, inlined calls) and are the
// only lock types the rest of the codebase should use:
//
//   Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//   void Touch() REQUIRES(mu_);       // caller must hold mu_
//   { MutexLock lock(&mu_); ... }     // RAII, analysis-visible
//
// CondVar is bound to one Mutex at construction (LevelDB port::CondVar
// style): Wait() must be called with that mutex held; it releases it while
// blocked and reacquires before returning, which the analysis models as
// "still held" across the call — exactly the monitor invariant.

#ifndef P2KVS_SRC_UTIL_MUTEX_H_
#define P2KVS_SRC_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/util/thread_annotations.h"

namespace p2kvs {

class CondVar;

// Exclusive mutex. Non-recursive, non-movable.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Dynamic counterpart of REQUIRES for code paths the static analysis
  // cannot follow (e.g. a lock handed over through an alias). No-op at
  // runtime; tells the analysis "trust me, it is held here".
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Reader/writer mutex. Writers use Lock/Unlock (exclusive capability),
// readers LockShared/UnlockShared. A GUARDED_BY(shared_mu_) field may be
// read under either mode but written only under the exclusive one.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock, visible to the analysis as a scoped capability.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// RAII exclusive lock over a SharedMutex (writer side).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// RAII shared lock over a SharedMutex (reader side).
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE_SHARED() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable bound to one Mutex for its whole lifetime. All Wait
// variants must be called with that mutex held. Internally adopts the
// already-held std::mutex for the duration of the wait and releases the RAII
// handle before returning, so ownership stays with the caller — the analysis
// (correctly) sees the mutex as held across the call.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Waits until notified or `deadline`; returns false on timeout.
  bool WaitUntil(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  // Waits until notified or `rel_time` elapses; returns false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(const std::chrono::duration<Rep, Period>& rel_time) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, rel_time);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_MUTEX_H_
