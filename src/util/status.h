// Status: lightweight error propagation without exceptions (Core Guidelines
// E.x for library boundaries that must stay allocation- and throw-free on hot
// paths). OK status carries no allocation at all.

#ifndef P2KVS_SRC_UTIL_STATUS_H_
#define P2KVS_SRC_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

#include "src/util/slice.h"

// Dropping a Status on the floor swallows an error; every function that
// reports failure through a Status (or another must-be-consumed handle) is
// marked P2KVS_NODISCARD so both compilers (-Wunused-result) and the
// status-discard rule of scripts/p2kvs_lint reject a bare `Foo();` call.
// A deliberately ignored result must say so: `Foo().IgnoreError();`.
#ifndef P2KVS_NODISCARD
#define P2KVS_NODISCARD [[nodiscard]]
#endif

namespace p2kvs {

// Severity classification for error governance (transient-fault handling):
// transient errors are safe to retry (the operation had no lasting effect and
// the condition is expected to clear, e.g. an injected flaky sync); hard
// errors indicate possible data loss or persistent failure and must degrade
// the owning partition instead of being retried blindly.
enum class StatusSeverity : unsigned char {
  kHard = 0,       // default: assume the worst
  kTransient = 1,  // retryable; no partial effect is left behind
};

class P2KVS_NODISCARD Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kIOError, msg, msg2);
  }
  // An IO error known to be retryable: the failed operation left no partial
  // state behind and the condition is expected to clear (EINTR-style).
  static Status TransientIOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kIOError, msg, msg2, StatusSeverity::kTransient);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kBusy, msg, msg2);
  }
  static Status Aborted(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kAborted, msg, msg2);
  }
  // The request's deadline passed before (or while) it could execute. A
  // semantic outcome, not a storage fault: it must never degrade a partition
  // and must never be auto-retried (the deadline is already gone — only the
  // client, with a fresh deadline, may resubmit).
  static Status DeadlineExceeded(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kDeadlineExceeded, msg, msg2);
  }

  bool ok() const { return state_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsNotSupported() const { return code() == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsIOError() const { return code() == Code::kIOError; }
  bool IsBusy() const { return code() == Code::kBusy; }
  bool IsAborted() const { return code() == Code::kAborted; }
  bool IsDeadlineExceeded() const { return code() == Code::kDeadlineExceeded; }

  StatusSeverity severity() const {
    return state_ == nullptr ? StatusSeverity::kHard : state_->severity;
  }
  // Retryable: bounded retry-with-backoff may clear it. Busy is inherently
  // transient (a resource conflict, not a device fault).
  bool IsTransient() const {
    return !ok() && (severity() == StatusSeverity::kTransient || IsBusy());
  }
  // Hard storage error: the owning partition should degrade to read-only
  // rather than keep accepting writes. NotFound / InvalidArgument /
  // NotSupported are semantic outcomes, not storage faults.
  bool IsHardStorageError() const {
    return (IsIOError() || IsCorruption()) && !IsTransient();
  }

  // Human-readable description, e.g. "IO error: <msg>: <msg2>".
  std::string ToString() const;

  // Explicitly consumes this Status without acting on it. The only sanctioned
  // way to drop a result: `env->RemoveFile(f).IgnoreError();` reads as a
  // decision, a bare `env->RemoveFile(f);` reads as a bug — and the compiler
  // ([[nodiscard]]) plus the p2kvs-lint status-discard rule reject the latter.
  void IgnoreError() const {}

 private:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,
    kCorruption,
    kNotSupported,
    kInvalidArgument,
    kIOError,
    kBusy,
    kAborted,
    kDeadlineExceeded,
  };

  struct State {
    Code code;
    StatusSeverity severity;
    std::string msg;
  };

  Status(Code code, const Slice& msg, const Slice& msg2,
         StatusSeverity severity = StatusSeverity::kHard);

  Code code() const { return state_ == nullptr ? Code::kOk : state_->code; }

  // Shared so Status is cheap to copy; error states are immutable.
  std::shared_ptr<const State> state_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_STATUS_H_
