// Hash functions: a murmur-style byte hash used by bloom filters, the block
// cache, and the p2KVS key-space partitioner.

#ifndef P2KVS_SRC_UTIL_HASH_H_
#define P2KVS_SRC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

#include "src/util/slice.h"

namespace p2kvs {

// Murmur-inspired 32-bit hash (leveldb-compatible construction).
uint32_t Hash(const char* data, size_t n, uint32_t seed);

inline uint32_t Hash(const Slice& s, uint32_t seed = 0xbc9f1d34) {
  return Hash(s.data(), s.size(), seed);
}

// 64-bit FNV-1a, used where more bits are wanted (e.g. sharded cache).
uint64_t Hash64(const char* data, size_t n);

inline uint64_t Hash64(const Slice& s) { return Hash64(s.data(), s.size()); }

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_HASH_H_
