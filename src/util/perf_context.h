// Per-thread write-path instrumentation, mirroring the latency breakdown in
// paper Figure 6: WAL time, MemTable time, WAL-lock wait, MemTable-lock wait,
// and Others (total minus the four). Each user thread accumulates into its
// own thread-local context with zero synchronization; benchmarks snapshot and
// merge per thread.

#ifndef P2KVS_SRC_UTIL_PERF_CONTEXT_H_
#define P2KVS_SRC_UTIL_PERF_CONTEXT_H_

#include <cstdint>

namespace p2kvs {

struct PerfContext {
  uint64_t wal_nanos = 0;             // encoding + appending + syncing the log
  uint64_t memtable_nanos = 0;        // skiplist insert / index update
  uint64_t wal_lock_nanos = 0;        // waiting to join/lead a write group
  uint64_t memtable_lock_nanos = 0;   // synchronization around memtable insert
  uint64_t total_write_nanos = 0;     // end-to-end time inside DB::Write
  uint64_t write_count = 0;           // number of DB::Write calls

  // Fault-path accounting (error governance): retries of transient storage
  // faults performed on this thread and the backoff time they cost. Benches
  // report these to quantify fault-path overhead.
  uint64_t retry_count = 0;
  uint64_t retry_backoff_nanos = 0;

  // Clock reads performed by trace emission on this thread (every trace
  // timestamp goes through TraceClockNanos()). Tests assert this stays 0 on
  // the worker thread when sampling is off — the tracing analogue of the
  // enable_stats zero-clock-read contract.
  uint64_t trace_clock_reads = 0;

  // Clock reads performed by the telemetry layer (hot-key sketch, metrics
  // windows) on this thread; every obs-layer timestamp goes through
  // ObsClockNanos(). Tests assert this stays 0 on the worker thread whether
  // telemetry is on or off: the sketch is clock-free and windowing reads the
  // clock only on the drain thread.
  uint64_t obs_clock_reads = 0;

  void Reset() { *this = PerfContext(); }

  void MergeFrom(const PerfContext& other) {
    wal_nanos += other.wal_nanos;
    memtable_nanos += other.memtable_nanos;
    wal_lock_nanos += other.wal_lock_nanos;
    memtable_lock_nanos += other.memtable_lock_nanos;
    total_write_nanos += other.total_write_nanos;
    write_count += other.write_count;
    retry_count += other.retry_count;
    retry_backoff_nanos += other.retry_backoff_nanos;
    trace_clock_reads += other.trace_clock_reads;
    obs_clock_reads += other.obs_clock_reads;
  }

  uint64_t others_nanos() const {
    uint64_t accounted = wal_nanos + memtable_nanos + wal_lock_nanos + memtable_lock_nanos;
    return total_write_nanos > accounted ? total_write_nanos - accounted : 0;
  }
};

// The calling thread's context. Enabled unconditionally; the cost is a few
// clock reads per write and only when the LSM write path is instrumented.
PerfContext& GetPerfContext();

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_PERF_CONTEXT_H_
