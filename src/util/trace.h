// Request-scoped tracing (tentpole of the observability follow-up to the
// stats spine): every sampled request carries a trace id from submit to
// completion, and each hop of the 2-D pipeline appends a fixed-size binary
// TraceEvent to a per-worker lock-free TraceRing. The rings double as an
// always-on flight recorder — on a hard error, a health transition to
// `failed`, or SIGUSR2, the last N events per worker are dumped — and a
// TraceExporter serializes them to Chrome/Perfetto trace_event JSON.
//
// Cost discipline (same contract as enable_stats):
//   * tracing disabled        — the Tracer is never constructed; hot-path
//     call sites guard on a null pointer / inactive TLS context and perform
//     zero clock reads and zero atomic RMWs;
//   * tracing on, unsampled   — one relaxed fetch_add per submit for the
//     sampling decision; no clock reads, no ring writes anywhere downstream
//     (the TLS context stays inactive, so engine-side emission is a single
//     thread-local null check);
//   * tracing on, sampled     — one clock read + one wait-free ring append
//     per event.
// Every trace timestamp goes through TraceClockNanos(), which counts into
// PerfContext::trace_clock_reads so tests can assert the zero-read claim the
// same way the stats overhead was verified.

#ifndef P2KVS_SRC_UTIL_TRACE_H_
#define P2KVS_SRC_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/util/clock.h"
#include "src/util/mutex.h"
#include "src/util/perf_context.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/util/trace_ring.h"

namespace p2kvs {

struct TraceConfig {
  bool enabled = false;
  // Sample 1 in N submitted data requests (1 = trace everything, 0 = trace
  // nothing at submit time). Errors are always traced regardless: a request
  // that hits a hard error is assigned a trace id at error time so the
  // flight recorder can name it.
  uint32_t sample_every = 128;
  // Per-worker ring capacity in events (rounded up to a power of two). The
  // ring overwrites on wrap; TraceRing::dropped() counts the loss.
  size_t ring_capacity = 8192;
  // Flight-recorder destination. Empty = "p2kvs_flight_<reason>.json" in the
  // working directory. Each dump overwrites the previous one.
  std::string dump_path;
  // Install a SIGUSR2 handler + watcher thread that dumps the flight
  // recorder on demand (kill -USR2 <pid>). One Tracer per process may
  // enable this.
  bool dump_on_sigusr2 = false;
};

// A monotonic clock read that is *counted*: the only way trace code is
// allowed to read the clock. Tests assert trace_clock_reads == 0 on the
// worker thread when sampling is off — the proof that tracing costs nothing
// until a request is actually sampled.
inline uint64_t TraceClockNanos() {
  GetPerfContext().trace_clock_reads += 1;
  return NowNanos();
}

// Thread-local emission scope. The worker activates it around a traced
// dispatch (and KVell forwards it across its internal queue), so engine
// internals — WAL append, memtable insert, slab slot write, retries, fault
// injection — can emit into the right ring without any plumbing through the
// engine interfaces. Inactive (ring == nullptr) outside traced dispatches,
// which makes every engine-side emission a single thread-local load + branch.
struct TraceContext {
  TraceRing* ring = nullptr;
  uint64_t trace_id = 0;
  uint64_t batch_id = 0;
  uint32_t worker_id = 0;

  bool active() const { return ring != nullptr; }
};

inline thread_local TraceContext t_trace_context;

inline TraceContext& CurrentTraceContext() { return t_trace_context; }

// RAII save/activate/restore of the calling thread's TraceContext. Restoring
// (rather than clearing) keeps nesting safe — e.g. a KVell internal worker
// processing requests inside an outer traced scope.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx) : saved_(t_trace_context) {
    t_trace_context = ctx;
  }
  ~ScopedTraceContext() { t_trace_context = saved_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

inline void TraceAppend(TraceRing* ring, TraceEventType type, uint32_t worker_id,
                        uint64_t trace_id, uint64_t arg1, uint64_t arg2) {
  TraceEvent event;
  event.trace_id = trace_id;
  event.ts_nanos = TraceClockNanos();
  event.arg1 = arg1;
  event.arg2 = arg2;
  event.type = type;
  event.worker_id = worker_id;
  ring->Append(event);
}

// Engine-side event tied to the current traced dispatch: arg1 is the batch
// id from the scope (links WAL-append spans back to the OBM merge events of
// the group they carried), arg2 is caller-provided (bytes / entry count).
inline void TraceEmitEngine(TraceEventType type, uint64_t arg2) {
  const TraceContext& ctx = t_trace_context;
  if (!ctx.active()) return;
  TraceAppend(ctx.ring, type, ctx.worker_id, ctx.trace_id, ctx.batch_id, arg2);
}

// Fault-path event (retry / injected fault) with free-form args.
inline void TraceEmitAux(TraceEventType type, uint64_t arg1, uint64_t arg2) {
  const TraceContext& ctx = t_trace_context;
  if (!ctx.active()) return;
  TraceAppend(ctx.ring, type, ctx.worker_id, ctx.trace_id, arg1, arg2);
}

// Compact status encoding for trace args (Status::code() is private; this is
// the stable wire form used in events and the exporter).
inline uint64_t TraceStatusCode(const Status& s) {
  if (s.ok()) return 0;
  if (s.IsNotFound()) return 1;
  if (s.IsAborted()) return 2;
  if (s.IsBusy()) return 3;
  if (s.IsIOError()) return 4;
  if (s.IsCorruption()) return 5;
  if (s.IsDeadlineExceeded()) return 7;
  return 6;
}

// Owns one TraceRing per worker plus the sampling state, lifecycle counters
// (SelfCheck feeds on them), and the flight-recorder dump machinery.
class Tracer {
 public:
  Tracer(const TraceConfig& config, int num_workers);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TraceConfig& config() const { return config_; }
  int num_rings() const { return static_cast<int>(rings_.size()); }
  TraceRing* ring(int worker_id) { return rings_[static_cast<size_t>(worker_id)].get(); }
  const TraceRing* ring(int worker_id) const {
    return rings_[static_cast<size_t>(worker_id)].get();
  }

  // Sampling decision at submit time; returns the new trace id, or 0 for an
  // unsampled request. One relaxed RMW on the unsampled path.
  uint64_t SampleSubmit() {
    if (config_.sample_every == 0) return 0;
    if (config_.sample_every > 1) {
      const uint64_t n = submit_seq_.fetch_add(1, std::memory_order_relaxed);
      if (n % config_.sample_every != 0) return 0;
    }
    sampled_submitted_.fetch_add(1, std::memory_order_relaxed);
    return NewTraceId();
  }

  // Out-of-band trace id for always-trace-on-error: a request that was not
  // sampled still gets an identity the moment it hits a hard error.
  uint64_t NewTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Called by the worker exactly once per sampled request it completes
  // (normal completion or reject — not submit-side aborts, which never reach
  // a worker). Pairs with SampleSubmit for the SelfCheck lifecycle invariant.
  void CountSampledComplete() {
    sampled_completed_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t sampled_submitted() const {
    return sampled_submitted_.load(std::memory_order_relaxed);
  }
  uint64_t sampled_completed() const {
    return sampled_completed_.load(std::memory_order_relaxed);
  }
  // Events appended across all rings, pre-overwrite.
  uint64_t events_appended() const;
  // Events lost to ring wrap across all rings (no silent loss: surfaced in
  // GetStats() and checked by SelfCheck for monotonic sanity).
  uint64_t events_dropped() const;
  uint64_t flight_dumps() const {
    return flight_dumps_.load(std::memory_order_relaxed);
  }

  // Racy-read snapshot of every ring (oldest-first per worker).
  std::vector<std::vector<TraceEvent>> SnapshotAll() const;

  // Serializes the current ring contents to Perfetto trace_event JSON.
  std::string ExportJson(const std::string& reason = std::string()) const;
  Status ExportToFile(const std::string& path,
                      const std::string& reason = std::string()) const;

  // Flight-recorder dump: writes the last N events per worker to
  // config.dump_path (see TraceConfig). Serialized; safe from any thread,
  // including the worker thread that just hit the error.
  void DumpFlightRecorder(const std::string& reason) EXCLUDES(dump_mu_);

 private:
  void WatcherLoop();

  const TraceConfig config_;
  std::vector<std::unique_ptr<TraceRing>> rings_;

  alignas(64) std::atomic<uint64_t> submit_seq_{0};
  std::atomic<uint64_t> next_trace_id_{0};
  std::atomic<uint64_t> sampled_submitted_{0};
  std::atomic<uint64_t> sampled_completed_{0};
  std::atomic<uint64_t> flight_dumps_{0};

  Mutex dump_mu_;  // serializes concurrent flight-recorder dumps

  // SIGUSR2 watcher (only when config.dump_on_sigusr2).
  std::thread watcher_;
  Mutex watcher_mu_;
  CondVar watcher_cv_{&watcher_mu_};
  bool watcher_stop_ GUARDED_BY(watcher_mu_) = false;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_TRACE_H_
