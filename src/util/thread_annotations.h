// Clang thread-safety annotation macros (no-ops on GCC and MSVC).
//
// These turn the repo's locking conventions into a compile-time contract:
// a field declared GUARDED_BY(mu_) cannot be touched without holding mu_,
// and a method declared REQUIRES(mu_) cannot be called without it — clang
// rejects the build instead of leaving the invariant to prose comments and
// TSan luck. Build with -DP2KVS_THREAD_SAFETY=ON under clang to enforce
// (-Wthread-safety -Wthread-safety-beta, warnings promoted to errors); the
// negative-compilation tests in tests/thread_annotations_compile/ prove the
// enforcement actually rejects violations.
//
// Use with the p2kvs::Mutex / p2kvs::SharedMutex wrappers in
// src/util/mutex.h — std::mutex itself carries no capability attributes, so
// the analysis cannot see it.
//
// Macro semantics (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   GUARDED_BY(mu)      field: all reads/writes need mu (reads: shared ok)
//   PT_GUARDED_BY(mu)   pointer field: the pointee needs mu, the pointer not
//   REQUIRES(mu)        function: caller must hold mu exclusively
//   REQUIRES_SHARED(mu) function: caller must hold mu at least shared
//   ACQUIRE/RELEASE     function acquires/releases mu (lock wrappers)
//   EXCLUDES(mu)        function must NOT be entered with mu held
//   CAPABILITY(name)    class is a lockable capability (mutex wrappers)
//   SCOPED_CAPABILITY   RAII class that acquires in ctor, releases in dtor
//
// Note: the analysis deliberately skips constructors and destructors (it
// assumes single ownership there), is not inter-procedural, and cannot see
// through aliases — where a protocol (not a lock) guarantees exclusivity,
// say so in a comment next to the un-annotated field.

#ifndef P2KVS_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define P2KVS_SRC_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_GENERIC
#define RELEASE_GENERIC(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE_SHARED
#define TRY_ACQUIRE_SHARED(...) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#endif

#ifndef ASSERT_SHARED_CAPABILITY
#define ASSERT_SHARED_CAPABILITY(x) \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  P2KVS_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
#endif

#endif  // P2KVS_SRC_UTIL_THREAD_ANNOTATIONS_H_
