// Process resource sampling for Table 2 and Figure 21: resident memory and
// cumulative CPU time, read from /proc on Linux with portable fallbacks.

#ifndef P2KVS_SRC_UTIL_RESOURCE_USAGE_H_
#define P2KVS_SRC_UTIL_RESOURCE_USAGE_H_

#include <cstdint>

namespace p2kvs {

// Resident set size of this process in bytes (0 if unavailable).
uint64_t CurrentRssBytes();

// Total CPU time (user+system, all threads) consumed by this process, in
// nanoseconds.
uint64_t ProcessCpuNanos();

// Utility for computing CPU utilization over an interval, normalized to a
// single core: 100% == one core fully busy (so 8 busy cores report 800%).
class CpuUsageSampler {
 public:
  CpuUsageSampler();

  // Percent-of-one-core CPU consumed since the previous call (or creation).
  double SampleUtilizationPercent();

 private:
  uint64_t last_cpu_nanos_;
  uint64_t last_wall_nanos_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_RESOURCE_USAGE_H_
