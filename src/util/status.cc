#include "src/util/status.h"

namespace p2kvs {

Status::Status(Code code, const Slice& msg, const Slice& msg2, StatusSeverity severity) {
  std::string m = msg.ToString();
  if (!msg2.empty()) {
    m.append(": ");
    m.append(msg2.data(), msg2.size());
  }
  state_ = std::make_shared<const State>(State{code, severity, std::move(m)});
}

std::string Status::ToString() const {
  if (state_ == nullptr) {
    return "OK";
  }
  const char* type = nullptr;
  switch (state_->code) {
    case Code::kOk:
      type = "OK";
      break;
    case Code::kNotFound:
      type = "NotFound: ";
      break;
    case Code::kCorruption:
      type = "Corruption: ";
      break;
    case Code::kNotSupported:
      type = "Not supported: ";
      break;
    case Code::kInvalidArgument:
      type = "Invalid argument: ";
      break;
    case Code::kIOError:
      type = "IO error: ";
      break;
    case Code::kBusy:
      type = "Busy: ";
      break;
    case Code::kAborted:
      type = "Aborted: ";
      break;
    case Code::kDeadlineExceeded:
      type = "Deadline exceeded: ";
      break;
  }
  std::string result(type);
  result.append(state_->msg);
  if (state_->severity == StatusSeverity::kTransient) {
    result.append(" (transient)");
  }
  return result;
}

}  // namespace p2kvs
