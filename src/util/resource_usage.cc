#include "src/util/resource_usage.h"

#include <sys/resource.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "src/util/clock.h"

namespace p2kvs {

uint64_t CurrentRssBytes() {
#if defined(__linux__)
  FILE* f = fopen("/proc/self/statm", "r");
  if (f != nullptr) {
    long total = 0;
    long resident = 0;
    int n = fscanf(f, "%ld %ld", &total, &resident);
    fclose(f);
    if (n == 2) {
      long page = sysconf(_SC_PAGESIZE);
      return static_cast<uint64_t>(resident) * static_cast<uint64_t>(page);
    }
  }
#endif
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;  // kilobytes on Linux
  }
  return 0;
}

uint64_t ProcessCpuNanos() {
#if defined(__linux__)
  struct timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull + static_cast<uint64_t>(ts.tv_nsec);
  }
#endif
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    uint64_t user = static_cast<uint64_t>(ru.ru_utime.tv_sec) * 1000000000ull +
                    static_cast<uint64_t>(ru.ru_utime.tv_usec) * 1000ull;
    uint64_t sys = static_cast<uint64_t>(ru.ru_stime.tv_sec) * 1000000000ull +
                   static_cast<uint64_t>(ru.ru_stime.tv_usec) * 1000ull;
    return user + sys;
  }
  return 0;
}

CpuUsageSampler::CpuUsageSampler() : last_cpu_nanos_(ProcessCpuNanos()), last_wall_nanos_(NowNanos()) {}

double CpuUsageSampler::SampleUtilizationPercent() {
  uint64_t cpu = ProcessCpuNanos();
  uint64_t wall = NowNanos();
  double cpu_delta = static_cast<double>(cpu - last_cpu_nanos_);
  double wall_delta = static_cast<double>(wall - last_wall_nanos_);
  last_cpu_nanos_ = cpu;
  last_wall_nanos_ = wall;
  if (wall_delta <= 0) {
    return 0;
  }
  return 100.0 * cpu_delta / wall_delta;
}

}  // namespace p2kvs
