// Thread affinity and naming helpers. p2KVS pins each KVS-worker to a
// dedicated core (paper §4.1); on machines with fewer cores than workers the
// pinning wraps around, which keeps the code path exercised without failing.

#ifndef P2KVS_SRC_UTIL_THREAD_UTIL_H_
#define P2KVS_SRC_UTIL_THREAD_UTIL_H_

#include <string>

namespace p2kvs {

// Number of logical CPUs visible to this process.
int NumCpus();

// Pins the calling thread to `cpu % NumCpus()`. Returns true on success.
bool PinThreadToCpu(int cpu);

// Best-effort thread naming (visible in /proc and debuggers).
void SetThreadName(const std::string& name);

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_THREAD_UTIL_H_
