// Token-bucket rate limiter used by the device-model Env to enforce a
// bandwidth envelope (bytes/second). Thread-safe; requesters block until
// tokens are available, which models queueing at a saturated device.

#ifndef P2KVS_SRC_UTIL_RATE_LIMITER_H_
#define P2KVS_SRC_UTIL_RATE_LIMITER_H_

#include <cstdint>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {

class RateLimiter {
 public:
  // rate_per_sec: tokens (bytes) replenished per second. 0 disables limiting.
  // burst: bucket capacity; defaults to 1/20th of a second worth of tokens.
  explicit RateLimiter(uint64_t rate_per_sec, uint64_t burst = 0);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  // Blocks until `tokens` tokens have been consumed. Requests larger than the
  // burst size are split internally.
  void Request(uint64_t tokens);

  bool enabled() const { return rate_per_sec_ > 0; }
  uint64_t rate_per_sec() const { return rate_per_sec_; }

 private:
  void RequestChunk(uint64_t tokens) EXCLUDES(mu_);
  void Refill(uint64_t now_nanos) REQUIRES(mu_);

  const uint64_t rate_per_sec_;
  const uint64_t burst_;

  Mutex mu_;
  CondVar cv_{&mu_};
  uint64_t available_ GUARDED_BY(mu_);
  uint64_t last_refill_nanos_ GUARDED_BY(mu_);
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_RATE_LIMITER_H_
