// Fast pseudo-random number generation for workload generators and tests.
// Not cryptographic.

#ifndef P2KVS_SRC_UTIL_RANDOM_H_
#define P2KVS_SRC_UTIL_RANDOM_H_

#include <cstdint>

namespace p2kvs {

// Lehmer-style PRNG (leveldb-compatible): multiplicative LCG modulo the
// Mersenne prime 2^31-1.
class Random {
 public:
  explicit Random(uint32_t s) : seed_(s & 0x7fffffffu) {
    if (seed_ == 0 || seed_ == 2147483647L) {
      seed_ = 1;
    }
  }

  uint32_t Next() {
    static const uint32_t M = 2147483647L;  // 2^31-1
    static const uint64_t A = 16807;        // bits 14, 8, 7, 5, 2, 1, 0
    uint64_t product = seed_ * A;
    seed_ = static_cast<uint32_t>((product >> 31) + (product & M));
    if (seed_ > M) {
      seed_ -= M;
    }
    return seed_;
  }

  // Uniform in [0, n-1]; n must be > 0.
  uint32_t Uniform(int n) { return Next() % n; }

  // True with probability 1/n.
  bool OneIn(int n) { return (Next() % n) == 0; }

  // Skewed: picks base in [0, max_log] uniformly then returns uniform in
  // [0, 2^base - 1]; favors small numbers with a long tail.
  uint32_t Skewed(int max_log) { return Uniform(1 << Uniform(max_log + 1)); }

 private:
  uint32_t seed_;
};

// splitmix64/xorshift-based 64-bit generator, for key-space sized draws.
class Random64 {
 public:
  explicit Random64(uint64_t s) : state_(s ? s : 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t state_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_RANDOM_H_
