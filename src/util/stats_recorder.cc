#include "src/util/stats_recorder.h"

#include <cstdio>

namespace p2kvs {

void WorkerStatsSnapshot::MergeFrom(const WorkerStatsSnapshot& other) {
  write_batches += other.write_batches;
  writes_batched += other.writes_batched;
  read_batches += other.read_batches;
  reads_batched += other.reads_batched;
  singles += other.singles;

  queue_wait_nanos += other.queue_wait_nanos;
  batch_build_nanos += other.batch_build_nanos;
  execute_nanos += other.execute_nanos;
  complete_nanos += other.complete_nanos;
  end_to_end_nanos += other.end_to_end_nanos;

  queue_wait_us.Merge(other.queue_wait_us);
  execute_us.Merge(other.execute_us);
  end_to_end_us.Merge(other.end_to_end_us);
  batch_size.Merge(other.batch_size);

  engine.MergeFrom(other.engine);

  fg_bytes_written += other.fg_bytes_written;
  fg_bytes_read += other.fg_bytes_read;
  fg_write_ops += other.fg_write_ops;
  fg_read_ops += other.fg_read_ops;

  // The merged health state is the worst (largest) of the inputs.
  if (other.health_state > health_state) {
    health_state = other.health_state;
  }
  health_transitions += other.health_transitions;
  degraded_rejects += other.degraded_rejects;
  resume_attempts += other.resume_attempts;
  queue_depth += other.queue_depth;

  submitted += other.submitted;
  completed += other.completed;
  shed += other.shed;
  expired_at_dequeue += other.expired_at_dequeue;
  expired_pre_execute += other.expired_pre_execute;
  breaker_trips += other.breaker_trips;
  retries_denied += other.retries_denied;
  admission_overloaded = admission_overloaded || other.admission_overloaded;

  // Sketches concatenate; consumers aggregate by key hash via obs::MergeTopK
  // (workers partition the key space, so per-key counts never overlap).
  hot_keys.total_ops += other.hot_keys.total_ops;
  hot_keys.entries.insert(hot_keys.entries.end(), other.hot_keys.entries.begin(),
                          other.hot_keys.entries.end());
}

std::string WorkerStatsSnapshot::ToJson() const {
  char buf[512];
  std::string json = "{";
  std::snprintf(buf, sizeof(buf),
                "\"worker_id\":%d,\"write_batches\":%llu,\"writes_batched\":%llu,"
                "\"read_batches\":%llu,\"reads_batched\":%llu,\"singles\":%llu,"
                "\"requests_executed\":%llu,",
                worker_id, static_cast<unsigned long long>(write_batches),
                static_cast<unsigned long long>(writes_batched),
                static_cast<unsigned long long>(read_batches),
                static_cast<unsigned long long>(reads_batched),
                static_cast<unsigned long long>(singles),
                static_cast<unsigned long long>(requests_executed()));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "\"queue_wait_nanos\":%llu,\"batch_build_nanos\":%llu,"
                "\"execute_nanos\":%llu,\"complete_nanos\":%llu,\"end_to_end_nanos\":%llu,",
                static_cast<unsigned long long>(queue_wait_nanos),
                static_cast<unsigned long long>(batch_build_nanos),
                static_cast<unsigned long long>(execute_nanos),
                static_cast<unsigned long long>(complete_nanos),
                static_cast<unsigned long long>(end_to_end_nanos));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "\"engine\":{\"wal_nanos\":%llu,\"memtable_nanos\":%llu,"
                "\"wal_lock_nanos\":%llu,\"memtable_lock_nanos\":%llu,"
                "\"total_write_nanos\":%llu,\"write_count\":%llu,"
                "\"retry_count\":%llu,\"retry_backoff_nanos\":%llu},",
                static_cast<unsigned long long>(engine.wal_nanos),
                static_cast<unsigned long long>(engine.memtable_nanos),
                static_cast<unsigned long long>(engine.wal_lock_nanos),
                static_cast<unsigned long long>(engine.memtable_lock_nanos),
                static_cast<unsigned long long>(engine.total_write_nanos),
                static_cast<unsigned long long>(engine.write_count),
                static_cast<unsigned long long>(engine.retry_count),
                static_cast<unsigned long long>(engine.retry_backoff_nanos));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "\"fg_bytes_written\":%llu,\"fg_bytes_read\":%llu,"
                "\"fg_write_ops\":%llu,\"fg_read_ops\":%llu,",
                static_cast<unsigned long long>(fg_bytes_written),
                static_cast<unsigned long long>(fg_bytes_read),
                static_cast<unsigned long long>(fg_write_ops),
                static_cast<unsigned long long>(fg_read_ops));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "\"health_state\":%d,\"health_transitions\":%llu,"
                "\"degraded_rejects\":%llu,\"resume_attempts\":%llu,\"queue_depth\":%llu,",
                health_state, static_cast<unsigned long long>(health_transitions),
                static_cast<unsigned long long>(degraded_rejects),
                static_cast<unsigned long long>(resume_attempts),
                static_cast<unsigned long long>(queue_depth));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "\"submitted\":%llu,\"completed\":%llu,\"shed\":%llu,"
                "\"expired_at_dequeue\":%llu,\"expired_pre_execute\":%llu,"
                "\"breaker_trips\":%llu,\"retries_denied\":%llu,"
                "\"admission_overloaded\":%s,",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(expired_at_dequeue),
                static_cast<unsigned long long>(expired_pre_execute),
                static_cast<unsigned long long>(breaker_trips),
                static_cast<unsigned long long>(retries_denied),
                admission_overloaded ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof(buf), "\"sketched_ops\":%llu,\"sketch_entries\":%llu,",
                static_cast<unsigned long long>(hot_keys.total_ops),
                static_cast<unsigned long long>(hot_keys.entries.size()));
  json += buf;
  json += "\"queue_wait_us\":" + queue_wait_us.ToJson();
  json += ",\"execute_us\":" + execute_us.ToJson();
  json += ",\"end_to_end_us\":" + end_to_end_us.ToJson();
  json += ",\"batch_size\":" + batch_size.ToJson();
  json += "}";
  return json;
}

}  // namespace p2kvs
