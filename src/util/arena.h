// Arena: bump allocator backing MemTable skiplist nodes and key/value copies.
// All memory is reclaimed at once when the arena is destroyed, which matches
// the MemTable lifecycle (build, freeze, flush, drop).
//
// Allocation is thread-safe (a short critical section around the bump
// pointer): the concurrent-MemTable write path allocates entries and
// skiplist nodes from many group followers at once (RocksDB uses a
// ConcurrentArena for the same reason).

#ifndef P2KVS_SRC_UTIL_ARENA_H_
#define P2KVS_SRC_UTIL_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {

class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns a pointer to a newly allocated block of `bytes` bytes.
  char* Allocate(size_t bytes);

  // Allocate with the alignment guarantees of malloc (8 bytes here).
  char* AllocateAligned(size_t bytes);

  // Estimate of the total memory footprint of data allocated by the arena.
  size_t MemoryUsage() const { return memory_usage_.load(std::memory_order_relaxed); }

 private:
  char* AllocateLocked(size_t bytes) REQUIRES(mu_);
  char* AllocateFallback(size_t bytes) REQUIRES(mu_);
  char* AllocateNewBlock(size_t block_bytes) REQUIRES(mu_);

  Mutex mu_;
  char* alloc_ptr_ GUARDED_BY(mu_);
  size_t alloc_bytes_remaining_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<char[]>> blocks_ GUARDED_BY(mu_);
  std::atomic<size_t> memory_usage_;
};

inline char* Arena::AllocateLocked(size_t bytes) {
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  MutexLock lock(&mu_);
  return AllocateLocked(bytes);
}

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_ARENA_H_
