#include "src/util/comparator.h"

#include <algorithm>

namespace p2kvs {

namespace {

class BytewiseComparatorImpl final : public Comparator {
 public:
  int Compare(const Slice& a, const Slice& b) const override { return a.compare(b); }

  const char* Name() const override { return "p2kvs.BytewiseComparator"; }

  void FindShortestSeparator(std::string* start, const Slice& limit) const override {
    // Find the length of the common prefix.
    size_t min_length = std::min(start->size(), limit.size());
    size_t diff_index = 0;
    while ((diff_index < min_length) && ((*start)[diff_index] == limit[diff_index])) {
      diff_index++;
    }

    if (diff_index >= min_length) {
      // One string is a prefix of the other; no shortening possible.
      return;
    }
    uint8_t diff_byte = static_cast<uint8_t>((*start)[diff_index]);
    if (diff_byte < static_cast<uint8_t>(0xff) &&
        diff_byte + 1 < static_cast<uint8_t>(limit[diff_index])) {
      (*start)[diff_index]++;
      start->resize(diff_index + 1);
    }
  }

  void FindShortSuccessor(std::string* key) const override {
    // Increment the first byte that is not 0xff and truncate.
    size_t n = key->size();
    for (size_t i = 0; i < n; i++) {
      const uint8_t byte = static_cast<uint8_t>((*key)[i]);
      if (byte != 0xff) {
        (*key)[i] = static_cast<char>(byte + 1);
        key->resize(i + 1);
        return;
      }
    }
    // key is a run of 0xff; leave unchanged.
  }
};

}  // namespace

const Comparator* BytewiseComparator() {
  static BytewiseComparatorImpl comparator;
  return &comparator;
}

}  // namespace p2kvs
