#include "src/util/rate_limiter.h"

#include <algorithm>

#include "src/util/clock.h"

namespace p2kvs {

RateLimiter::RateLimiter(uint64_t rate_per_sec, uint64_t burst)
    : rate_per_sec_(rate_per_sec),
      burst_(burst != 0 ? burst : std::max<uint64_t>(rate_per_sec / 20, 1)),
      available_(burst_),
      last_refill_nanos_(NowNanos()) {}

void RateLimiter::Request(uint64_t tokens) {
  if (!enabled() || tokens == 0) {
    return;
  }
  while (tokens > 0) {
    uint64_t chunk = std::min(tokens, burst_);
    RequestChunk(chunk);
    tokens -= chunk;
  }
}

void RateLimiter::Refill(uint64_t now_nanos) {
  if (now_nanos <= last_refill_nanos_) {
    return;
  }
  uint64_t elapsed = now_nanos - last_refill_nanos_;
  uint64_t add = static_cast<uint64_t>(static_cast<double>(elapsed) * rate_per_sec_ / 1e9);
  if (add > 0) {
    available_ = std::min(available_ + add, burst_);
    last_refill_nanos_ = now_nanos;
  }
}

void RateLimiter::RequestChunk(uint64_t tokens) {
  MutexLock lock(&mu_);
  for (;;) {
    Refill(NowNanos());
    if (available_ >= tokens) {
      available_ -= tokens;
      return;
    }
    // Sleep roughly until the deficit should be covered.
    uint64_t deficit = tokens - available_;
    uint64_t wait_nanos = static_cast<uint64_t>(static_cast<double>(deficit) * 1e9 /
                                                static_cast<double>(rate_per_sec_));
    cv_.WaitFor(std::chrono::nanoseconds(std::max<uint64_t>(wait_nanos, 1000)));
  }
}

}  // namespace p2kvs
