// CRC32C (Castagnoli) checksums used by the WAL record format and SST blocks.
// Software table-driven implementation; values are masked before storage so a
// checksum of data that itself contains checksums stays well distributed.

#ifndef P2KVS_SRC_UTIL_CRC32C_H_
#define P2KVS_SRC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace p2kvs {
namespace crc32c {

// Returns the crc32c of concat(A, data[0,n-1]) where init_crc is the crc32c
// of some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

// crc32c of data[0,n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

static const uint32_t kMaskDelta = 0xa282ead8ul;

// Returns a masked representation of crc, for storing alongside the data it
// covers.
inline uint32_t Mask(uint32_t crc) { return ((crc >> 15) | (crc << 17)) + kMaskDelta; }

// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_CRC32C_H_
