#include "src/util/trace_exporter.h"

#include <cstdio>
#include <unordered_map>

namespace p2kvs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendArg(std::string* args, const char* key, uint64_t value) {
  if (!args->empty()) *args += ',';
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  *args += buf;
}

// One trace_event object. dur_nanos < 0 means "no dur field" (instants and
// metadata). Instants get the mandatory scope field "s":"t" (thread scope).
void AppendEvent(std::string* out, bool* first, const char* name, const char* ph,
                 uint64_t ts_nanos, int64_t dur_nanos, uint32_t tid,
                 const std::string& args) {
  if (!*first) *out += ',';
  *first = false;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,",
                name, ph, static_cast<double>(ts_nanos) / 1000.0);
  *out += buf;
  if (dur_nanos >= 0) {
    std::snprintf(buf, sizeof(buf), "\"dur\":%.3f,",
                  static_cast<double>(dur_nanos) / 1000.0);
    *out += buf;
  }
  if (ph[0] == 'i') *out += "\"s\":\"t\",";
  std::snprintf(buf, sizeof(buf), "\"pid\":1,\"tid\":%u,\"args\":{",
                static_cast<unsigned>(tid));
  *out += buf;
  *out += args;
  *out += "}}";
}

// Type-specific args; `trace` and `batch` keys appear whenever they are set
// so batch/compaction spans stay linked to the requests they carried.
std::string EventArgs(const TraceEvent& e) {
  std::string args;
  if (e.trace_id != 0) AppendArg(&args, "trace", e.trace_id);
  switch (e.type) {
    case TraceEventType::kEnqueue:
    case TraceEventType::kDequeue:
      AppendArg(&args, "op", e.arg1);
      break;
    case TraceEventType::kObmMerge:
      AppendArg(&args, "batch", e.arg1);
      AppendArg(&args, "group_size", e.arg2);
      break;
    case TraceEventType::kExecuteBegin:
      AppendArg(&args, "batch", e.arg1);
      AppendArg(&args, "dispatch_size", e.arg2);
      break;
    case TraceEventType::kExecuteEnd:
      AppendArg(&args, "batch", e.arg1);
      AppendArg(&args, "status", e.arg2);
      break;
    case TraceEventType::kWalAppend:
    case TraceEventType::kSlotWrite:
      if (e.arg1 != 0) AppendArg(&args, "batch", e.arg1);
      AppendArg(&args, "bytes", e.arg2);
      break;
    case TraceEventType::kMemtableInsert:
      if (e.arg1 != 0) AppendArg(&args, "batch", e.arg1);
      AppendArg(&args, "entries", e.arg2);
      break;
    case TraceEventType::kComplete:
      AppendArg(&args, "status", e.arg1);
      if (e.arg2 != 0) AppendArg(&args, "batch", e.arg2);
      break;
    case TraceEventType::kError:
      AppendArg(&args, "status", e.arg1);
      AppendArg(&args, "severity", e.arg2);
      break;
    case TraceEventType::kFlush:
      AppendArg(&args, "bytes_written", e.arg1);
      break;
    case TraceEventType::kCompaction:
      AppendArg(&args, "bytes_written", e.arg1);
      AppendArg(&args, "level", e.arg2);
      break;
    case TraceEventType::kStall:
      AppendArg(&args, "stall_micros", e.arg1);
      break;
    case TraceEventType::kRetry:
      AppendArg(&args, "attempt", e.arg1);
      AppendArg(&args, "backoff_micros", e.arg2);
      break;
    case TraceEventType::kFault:
      AppendArg(&args, "fault_op", e.arg1);
      AppendArg(&args, "transient", e.arg2);
      break;
    case TraceEventType::kShed:
      AppendArg(&args, "queue_depth", e.arg1);
      break;
    case TraceEventType::kExpired:
      AppendArg(&args, "checkpoint", e.arg1);  // 0 = at dequeue, 1 = pre-execute
      break;
    case TraceEventType::kIoSubmit:
      AppendArg(&args, "op_kind", e.arg1);
      AppendArg(&args, "bytes", e.arg2);
      break;
    case TraceEventType::kIoComplete:
      AppendArg(&args, "bytes_done", e.arg1);
      AppendArg(&args, "status", e.arg2);
      break;
    case TraceEventType::kInvalid:
      break;
  }
  return args;
}

}  // namespace

std::string TraceEventsToJson(const std::vector<std::vector<TraceEvent>>& per_worker,
                              const std::string& reason) {
  size_t total = 0;
  for (const auto& events : per_worker) total += events.size();

  std::string out;
  out.reserve(256 + total * 192);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"p2kvs-trace\"";
  if (!reason.empty()) {
    out += ",\"reason\":\"";
    AppendEscaped(&out, reason);
    out += "\"";
  }
  out += "},\"traceEvents\":[";

  bool first = true;
  AppendEvent(&out, &first, "process_name", "M", 0, -1, 0, "\"name\":\"p2kvs\"");
  for (size_t w = 0; w < per_worker.size(); ++w) {
    char name[48];
    std::snprintf(name, sizeof(name), "\"name\":\"worker-%zu\"", w);
    AppendEvent(&out, &first, "thread_name", "M", 0, -1, static_cast<uint32_t>(w),
                name);
  }

  for (size_t w = 0; w < per_worker.size(); ++w) {
    const uint32_t tid = static_cast<uint32_t>(w);
    // Span pairing state, per worker track. Rings wrap, so a dequeue whose
    // enqueue was overwritten (or an execute_end whose begin was) degrades
    // gracefully to its raw instant.
    std::unordered_map<uint64_t, uint64_t> enqueue_ts;
    bool exec_pending = false;
    TraceEvent exec_begin;

    for (const TraceEvent& e : per_worker[w]) {
      switch (e.type) {
        case TraceEventType::kDequeue: {
          auto it = enqueue_ts.find(e.trace_id);
          if (it != enqueue_ts.end() && it->second <= e.ts_nanos) {
            AppendEvent(&out, &first, "queue_wait", "X", it->second,
                        static_cast<int64_t>(e.ts_nanos - it->second), tid,
                        EventArgs(e));
            enqueue_ts.erase(it);
          } else {
            AppendEvent(&out, &first, TraceEventTypeName(e.type), "i", e.ts_nanos,
                        -1, tid, EventArgs(e));
          }
          break;
        }
        case TraceEventType::kExecuteBegin:
          exec_pending = true;
          exec_begin = e;
          break;
        case TraceEventType::kExecuteEnd:
          if (exec_pending && exec_begin.arg1 == e.arg1 &&
              exec_begin.ts_nanos <= e.ts_nanos) {
            std::string args = EventArgs(e);
            AppendArg(&args, "dispatch_size", exec_begin.arg2);
            AppendEvent(&out, &first, "execute", "X", exec_begin.ts_nanos,
                        static_cast<int64_t>(e.ts_nanos - exec_begin.ts_nanos),
                        tid, args);
          } else {
            AppendEvent(&out, &first, TraceEventTypeName(e.type), "i", e.ts_nanos,
                        -1, tid, EventArgs(e));
          }
          exec_pending = false;
          break;
        case TraceEventType::kStall: {
          // The hook reports at stall end; backdate the span by its length.
          const uint64_t dur_nanos = e.arg1 * 1000;
          const uint64_t start = e.ts_nanos > dur_nanos ? e.ts_nanos - dur_nanos : 0;
          AppendEvent(&out, &first, "stall", "X", start,
                      static_cast<int64_t>(dur_nanos), tid, EventArgs(e));
          break;
        }
        default:
          if (e.type == TraceEventType::kEnqueue) {
            enqueue_ts[e.trace_id] = e.ts_nanos;
          }
          AppendEvent(&out, &first, TraceEventTypeName(e.type), "i", e.ts_nanos,
                      -1, tid, EventArgs(e));
          break;
      }
    }
  }

  out += "]}";
  return out;
}

Status WriteTraceFile(const std::string& json, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("trace export: cannot open", path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("trace export: short write", path);
  }
  return Status::OK();
}

}  // namespace p2kvs
