// Intrusive lock-free multi-producer single-consumer queue (Vyukov's
// intrusive MPSC design) backing each p2KVS worker's request queue (paper
// §4.1). Producers are user threads: a push is two atomic RMWs (a ticket
// and the head exchange) plus plain stores — never a lock, never a syscall
// unless the consumer is parked. The single consumer (the worker) pops with
// no atomic RMW at all and parks on a futex (C++20 std::atomic::wait) only
// when the queue is provably empty.
//
// The consumer-side API exposes exactly what the batching policies
// (Algorithm 1) need: blocking pop, peek-front, and a conditional pop used
// while merging a batch.
//
// Close/drain safety: producers take a ticket (tickets_) before checking
// closed_, and the consumer only declares the queue drained once
// popped_ == tickets_ — so a push that raced Close() is either fully popped
// or fully aborted, never half-published. Wakeups use a Dekker-style
// parked_ flag: the consumer publishes parked_ (seq_cst) and re-checks the
// queue before sleeping; a producer checks parked_ (seq_cst) after its head
// exchange, so one of them always sees the other.
//
// Optional backpressure: a non-zero capacity bounds the queue; producers at
// capacity park on a futex word until the consumer drains (still no lock).
//
// The old mutex+condvar MpscQueue (src/util/mpsc_queue.h) is retained as the
// baseline for the queue-handoff microbenchmark in
// bench_fig07_batching_effect.

#ifndef P2KVS_SRC_UTIL_INTRUSIVE_MPSC_QUEUE_H_
#define P2KVS_SRC_UTIL_INTRUSIVE_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>

namespace p2kvs {

// Base class providing the intrusive link. A node may be on at most one
// queue at a time and must not be destroyed until popped.
struct MpscQueueNode {
  std::atomic<MpscQueueNode*> mpsc_next{nullptr};
};

// What a bounded queue does with a push that finds it full. Unbounded queues
// never consult this.
//
//   kPark   — the producer parks until the consumer drains (backpressure).
//             The right choice for synchronous callers, which block anyway;
//             NEVER safe from a worker thread or an event loop: a worker
//             parked on its own full queue can never drain it (the
//             GetStats/WaitIdle self-deadlock class, made static by the
//             p2kvs-lint blocking-context rule).
//   kBypass — enqueue regardless, temporarily exceeding capacity. Reserved
//             for control requests (stats drains, barriers, EndTxn): they are
//             few, must never be refused, and must never park the submitter.
//   kFail   — give up immediately and report kFull; the caller sheds the
//             request (Status::Busy) instead of stalling. The asynchronous
//             submission path uses this: its contract is "never blocks".
enum class PushOverflow { kPark, kBypass, kFail };

// Outcome of an overflow-aware push. kClosed and kFull both mean the item
// was NOT enqueued.
enum class PushOutcome { kOk, kClosed, kFull };

// T must derive from MpscQueueNode. Items are borrowed, never owned: the
// queue stops touching a node the moment Pop returns it.
template <typename T>
class IntrusiveMpscQueue {
 public:
  explicit IntrusiveMpscQueue(size_t capacity = 0) : capacity_(capacity) {
    head_.store(&stub_, std::memory_order_relaxed);
    tail_ = &stub_;
  }

  IntrusiveMpscQueue(const IntrusiveMpscQueue&) = delete;
  IntrusiveMpscQueue& operator=(const IntrusiveMpscQueue&) = delete;

  // Enqueues an item. Lock-free; wait-free when unbounded. With a bounded
  // capacity the producer parks while the queue is full (backpressure).
  // Returns false if the queue has been closed (the item is not enqueued).
  // Parking variant — callers on a worker thread or an event loop must use
  // PushWithOverflow with kBypass or kFail instead (see PushOverflow).
  [[nodiscard]] bool Push(T* item) {
    return PushWithOverflow(item, PushOverflow::kPark) == PushOutcome::kOk;
  }

  // Overflow-aware push. kPark may block (see Push); kBypass and kFail are
  // non-blocking in the bounded case: kBypass always enqueues (capacity may
  // be transiently exceeded by the handful of in-flight control requests),
  // kFail returns kFull and leaves the item untouched.
  [[nodiscard]] PushOutcome PushWithOverflow(T* item, PushOverflow overflow) {
    // The ticket brackets the closed-check + link so the consumer can prove
    // at drain time that no producer is still about to publish a node.
    tickets_.fetch_add(1, std::memory_order_seq_cst);
    if (closed_.load(std::memory_order_seq_cst)) {
      AbortTicket();
      return PushOutcome::kClosed;
    }
    if (capacity_ != 0) {
      const PushOutcome claimed = ClaimSlot(overflow);
      if (claimed != PushOutcome::kOk) {
        AbortTicket();
        return claimed;  // closed while parked, or full under kFail
      }
    }

    MpscQueueNode* node = item;
    node->mpsc_next.store(nullptr, std::memory_order_relaxed);
    // seq_cst so the exchange orders against the consumer's parked_ publish
    // (Dekker); on x86 the exchange is a full barrier anyway.
    MpscQueueNode* prev = head_.exchange(node, std::memory_order_seq_cst);
    // Between the exchange and this store the chain is broken; the consumer
    // detects that (next == null but head moved) and spins instead of
    // parking or mis-reporting empty.
    prev->mpsc_next.store(node, std::memory_order_release);

    // seq_cst: Dekker partner of the consumer's parked_ publish — either this
    // load sees parked_ == 1, or the consumer's re-check sees our exchange.
    if (parked_.load(std::memory_order_seq_cst) != 0) {
      WakeConsumer();
    }
    return PushOutcome::kOk;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns std::nullopt only in the closed-and-drained case.
  std::optional<T*> Pop() {
    int spins = 0;
    while (true) {
      bool provably_empty = false;
      if (MpscQueueNode* node = TryPopNode(&provably_empty)) {
        CommitPop();
        return static_cast<T*>(node);
      }
      if (!provably_empty) {
        // A producer is mid-push: its node is an exchange ahead of its link.
        if (++spins < 128) {
          CpuRelax();
        } else {
          std::this_thread::yield();
        }
        continue;
      }
      spins = 0;

      // Publish intent to park, then re-check: any producer whose exchange
      // the check misses must see parked_ == 1 and wake us (Dekker).
      parked_.store(1, std::memory_order_seq_cst);
      if (MpscQueueNode* node = TryPopNode(&provably_empty)) {
        parked_.store(0, std::memory_order_relaxed);
        CommitPop();
        return static_cast<T*>(node);
      }
      if (!provably_empty) {
        parked_.store(0, std::memory_order_relaxed);
        continue;
      }
      // seq_cst on closed_/tickets_: these loads must order against a racing
      // producer's ticket fetch_add + closed_ check, so a push either lands
      // before this drain test or observes closed_ and aborts.
      if (closed_.load(std::memory_order_seq_cst) &&
          popped_.load(std::memory_order_relaxed) ==
              tickets_.load(std::memory_order_seq_cst)) {
        // Closed, empty, and every ticket either popped or aborted: drained.
        // (A producer that aborts its ticket after this load only shrinks
        // tickets_, and one that takes a new ticket will observe closed_.)
        parked_.store(0, std::memory_order_relaxed);
        return std::nullopt;
      }
      parked_.wait(1, std::memory_order_acquire);
      parked_.store(0, std::memory_order_relaxed);
    }
  }

  // Consumer-only, non-blocking: the item Pop would return next, or null
  // when the queue is empty (or the front is still being linked).
  T* Front() {
    MpscQueueNode* tail = tail_;
    if (tail != &stub_) {
      return static_cast<T*>(tail);
    }
    MpscQueueNode* next = tail->mpsc_next.load(std::memory_order_acquire);
    return static_cast<T*>(next);
  }

  // Consumer-only, non-blocking: pops the front item iff the queue is
  // non-empty and pred(front) holds. This is the "merge consecutive
  // same-type requests" primitive of the batching policies; it never waits
  // for more requests to arrive.
  template <typename Pred>
  T* TryPopIf(Pred pred) {
    T* front = Front();
    if (front == nullptr || !pred(front)) {
      return nullptr;
    }
    bool provably_empty = false;
    MpscQueueNode* node = TryPopNode(&provably_empty);
    // node is null only when the front is the last element and a concurrent
    // push raced the stub re-insert; the batching policy just stops merging.
    if (node != nullptr) {
      CommitPop();
    }
    return static_cast<T*>(node);
  }

  // Approximate (exact when quiescent). Counts items between ticket
  // acquisition and pop, so it may transiently include an in-flight push.
  size_t Size() const {
    uint64_t pushed = tickets_.load(std::memory_order_acquire);
    uint64_t popped = popped_.load(std::memory_order_acquire);
    return pushed > popped ? static_cast<size_t>(pushed - popped) : 0;
  }

  bool Empty() const { return Size() == 0; }

  size_t capacity() const { return capacity_; }

  // Wakes all parked producers and the consumer; subsequent Push calls fail,
  // Pop drains the remainder.
  void Close() {
    closed_.store(true, std::memory_order_seq_cst);
    WakeConsumer();
    if (capacity_ != 0) {
      pop_epoch_.fetch_add(1, std::memory_order_release);
      pop_epoch_.notify_all();
    }
  }

  // seq_cst to match every other closed_ access; this is a cold path and a
  // weaker load would save nothing measurable.
  bool closed() const { return closed_.load(std::memory_order_seq_cst); }

 private:
  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
  }

  // Vyukov intrusive MPSC pop. Returns the detached front node, or null with
  // *provably_empty saying whether the queue was empty (park) versus caught
  // mid-push (spin). Consumer-only.
  MpscQueueNode* TryPopNode(bool* provably_empty) {
    *provably_empty = false;
    MpscQueueNode* tail = tail_;
    MpscQueueNode* next = tail->mpsc_next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) {
        // Empty only if nothing was ever exchanged past the stub. seq_cst:
        // this load orders against the producer's head exchange (Dekker
        // partner of the parked_ publish).
        *provably_empty = head_.load(std::memory_order_seq_cst) == &stub_;
        return nullptr;
      }
      tail_ = next;
      tail = next;
      next = next->mpsc_next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    // seq_cst: same Dekker role as the empty check above — must not be
    // reordered before the mpsc_next load that found null.
    if (tail != head_.load(std::memory_order_seq_cst)) {
      return nullptr;  // a producer exchanged head but has not linked yet
    }
    // tail is the single last node: re-insert the stub behind it so the
    // consumer can detach tail without ever touching a returned node again.
    stub_.mpsc_next.store(nullptr, std::memory_order_relaxed);
    MpscQueueNode* prev = head_.exchange(&stub_, std::memory_order_seq_cst);
    prev->mpsc_next.store(&stub_, std::memory_order_release);
    next = tail->mpsc_next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    return nullptr;  // raced with a push that slid in before the stub
  }

  // Consumer-side bookkeeping after a successful TryPopNode.
  void CommitPop() {
    // Single writer: a plain store of the incremented count, no RMW.
    popped_.store(popped_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
    if (capacity_ != 0) {
      size_.fetch_sub(1, std::memory_order_acq_rel);
      pop_epoch_.fetch_add(1, std::memory_order_release);
      pop_epoch_.notify_all();
    }
  }

  // A producer backing out of its ticket (queue closed): the consumer may be
  // parked waiting for this ticket to resolve, so wake it either way.
  void AbortTicket() {
    tickets_.fetch_sub(1, std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_seq_cst) != 0) {
      WakeConsumer();
    }
  }

  void WakeConsumer() {
    // seq_cst: the futex-word clear must be globally ordered against the
    // consumer's parked_ publish + re-check so the notify cannot be missed.
    parked_.store(0, std::memory_order_seq_cst);
    parked_.notify_one();
  }

  // Bounded mode: claim one of capacity_ slots per the overflow policy.
  // kBypass always claims (the slot count may exceed capacity_ while control
  // requests are in flight; CommitPop's unconditional decrement keeps the
  // accounting balanced). kFail reports kFull instead of waiting. kPark
  // parks on the pop-epoch futex until the consumer drains.
  PushOutcome ClaimSlot(PushOverflow overflow) {
    if (overflow == PushOverflow::kBypass) {
      size_.fetch_add(1, std::memory_order_acq_rel);
      return PushOutcome::kOk;
    }
    while (true) {
      size_t s = size_.load(std::memory_order_acquire);
      if (s < capacity_) {
        if (size_.compare_exchange_weak(s, s + 1, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
          return PushOutcome::kOk;
        }
        continue;
      }
      if (overflow == PushOverflow::kFail) {
        return PushOutcome::kFull;
      }
      // seq_cst on closed_: orders against Close()'s store + epoch bump so a
      // producer never parks after the final wakeup has already been sent.
      if (closed_.load(std::memory_order_seq_cst)) {
        return PushOutcome::kClosed;
      }
      uint32_t epoch = pop_epoch_.load(std::memory_order_acquire);
      // Re-check both conditions against the captured epoch before sleeping
      // (same missed-wakeup reasoning as above for the seq_cst closed_ load).
      if (size_.load(std::memory_order_acquire) >= capacity_ &&
          !closed_.load(std::memory_order_seq_cst)) {
        pop_epoch_.wait(epoch, std::memory_order_acquire);
      }
    }
  }

  const size_t capacity_;

  // Producer side: exchanged on every push; keep away from the consumer's
  // cache line.
  alignas(64) std::atomic<MpscQueueNode*> head_;
  alignas(64) std::atomic<uint64_t> tickets_{0};  // pushes started (net of aborts)
  alignas(64) MpscQueueNode* tail_;               // consumer-private
  MpscQueueNode stub_;
  std::atomic<uint64_t> popped_{0};  // consumer-written, observable for Size

  alignas(64) std::atomic<uint32_t> parked_{0};  // consumer's futex word
  std::atomic<uint32_t> pop_epoch_{0};  // producers park here when full
  std::atomic<size_t> size_{0};         // bounded mode: slots acquired
  std::atomic<bool> closed_{false};
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_INTRUSIVE_MPSC_QUEUE_H_
