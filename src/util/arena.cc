#include "src/util/arena.h"

namespace p2kvs {

static const int kBlockSize = 4096;

Arena::Arena() : alloc_ptr_(nullptr), alloc_bytes_remaining_(0), memory_usage_(0) {}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large objects get their own block to avoid wasting the remainder of the
    // current block.
    return AllocateNewBlock(bytes);
  }

  alloc_ptr_ = AllocateNewBlock(kBlockSize);
  alloc_bytes_remaining_ = kBlockSize;

  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_bytes_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateAligned(size_t bytes) {
  const int align = (sizeof(void*) > 8) ? sizeof(void*) : 8;
  static_assert((align & (align - 1)) == 0, "alignment must be a power of 2");
  MutexLock lock(&mu_);
  size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
  size_t slop = (current_mod == 0 ? 0 : align - current_mod);
  size_t needed = bytes + slop;
  char* result = nullptr;
  if (needed <= alloc_bytes_remaining_) {
    result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
  } else {
    // AllocateFallback always returns aligned memory (fresh block).
    result = AllocateFallback(bytes);
  }
  assert((reinterpret_cast<uintptr_t>(result) & (align - 1)) == 0);
  return result;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  auto block = std::make_unique<char[]>(block_bytes);
  char* result = block.get();
  blocks_.push_back(std::move(block));
  memory_usage_.fetch_add(block_bytes + sizeof(blocks_[0]), std::memory_order_relaxed);
  return result;
}

}  // namespace p2kvs
