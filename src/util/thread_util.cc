#include "src/util/thread_util.h"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <thread>

namespace p2kvs {

int NumCpus() {
  unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool PinThreadToCpu(int cpu) {
#if defined(__linux__)
  cpu_set_t cpuset;
  CPU_ZERO(&cpuset);
  CPU_SET(cpu % NumCpus(), &cpuset);
  return pthread_setaffinity_np(pthread_self(), sizeof(cpu_set_t), &cpuset) == 0;
#else
  (void)cpu;
  return false;
#endif
}

void SetThreadName(const std::string& name) {
#if defined(__linux__)
  // Linux limits thread names to 15 characters + NUL.
  std::string truncated = name.substr(0, 15);
  pthread_setname_np(pthread_self(), truncated.c_str());
#else
  (void)name;
#endif
}

}  // namespace p2kvs
