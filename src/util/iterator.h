// Iterator: the uniform cursor interface over MemTables, SST blocks, whole
// tables, merged views and the user-visible DB iterator (leveldb-style).

#ifndef P2KVS_SRC_UTIL_ITERATOR_H_
#define P2KVS_SRC_UTIL_ITERATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace p2kvs {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator();

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  // Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;

  // Valid() only. The returned slices remain valid until the next move.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;

  // Registers a function to run when this iterator is destroyed (used to pin
  // blocks / versions / memtables for the iterator's lifetime).
  void RegisterCleanup(std::function<void()> cleanup);

 private:
  std::vector<std::function<void()>> cleanups_;
};

// An iterator over nothing, optionally carrying an error status.
Iterator* NewEmptyIterator();
Iterator* NewErrorIterator(const Status& status);

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_ITERATOR_H_
