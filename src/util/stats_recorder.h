// Per-worker observability (the framework's metrics spine). Each worker owns
// one cache-line-padded StatsRecorder, written ONLY by the owning worker
// thread — no atomics, no locks, no false sharing on the hot path. Aggregation
// is race-free by construction: P2KVS::GetStats() submits a kStats drain
// request per worker; the worker thread itself copies its recorder (plus its
// thread-local PerfContext and IO counters) into the caller's snapshot and
// completes the request, so the release/acquire pair of the join Completion
// publishes every plain field to the aggregating thread.
//
// Stage taxonomy (one dispatch = one batch, one single, or one pre-merged
// fan-out group; every stage is a disjoint sub-window of [submit, done]):
//
//   queue_wait   submit -> pop of the head request
//   batch_build  pop -> OBM batch assembled (BatchPolicy::Collect)
//   execute      the engine call(s): Write / Get / MultiGet / iterate
//   complete     waking waiters / running callbacks after the engine returns
//   end_to_end   submit -> dispatch fully completed (head request)
//
// Invariants (checked by P2kvsStats::SelfCheck and the CI smoke step):
//   queue_wait + batch_build + execute + complete <= end_to_end
//   batch_size.Count() == write_batches + read_batches + singles
//   batch_size Sum     == writes_batched + reads_batched + singles

#ifndef P2KVS_SRC_UTIL_STATS_RECORDER_H_
#define P2KVS_SRC_UTIL_STATS_RECORDER_H_

#include <cstdint>
#include <string>

#include "src/obs/sketch.h"  // header-only; no link dependency on p2kvs_obs
#include "src/util/histogram.h"
#include "src/util/perf_context.h"

namespace p2kvs {

// A copyable, mergeable value snapshot of one worker's recorder (or the
// merged totals of all workers). Safe to read from any thread.
struct WorkerStatsSnapshot {
  int worker_id = 0;

  // Throughput / batching counters (engine-level dispatch groups).
  uint64_t write_batches = 0;   // merged write groups executed
  uint64_t writes_batched = 0;  // write requests covered by those groups
  uint64_t read_batches = 0;    // multiget groups executed
  uint64_t reads_batched = 0;   // read requests covered by those groups
  uint64_t singles = 0;         // requests executed unbatched

  // Stage time totals (nanoseconds; see taxonomy above).
  uint64_t queue_wait_nanos = 0;
  uint64_t batch_build_nanos = 0;
  uint64_t execute_nanos = 0;
  uint64_t complete_nanos = 0;
  uint64_t end_to_end_nanos = 0;

  // Distributions (microseconds except batch_size, which is requests/group).
  Histogram queue_wait_us;
  Histogram execute_us;
  Histogram end_to_end_us;
  Histogram batch_size;

  // The worker thread's engine-side write breakdown (WAL / MemTable / lock
  // components, Figure 6) and fault-path retries — a copy of its thread-local
  // PerfContext taken at snapshot time.
  PerfContext engine;

  // Foreground IO issued from the worker thread (WAL appends, SST reads).
  // Background flush/compaction IO is attributed to the engines' background
  // threads and reported via IoStats, not here.
  uint64_t fg_bytes_written = 0;
  uint64_t fg_bytes_read = 0;
  uint64_t fg_write_ops = 0;
  uint64_t fg_read_ops = 0;

  // Governance (mirrors the worker's cross-thread atomics).
  int health_state = 0;  // WorkerHealth as int
  uint64_t health_transitions = 0;
  uint64_t degraded_rejects = 0;
  uint64_t resume_attempts = 0;

  // Overload-control accounting. Every data request entering Worker::Submit
  // counts once in `submitted` and resolves through exactly one of three
  // doors: `completed` (executed, or fast-rejected with a real status —
  // degraded rejects and shutdown aborts included), `shed` (refused by
  // admission control, at submit or as part of an atomically-shed fan-out
  // group), or `expired_*` (deadline passed before the engine ran it).
  // SelfCheck enforces completed + shed + expired <= submitted, with
  // equality once the pipeline is quiescent. Control requests (barrier /
  // stats drains) are bookkeeping, not client work, and are never counted.
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t expired_at_dequeue = 0;   // deadline already gone when popped
  uint64_t expired_pre_execute = 0;  // expired between collect and engine call
  uint64_t breaker_trips = 0;        // circuit-breaker -> degraded transitions
  uint64_t retries_denied = 0;       // retry-budget fast-fail decisions
  bool admission_overloaded = false; // controller shedding at snapshot time

  // Queue depth at snapshot time (backpressure visibility).
  size_t queue_depth = 0;

  // Hot-key sketch snapshot (empty when hot_key_sketch_k == 0). Filled by
  // the worker thread from its single-writer SpaceSavingSketch on the same
  // kStats drain that fills the rest of this snapshot.
  obs::SketchSnapshot hot_keys;

  uint64_t requests_executed() const { return writes_batched + reads_batched + singles; }
  uint64_t expired() const { return expired_at_dequeue + expired_pre_execute; }
  uint64_t stage_nanos_sum() const {
    return queue_wait_nanos + batch_build_nanos + execute_nanos + complete_nanos;
  }

  void MergeFrom(const WorkerStatsSnapshot& other);
  std::string ToJson() const;
};

// The worker-owned mutable recorder. Single-writer (the owning worker
// thread); padded so two workers' recorders never share a cache line.
class alignas(64) StatsRecorder {
 public:
  void RecordQueueWait(uint64_t nanos) {
    queue_wait_nanos_ += nanos;
    queue_wait_us_.Add(static_cast<double>(nanos) / 1000.0);
  }
  void RecordBatchBuild(uint64_t nanos) { batch_build_nanos_ += nanos; }
  void RecordExecute(uint64_t nanos) {
    execute_nanos_ += nanos;
    execute_us_.Add(static_cast<double>(nanos) / 1000.0);
  }
  void RecordComplete(uint64_t nanos) { complete_nanos_ += nanos; }
  // One call per dispatch: the group size feeds the batch-size distribution;
  // e2e covers submit -> fully completed (0 when the submit time is unknown).
  void RecordDispatch(size_t batch_size, uint64_t end_to_end_nanos) {
    batch_size_.Add(static_cast<double>(batch_size));
    if (end_to_end_nanos != 0) {
      end_to_end_nanos_ += end_to_end_nanos;
      end_to_end_us_.Add(static_cast<double>(end_to_end_nanos) / 1000.0);
    }
  }

  // An expired request's lifetime (submit -> expiry). Its queue wait already
  // landed in the stage sums at dequeue, so its end-to-end must land too or
  // SelfCheck's stage/e2e partition invariant would break. Not a dispatch:
  // the batch-size distribution is untouched.
  void RecordExpired(uint64_t end_to_end_nanos) {
    end_to_end_nanos_ += end_to_end_nanos;
    end_to_end_us_.Add(static_cast<double>(end_to_end_nanos) / 1000.0);
  }

  // Copies the recorder's view into `out` (counters owned by the worker
  // object are filled in by Worker::SnapshotStats). Worker thread only.
  void FillSnapshot(WorkerStatsSnapshot* out) const {
    out->queue_wait_nanos = queue_wait_nanos_;
    out->batch_build_nanos = batch_build_nanos_;
    out->execute_nanos = execute_nanos_;
    out->complete_nanos = complete_nanos_;
    out->end_to_end_nanos = end_to_end_nanos_;
    out->queue_wait_us = queue_wait_us_;
    out->execute_us = execute_us_;
    out->end_to_end_us = end_to_end_us_;
    out->batch_size = batch_size_;
  }

 private:
  uint64_t queue_wait_nanos_ = 0;
  uint64_t batch_build_nanos_ = 0;
  uint64_t execute_nanos_ = 0;
  uint64_t complete_nanos_ = 0;
  uint64_t end_to_end_nanos_ = 0;
  Histogram queue_wait_us_;
  Histogram execute_us_;
  Histogram end_to_end_us_;
  Histogram batch_size_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_STATS_RECORDER_H_
