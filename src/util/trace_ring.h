// TraceRing: a lock-free, fixed-capacity, overwriting ring of fixed-size
// trace events — the flight recorder behind per-request tracing.
//
// Requirements that shaped the design:
//   * Multi-writer. The owning worker thread appends most events, but user
//     threads append enqueue events, engine background threads append
//     flush/compaction events, and KVell's internal workers append slot
//     writes. Appends must be wait-free and never serialize the hot path.
//   * Always-on overwrite. The ring never blocks or rejects a writer; old
//     events are overwritten (flight-recorder semantics). Loss is not silent:
//     dropped() reports exactly how many events have been overwritten.
//   * Racy-read tolerant. A snapshot (flight-recorder dump, exporter) may run
//     while writers are appending. Torn slots are detected and skipped, and
//     every access is through std::atomic so the reader races with nothing at
//     the language level (TSan-clean by construction, like the stats spine).
//
// Mechanism: a single fetch_add ticket counter assigns each append a unique
// slot (ticket & mask) and a unique per-slot sequence; each slot is guarded
// by a seqlock whose value encodes the ticket:
//
//   writer(ticket t):  CAS seq: even, < 2t+1  ->  2t+1  (odd: owned)
//                      payload words (relaxed atomic stores)
//                      seq := 2t+2   (even: committed, release)
//   reader(ticket t):  s1 := seq (acquire); require s1 == 2t+2
//                      payload words (relaxed atomic loads)
//                      acquire fence; s2 := seq; require s2 == 2t+2
//
// The release store of 2t+2 pairs with the reader's acquire load of seq, so
// a reader that sees "committed" sees that writer's payload. The release
// fence after the claim pairs with the reader's acquire fence before the
// re-check: if a later writer's payload store was read, its odd marker is
// visible to the re-check, which then fails and the slot is skipped. Tickets
// make ABA impossible — a slot reused after wrap-around carries a different
// (larger) sequence, never the one the reader expects.
//
// The claim must be a CAS, not a blind store: a writer preempted between its
// ticket and its odd marker can be lapped by a writer one full capacity
// ahead. With blind stores the stale writer would resume and silently dirty
// the newer writer's *committed* slot — its own odd marker long overwritten,
// leaving the reader nothing to detect the tear by. With the CAS claim a
// slot has exactly one owner from claim to commit: a writer that finds its
// slot odd (mid-write) or already carrying a sequence at or past its own
// ABANDONS the append instead of tearing it. Abandons are counted
// (abandoned(), folded into dropped()) — loss is never silent — and require
// two writers a full lap apart racing the same slot, so in practice they are
// vanishingly rare.

#ifndef P2KVS_SRC_UTIL_TRACE_RING_H_
#define P2KVS_SRC_UTIL_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace p2kvs {

// One event type per hop of the 2-D pipeline (paper Fig. 9b / Algorithm 1),
// plus engine-side and fault-path events. Values are stable: they appear in
// exported traces and flight-recorder dumps.
enum class TraceEventType : uint8_t {
  kInvalid = 0,
  kEnqueue = 1,         // user thread pushed the request (arg1 = request type)
  kDequeue = 2,         // worker popped / collected it (arg1 = request type)
  kObmMerge = 3,        // joined an OBM group (arg1 = batch id, arg2 = size)
  kExecuteBegin = 4,    // engine dispatch start (arg1 = batch id, arg2 = size)
  kExecuteEnd = 5,      // engine dispatch end (arg1 = batch id, arg2 = status)
  kWalAppend = 6,       // log record durable (arg1 = batch id, arg2 = bytes)
  kMemtableInsert = 7,  // memtable updated (arg1 = batch id, arg2 = entries)
  kSlotWrite = 8,       // KVell slab slot written (arg1 = batch id, arg2 = bytes)
  kComplete = 9,        // completion signalled (arg1 = status, arg2 = batch id)
  kError = 10,          // hard error on this request (arg1 = status code)
  kFlush = 11,          // engine flush done (arg1 = bytes written)
  kCompaction = 12,     // compaction done (arg1 = bytes written, arg2 = level)
  kStall = 13,          // write stall ended (arg1 = stall micros)
  kRetry = 14,          // transient-fault retry (arg1 = attempt, arg2 = backoff us)
  kFault = 15,          // injected/observed storage fault (arg1 = fault op)
  kShed = 16,           // admission control rejected it (arg1 = queue depth)
  kExpired = 17,        // deadline passed (arg1 = 0 at dequeue, 1 pre-execute)
  kIoSubmit = 18,       // async IO op submitted (arg1 = op kind, arg2 = bytes)
  kIoComplete = 19,     // async IO op reaped (arg1 = bytes done, arg2 = status)
};

inline const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kInvalid: return "invalid";
    case TraceEventType::kEnqueue: return "enqueue";
    case TraceEventType::kDequeue: return "dequeue";
    case TraceEventType::kObmMerge: return "obm_merge";
    case TraceEventType::kExecuteBegin: return "execute_begin";
    case TraceEventType::kExecuteEnd: return "execute_end";
    case TraceEventType::kWalAppend: return "wal_append";
    case TraceEventType::kMemtableInsert: return "memtable_insert";
    case TraceEventType::kSlotWrite: return "slot_write";
    case TraceEventType::kComplete: return "complete";
    case TraceEventType::kError: return "error";
    case TraceEventType::kFlush: return "flush";
    case TraceEventType::kCompaction: return "compaction";
    case TraceEventType::kStall: return "stall";
    case TraceEventType::kRetry: return "retry";
    case TraceEventType::kFault: return "fault";
    case TraceEventType::kShed: return "shed";
    case TraceEventType::kExpired: return "expired";
    case TraceEventType::kIoSubmit: return "io_submit";
    case TraceEventType::kIoComplete: return "io_complete";
  }
  return "unknown";
}

// Fixed-size binary trace event: five 64-bit words on the wire. trace_id is 0
// for events not tied to a sampled request (flush/compaction/stall emitted by
// engine background work).
struct TraceEvent {
  uint64_t trace_id = 0;
  uint64_t ts_nanos = 0;
  uint64_t arg1 = 0;  // meaning per type, see TraceEventType
  uint64_t arg2 = 0;
  TraceEventType type = TraceEventType::kInvalid;
  uint32_t worker_id = 0;
};

class TraceRing {
 public:
  // Capacity is rounded up to a power of two, minimum 64 slots.
  explicit TraceRing(size_t min_capacity) {
    size_t cap = 64;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.reset(new Slot[cap]);
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Total events ever appended (pre-overwrite). Feeds SelfCheck invariants.
  uint64_t appended() const { return head_.load(std::memory_order_relaxed); }

  // Events lost since construction: ring-wrap overwrites (computed — the
  // ring keeps exactly the last `capacity()` tickets, so everything before
  // head - capacity is gone) plus abandoned appends. Surfaced through
  // GetStats() — no silent loss.
  uint64_t dropped() const {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    return (head > capacity() ? head - capacity() : 0) +
           abandoned_.load(std::memory_order_relaxed);
  }

  // Appends that yielded to a concurrent owner of the same slot (see the
  // header comment). Already included in dropped().
  uint64_t abandoned() const { return abandoned_.load(std::memory_order_relaxed); }

  // Lock-free, any thread. One relaxed RMW for the ticket, one CAS to claim
  // the slot, then the seqlock publication protocol described in the header
  // comment.
  void Append(const TraceEvent& event) {
    const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[ticket & mask_];
    // Claim: even -> odd, and only forward. An odd value means another
    // writer owns the slot right now; a value at or past our own odd marker
    // means we were lapped while stalled. Either way the slot is no longer
    // ours to write — abandon rather than tear it.
    uint64_t observed = slot.seq.load(std::memory_order_relaxed);
    for (;;) {
      if ((observed & 1) != 0 || observed >= ticket * 2 + 1) {
        abandoned_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (slot.seq.compare_exchange_weak(observed, ticket * 2 + 1,
                                         std::memory_order_relaxed)) {
        break;
      }
    }
    // The release fence orders the odd marker before the payload stores
    // below — a reader that observed any of our payload (via its acquire
    // fence) is guaranteed to observe the odd marker on its seq re-check and
    // discard the slot.
    std::atomic_thread_fence(std::memory_order_release);
    slot.word[0].store(event.trace_id, std::memory_order_relaxed);
    slot.word[1].store(event.ts_nanos, std::memory_order_relaxed);
    slot.word[2].store(event.arg1, std::memory_order_relaxed);
    slot.word[3].store(event.arg2, std::memory_order_relaxed);
    slot.word[4].store(static_cast<uint64_t>(event.type) << 32 | event.worker_id,
                       std::memory_order_relaxed);
    // Even marker: committed. Release publishes the payload stores above to
    // the reader's acquire load of seq.
    slot.seq.store(ticket * 2 + 2, std::memory_order_release);
  }

  // Copies the surviving events, oldest first, into *out (cleared first).
  // Safe concurrently with writers; slots being overwritten mid-read are
  // detected by the seqlock and skipped. Returns the number skipped — under
  // a quiescent ring it is always 0.
  size_t Snapshot(std::vector<TraceEvent>* out) const {
    out->clear();
    const uint64_t end = head_.load(std::memory_order_acquire);
    const uint64_t cap = capacity();
    const uint64_t begin = end > cap ? end - cap : 0;
    out->reserve(static_cast<size_t>(end - begin));
    size_t skipped = 0;
    for (uint64_t ticket = begin; ticket < end; ++ticket) {
      const Slot& slot = slots_[ticket & mask_];
      const uint64_t committed = ticket * 2 + 2;
      // Acquire pairs with the writer's committing release store: seeing
      // `committed` makes that writer's payload visible.
      if (slot.seq.load(std::memory_order_acquire) != committed) {
        ++skipped;  // still under construction, or already overwritten
        continue;
      }
      TraceEvent event;
      event.trace_id = slot.word[0].load(std::memory_order_relaxed);
      event.ts_nanos = slot.word[1].load(std::memory_order_relaxed);
      event.arg1 = slot.word[2].load(std::memory_order_relaxed);
      event.arg2 = slot.word[3].load(std::memory_order_relaxed);
      const uint64_t packed = slot.word[4].load(std::memory_order_relaxed);
      event.type = static_cast<TraceEventType>(packed >> 32);
      event.worker_id = static_cast<uint32_t>(packed);
      // Acquire fence pairs with the release fence after a writer's odd
      // marker: if the payload loads above observed a newer writer's words,
      // that writer's odd marker is visible to this re-check.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != committed) {
        ++skipped;  // torn by a wrap-around writer mid-copy
        continue;
      }
      out->push_back(event);
    }
    return skipped;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> word[5];
  };

  // The ticket counter is the only cross-thread contention point; keep it
  // off the slots' cache lines.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> abandoned_{0};
  alignas(64) std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_TRACE_RING_H_
