#include "src/util/crc32c.h"

#include <array>

namespace p2kvs {
namespace crc32c {

namespace {

// Builds the 8 slicing-by-8 lookup tables for the Castagnoli polynomial at
// static-initialization time.
struct Tables {
  uint32_t t[8][256];

  Tables() {
    const uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      for (int k = 1; k < 8; k++) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Tables& tab = GetTables();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;

  // Process 8 bytes at a time (slicing-by-8).
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    __builtin_memcpy(&lo, p, 4);
    __builtin_memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tab.t[7][lo & 0xff] ^ tab.t[6][(lo >> 8) & 0xff] ^ tab.t[5][(lo >> 16) & 0xff] ^
          tab.t[4][(lo >> 24) & 0xff] ^ tab.t[3][hi & 0xff] ^ tab.t[2][(hi >> 8) & 0xff] ^
          tab.t[1][(hi >> 16) & 0xff] ^ tab.t[0][(hi >> 24) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p) & 0xff];
    p++;
    n--;
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace p2kvs
