// Blocking multi-producer single-consumer queue backing each p2KVS worker's
// request queue (paper §4.1). Producers are user threads; the single consumer
// is the worker. The consumer-side API exposes exactly what the opportunistic
// batching mechanism (Algorithm 1) needs: pop-one, peek-front-type, and a
// conditional pop used while merging a batch.

#ifndef P2KVS_SRC_UTIL_MPSC_QUEUE_H_
#define P2KVS_SRC_UTIL_MPSC_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t capacity = 0) : capacity_(capacity) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Enqueues an item; blocks while the queue is at capacity (capacity 0 means
  // unbounded). Returns false if the queue has been closed.
  [[nodiscard]] bool Push(T item) {
    MutexLock lock(&mu_);
    while (capacity_ != 0 && queue_.size() >= capacity_ && !closed_) {
      not_full_.Wait();
    }
    if (closed_) {
      return false;
    }
    queue_.push_back(std::move(item));
    not_empty_.Signal();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns std::nullopt only in the closed-and-empty case.
  std::optional<T> Pop() {
    MutexLock lock(&mu_);
    while (queue_.empty() && !closed_) {
      not_empty_.Wait();
    }
    if (queue_.empty()) {
      return std::nullopt;
    }
    T item = std::move(queue_.front());
    queue_.pop_front();
    if (capacity_ != 0) {
      not_full_.Signal();
    }
    return item;
  }

  // Non-blocking: pops the front item iff the queue is non-empty and
  // pred(front) holds. This is the "merge consecutive same-type requests"
  // primitive of the OBM; it never waits for more requests to arrive.
  template <typename Pred>
  std::optional<T> TryPopIf(Pred pred) {
    MutexLock lock(&mu_);
    if (queue_.empty() || !pred(queue_.front())) {
      return std::nullopt;
    }
    T item = std::move(queue_.front());
    queue_.pop_front();
    if (capacity_ != 0) {
      not_full_.Signal();
    }
    return item;
  }

  size_t Size() const {
    MutexLock lock(&mu_);
    return queue_.size();
  }

  bool Empty() const { return Size() == 0; }

  // Wakes all waiters; subsequent Push calls fail, Pop drains the remainder.
  void Close() {
    MutexLock lock(&mu_);
    closed_ = true;
    not_empty_.SignalAll();
    not_full_.SignalAll();
  }

  bool closed() const {
    MutexLock lock(&mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_{&mu_};
  CondVar not_full_{&mu_};
  std::deque<T> queue_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_MPSC_QUEUE_H_
