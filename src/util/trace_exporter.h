// TraceExporter: serializes TraceRing snapshots into Chrome/Perfetto
// `trace_event` JSON (the "JSON Array Format" with a top-level traceEvents
// key), so a whole run — or a flight-recorder dump — opens directly in
// ui.perfetto.dev / chrome://tracing with one track per worker.
//
// Mapping:
//   * pid 1 is the framework; tid W is worker W's track (thread_name
//     metadata names them "worker-W").
//   * Every ring event is emitted as an instant ("ph":"i") named after its
//     TraceEventType, carrying {trace, batch, ...} args.
//   * Derived spans ("ph":"X") are added on top: "queue_wait" from a
//     request's enqueue→dequeue pair, "execute" from an execute_begin→
//     execute_end pair (matched by batch id), and "stall" backdated by the
//     reported stall duration. Spans carry the trace/batch args that link
//     batches and compactions to the requests they carried.

#ifndef P2KVS_SRC_UTIL_TRACE_EXPORTER_H_
#define P2KVS_SRC_UTIL_TRACE_EXPORTER_H_

#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/trace_ring.h"

namespace p2kvs {

// `per_worker[w]` is worker w's ring snapshot, oldest first (the shape
// Tracer::SnapshotAll() returns). `reason` (may be empty) is recorded in the
// top-level otherData object — flight-recorder dumps use it to say why they
// fired.
std::string TraceEventsToJson(const std::vector<std::vector<TraceEvent>>& per_worker,
                              const std::string& reason);

// Writes `json` to `path` (host filesystem), overwriting. Used by both
// explicit exports and flight-recorder dumps.
Status WriteTraceFile(const std::string& json, const std::string& path);

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_TRACE_EXPORTER_H_
