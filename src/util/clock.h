// Monotonic time helpers shared by stats, rate limiting and benchmarks.

#ifndef P2KVS_SRC_UTIL_CLOCK_H_
#define P2KVS_SRC_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace p2kvs {

// Monotonic nanoseconds since an arbitrary epoch.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

inline uint64_t NowMicros() { return NowNanos() / 1000; }

// Scoped stopwatch that adds elapsed nanoseconds to *sink on destruction.
class ScopedTimerNanos {
 public:
  explicit ScopedTimerNanos(uint64_t* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimerNanos() { *sink_ += NowNanos() - start_; }

  ScopedTimerNanos(const ScopedTimerNanos&) = delete;
  ScopedTimerNanos& operator=(const ScopedTimerNanos&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_CLOCK_H_
