#include "src/util/perf_context.h"

namespace p2kvs {

PerfContext& GetPerfContext() {
  thread_local PerfContext ctx;
  return ctx;
}

}  // namespace p2kvs
