#include "src/util/trace.h"

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/util/trace_exporter.h"

namespace p2kvs {

namespace {

// SIGUSR2 handshake: the handler only sets a lock-free flag (async-signal
// safe); the Tracer's watcher thread polls it and performs the dump on a
// normal thread.
std::atomic<int> g_sigusr2_pending{0};

void SigUsr2Handler(int /*signum*/) {
  g_sigusr2_pending.store(1, std::memory_order_relaxed);
}

// Previous SIGUSR2 disposition, captured by sigaction so the full
// {handler, mask, flags} triple — not just the handler pointer — is restored
// on teardown.
struct sigaction g_prev_sigusr2_act;
bool g_prev_sigusr2_valid = false;

}  // namespace

Tracer::Tracer(const TraceConfig& config, int num_workers) : config_(config) {
  rings_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    rings_.emplace_back(new TraceRing(config_.ring_capacity));
  }
  if (config_.dump_on_sigusr2) {
    // sigaction with SA_RESTART, NOT std::signal: signal() leaves SA_RESTART
    // unset (System V semantics), so an operator poking the flight recorder
    // would EINTR-abort any blocking syscall in flight — accept/recv in the
    // network front-end, futex waits under the completion pipeline. With
    // SA_RESTART the kernel restarts restartable syscalls transparently and
    // the dump handshake stays invisible to the request path. (epoll_wait is
    // never restarted regardless of SA_RESTART; the server's event loop
    // treats EINTR as a spurious wakeup for exactly that reason.)
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &SigUsr2Handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    g_prev_sigusr2_valid = ::sigaction(SIGUSR2, &sa, &g_prev_sigusr2_act) == 0;
    watcher_ = std::thread(&Tracer::WatcherLoop, this);
  }
}

Tracer::~Tracer() {
  if (watcher_.joinable()) {
    {
      MutexLock lock(&watcher_mu_);
      watcher_stop_ = true;
    }
    watcher_cv_.SignalAll();
    watcher_.join();
    if (g_prev_sigusr2_valid) {
      ::sigaction(SIGUSR2, &g_prev_sigusr2_act, nullptr);
      g_prev_sigusr2_valid = false;
    }
  }
}

void Tracer::WatcherLoop() {
  for (;;) {
    {
      MutexLock lock(&watcher_mu_);
      if (watcher_stop_) return;
      watcher_cv_.WaitFor(std::chrono::milliseconds(50));
      if (watcher_stop_) return;
    }
    if (g_sigusr2_pending.exchange(0, std::memory_order_relaxed) != 0) {
      DumpFlightRecorder("SIGUSR2");
    }
  }
}

uint64_t Tracer::events_appended() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->appended();
  return total;
}

uint64_t Tracer::events_dropped() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

std::vector<std::vector<TraceEvent>> Tracer::SnapshotAll() const {
  std::vector<std::vector<TraceEvent>> out(rings_.size());
  for (size_t i = 0; i < rings_.size(); ++i) {
    rings_[i]->Snapshot(&out[i]);
  }
  return out;
}

std::string Tracer::ExportJson(const std::string& reason) const {
  return TraceEventsToJson(SnapshotAll(), reason);
}

Status Tracer::ExportToFile(const std::string& path, const std::string& reason) const {
  return WriteTraceFile(ExportJson(reason), path);
}

void Tracer::DumpFlightRecorder(const std::string& reason) {
  MutexLock lock(&dump_mu_);
  const std::string path =
      config_.dump_path.empty() ? std::string("p2kvs_flight.json") : config_.dump_path;
  const Status s = ExportToFile(path, reason);
  if (s.ok()) {
    flight_dumps_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "p2kvs: flight recorder (%s) dumped to %s\n",
                 reason.c_str(), path.c_str());
  } else {
    std::fprintf(stderr, "p2kvs: flight recorder dump failed: %s\n",
                 s.ToString().c_str());
  }
}

}  // namespace p2kvs
