// Key ordering abstraction. Only bytewise ordering is shipped, but SST
// building uses the FindShortest* hooks to shrink index keys, so the full
// interface is kept.

#ifndef P2KVS_SRC_UTIL_COMPARATOR_H_
#define P2KVS_SRC_UTIL_COMPARATOR_H_

#include <string>

#include "src/util/slice.h"

namespace p2kvs {

class Comparator {
 public:
  virtual ~Comparator() = default;

  // Three-way comparison: <0, ==0, >0.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  // Name used to check on-disk compatibility.
  virtual const char* Name() const = 0;

  // If *start < limit, may shorten *start to a string in [*start, limit).
  virtual void FindShortestSeparator(std::string* start, const Slice& limit) const = 0;

  // May change *key to a short string >= *key.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

// Lexicographic bytewise ordering; singleton, never destroyed.
const Comparator* BytewiseComparator();

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_COMPARATOR_H_
