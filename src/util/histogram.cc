#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace p2kvs {

namespace {

std::vector<double> MakeBucketLimits() {
  // Geometric bucket boundaries: 1, 2, 3, 4, 5, ..., growing ~12% per bucket
  // after 10, up to ~1e12. Dense enough for stable p99 at microsecond scale.
  std::vector<double> limits;
  double v = 1;
  while (v < 1e12) {
    limits.push_back(v);
    double next = v * 1.12;
    if (next < v + 1) {
      next = v + 1;
    }
    v = next;
  }
  limits.push_back(std::numeric_limits<double>::infinity());
  return limits;
}

}  // namespace

const std::vector<double>& Histogram::BucketLimits() {
  static const std::vector<double> limits = MakeBucketLimits();
  return limits;
}

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  min_ = std::numeric_limits<double>::infinity();
  max_ = 0;
  num_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  buckets_.assign(BucketLimits().size(), 0.0);
}

void Histogram::Add(double value) {
  const auto& limits = BucketLimits();
  // First bucket whose limit is > value.
  size_t b = std::upper_bound(limits.begin(), limits.end(), value) - limits.begin();
  if (b >= buckets_.size()) {
    b = buckets_.size() - 1;
  }
  buckets_[b] += 1.0;
  if (min_ > value) {
    min_ = value;
  }
  if (max_ < value) {
    max_ = value;
  }
  num_ += 1.0;
  sum_ += value;
  sum_squares_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
  num_ += other.num_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (size_t b = 0; b < buckets_.size(); b++) {
    buckets_[b] += other.buckets_[b];
  }
}

Histogram Histogram::Delta(const Histogram& earlier) const {
  const auto& limits = BucketLimits();
  Histogram delta;
  for (size_t b = 0; b < buckets_.size(); b++) {
    double d = buckets_[b] - earlier.buckets_[b];
    if (d < 0) {
      d = 0;
    }
    delta.buckets_[b] = d;
    if (d > 0) {
      // Estimate the delta's range from the occupied bucket edges; the exact
      // extremes of the in-between samples are not recoverable.
      double left = (b == 0) ? 0 : limits[b - 1];
      if (delta.min_ > left) {
        delta.min_ = left;
      }
      double right = limits[b];
      if (!std::isfinite(right)) {
        right = max_;  // overall max bounds anything in the +Inf bucket
      }
      if (delta.max_ < right) {
        delta.max_ = right;
      }
    }
    delta.num_ += d;
  }
  delta.sum_ = std::max(0.0, sum_ - earlier.sum_);
  delta.sum_squares_ = std::max(0.0, sum_squares_ - earlier.sum_squares_);
  if (delta.num_ == 0) {
    // Empty window: behave exactly like a cleared histogram.
    delta.min_ = std::numeric_limits<double>::infinity();
    delta.max_ = 0;
    delta.sum_ = 0;
    delta.sum_squares_ = 0;
  }
  return delta;
}

std::vector<uint64_t> Histogram::CumulativeCounts(const std::vector<double>& bounds) const {
  const auto& limits = BucketLimits();
  std::vector<uint64_t> out(bounds.size(), 0);
  double cumulative = 0;
  size_t bi = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    // Bucket b holds values < limits[b]; attribute it to the first requested
    // bound that covers its upper edge.
    while (bi < bounds.size() && limits[b] > bounds[bi]) {
      out[bi] = static_cast<uint64_t>(cumulative);
      bi++;
    }
    cumulative += buckets_[b];
  }
  for (; bi < bounds.size(); bi++) {
    out[bi] = static_cast<uint64_t>(cumulative);
  }
  return out;
}

double Histogram::Percentile(double p) const {
  if (num_ == 0) {
    return 0;
  }
  const auto& limits = BucketLimits();
  double threshold = num_ * (p / 100.0);
  double cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    cumulative += buckets_[b];
    if (cumulative >= threshold) {
      // Linear interpolation within the bucket.
      double left = (b == 0) ? 0 : limits[b - 1];
      double right = limits[b];
      if (!std::isfinite(right)) {
        right = max_;
      }
      double left_sum = cumulative - buckets_[b];
      double pos = (buckets_[b] == 0) ? 0 : (threshold - left_sum) / buckets_[b];
      double r = left + (right - left) * pos;
      if (r < min_) {
        r = min_;
      }
      if (r > max_) {
        r = max_;
      }
      return r;
    }
  }
  return max_;
}

double Histogram::Average() const { return num_ == 0 ? 0 : sum_ / num_; }

double Histogram::StandardDeviation() const {
  if (num_ == 0) {
    return 0;
  }
  double variance = (sum_squares_ * num_ - sum_ * sum_) / (num_ * num_);
  return variance > 0 ? std::sqrt(variance) : 0;
}

std::string Histogram::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "count=%llu avg=%.2f min=%.2f max=%.2f p50=%.2f p95=%.2f p99=%.2f p99.9=%.2f",
                static_cast<unsigned long long>(Count()), Average(), num_ == 0 ? 0 : min_, max_,
                Percentile(50), Percentile(95), Percentile(99), Percentile(99.9));
  return buf;
}

std::string Histogram::ToJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"sum\":%.2f,\"avg\":%.2f,\"min\":%.2f,\"max\":%.2f,"
                "\"p50\":%.2f,\"p95\":%.2f,\"p99\":%.2f}",
                static_cast<unsigned long long>(Count()), sum_, Average(),
                num_ == 0 ? 0 : min_, max_, Percentile(50), Percentile(95), Percentile(99));
  return buf;
}

}  // namespace p2kvs
