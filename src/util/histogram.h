// Latency histogram with geometric buckets; supports mean / percentile
// queries and merging across threads. Used by the bench harness and the
// engines' internal stats.

#ifndef P2KVS_SRC_UTIL_HISTOGRAM_H_
#define P2KVS_SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace p2kvs {

class Histogram {
 public:
  Histogram();

  void Clear();
  // Records one sample (any non-negative value; typically microseconds).
  void Add(double value);
  void Merge(const Histogram& other);
  // Returns this - earlier, bucket by bucket: the samples recorded between
  // the two snapshots. `earlier` must be a previous snapshot of the same
  // logical histogram (counts never decrease); stale-window mismatches are
  // clamped to zero rather than going negative. The delta's min/max are
  // bucket-edge estimates (exact values are not recoverable by subtraction).
  Histogram Delta(const Histogram& earlier) const;

  double Median() const { return Percentile(50.0); }
  double Percentile(double p) const;
  double Average() const;
  double StandardDeviation() const;
  double Max() const { return max_; }
  double Min() const { return min_; }
  double Sum() const { return sum_; }
  uint64_t Count() const { return static_cast<uint64_t>(num_); }

  std::string ToString() const;
  // Compact JSON object: {"count":..,"sum":..,"avg":..,"min":..,"max":..,
  // "p50":..,"p95":..,"p99":..}.
  std::string ToJson() const;

  // Cumulative counts at each of the given upper bounds (Prometheus `le`
  // semantics: samples <= bound, with internal buckets mapped by their upper
  // edge). `bounds` must be sorted ascending; an infinite last bound receives
  // Count(). Returns one count per bound.
  std::vector<uint64_t> CumulativeCounts(const std::vector<double>& bounds) const;

 private:
  static const std::vector<double>& BucketLimits();

  double min_;
  double max_;
  double num_;
  double sum_;
  double sum_squares_;
  std::vector<double> buckets_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_UTIL_HISTOGRAM_H_
