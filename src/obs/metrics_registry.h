// Windowed time-series metrics. The telemetry loop (P2KVS) drains all
// workers once per tick through the race-free kStats path, converts the
// aggregate into a TelemetrySample, and feeds it here; the registry keeps a
// fixed ring of derived MetricsWindows — per-window deltas of every counter,
// rates (QPS, shed/expired/retry per second, foreground bytes/s), and
// windowed latency percentiles via Histogram::Delta. Readers (the admin
// endpoint, tests) take consistent copies under the registry mutex.
//
// Clock discipline: the only clock reads happen on the drain thread through
// ObsClockNanos(), which counts into PerfContext::obs_clock_reads — tests
// assert the worker-side count stays zero whether telemetry is on or off
// (same contract as enable_stats and tracing).

#ifndef P2KVS_SRC_OBS_METRICS_REGISTRY_H_
#define P2KVS_SRC_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/util/clock.h"
#include "src/util/mutex.h"
#include "src/util/perf_context.h"
#include "src/util/stats_recorder.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {
namespace obs {

// Every telemetry-layer timestamp goes through here (the tracing
// TraceClockNanos pattern): the counter makes "telemetry adds zero clock
// reads to the request path" a testable property instead of a comment.
inline uint64_t ObsClockNanos() {
  GetPerfContext().obs_clock_reads++;
  return NowNanos();
}

// One drained aggregate, timestamped on the drain thread. Built by the owner
// (P2KVS's telemetry loop or the admin endpoint) from a GetStats() result;
// carries only util-layer types so the obs library stays core-free.
struct TelemetrySample {
  uint64_t wall_nanos = 0;
  WorkerStatsSnapshot totals;               // merged across workers
  std::vector<WorkerStatsSnapshot> workers; // per-partition snapshots

  // Process-level gauges sampled at drain time (resource_usage.h).
  double process_cpu_percent = 0;
  uint64_t process_rss_bytes = 0;

  // Tracing spillover counters (zero when tracing is off).
  bool trace_enabled = false;
  uint64_t trace_events = 0;
  uint64_t trace_dropped = 0;
};

// The delta between two consecutive samples: what happened in one window.
struct MetricsWindow {
  uint64_t start_nanos = 0;
  uint64_t end_nanos = 0;
  double seconds = 0;

  uint64_t requests = 0;  // executed in this window
  double qps = 0;
  double shed_per_sec = 0;
  double expired_per_sec = 0;
  double retries_per_sec = 0;
  double fg_write_bytes_per_sec = 0;
  double fg_read_bytes_per_sec = 0;

  // Windowed distributions (Histogram::Delta of the cumulative histograms);
  // percentiles of these are "p99 over the last window", not since start.
  Histogram queue_wait_us;
  Histogram execute_us;
  Histogram end_to_end_us;
  Histogram batch_size;

  // Gauges at window end.
  double process_cpu_percent = 0;
  uint64_t process_rss_bytes = 0;
  size_t queue_depth = 0;

  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  // Keeps up to `window_count` derived windows (plus the latest raw sample).
  explicit MetricsRegistry(size_t window_count);

  // Ingests one drained sample; derives a window against the previous sample
  // when one exists. Serialized internally; any thread.
  void AddSample(const TelemetrySample& sample) EXCLUDES(mu_);

  // Consistent copies; return false / empty before enough samples arrived.
  bool LatestSample(TelemetrySample* out) const EXCLUDES(mu_);
  bool LatestWindow(MetricsWindow* out) const EXCLUDES(mu_);
  std::vector<MetricsWindow> Windows() const EXCLUDES(mu_);  // oldest first

  // SelfCheck() verdicts from the telemetry loop (one check per window).
  void CountSelfCheckFailure() { self_check_failures_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t self_check_failures() const {
    return self_check_failures_.load(std::memory_order_relaxed);
  }
  uint64_t samples_ingested() const { return samples_ingested_.load(std::memory_order_relaxed); }

  // {"windows":[...],"self_check_failures":N}
  std::string ToJson() const EXCLUDES(mu_);

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  bool has_sample_ GUARDED_BY(mu_) = false;
  TelemetrySample last_sample_ GUARDED_BY(mu_);
  std::deque<MetricsWindow> windows_ GUARDED_BY(mu_);
  // Monotonic result counters; relaxed is enough — they are independent
  // statistics with no ordering relationship to other state.
  std::atomic<uint64_t> self_check_failures_{0};
  std::atomic<uint64_t> samples_ingested_{0};
};

}  // namespace obs
}  // namespace p2kvs

#endif  // P2KVS_SRC_OBS_METRICS_REGISTRY_H_
