#include "src/obs/skew.h"

#include <cmath>
#include <cstdio>

namespace p2kvs {
namespace obs {

namespace {

// Keys may hold arbitrary bytes; escape for JSON string context. Non-ASCII
// bytes become \u00XX so the output stays valid UTF-8 regardless of input.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

SkewReport BuildSkewReport(const std::vector<WorkerStatsSnapshot>& workers, size_t top_k) {
  SkewReport report;
  std::vector<SketchSnapshot> sketches;
  sketches.reserve(workers.size());
  for (const WorkerStatsSnapshot& w : workers) {
    PartitionLoad load;
    load.worker_id = w.worker_id;
    load.ops = w.requests_executed();
    report.partitions.push_back(load);
    report.total_ops += load.ops;
    report.sketched_ops += w.hot_keys.total_ops;
    sketches.push_back(w.hot_keys);
  }

  if (!report.partitions.empty() && report.total_ops > 0) {
    double mean = static_cast<double>(report.total_ops) / report.partitions.size();
    double max = 0;
    double sq = 0;
    for (PartitionLoad& p : report.partitions) {
      p.share = static_cast<double>(p.ops) / report.total_ops;
      double v = static_cast<double>(p.ops);
      if (v > max) {
        max = v;
        report.hottest_partition = p.worker_id;
      }
      sq += (v - mean) * (v - mean);
    }
    report.imbalance_max_mean = max / mean;
    report.imbalance_cv = std::sqrt(sq / report.partitions.size()) / mean;
  }

  report.top_keys = MergeTopK(sketches, top_k);
  if (report.sketched_ops > 0) {
    uint64_t covered = 0;
    for (const SketchEntry& e : report.top_keys) {
      covered += e.count;
    }
    report.top_key_coverage =
        static_cast<double>(covered) / static_cast<double>(report.sketched_ops);
  }
  return report;
}

std::string SkewReport::ToJson() const {
  std::string out = "{";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"total_ops\":%llu,\"sketched_ops\":%llu,"
                "\"imbalance_max_mean\":%.4f,\"imbalance_cv\":%.4f,"
                "\"hottest_partition\":%d,\"top_key_coverage\":%.4f",
                static_cast<unsigned long long>(total_ops),
                static_cast<unsigned long long>(sketched_ops), imbalance_max_mean,
                imbalance_cv, hottest_partition, top_key_coverage);
  out += buf;
  out += ",\"partitions\":[";
  for (size_t i = 0; i < partitions.size(); i++) {
    const PartitionLoad& p = partitions[i];
    std::snprintf(buf, sizeof(buf), "%s{\"worker\":%d,\"ops\":%llu,\"share\":%.4f}",
                  i ? "," : "", p.worker_id, static_cast<unsigned long long>(p.ops),
                  p.share);
    out += buf;
  }
  out += "],\"top_keys\":[";
  for (size_t i = 0; i < top_keys.size(); i++) {
    const SketchEntry& e = top_keys[i];
    if (i) {
      out += ",";
    }
    out += "{\"key\":\"" + JsonEscape(e.key) + "\"";  // escaped key can exceed buf
    std::snprintf(buf, sizeof(buf), ",\"count\":%llu,\"error\":%llu,\"worker\":%d}",
                  static_cast<unsigned long long>(e.count),
                  static_cast<unsigned long long>(e.error), e.worker_id);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace p2kvs
