#include "src/obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

namespace p2kvs {
namespace obs {

namespace {

// Coarse `le` ladder for exported histograms (microseconds / batch slots).
// The internal histograms keep ~190 fine geometric buckets; a scrape wants a
// stable, small set, so fine buckets are folded onto these upper bounds.
const std::vector<double>& LeLadder() {
  static const std::vector<double> ladder = {
      1,    2.5,   5,     10,    25,     50,     100,    250,   500,
      1000, 2500,  5000,  10000, 25000,  50000,  100000, 250000, 1000000,
      std::numeric_limits<double>::infinity()};
  return ladder;
}

std::string FmtDouble(double v) {
  if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  }
  char buf[64];
  // %.17g keeps doubles round-trippable; trim the common integer case.
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6f", v);
  }
  return buf;
}

class Exposition {
 public:
  void Family(const std::string& name, const std::string& type, const std::string& help) {
    out_ += "# HELP p2kvs_" + name + " " + help + "\n";
    out_ += "# TYPE p2kvs_" + name + " " + type + "\n";
    family_ = name;
  }

  void Sample(const std::string& labels, double value, const std::string& suffix = "") {
    out_ += "p2kvs_";
    out_ += family_;
    out_ += suffix;
    if (!labels.empty()) {
      out_ += "{";
      out_ += labels;
      out_ += "}";
    }
    out_ += " ";
    out_ += FmtDouble(value);
    out_ += "\n";
  }

  // One full histogram family from a p2kvs Histogram, folded onto LeLadder.
  void HistogramFamily(const std::string& name, const std::string& help,
                       const Histogram& h, const std::string& extra_labels = "") {
    Family(name, "histogram", help);
    std::vector<uint64_t> cumulative = h.CumulativeCounts(LeLadder());
    for (size_t i = 0; i < LeLadder().size(); i++) {
      std::string labels = extra_labels.empty() ? "" : extra_labels + ",";
      labels += "le=\"" + FmtDouble(LeLadder()[i]) + "\"";
      Sample(labels, static_cast<double>(cumulative[i]), "_bucket");
    }
    Sample(extra_labels, h.Sum(), "_sum");
    Sample(extra_labels, static_cast<double>(h.Count()), "_count");
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
  std::string family_;
};

std::string WorkerLabel(int worker_id) {
  return "worker=\"" + std::to_string(worker_id) + "\"";
}

}  // namespace

std::string PrometheusLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 4);
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderPrometheusText(const TelemetrySample& sample, const MetricsWindow* window,
                                 const SkewReport& skew, uint64_t self_check_failures) {
  Exposition e;
  const WorkerStatsSnapshot& t = sample.totals;

  // --- Cumulative counters (since store open). ---
  e.Family("requests_submitted_total", "counter", "Data requests entering the workers.");
  e.Sample("", static_cast<double>(t.submitted));
  e.Family("requests_completed_total", "counter",
           "Requests resolved with a real status (including errors).");
  e.Sample("", static_cast<double>(t.completed));
  e.Family("requests_executed_total", "counter", "Requests the engines actually ran.");
  e.Sample("", static_cast<double>(t.requests_executed()));
  e.Family("requests_shed_total", "counter", "Requests refused by admission control.");
  e.Sample("", static_cast<double>(t.shed));
  e.Family("requests_expired_total", "counter",
           "Requests whose deadline passed before execution.");
  e.Sample("", static_cast<double>(t.expired()));
  e.Family("batches_total", "counter", "Merged dispatch groups executed, by kind.");
  e.Sample("kind=\"write\"", static_cast<double>(t.write_batches));
  e.Sample("kind=\"read\"", static_cast<double>(t.read_batches));
  e.Sample("kind=\"single\"", static_cast<double>(t.singles));
  e.Family("fg_io_bytes_total", "counter",
           "Foreground bytes moved from worker threads, by direction.");
  e.Sample("dir=\"write\"", static_cast<double>(t.fg_bytes_written));
  e.Sample("dir=\"read\"", static_cast<double>(t.fg_bytes_read));
  e.Family("engine_retries_total", "counter", "Transient engine faults retried.");
  e.Sample("", static_cast<double>(t.engine.retry_count));
  e.Family("retries_denied_total", "counter", "Retry-budget fast-fail decisions.");
  e.Sample("", static_cast<double>(t.retries_denied));
  e.Family("breaker_trips_total", "counter", "Circuit-breaker degrade transitions.");
  e.Sample("", static_cast<double>(t.breaker_trips));
  e.Family("degraded_rejects_total", "counter",
           "Writes fast-rejected by unhealthy partitions.");
  e.Sample("", static_cast<double>(t.degraded_rejects));
  e.Family("selfcheck_failures_total", "counter",
           "Stats invariant violations found by the telemetry loop.");
  e.Sample("", static_cast<double>(self_check_failures));
  if (sample.trace_enabled) {
    e.Family("trace_events_total", "counter", "Trace events appended, pre-drop.");
    e.Sample("", static_cast<double>(sample.trace_events));
    e.Family("trace_dropped_total", "counter", "Trace events overwritten by ring wrap.");
    e.Sample("", static_cast<double>(sample.trace_dropped));
  }

  // --- Process gauges. ---
  e.Family("process_cpu_percent", "gauge",
           "Process CPU utilization, percent of one core.");
  e.Sample("", sample.process_cpu_percent);
  e.Family("process_rss_bytes", "gauge", "Resident set size.");
  e.Sample("", static_cast<double>(sample.process_rss_bytes));

  // --- Per-partition gauges. ---
  e.Family("partition_healthy", "gauge", "1 when the partition is healthy, else 0.");
  for (const WorkerStatsSnapshot& w : sample.workers) {
    e.Sample(WorkerLabel(w.worker_id), w.health_state == 0 ? 1 : 0);
  }
  e.Family("partition_queue_depth", "gauge", "Queued requests at drain time.");
  for (const WorkerStatsSnapshot& w : sample.workers) {
    e.Sample(WorkerLabel(w.worker_id), static_cast<double>(w.queue_depth));
  }
  e.Family("partition_requests_executed_total", "counter",
           "Requests executed, per partition.");
  for (const WorkerStatsSnapshot& w : sample.workers) {
    e.Sample(WorkerLabel(w.worker_id), static_cast<double>(w.requests_executed()));
  }

  // --- Skew report. ---
  e.Family("partition_load_share", "gauge",
           "Fraction of executed requests owned by this partition.");
  for (const PartitionLoad& p : skew.partitions) {
    e.Sample(WorkerLabel(p.worker_id), p.share);
  }
  e.Family("skew_imbalance_max_mean", "gauge",
           "Hottest partition load over mean load (1.0 = perfectly even).");
  e.Sample("", skew.imbalance_max_mean);
  e.Family("skew_imbalance_cv", "gauge",
           "Coefficient of variation of partition loads.");
  e.Sample("", skew.imbalance_cv);
  e.Family("skew_hottest_partition", "gauge", "Worker id with the most load (-1 idle).");
  e.Sample("", skew.hottest_partition);
  e.Family("hot_key_count", "gauge",
           "SpaceSaving count upper bound for each global top-K key.");
  for (const SketchEntry& k : skew.top_keys) {
    e.Sample("key=\"" + PrometheusLabelEscape(k.key) + "\"," + WorkerLabel(k.worker_id),
             static_cast<double>(k.count));
  }

  // --- Latest window: rates + windowed percentiles. ---
  if (window != nullptr && window->seconds > 0) {
    e.Family("window_seconds", "gauge", "Length of the last completed metrics window.");
    e.Sample("", window->seconds);
    e.Family("window_qps", "gauge", "Requests executed per second in the last window.");
    e.Sample("", window->qps);
    e.Family("window_shed_per_sec", "gauge", "Shed rate in the last window.");
    e.Sample("", window->shed_per_sec);
    e.Family("window_expired_per_sec", "gauge", "Deadline-expiry rate in the last window.");
    e.Sample("", window->expired_per_sec);
    e.Family("window_retries_per_sec", "gauge", "Engine retry rate in the last window.");
    e.Sample("", window->retries_per_sec);
    e.Family("window_fg_bytes_per_sec", "gauge",
             "Foreground IO rate in the last window, by direction.");
    e.Sample("dir=\"write\"", window->fg_write_bytes_per_sec);
    e.Sample("dir=\"read\"", window->fg_read_bytes_per_sec);
    e.Family("window_latency_us", "gauge",
             "Windowed latency percentiles (microseconds), by stage.");
    struct StageHist {
      const char* stage;
      const Histogram* h;
    } stages[] = {{"queue_wait", &window->queue_wait_us},
                  {"execute", &window->execute_us},
                  {"end_to_end", &window->end_to_end_us}};
    for (const StageHist& s : stages) {
      for (double q : {50.0, 95.0, 99.0}) {
        std::string labels = "stage=\"" + std::string(s.stage) + "\",quantile=\"" +
                             FmtDouble(q / 100.0) + "\"";
        e.Sample(labels, s.h->Percentile(q));
      }
    }
  }

  // --- Cumulative latency histograms (Prometheus le semantics). ---
  e.HistogramFamily("queue_wait_microseconds", "Queue wait, submit to dequeue.",
                    t.queue_wait_us);
  e.HistogramFamily("execute_microseconds", "Engine execution time per dispatch.",
                    t.execute_us);
  e.HistogramFamily("end_to_end_microseconds", "Submit to completion, per head request.",
                    t.end_to_end_us);
  e.HistogramFamily("batch_size", "Requests merged per dispatch group.", t.batch_size);

  return e.Take();
}

}  // namespace obs
}  // namespace p2kvs
