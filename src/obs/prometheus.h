// Prometheus text exposition (version 0.0.4) rendering of a drained
// telemetry sample: cumulative counters, process/partition gauges, latency
// histograms with cumulative `le` buckets, windowed rates, and the skew
// report. Pure formatting — no locking, no clock reads; callers pass
// consistent copies taken from the MetricsRegistry or a fresh drain.

#ifndef P2KVS_SRC_OBS_PROMETHEUS_H_
#define P2KVS_SRC_OBS_PROMETHEUS_H_

#include <string>

#include "src/obs/metrics_registry.h"
#include "src/obs/skew.h"

namespace p2kvs {
namespace obs {

// Renders `sample` (cumulative state), the latest `window` (rates + windowed
// percentiles; pass null before the first full window), and the `skew`
// report into one scrape body. `self_check_failures` is the registry's
// counter. All metric names carry the `p2kvs_` prefix.
std::string RenderPrometheusText(const TelemetrySample& sample, const MetricsWindow* window,
                                 const SkewReport& skew, uint64_t self_check_failures);

// Escapes a value for use inside a Prometheus label: \ -> \\, " -> \", and
// newline -> \n; other bytes pass through (scrapers accept raw UTF-8).
std::string PrometheusLabelEscape(const std::string& value);

}  // namespace obs
}  // namespace p2kvs

#endif  // P2KVS_SRC_OBS_PROMETHEUS_H_
