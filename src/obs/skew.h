// Skew sensing: aggregates per-worker stats + hot-key sketches into a single
// report — global top-K heavy hitters, per-partition load shares, and
// imbalance coefficients (max/mean and coefficient of variation). This is
// the sensor layer for ROADMAP item 1 (hot-key handling / dynamic
// repartitioning): any migration policy starts by reading this report.

#ifndef P2KVS_SRC_OBS_SKEW_H_
#define P2KVS_SRC_OBS_SKEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/sketch.h"
#include "src/util/stats_recorder.h"

namespace p2kvs {
namespace obs {

struct PartitionLoad {
  int worker_id = 0;
  uint64_t ops = 0;      // requests executed by this partition
  double share = 0;      // ops / total ops (0 when idle)
};

struct SkewReport {
  std::vector<PartitionLoad> partitions;
  std::vector<SketchEntry> top_keys;  // global heavy hitters, count-descending

  uint64_t total_ops = 0;         // sum of per-partition executed requests
  uint64_t sketched_ops = 0;      // RecordKey observations across workers
  double imbalance_max_mean = 0;  // max partition load / mean load (1 = even)
  double imbalance_cv = 0;        // stddev / mean of partition loads
  int hottest_partition = -1;     // worker id with the most ops (-1 if idle)

  // Fraction of sketched traffic covered by the reported top keys (counts
  // are upper bounds, so this can slightly exceed the true coverage).
  double top_key_coverage = 0;

  std::string ToJson() const;
};

// Builds the report from drained per-worker snapshots (each carrying its
// counters and, when the sketch is enabled, its hot_keys snapshot).
SkewReport BuildSkewReport(const std::vector<WorkerStatsSnapshot>& workers, size_t top_k);

}  // namespace obs
}  // namespace p2kvs

#endif  // P2KVS_SRC_OBS_SKEW_H_
