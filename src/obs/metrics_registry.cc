#include "src/obs/metrics_registry.h"

#include <cstdio>

namespace p2kvs {
namespace obs {

namespace {

// Counter deltas between samples clamp at zero: a restarted store behind the
// same registry must not produce negative rates.
uint64_t Sub(uint64_t now, uint64_t then) { return now >= then ? now - then : 0; }

MetricsWindow DeriveWindow(const TelemetrySample& prev, const TelemetrySample& now) {
  MetricsWindow w;
  w.start_nanos = prev.wall_nanos;
  w.end_nanos = now.wall_nanos;
  w.seconds = now.wall_nanos > prev.wall_nanos
                  ? static_cast<double>(now.wall_nanos - prev.wall_nanos) / 1e9
                  : 0;
  const WorkerStatsSnapshot& a = prev.totals;
  const WorkerStatsSnapshot& b = now.totals;
  w.requests = Sub(b.requests_executed(), a.requests_executed());
  if (w.seconds > 0) {
    w.qps = static_cast<double>(w.requests) / w.seconds;
    w.shed_per_sec = static_cast<double>(Sub(b.shed, a.shed)) / w.seconds;
    w.expired_per_sec = static_cast<double>(Sub(b.expired(), a.expired())) / w.seconds;
    w.retries_per_sec =
        static_cast<double>(Sub(b.engine.retry_count, a.engine.retry_count)) / w.seconds;
    w.fg_write_bytes_per_sec =
        static_cast<double>(Sub(b.fg_bytes_written, a.fg_bytes_written)) / w.seconds;
    w.fg_read_bytes_per_sec =
        static_cast<double>(Sub(b.fg_bytes_read, a.fg_bytes_read)) / w.seconds;
  }
  w.queue_wait_us = b.queue_wait_us.Delta(a.queue_wait_us);
  w.execute_us = b.execute_us.Delta(a.execute_us);
  w.end_to_end_us = b.end_to_end_us.Delta(a.end_to_end_us);
  w.batch_size = b.batch_size.Delta(a.batch_size);
  w.process_cpu_percent = now.process_cpu_percent;
  w.process_rss_bytes = now.process_rss_bytes;
  w.queue_depth = b.queue_depth;
  return w;
}

}  // namespace

MetricsRegistry::MetricsRegistry(size_t window_count)
    : capacity_(window_count == 0 ? 1 : window_count) {}

void MetricsRegistry::AddSample(const TelemetrySample& sample) {
  MutexLock l(&mu_);
  if (has_sample_) {
    windows_.push_back(DeriveWindow(last_sample_, sample));
    while (windows_.size() > capacity_) {
      windows_.pop_front();
    }
  }
  last_sample_ = sample;
  has_sample_ = true;
  samples_ingested_.fetch_add(1, std::memory_order_relaxed);
}

bool MetricsRegistry::LatestSample(TelemetrySample* out) const {
  MutexLock l(&mu_);
  if (!has_sample_) {
    return false;
  }
  *out = last_sample_;
  return true;
}

bool MetricsRegistry::LatestWindow(MetricsWindow* out) const {
  MutexLock l(&mu_);
  if (windows_.empty()) {
    return false;
  }
  *out = windows_.back();
  return true;
}

std::vector<MetricsWindow> MetricsRegistry::Windows() const {
  MutexLock l(&mu_);
  return std::vector<MetricsWindow>(windows_.begin(), windows_.end());
}

std::string MetricsWindow::ToJson() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"start_nanos\":%llu,\"end_nanos\":%llu,\"seconds\":%.3f,"
                "\"requests\":%llu,\"qps\":%.1f,\"shed_per_sec\":%.1f,"
                "\"expired_per_sec\":%.1f,\"retries_per_sec\":%.1f,"
                "\"fg_write_bytes_per_sec\":%.0f,\"fg_read_bytes_per_sec\":%.0f,"
                "\"process_cpu_percent\":%.1f,\"process_rss_bytes\":%llu,"
                "\"queue_depth\":%llu",
                static_cast<unsigned long long>(start_nanos),
                static_cast<unsigned long long>(end_nanos), seconds,
                static_cast<unsigned long long>(requests), qps, shed_per_sec,
                expired_per_sec, retries_per_sec, fg_write_bytes_per_sec,
                fg_read_bytes_per_sec, process_cpu_percent,
                static_cast<unsigned long long>(process_rss_bytes),
                static_cast<unsigned long long>(queue_depth));
  std::string json = buf;
  json += ",\"queue_wait_us\":" + queue_wait_us.ToJson();
  json += ",\"execute_us\":" + execute_us.ToJson();
  json += ",\"end_to_end_us\":" + end_to_end_us.ToJson();
  json += ",\"batch_size\":" + batch_size.ToJson();
  json += "}";
  return json;
}

std::string MetricsRegistry::ToJson() const {
  std::vector<MetricsWindow> windows = Windows();
  std::string json = "{\"self_check_failures\":" + std::to_string(self_check_failures()) +
                     ",\"samples\":" + std::to_string(samples_ingested()) + ",\"windows\":[";
  for (size_t i = 0; i < windows.size(); i++) {
    if (i) {
      json += ",";
    }
    json += windows[i].ToJson();
  }
  json += "]}";
  return json;
}

}  // namespace obs
}  // namespace p2kvs
