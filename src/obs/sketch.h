// SpaceSaving top-K heavy-hitter sketch (Metwally et al., "Efficient
// computation of frequent and top-k elements in data streams").
//
// One sketch per worker, written ONLY by the owning worker thread on the
// execute path — no atomics, no locks, no clock reads (the zero-overhead-off
// contract from the stats/tracing layers extends to telemetry: when
// hot_key_sketch_k == 0 the worker never constructs a sketch, and when it is
// on, RecordKey is a hash + one pass over a K-slot flat array, allocation-free
// once the table fills). Snapshots drain through the
// same race-free kStats path as the StatsRecorder: the worker copies its
// sketch into the request's snapshot and the join Completion's
// release/acquire pair publishes it.
//
// Accuracy bound (standard SpaceSaving): with capacity K over N recorded
// ops, every entry's true count lies in [count - error, count], and any key
// with true frequency > N/K is guaranteed to be present.
//
// Header-only so src/util can embed SketchSnapshot in WorkerStatsSnapshot
// without a link-time dependency on p2kvs_obs.

#ifndef P2KVS_SRC_OBS_SKETCH_H_
#define P2KVS_SRC_OBS_SKETCH_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/hash.h"

namespace p2kvs {
namespace obs {

// One heavy-hitter candidate. `count` overestimates the true frequency by at
// most `error` (error == the evicted minimum at replacement time).
struct SketchEntry {
  std::string key;       // possibly truncated for display (kMaxKeyBytes)
  uint64_t hash = 0;     // full-key hash; identity for merging
  uint64_t count = 0;
  uint64_t error = 0;
  int worker_id = -1;    // worker that observed most of this entry's count
};

// Value snapshot of one worker's sketch; copyable, safe on any thread.
struct SketchSnapshot {
  std::vector<SketchEntry> entries;  // unordered
  uint64_t total_ops = 0;            // every RecordKey call, in sketch or not

  bool empty() const { return entries.empty() && total_ops == 0; }
};

class SpaceSavingSketch {
 public:
  // Keys longer than this are truncated in reports (hashing always covers the
  // full key, so identity is unaffected).
  static constexpr size_t kMaxKeyBytes = 48;

  explicit SpaceSavingSketch(size_t capacity) : capacity_(capacity) {
    hashes_.reserve(capacity);
    counts_.reserve(capacity);
    errors_.reserve(capacity);
    keys_.reserve(capacity);
  }

  // Records one observation. Owning worker thread only; clock-free and
  // allocation-free once the table fills: lookup is one pass over a
  // contiguous K-slot hash array (K defaults to 32 — two cache lines, no
  // node-based map, no pointer chasing), and eviction overwrites the minimum
  // slot in place, reusing its key string's capacity.
  void RecordKey(const char* data, size_t n) {
    total_ops_++;
    const uint64_t h = Hash64(data, n);
    for (size_t i = 0; i < hashes_.size(); i++) {
      if (hashes_[i] == h) {
        counts_[i]++;
        return;
      }
    }
    if (hashes_.size() < capacity_) {
      hashes_.push_back(h);
      counts_.push_back(1);
      errors_.push_back(0);
      keys_.emplace_back(data, n <= kMaxKeyBytes ? n : kMaxKeyBytes);
      return;
    }
    // Replace the current minimum; its count becomes the new entry's error
    // bound. Linear min scan over the contiguous count array: capacity is
    // small and under skewed traffic this path runs only for cold keys.
    size_t min_i = 0;
    for (size_t i = 1; i < counts_.size(); i++) {
      if (counts_[i] < counts_[min_i]) {
        min_i = i;
      }
    }
    hashes_[min_i] = h;
    errors_[min_i] = counts_[min_i];
    counts_[min_i]++;
    keys_[min_i].assign(data, n <= kMaxKeyBytes ? n : kMaxKeyBytes);
  }
  void RecordKey(const std::string& key) { RecordKey(key.data(), key.size()); }

  uint64_t total_ops() const { return total_ops_; }

  // Copies the sketch into `out`, tagging entries with `worker_id`. Owning
  // worker thread only (same contract as StatsRecorder::FillSnapshot).
  void FillSnapshot(SketchSnapshot* out, int worker_id) const {
    out->total_ops = total_ops_;
    out->entries.clear();
    out->entries.reserve(hashes_.size());
    for (size_t i = 0; i < hashes_.size(); i++) {
      out->entries.push_back(
          SketchEntry{keys_[i], hashes_[i], counts_[i], errors_[i], worker_id});
    }
  }

 private:
  // Structure-of-arrays: the hot lookup touches only `hashes_` (K * 8 bytes,
  // contiguous) and the eviction min scan only `counts_`; key strings stay
  // cold until a slot is actually replaced.
  size_t capacity_;
  std::vector<uint64_t> hashes_;
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> errors_;
  std::vector<std::string> keys_;
  uint64_t total_ops_ = 0;
};

// Merges per-worker snapshots into the global top-`k` by summed count.
// Workers partition the key space, so a key's observations live in exactly
// one worker's sketch and summing is exact w.r.t. what the sketches hold;
// the per-entry error bounds carry through unchanged.
inline std::vector<SketchEntry> MergeTopK(const std::vector<SketchSnapshot>& snapshots,
                                          size_t k) {
  std::unordered_map<uint64_t, SketchEntry> by_hash;
  for (const SketchSnapshot& snap : snapshots) {
    for (const SketchEntry& e : snap.entries) {
      auto it = by_hash.find(e.hash);
      if (it == by_hash.end()) {
        by_hash.emplace(e.hash, e);
      } else {
        SketchEntry& m = it->second;
        if (e.count > m.count) {  // keep the dominant observer's id + key form
          m.worker_id = e.worker_id;
          m.key = e.key;
        }
        m.count += e.count;
        m.error += e.error;
      }
    }
  }
  std::vector<SketchEntry> merged;
  merged.reserve(by_hash.size());
  for (auto& kv : by_hash) {
    merged.push_back(std::move(kv.second));
  }
  std::sort(merged.begin(), merged.end(), [](const SketchEntry& a, const SketchEntry& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.hash < b.hash;  // deterministic order for ties
  });
  if (merged.size() > k) {
    merged.resize(k);
  }
  return merged;
}

}  // namespace obs
}  // namespace p2kvs

#endif  // P2KVS_SRC_OBS_SKETCH_H_
