// Admin / observability HTTP endpoint. A single-threaded epoll listener
// (the src/server/server.h idiom: one event loop, eventfd completion bus,
// per-response slots published with release/acquire) speaking just enough
// HTTP/1.0 for curl and a Prometheus scraper:
//
//   GET /metrics     Prometheus text exposition 0.0.4 (obs/prometheus.h):
//                    cumulative counters, latency histograms, per-partition
//                    health and load shares, skew + hot keys, windowed rates
//                    from the MetricsRegistry when the telemetry loop runs.
//   GET /stats.json  Full GetStats() JSON plus the registry's window ring.
//   GET /healthz     200 {"status":"ok"} when every partition is healthy,
//                    503 with the per-partition breakdown otherwise. Served
//                    directly from the health atomics — no drain, no queue.
//   GET /tracez      Triggers a flight-recorder dump (as SIGUSR2 would) and
//                    reports the tracer state.
//
// Worker-context safety: the event loop is worker context (it runs store
// callbacks' completions), so it never calls a blocking P2KVS entry point.
// /metrics and /stats.json drain through GetStatsAsync: the callback runs on
// a worker thread, moves the stats into the response slot, and rings the
// eventfd; all rendering happens back on the admin thread.

#ifndef P2KVS_SRC_SERVER_ADMIN_H_
#define P2KVS_SRC_SERVER_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/p2kvs.h"
#include "src/util/mutex.h"
#include "src/util/resource_usage.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {
namespace server {

struct AdminOptions {
  std::string bind_address = "127.0.0.1";
  // 0 = kernel-assigned; read back via AdminServer::port().
  uint16_t port = 0;
  int backlog = 16;
  // Requests are tiny GETs; anything larger is a client bug or abuse.
  size_t max_request_bytes = 8192;
};

// One admin endpoint over one store. Start() spawns the event-loop thread;
// Stop() (or the destructor) joins it and then waits for in-flight stats
// callbacks to clear, so the store may be destroyed afterwards.
class AdminServer {
 public:
  AdminServer(P2KVS* store, AdminOptions options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const { return port_; }

  struct Counters {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> bad_requests{0};  // parse failures / bodies too large
    std::atomic<uint64_t> not_found{0};
    std::atomic<uint64_t> eintr_retries{0};
  };
  const Counters& counters() const { return counters_; }

 private:
  enum class Route { kMetrics, kStatsJson, kHealthz, kTracez };

  // One response being produced. For async routes the store callback fills
  // `stats` and publishes with done.store(release); the admin thread observes
  // done with acquire and renders the HTTP response. conn_id (not a pointer)
  // keys back to the connection, which may be gone by completion time.
  struct PendingResponse {
    explicit PendingResponse(uint64_t cid) : conn_id(cid) {}
    const uint64_t conn_id;
    Route route = Route::kMetrics;
    P2kvsStats stats;
    std::string body;           // pre-rendered for synchronous routes
    int http_status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    bool needs_render = false;  // async: render from `stats` on flush
    std::atomic<bool> done{false};
  };
  using SlotPtr = std::shared_ptr<PendingResponse>;

  // Wakes the event loop when a worker-thread callback completes a slot.
  // Kept alive by shared_ptr from both the server and in-flight callbacks so
  // Stop() can drain stragglers after the loop exits.
  struct CompletionBus {
    int event_fd = -1;
    Mutex mu;
    std::vector<uint64_t> ready GUARDED_BY(mu);  // conn ids to flush
    std::atomic<uint64_t> inflight{0};

    void Notify(uint64_t conn_id);
  };

  // All connection state is owned by the event-loop thread.
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string inbuf;               // bytes until the blank line
    std::deque<SlotPtr> pending;     // responses in request order
    std::string outbuf;
    size_t out_off = 0;
    bool want_write = false;
    bool close_after_flush = false;  // always set: HTTP/1.0, Connection: close
  };

  void EventLoop();
  void AcceptNew();
  void HandleReadable(uint64_t conn_id);
  void HandleRequest(Connection* conn, const std::string& method, const std::string& path);
  void DispatchAsyncStats(Connection* conn, Route route);
  void RenderSlot(PendingResponse* slot);
  std::string HealthzBody(int* http_status) const;
  std::string TracezBody();
  void FlushConnection(Connection* conn);
  void TryWrite(Connection* conn);
  bool UpdateEpoll(Connection* conn, bool want_write);
  void CloseConnection(uint64_t conn_id);

  P2KVS* const store_;
  const AdminOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  uint16_t port_ = 0;
  std::shared_ptr<CompletionBus> bus_;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  // Event-loop thread only.
  uint64_t next_conn_id_ = 2;  // 0 = listen fd, 1 = eventfd in epoll user data
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  // Process gauges for /metrics are sampled here, on the admin thread, at
  // render time (the telemetry loop has its own sampler; CPU% deltas are
  // per-sampler, so they do not interfere).
  CpuUsageSampler cpu_sampler_;

  Counters counters_;
};

}  // namespace server
}  // namespace p2kvs

#endif  // P2KVS_SRC_SERVER_ADMIN_H_
