#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/coding.h"

namespace p2kvs {
namespace server {

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) {
    return Status::InvalidArgument("already connected");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket", std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address", host);
  }
  int r;
  do {
    r = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (r != 0 && errno == EINTR);
  if (r != 0) {
    const Status s = Status::IOError("connect", std::strerror(errno));
    ::close(fd);
    return s;
  }
  int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
  fd_ = fd;
  // Fresh connection, fresh pipeline: a sticky failure from a previous
  // connection does not apply to this one.
  send_error_ = Status::OK();
  sendbuf_.clear();
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::WriteAll(const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Status::IOError("send", std::strerror(errno));
  }
  return Status::OK();
}

Status Client::Flush() {
  if (!send_error_.ok()) {
    // A prior auto-flush already lost frames; keep reporting that failure
    // (and keep dropping the buffer) instead of pretending later frames made
    // it onto a broken pipeline.
    sendbuf_.clear();
    return send_error_;
  }
  if (sendbuf_.empty()) {
    return Status::OK();
  }
  const Status s = WriteAll(sendbuf_.data(), sendbuf_.size());
  sendbuf_.clear();
  if (!s.ok()) {
    send_error_ = s;
  }
  return s;
}

Status Client::ReadResponse(Response* out) {
  char buf[64 * 1024];
  while (true) {
    std::string body;
    switch (reader_.Next(&body)) {
      case FrameReader::NextResult::kFrame: {
        if (body.size() < kFrameHeaderBytes) {
          return Status::IOError("short response frame");
        }
        out->request_id = DecodeFixed64(body.data());
        out->status_code = static_cast<uint8_t>(body[8]);
        out->payload.assign(body, kFrameHeaderBytes, body.size() - kFrameHeaderBytes);
        received_.fetch_add(1, std::memory_order_release);
        return Status::OK();
      }
      case FrameReader::NextResult::kNeedMore:
        break;
      case FrameReader::NextResult::kTooLarge:
        return Status::IOError("oversized response frame");
      case FrameReader::NextResult::kMalformed:
        return Status::IOError("malformed response frame");
    }
    ssize_t n;
    do {
      n = ::recv(fd_, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (n < 0) {
      return Status::IOError("recv", std::strerror(errno));
    }
    reader_.Feed(buf, static_cast<size_t>(n));
  }
}

Status Client::RoundTrip(Response* out) {
  Status s = Flush();
  if (!s.ok()) return s;
  return ReadResponse(out);
}

uint64_t Client::SendGet(const std::string& key) {
  const uint64_t id = next_id_++;
  EncodeGet(&sendbuf_, id, key);
  sent_.fetch_add(1, std::memory_order_release);
  if (sendbuf_.size() >= flush_threshold_) Flush().IgnoreError();  // sticky in send_error_
  return id;
}

uint64_t Client::SendPut(const std::string& key, const std::string& value) {
  const uint64_t id = next_id_++;
  EncodePut(&sendbuf_, id, key, value);
  sent_.fetch_add(1, std::memory_order_release);
  if (sendbuf_.size() >= flush_threshold_) Flush().IgnoreError();  // sticky in send_error_
  return id;
}

uint64_t Client::SendDelete(const std::string& key) {
  const uint64_t id = next_id_++;
  EncodeDelete(&sendbuf_, id, key);
  sent_.fetch_add(1, std::memory_order_release);
  if (sendbuf_.size() >= flush_threshold_) Flush().IgnoreError();  // sticky in send_error_
  return id;
}

uint64_t Client::SendMultiGet(const std::vector<std::string>& keys) {
  const uint64_t id = next_id_++;
  EncodeMultiGet(&sendbuf_, id, keys);
  sent_.fetch_add(1, std::memory_order_release);
  if (sendbuf_.size() >= flush_threshold_) Flush().IgnoreError();  // sticky in send_error_
  return id;
}

uint64_t Client::SendScan(const std::string& begin, uint32_t count) {
  const uint64_t id = next_id_++;
  EncodeScan(&sendbuf_, id, begin, count);
  sent_.fetch_add(1, std::memory_order_release);
  if (sendbuf_.size() >= flush_threshold_) Flush().IgnoreError();  // sticky in send_error_
  return id;
}

Status Client::Put(const std::string& key, const std::string& value) {
  SendPut(key, value);
  Response r;
  const Status s = RoundTrip(&r);
  return s.ok() ? r.ToStatus() : s;
}

Status Client::Delete(const std::string& key) {
  SendDelete(key);
  Response r;
  const Status s = RoundTrip(&r);
  return s.ok() ? r.ToStatus() : s;
}

Status Client::Get(const std::string& key, std::string* value) {
  SendGet(key);
  Response r;
  Status s = RoundTrip(&r);
  if (!s.ok()) return s;
  s = r.ToStatus();
  if (s.ok()) {
    *value = std::move(r.payload);
  }
  return s;
}

Status Client::MultiGet(const std::vector<std::string>& keys, std::vector<Status>* statuses,
                        std::vector<std::string>* values) {
  SendMultiGet(keys);
  Response r;
  Status s = RoundTrip(&r);
  if (!s.ok()) return s;
  s = r.ToStatus();
  if (!s.ok()) return s;
  if (!r.DecodeMultiGet(statuses, values)) {
    return Status::IOError("malformed MULTIGET response payload");
  }
  return Status::OK();
}

Status Client::MultiWrite(const std::vector<WriteOp>& ops) {
  const uint64_t id = next_id_++;
  EncodeMultiWrite(&sendbuf_, id, ops);
  sent_.fetch_add(1, std::memory_order_release);
  Response r;
  const Status s = RoundTrip(&r);
  return s.ok() ? r.ToStatus() : s;
}

Status Client::Scan(const std::string& begin, uint32_t count,
                    std::vector<std::pair<std::string, std::string>>* pairs) {
  SendScan(begin, count);
  Response r;
  Status s = RoundTrip(&r);
  if (!s.ok()) return s;
  s = r.ToStatus();
  if (!s.ok()) return s;
  if (!r.DecodeScan(pairs)) {
    return Status::IOError("malformed SCAN response payload");
  }
  return Status::OK();
}

Status Client::Stats(std::string* json) {
  const uint64_t id = next_id_++;
  EncodeStats(&sendbuf_, id);
  sent_.fetch_add(1, std::memory_order_release);
  Response r;
  Status s = RoundTrip(&r);
  if (!s.ok()) return s;
  s = r.ToStatus();
  if (s.ok()) {
    *json = std::move(r.payload);
  }
  return s;
}

}  // namespace server
}  // namespace p2kvs
