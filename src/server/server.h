// Network front-end: serves a P2KVS store over the pipelined binary protocol
// in protocol.h.
//
// Threading model — ONE epoll thread, ZERO blocking on the store:
//
//   epoll thread: accepts, reads, decodes frames, and submits every request
//   through the store's asynchronous interface (GetAsync / PutAsync / ... /
//   GetStatsAsync). It never parks on a Completion, so a slow partition
//   cannot stall unrelated connections.
//
//   worker threads: the store's completion callbacks run here. Each callback
//   encodes its response into a pre-allocated per-request slot, marks it done
//   (release), and pokes the epoll thread through an eventfd. Workers never
//   touch a Connection — only the slot and the completion bus, both owned by
//   shared_ptr, so a connection torn down mid-pipeline cannot leave a
//   callback with a dangling pointer.
//
//   response ordering: each connection keeps a FIFO of response slots in
//   request arrival order; the epoll thread flushes the contiguous done
//   prefix. Out-of-order store completions therefore never reorder the wire.
//
// Overload behavior: admission-control sheds and deadline expiries inside the
// store surface as protocol-level BUSY / DEADLINE_EXCEEDED responses — the
// client sees exactly the Status a local caller would. The server adds one
// defense of its own: a per-connection in-flight cap (max_pipeline) answered
// with BUSY without touching the store, so one greedy connection cannot
// monopolize the workers' queues.

#ifndef P2KVS_SRC_SERVER_SERVER_H_
#define P2KVS_SRC_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/p2kvs.h"
#include "src/server/protocol.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {
namespace server {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; read back via Server::port()
  int backlog = 128;
  // Frames whose announced body exceeds this are a protocol error (the
  // connection is closed — there is no way to resync the stream).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Per-connection in-flight request cap; excess requests get BUSY replies
  // without ever reaching the store.
  size_t max_pipeline = 1024;
  // A connection whose unsent response backlog exceeds this is dropped as a
  // slow consumer (it is not reading its responses).
  size_t max_outbuf_bytes = 64u << 20;
};

// Monotonic counters, all written by the epoll thread except where noted.
// Snapshot() is safe from any thread.
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_decoded = 0;
  uint64_t protocol_errors = 0;     // malformed/oversized frames and payloads
  uint64_t pipeline_rejections = 0; // BUSY replies from the max_pipeline cap
  uint64_t submitted_to_store = 0;  // async ops handed to P2KVS (server door)
  uint64_t responses_sent = 0;      // complete response frames written
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t slow_consumer_drops = 0;
  uint64_t eintr_wakeups = 0;       // epoll_wait EINTR returns (never fatal)
};

class Server {
 public:
  // `store` must outlive the server and is not owned. Serving starts on
  // Start(); the constructor only records configuration.
  Server(P2KVS* store, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and launches the epoll thread. On success port() returns
  // the bound port (useful with options.port == 0).
  Status Start();

  // Stops accepting, closes every connection, joins the epoll thread, then
  // waits until every request already submitted to the store has completed —
  // so counters are final and no callback still references the bus when the
  // caller tears down the store next.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  ServerStatsSnapshot Stats() const;

 private:
  // One response slot. The epoll thread creates it in arrival order; exactly
  // one store callback fills `frame` then sets `done` (release). The epoll
  // thread reads `frame` only after observing done (acquire).
  struct PendingResponse {
    explicit PendingResponse(uint64_t cid) : conn_id(cid) {}
    const uint64_t conn_id;
    std::string frame;
    std::atomic<bool> done{false};
  };
  using SlotPtr = std::shared_ptr<PendingResponse>;

  // Worker-callback -> epoll-thread signal path. shared_ptr-owned by the
  // server AND by every in-flight callback, so the eventfd stays valid even
  // if the server is stopped while completions are still in flight (the
  // straggler pokes a bus nobody reads — harmless — instead of a reused fd).
  struct CompletionBus {
    ~CompletionBus();
    int event_fd = -1;
    Mutex mu;
    std::vector<uint64_t> ready GUARDED_BY(mu);  // conn ids with new completions
    // Requests submitted to the store whose callback has not finished yet.
    std::atomic<uint64_t> inflight{0};

    // Called from worker threads: queue conn_id and poke the epoll thread.
    void Notify(uint64_t conn_id);
  };

  // All fields are epoll-thread-only.
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameReader reader;
    std::deque<SlotPtr> pending;  // FIFO, request arrival order
    std::string outbuf;           // encoded, not yet accepted by the kernel
    size_t out_off = 0;
    bool want_write = false;      // EPOLLOUT armed
    bool close_after_flush = false;

    explicit Connection(size_t max_frame) : reader(max_frame) {}
  };
  using ConnPtr = std::unique_ptr<Connection>;

  void EventLoop();
  void AcceptNew();
  // Read-side: drain the socket, decode frames, dispatch. May close `conn`.
  void HandleReadable(Connection* conn);
  // Decode + submit one frame body. Returns false on an unrecoverable
  // protocol error (caller closes after flushing the error reply).
  bool DispatchFrame(Connection* conn, const std::string& body);
  void SubmitToStore(Connection* conn, Request req, SlotPtr slot);
  // Move the contiguous done prefix of `pending` into outbuf, then write.
  void FlushConnection(Connection* conn);
  // Push outbuf bytes into the kernel; arms/disarms EPOLLOUT as needed.
  void TryWrite(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  bool UpdateEpoll(Connection* conn, bool want_write);

  P2KVS* const store_;
  const ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  std::shared_ptr<CompletionBus> bus_;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // epoll-thread-only.
  std::unordered_map<uint64_t, ConnPtr> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listen fd, 1 = eventfd in epoll user data

  // Counters: epoll-thread-written (relaxed), any-thread-read.
  struct Counters {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> closed{0};
    std::atomic<uint64_t> frames{0};
    std::atomic<uint64_t> proto_errors{0};
    std::atomic<uint64_t> pipeline_rejects{0};
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> responses{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> slow_drops{0};
    std::atomic<uint64_t> eintr{0};
  };
  mutable Counters counters_;
};

}  // namespace server
}  // namespace p2kvs

#endif  // P2KVS_SRC_SERVER_SERVER_H_
