#include "src/server/protocol.h"

#include "src/util/coding.h"

namespace p2kvs {
namespace server {

namespace {

// Bounds-checked cursor over a frame body.
struct Cursor {
  const char* p;
  const char* limit;

  bool ReadU8(uint8_t* v) {
    if (limit - p < 1) return false;
    *v = static_cast<uint8_t>(*p++);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (limit - p < 4) return false;
    *v = DecodeFixed32(p);
    p += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (limit - p < 8) return false;
    *v = DecodeFixed64(p);
    p += 8;
    return true;
  }
  bool ReadBytes(std::string* out) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (static_cast<size_t>(limit - p) < len) return false;
    out->assign(p, len);
    p += len;
    return true;
  }
  bool AtEnd() const { return p == limit; }
};

void PutBytes(std::string* out, const std::string& s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Reserves the u32 length prefix, returns its offset for BackpatchLen.
size_t BeginFrame(std::string* out, uint64_t id, uint8_t tag) {
  const size_t len_at = out->size();
  PutFixed32(out, 0);
  PutFixed64(out, id);
  out->push_back(static_cast<char>(tag));
  return len_at;
}

void BackpatchLen(std::string* out, size_t len_at) {
  const uint32_t body = static_cast<uint32_t>(out->size() - len_at - kLenPrefixBytes);
  EncodeFixed32(&(*out)[len_at], body);
}

}  // namespace

WireStatus ToWireStatus(const Status& s) {
  if (s.ok()) return WireStatus::kOk;
  if (s.IsNotFound()) return WireStatus::kNotFound;
  if (s.IsCorruption()) return WireStatus::kCorruption;
  if (s.IsNotSupported()) return WireStatus::kNotSupported;
  if (s.IsInvalidArgument()) return WireStatus::kInvalidArgument;
  if (s.IsIOError()) return WireStatus::kIOError;
  if (s.IsBusy()) return WireStatus::kBusy;
  if (s.IsAborted()) return WireStatus::kAborted;
  if (s.IsDeadlineExceeded()) return WireStatus::kDeadlineExceeded;
  return WireStatus::kUnknown;
}

Status FromWireStatus(uint8_t code, const std::string& message) {
  switch (static_cast<WireStatus>(code)) {
    case WireStatus::kOk: return Status::OK();
    case WireStatus::kNotFound: return Status::NotFound(message);
    case WireStatus::kCorruption: return Status::Corruption(message);
    case WireStatus::kNotSupported: return Status::NotSupported(message);
    case WireStatus::kInvalidArgument: return Status::InvalidArgument(message);
    case WireStatus::kIOError: return Status::IOError(message);
    case WireStatus::kBusy: return Status::Busy(message);
    case WireStatus::kAborted: return Status::Aborted(message);
    case WireStatus::kDeadlineExceeded: return Status::DeadlineExceeded(message);
    case WireStatus::kUnknown: break;
  }
  return Status::IOError("unknown wire status", message);
}

const char* WireStatusName(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kNotFound: return "NotFound";
    case WireStatus::kCorruption: return "Corruption";
    case WireStatus::kNotSupported: return "NotSupported";
    case WireStatus::kInvalidArgument: return "InvalidArgument";
    case WireStatus::kIOError: return "IOError";
    case WireStatus::kBusy: return "Busy";
    case WireStatus::kAborted: return "Aborted";
    case WireStatus::kDeadlineExceeded: return "DeadlineExceeded";
    case WireStatus::kUnknown: return "Unknown";
  }
  return "Unknown";
}

void EncodeGet(std::string* out, uint64_t id, const std::string& key) {
  const size_t at = BeginFrame(out, id, static_cast<uint8_t>(Opcode::kGet));
  PutBytes(out, key);
  BackpatchLen(out, at);
}

void EncodePut(std::string* out, uint64_t id, const std::string& key, const std::string& value) {
  const size_t at = BeginFrame(out, id, static_cast<uint8_t>(Opcode::kPut));
  PutBytes(out, key);
  PutBytes(out, value);
  BackpatchLen(out, at);
}

void EncodeDelete(std::string* out, uint64_t id, const std::string& key) {
  const size_t at = BeginFrame(out, id, static_cast<uint8_t>(Opcode::kDelete));
  PutBytes(out, key);
  BackpatchLen(out, at);
}

void EncodeMultiGet(std::string* out, uint64_t id, const std::vector<std::string>& keys) {
  const size_t at = BeginFrame(out, id, static_cast<uint8_t>(Opcode::kMultiGet));
  PutFixed32(out, static_cast<uint32_t>(keys.size()));
  for (const std::string& k : keys) PutBytes(out, k);
  BackpatchLen(out, at);
}

void EncodeMultiWrite(std::string* out, uint64_t id, const std::vector<WriteOp>& ops) {
  const size_t at = BeginFrame(out, id, static_cast<uint8_t>(Opcode::kMultiWrite));
  PutFixed32(out, static_cast<uint32_t>(ops.size()));
  for (const WriteOp& op : ops) {
    out->push_back(op.is_put ? 1 : 2);
    PutBytes(out, op.key);
    if (op.is_put) PutBytes(out, op.value);
  }
  BackpatchLen(out, at);
}

void EncodeScan(std::string* out, uint64_t id, const std::string& begin, uint32_t count) {
  const size_t at = BeginFrame(out, id, static_cast<uint8_t>(Opcode::kScan));
  PutBytes(out, begin);
  PutFixed32(out, count);
  BackpatchLen(out, at);
}

void EncodeStats(std::string* out, uint64_t id) {
  const size_t at = BeginFrame(out, id, static_cast<uint8_t>(Opcode::kStats));
  BackpatchLen(out, at);
}

bool DecodeRequest(const char* body, size_t body_len, Request* req) {
  Cursor c{body, body + body_len};
  uint8_t op;
  if (!c.ReadU64(&req->request_id) || !c.ReadU8(&op)) {
    return false;
  }
  req->opcode = static_cast<Opcode>(op);
  switch (req->opcode) {
    case Opcode::kGet:
    case Opcode::kDelete:
      return c.ReadBytes(&req->key) && c.AtEnd();
    case Opcode::kPut:
      return c.ReadBytes(&req->key) && c.ReadBytes(&req->value) && c.AtEnd();
    case Opcode::kMultiGet: {
      uint32_t count;
      if (!c.ReadU32(&count)) return false;
      // Each key costs >= 4 bytes on the wire; reject counts the remaining
      // body cannot possibly hold before reserving anything.
      if (static_cast<size_t>(c.limit - c.p) < static_cast<size_t>(count) * 4) return false;
      req->keys.resize(count);
      for (uint32_t i = 0; i < count; i++) {
        if (!c.ReadBytes(&req->keys[i])) return false;
      }
      return c.AtEnd();
    }
    case Opcode::kMultiWrite: {
      uint32_t count;
      if (!c.ReadU32(&count)) return false;
      if (static_cast<size_t>(c.limit - c.p) < static_cast<size_t>(count) * 5) return false;
      req->ops.resize(count);
      for (uint32_t i = 0; i < count; i++) {
        uint8_t kind;
        if (!c.ReadU8(&kind) || (kind != 1 && kind != 2)) return false;
        req->ops[i].is_put = kind == 1;
        if (!c.ReadBytes(&req->ops[i].key)) return false;
        if (req->ops[i].is_put && !c.ReadBytes(&req->ops[i].value)) return false;
      }
      return c.AtEnd();
    }
    case Opcode::kScan:
      return c.ReadBytes(&req->key) && c.ReadU32(&req->scan_count) && c.AtEnd();
    case Opcode::kStats:
      return c.AtEnd();
  }
  return false;  // unknown opcode
}

void EncodeResponseHeader(std::string* out, uint64_t id, WireStatus status,
                          size_t payload_len) {
  PutFixed32(out, static_cast<uint32_t>(kFrameHeaderBytes + payload_len));
  PutFixed64(out, id);
  out->push_back(static_cast<char>(status));
}

void EncodeStatusResponse(std::string* out, uint64_t id, const Status& s) {
  const std::string msg = s.ok() ? std::string() : s.ToString();
  EncodeResponseHeader(out, id, ToWireStatus(s), msg.size());
  out->append(msg);
}

void EncodeGetResponse(std::string* out, uint64_t id, const Status& s,
                       const std::string& value) {
  if (!s.ok()) {
    EncodeStatusResponse(out, id, s);
    return;
  }
  EncodeResponseHeader(out, id, WireStatus::kOk, value.size());
  out->append(value);
}

void EncodeMultiGetResponse(std::string* out, uint64_t id, const std::vector<Status>& statuses,
                            const std::vector<std::string>& values) {
  const size_t at = BeginFrame(out, id, static_cast<uint8_t>(WireStatus::kOk));
  PutFixed32(out, static_cast<uint32_t>(statuses.size()));
  for (size_t i = 0; i < statuses.size(); i++) {
    out->push_back(static_cast<char>(ToWireStatus(statuses[i])));
    PutBytes(out, i < values.size() ? values[i] : std::string());
  }
  BackpatchLen(out, at);
}

void EncodeScanResponse(std::string* out, uint64_t id, const Status& s,
                        const std::vector<std::pair<std::string, std::string>>& pairs) {
  if (!s.ok()) {
    EncodeStatusResponse(out, id, s);
    return;
  }
  const size_t at = BeginFrame(out, id, static_cast<uint8_t>(WireStatus::kOk));
  PutFixed32(out, static_cast<uint32_t>(pairs.size()));
  for (const auto& kv : pairs) {
    PutBytes(out, kv.first);
    PutBytes(out, kv.second);
  }
  BackpatchLen(out, at);
}

void EncodeStatsResponse(std::string* out, uint64_t id, const Status& s,
                         const std::string& json) {
  if (!s.ok()) {
    EncodeStatusResponse(out, id, s);
    return;
  }
  EncodeResponseHeader(out, id, WireStatus::kOk, json.size());
  out->append(json);
}

Status Response::ToStatus() const {
  if (static_cast<WireStatus>(status_code) == WireStatus::kOk) {
    return Status::OK();
  }
  return FromWireStatus(status_code, payload);
}

bool Response::DecodeMultiGet(std::vector<Status>* statuses,
                              std::vector<std::string>* values) const {
  Cursor c{payload.data(), payload.data() + payload.size()};
  uint32_t count;
  if (!c.ReadU32(&count)) return false;
  if (static_cast<size_t>(c.limit - c.p) < static_cast<size_t>(count) * 5) return false;
  statuses->clear();
  values->resize(count);
  for (uint32_t i = 0; i < count; i++) {
    uint8_t code;
    if (!c.ReadU8(&code) || !c.ReadBytes(&(*values)[i])) return false;
    statuses->push_back(FromWireStatus(code, std::string()));
  }
  return c.AtEnd();
}

bool Response::DecodeScan(std::vector<std::pair<std::string, std::string>>* pairs) const {
  Cursor c{payload.data(), payload.data() + payload.size()};
  uint32_t count;
  if (!c.ReadU32(&count)) return false;
  if (static_cast<size_t>(c.limit - c.p) < static_cast<size_t>(count) * 8) return false;
  pairs->resize(count);
  for (uint32_t i = 0; i < count; i++) {
    if (!c.ReadBytes(&(*pairs)[i].first) || !c.ReadBytes(&(*pairs)[i].second)) return false;
  }
  return c.AtEnd();
}

FrameReader::NextResult FrameReader::Next(std::string* body) {
  if (buf_.size() - consumed_ < kLenPrefixBytes) {
    return NextResult::kNeedMore;
  }
  const uint32_t body_len = DecodeFixed32(buf_.data() + consumed_);
  if (body_len < kFrameHeaderBytes) {
    return NextResult::kMalformed;
  }
  if (body_len > max_frame_bytes_) {
    return NextResult::kTooLarge;
  }
  if (buf_.size() - consumed_ < kLenPrefixBytes + body_len) {
    return NextResult::kNeedMore;
  }
  body->assign(buf_, consumed_ + kLenPrefixBytes, body_len);
  consumed_ += kLenPrefixBytes + body_len;
  // Compact once the dead prefix dominates, amortizing the copy.
  if (consumed_ > 4096 && consumed_ * 2 >= buf_.size()) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  return NextResult::kFrame;
}

}  // namespace server
}  // namespace p2kvs
