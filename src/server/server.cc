#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace p2kvs {
namespace server {

namespace {

// epoll user-data tags for the two non-connection fds.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kEventTag = 1;

constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

Server::CompletionBus::~CompletionBus() {
  if (event_fd >= 0) {
    ::close(event_fd);
  }
}

void Server::CompletionBus::Notify(uint64_t conn_id) {
  {
    MutexLock lock(&mu);
    ready.push_back(conn_id);
  }
  // A full eventfd counter (EAGAIN) still leaves the epoll thread a pending
  // readable event, so dropping the poke is fine; EINTR retries.
  uint64_t one = 1;
  ssize_t r;
  do {
    r = ::write(event_fd, &one, sizeof(one));
  } while (r < 0 && errno == EINTR);
}

Server::Server(P2KVS* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket", std::strerror(errno));
  }
  int yes = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address", options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::IOError("bind", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const Status s = Status::IOError("listen", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t alen = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  bus_ = std::make_shared<CompletionBus>();
  bus_->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (bus_->event_fd < 0 || epoll_fd_ < 0) {
    const Status s = Status::IOError("eventfd/epoll_create1", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    epoll_fd_ = -1;
    bus_.reset();
    return s;
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kEventTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, bus_->event_fd, &ev);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread(&Server::EventLoop, this);
  return Status::OK();
}

void Server::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  bus_->Notify(kEventTag);  // wake the epoll thread
  if (loop_.joinable()) {
    loop_.join();
  }
  // Drain stragglers: callbacks for requests already inside the store still
  // run on worker threads and poke the (now unread) bus. Waiting here makes
  // counters final and lets the caller destroy the store right after.
  while (bus_->inflight.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  running_.store(false, std::memory_order_release);
}

ServerStatsSnapshot Server::Stats() const {
  ServerStatsSnapshot s;
  s.connections_accepted = counters_.accepted.load(std::memory_order_relaxed);
  s.connections_closed = counters_.closed.load(std::memory_order_relaxed);
  s.frames_decoded = counters_.frames.load(std::memory_order_relaxed);
  s.protocol_errors = counters_.proto_errors.load(std::memory_order_relaxed);
  s.pipeline_rejections = counters_.pipeline_rejects.load(std::memory_order_relaxed);
  s.submitted_to_store = counters_.submitted.load(std::memory_order_relaxed);
  s.responses_sent = counters_.responses.load(std::memory_order_relaxed);
  s.bytes_received = counters_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_sent = counters_.bytes_out.load(std::memory_order_relaxed);
  s.slow_consumer_drops = counters_.slow_drops.load(std::memory_order_relaxed);
  s.eintr_wakeups = counters_.eintr.load(std::memory_order_relaxed);
  return s;
}

// The epoll thread must never park on a worker queue: a stalled event loop
// stops reading every connection, including the ones whose completions would
// drain that queue.
// p2kvs-lint: worker-context
void Server::EventLoop() {
  epoll_event events[64];
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) {
        // epoll_wait is never auto-restarted, even under SA_RESTART (see the
        // sigaction note in src/util/trace.cc) — treat as a spurious wakeup.
        counters_.eintr.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      break;  // unrecoverable epoll failure
    }
    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }
    for (int i = 0; i < n; i++) {
      const uint64_t tag = events[i].data.u64;
      const uint32_t mask = events[i].events;
      if (tag == kListenTag) {
        AcceptNew();
        continue;
      }
      if (tag == kEventTag) {
        uint64_t drained;
        while (::read(bus_->event_fd, &drained, sizeof(drained)) > 0) {
        }
        std::vector<uint64_t> ready;
        {
          MutexLock lock(&bus_->mu);
          ready.swap(bus_->ready);
        }
        for (uint64_t conn_id : ready) {
          auto it = conns_.find(conn_id);
          if (it != conns_.end()) {  // absent: disconnected mid-pipeline
            FlushConnection(it->second.get());
          }
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) {
        continue;  // closed earlier in this batch of events
      }
      Connection* conn = it->second.get();
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(tag);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) {
        TryWrite(conn);
        if (conns_.find(tag) == conns_.end()) {
          continue;  // TryWrite closed it
        }
      }
      if ((mask & EPOLLIN) != 0) {
        HandleReadable(conn);
      }
    }
  }
  // Teardown: close every connection; in-flight store callbacks keep their
  // response slots and the bus alive via shared_ptr and complete harmlessly.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& kv : conns_) ids.push_back(kv.first);
  for (uint64_t id : ids) CloseConnection(id);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void Server::AcceptNew() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending (or transient error)
    }
    int yes = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->id = id;
    conn->fd = fd;
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::HandleReadable(Connection* conn) {
  const uint64_t conn_id = conn->id;
  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      counters_.bytes_in.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      conn->reader.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) {
        break;  // drained (level-triggered epoll re-arms if more arrives)
      }
      continue;
    }
    if (n == 0) {
      // Peer closed. Responses still in flight complete against kept-alive
      // slots and are dropped at the bus lookup — never against freed memory.
      CloseConnection(conn_id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn_id);
    return;
  }

  std::string body;
  while (true) {
    const FrameReader::NextResult r = conn->reader.Next(&body);
    if (r == FrameReader::NextResult::kNeedMore) {
      break;
    }
    if (r == FrameReader::NextResult::kFrame) {
      counters_.frames.fetch_add(1, std::memory_order_relaxed);
      if (DispatchFrame(conn, body)) {
        continue;
      }
    } else {
      // kTooLarge / kMalformed: the stream cannot be resynced. Send one
      // final error (request_id 0 — the header may not even exist) and
      // close once it is flushed.
      counters_.proto_errors.fetch_add(1, std::memory_order_relaxed);
      auto slot = std::make_shared<PendingResponse>(conn->id);
      EncodeStatusResponse(
          &slot->frame, 0,
          Status::InvalidArgument(r == FrameReader::NextResult::kTooLarge
                                      ? "frame exceeds max_frame_bytes"
                                      : "malformed frame"));
      slot->done.store(true, std::memory_order_release);
      conn->pending.push_back(std::move(slot));
    }
    conn->close_after_flush = true;
    break;
  }
  FlushConnection(conn);
}

bool Server::DispatchFrame(Connection* conn, const std::string& body) {
  Request req;
  if (!DecodeRequest(body.data(), body.size(), &req)) {
    // The 9-byte header always parses (FrameReader enforces the minimum), so
    // request_id is valid: reply InvalidArgument and keep the connection —
    // framing is intact, only this payload was bad.
    counters_.proto_errors.fetch_add(1, std::memory_order_relaxed);
    auto slot = std::make_shared<PendingResponse>(conn->id);
    EncodeStatusResponse(&slot->frame, req.request_id,
                         Status::InvalidArgument("malformed request payload"));
    slot->done.store(true, std::memory_order_release);
    conn->pending.push_back(std::move(slot));
    return true;
  }
  if (conn->pending.size() >= options_.max_pipeline) {
    // Local defense, independent of the store's admission control: answer
    // BUSY without consuming worker-queue capacity.
    counters_.pipeline_rejects.fetch_add(1, std::memory_order_relaxed);
    auto slot = std::make_shared<PendingResponse>(conn->id);
    EncodeStatusResponse(&slot->frame, req.request_id,
                         Status::Busy("connection pipeline limit reached"));
    slot->done.store(true, std::memory_order_release);
    conn->pending.push_back(std::move(slot));
    return true;
  }
  auto slot = std::make_shared<PendingResponse>(conn->id);
  conn->pending.push_back(slot);
  SubmitToStore(conn, std::move(req), std::move(slot));
  return true;
}

void Server::SubmitToStore(Connection* /*conn*/, Request req, SlotPtr slot) {
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<CompletionBus> bus = bus_;
  bus->inflight.fetch_add(1, std::memory_order_relaxed);
  const uint64_t id = req.request_id;
  // Callbacks run on store worker threads: they may only touch the slot and
  // the bus (both shared_ptr-kept), never the Connection — the connection may
  // already be gone when they fire.
  auto finish = [](const std::shared_ptr<CompletionBus>& b, const SlotPtr& s) {
    const uint64_t conn_id = s->conn_id;
    s->done.store(true, std::memory_order_release);
    b->Notify(conn_id);
    b->inflight.fetch_sub(1, std::memory_order_release);
  };
  switch (req.opcode) {
    case Opcode::kGet:
      store_->GetAsync(req.key, [bus, slot, id, finish](const Status& s, std::string value) {
        EncodeGetResponse(&slot->frame, id, s, value);
        finish(bus, slot);
      });
      break;
    case Opcode::kPut:
      store_->PutAsync(req.key, req.value, [bus, slot, id, finish](const Status& s) {
        EncodeStatusResponse(&slot->frame, id, s);
        finish(bus, slot);
      });
      break;
    case Opcode::kDelete:
      store_->DeleteAsync(req.key, [bus, slot, id, finish](const Status& s) {
        EncodeStatusResponse(&slot->frame, id, s);
        finish(bus, slot);
      });
      break;
    case Opcode::kMultiGet:
      store_->MultiGetAsync(
          std::move(req.keys),
          [bus, slot, id, finish](std::vector<Status> statuses, std::vector<std::string> values) {
            EncodeMultiGetResponse(&slot->frame, id, statuses, values);
            finish(bus, slot);
          });
      break;
    case Opcode::kMultiWrite: {
      WriteBatch batch;
      for (const WriteOp& op : req.ops) {
        if (op.is_put) {
          batch.Put(op.key, op.value);
        } else {
          batch.Delete(op.key);
        }
      }
      store_->MultiWriteAsync(std::move(batch), [bus, slot, id, finish](const Status& s) {
        EncodeStatusResponse(&slot->frame, id, s);
        finish(bus, slot);
      });
      break;
    }
    case Opcode::kScan:
      store_->ScanAsync(
          req.key, req.scan_count,
          [bus, slot, id, finish](const Status& s,
                                  std::vector<std::pair<std::string, std::string>> pairs) {
            EncodeScanResponse(&slot->frame, id, s, pairs);
            finish(bus, slot);
          });
      break;
    case Opcode::kStats:
      store_->GetStatsAsync([bus, slot, id, finish](P2kvsStats stats) {
        EncodeStatsResponse(&slot->frame, id, Status::OK(), stats.ToJson());
        finish(bus, slot);
      });
      break;
  }
}

void Server::FlushConnection(Connection* conn) {
  while (!conn->pending.empty() &&
         conn->pending.front()->done.load(std::memory_order_acquire)) {
    conn->outbuf.append(conn->pending.front()->frame);
    conn->pending.pop_front();
    counters_.responses.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn->outbuf.size() - conn->out_off > options_.max_outbuf_bytes) {
    counters_.slow_drops.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn->id);
    return;
  }
  TryWrite(conn);
}

void Server::TryWrite(Connection* conn) {
  const uint64_t conn_id = conn->id;
  while (conn->out_off < conn->outbuf.size()) {
    const ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                             conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      counters_.bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        UpdateEpoll(conn, /*want_write=*/true);
      }
      return;
    }
    CloseConnection(conn_id);
    return;
  }
  conn->outbuf.clear();
  conn->out_off = 0;
  if (conn->want_write) {
    UpdateEpoll(conn, /*want_write=*/false);
  }
  if (conn->close_after_flush && conn->pending.empty()) {
    CloseConnection(conn_id);
  }
}

bool Server::UpdateEpoll(Connection* conn, bool want_write) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) != 0) {
    return false;
  }
  conn->want_write = want_write;
  return true;
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  Connection* conn = it->second.get();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  // Dropping the deque releases the server's slot references; slots with
  // store callbacks still in flight stay alive through the callbacks' own
  // shared_ptrs and are discarded when the bus lookup misses this conn_id.
  conns_.erase(it);
  counters_.closed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace server
}  // namespace p2kvs
