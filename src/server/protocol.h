// Wire protocol for the p2KVS network front-end: length-prefixed binary
// frames, pipelined per connection.
//
// Request frame:
//   u32  body_len      (bytes following this field; little-endian, like every
//                       integer in the protocol)
//   u64  request_id    (client-chosen; echoed verbatim in the response)
//   u8   opcode
//   ...  payload       (per-opcode, below)
//
// Response frame:
//   u32  body_len
//   u64  request_id
//   u8   status_code   (WireStatus; maps 1:1 onto p2kvs::Status codes)
//   ...  payload       (per-opcode on success; the status message on error)
//
// Per-opcode request payloads (klen/vlen/count are u32):
//   GET        klen key
//   PUT        klen key vlen value
//   DELETE     klen key
//   MULTIGET   count  count * (klen key)
//   MULTIWRITE count  count * (op:u8 klen key [vlen value])   op: 1=put 2=del
//   SCAN       klen begin_key  count
//   STATS      (empty)
//
// Success response payloads:
//   GET        value bytes
//   PUT / DELETE / MULTIWRITE   (empty)
//   MULTIGET   count  count * (status:u8 vlen value)   positional with keys
//   SCAN       count  count * (klen key vlen value)
//   STATS      stats JSON
//
// Responses to one connection are written in REQUEST ARRIVAL ORDER, even
// though the store completes them on whichever worker thread finishes first:
// the server holds per-connection FIFO response slots and flushes the
// contiguous completed prefix. Clients may therefore pipeline freely and
// match responses positionally or by request_id — both work.
//
// Framing errors: a body shorter than the 9-byte header or longer than
// ServerOptions::max_frame_bytes is unrecoverable (the stream cannot be
// resynced) — the server sends one final InvalidArgument response with
// request_id 0 and closes. A well-framed body whose payload fails to decode
// is recoverable: the server replies InvalidArgument to that request_id and
// keeps the connection.

#ifndef P2KVS_SRC_SERVER_PROTOCOL_H_
#define P2KVS_SRC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace p2kvs {
namespace server {

enum class Opcode : uint8_t {
  kGet = 1,
  kPut = 2,
  kDelete = 3,
  kMultiGet = 4,
  kMultiWrite = 5,
  kScan = 6,
  kStats = 7,
};

// On-the-wire status byte. Mirrors Status's internal code enum (which is
// private); conversion goes through the public Is* predicates.
enum class WireStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kNotSupported = 3,
  kInvalidArgument = 4,
  kIOError = 5,
  kBusy = 6,
  kAborted = 7,
  kDeadlineExceeded = 8,
  kUnknown = 255,
};

WireStatus ToWireStatus(const Status& s);
// Reconstructs a Status from a wire byte (+ optional message payload).
Status FromWireStatus(uint8_t code, const std::string& message);
const char* WireStatusName(WireStatus s);

// Fixed header sizes.
constexpr size_t kLenPrefixBytes = 4;
constexpr size_t kFrameHeaderBytes = 8 + 1;  // request_id + opcode/status
constexpr size_t kDefaultMaxFrameBytes = 32u << 20;

// One MULTIWRITE operation.
struct WriteOp {
  bool is_put = true;
  std::string key;
  std::string value;  // empty for deletes
};

// A decoded request frame.
struct Request {
  uint64_t request_id = 0;
  Opcode opcode = Opcode::kGet;
  std::string key;                  // GET/PUT/DELETE key, SCAN begin
  std::string value;                // PUT value
  std::vector<std::string> keys;    // MULTIGET
  std::vector<WriteOp> ops;         // MULTIWRITE
  uint32_t scan_count = 0;          // SCAN
};

// --- Request encoding (client side). Appends one complete frame to *out. ---
void EncodeGet(std::string* out, uint64_t id, const std::string& key);
void EncodePut(std::string* out, uint64_t id, const std::string& key, const std::string& value);
void EncodeDelete(std::string* out, uint64_t id, const std::string& key);
void EncodeMultiGet(std::string* out, uint64_t id, const std::vector<std::string>& keys);
void EncodeMultiWrite(std::string* out, uint64_t id, const std::vector<WriteOp>& ops);
void EncodeScan(std::string* out, uint64_t id, const std::string& begin, uint32_t count);
void EncodeStats(std::string* out, uint64_t id);

// --- Request decoding (server side). `body` excludes the u32 length prefix.
// Returns false when the payload is malformed (opcode unknown, lengths
// inconsistent); *req keeps whatever header fields were parsed. ---
bool DecodeRequest(const char* body, size_t body_len, Request* req);

// --- Response encoding (server side). ---
void EncodeResponseHeader(std::string* out, uint64_t id, WireStatus status,
                          size_t payload_len);
// Status-only / error response; non-OK statuses carry `message` as payload.
void EncodeStatusResponse(std::string* out, uint64_t id, const Status& s);
void EncodeGetResponse(std::string* out, uint64_t id, const Status& s,
                       const std::string& value);
void EncodeMultiGetResponse(std::string* out, uint64_t id, const std::vector<Status>& statuses,
                            const std::vector<std::string>& values);
void EncodeScanResponse(std::string* out, uint64_t id, const Status& s,
                        const std::vector<std::pair<std::string, std::string>>& pairs);
void EncodeStatsResponse(std::string* out, uint64_t id, const Status& s,
                         const std::string& json);

// --- Response decoding (client side). ---
struct Response {
  uint64_t request_id = 0;
  uint8_t status_code = 0;
  std::string payload;

  Status ToStatus() const;
  // Payload decoders; return false on malformed payloads.
  bool DecodeMultiGet(std::vector<Status>* statuses, std::vector<std::string>* values) const;
  bool DecodeScan(std::vector<std::pair<std::string, std::string>>* pairs) const;
};

// Incremental frame extractor: feed it raw bytes in whatever pieces the
// socket delivers; it hands back complete frame bodies. Shared by the server
// (requests) and client (responses) so split-prefix handling exists once.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  // Appends newly received bytes.
  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  enum class NextResult {
    kFrame,      // *body holds one complete frame body (header + payload)
    kNeedMore,   // no complete frame buffered yet
    kTooLarge,   // announced body exceeds max_frame_bytes — unrecoverable
    kMalformed,  // body shorter than the fixed header — unrecoverable
  };
  NextResult Next(std::string* body);

  // Bytes buffered but not yet returned (a truncated trailing frame).
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  const size_t max_frame_bytes_;
  std::string buf_;
  size_t consumed_ = 0;  // compacted lazily to amortize the memmove
};

}  // namespace server
}  // namespace p2kvs

#endif  // P2KVS_SRC_SERVER_PROTOCOL_H_
