#include "src/server/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/obs/prometheus.h"
#include "src/obs/skew.h"

namespace p2kvs {
namespace server {

namespace {

constexpr uint64_t kListenTag = 0;
constexpr uint64_t kEventTag = 1;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default:  return "Error";
  }
}

// Minimal HTTP/1.0 response; Connection: close is the framing (no
// keep-alive, no chunking — one request, one response, one connection).
std::string BuildHttpResponse(int status, const std::string& content_type,
                              const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(status);
  out += ' ';
  out += ReasonPhrase(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

void AdminServer::CompletionBus::Notify(uint64_t conn_id) {
  {
    MutexLock l(&mu);
    ready.push_back(conn_id);
  }
  uint64_t one = 1;
  while (::write(event_fd, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
}

AdminServer::AdminServer(P2KVS* store, AdminOptions options)
    : store_(store), options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  if (started_) {
    return Status::InvalidArgument("admin server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("admin socket: " + std::string(::strerror(errno)));
  }
  int on = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("admin bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("admin bind: " + std::string(::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status s = Status::IOError("admin listen: " + std::string(::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  bus_ = std::make_shared<CompletionBus>();
  bus_->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (bus_->event_fd < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("admin eventfd: " + std::string(::strerror(errno)));
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(bus_->event_fd);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("admin epoll_create1: " + std::string(::strerror(errno)));
  }

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kEventTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, bus_->event_fd, &ev);

  stopping_.store(false, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoop(); });
  started_ = true;
  return Status::OK();
}

void AdminServer::Stop() {
  if (!started_) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  bus_->Notify(kEventTag);  // wake the epoll thread
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  // Wait out stats callbacks still running on store worker threads: they
  // only touch their slot and the bus (both shared_ptr-kept), but the store
  // may be destroyed right after Stop() returns, so drain them here.
  while (bus_->inflight.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ::close(epoll_fd_);
  epoll_fd_ = -1;
  ::close(bus_->event_fd);
  bus_->event_fd = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

// p2kvs-lint: worker-context
// (The loop completes store-callback responses; it must never call a
// blocking P2KVS entry point — stats go through GetStatsAsync.)
void AdminServer::EventLoop() {
  epoll_event events[32];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 32, 100);
    if (n < 0) {
      if (errno == EINTR) {
        counters_.eintr_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      break;
    }
    for (int i = 0; i < n; i++) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptNew();
        continue;
      }
      if (tag == kEventTag) {
        uint64_t drained;
        while (::read(bus_->event_fd, &drained, sizeof(drained)) < 0 && errno == EINTR) {
        }
        std::vector<uint64_t> ready;
        {
          MutexLock l(&bus_->mu);
          ready.swap(bus_->ready);
        }
        for (uint64_t conn_id : ready) {
          auto it = conns_.find(conn_id);
          if (it != conns_.end()) {
            FlushConnection(it->second.get());
          }
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) {
        continue;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(tag);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(tag);
      }
      it = conns_.find(tag);  // HandleReadable may have closed it
      if (it != conns_.end() && (events[i].events & EPOLLOUT)) {
        TryWrite(it->second.get());
      }
    }
  }
  // Teardown on the loop thread: all connection state lives here.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& kv : conns_) {
    ids.push_back(kv.first);
  }
  for (uint64_t id : ids) {
    CloseConnection(id);
  }
}

void AdminServer::AcceptNew() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure; epoll re-arms
    }
    int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void AdminServer::HandleReadable(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  Connection* conn = it->second.get();
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!conn->close_after_flush) {
        // One request per connection; bytes after dispatch are ignored.
        conn->inbuf.append(buf, static_cast<size_t>(n));
      }
      if (static_cast<size_t>(n) < sizeof(buf)) {
        break;  // drained (level-triggered epoll re-arms if more arrives)
      }
      continue;
    }
    if (n == 0) {
      CloseConnection(conn_id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn_id);
    return;
  }
  if (conn->close_after_flush) {
    return;  // request already dispatched; just waiting to flush
  }
  if (conn->inbuf.size() > options_.max_request_bytes) {
    counters_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    auto slot = std::make_shared<PendingResponse>(conn->id);
    slot->http_status = 400;
    slot->body = "request too large\n";
    slot->done.store(true, std::memory_order_release);
    conn->pending.push_back(std::move(slot));
    conn->close_after_flush = true;
    FlushConnection(conn);
    return;
  }
  // A request is complete at the first blank line (headers are ignored).
  size_t end = conn->inbuf.find("\r\n\r\n");
  if (end == std::string::npos) {
    end = conn->inbuf.find("\n\n");
    if (end == std::string::npos) {
      return;  // need more bytes
    }
  }
  const size_t line_end = conn->inbuf.find_first_of("\r\n");
  const std::string line = conn->inbuf.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  conn->close_after_flush = true;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    counters_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    auto slot = std::make_shared<PendingResponse>(conn->id);
    slot->http_status = 400;
    slot->body = "malformed request line\n";
    slot->done.store(true, std::memory_order_release);
    conn->pending.push_back(std::move(slot));
    FlushConnection(conn);
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) {
    path.resize(query);  // query strings are accepted and ignored
  }
  HandleRequest(conn, method, path);
  FlushConnection(conn);
}

void AdminServer::HandleRequest(Connection* conn, const std::string& method,
                                const std::string& path) {
  if (method != "GET") {
    auto slot = std::make_shared<PendingResponse>(conn->id);
    slot->http_status = 405;
    slot->body = "only GET is supported\n";
    slot->done.store(true, std::memory_order_release);
    conn->pending.push_back(std::move(slot));
    return;
  }
  if (path == "/metrics") {
    DispatchAsyncStats(conn, Route::kMetrics);
    return;
  }
  if (path == "/stats.json") {
    DispatchAsyncStats(conn, Route::kStatsJson);
    return;
  }
  if (path == "/healthz") {
    auto slot = std::make_shared<PendingResponse>(conn->id);
    slot->body = HealthzBody(&slot->http_status);
    slot->content_type = "application/json";
    slot->done.store(true, std::memory_order_release);
    conn->pending.push_back(std::move(slot));
    return;
  }
  if (path == "/tracez") {
    auto slot = std::make_shared<PendingResponse>(conn->id);
    slot->body = TracezBody();
    slot->content_type = "application/json";
    slot->done.store(true, std::memory_order_release);
    conn->pending.push_back(std::move(slot));
    return;
  }
  counters_.not_found.fetch_add(1, std::memory_order_relaxed);
  auto slot = std::make_shared<PendingResponse>(conn->id);
  slot->http_status = 404;
  slot->body = "unknown path; try /metrics /stats.json /healthz /tracez\n";
  slot->done.store(true, std::memory_order_release);
  conn->pending.push_back(std::move(slot));
}

void AdminServer::DispatchAsyncStats(Connection* conn, Route route) {
  auto slot = std::make_shared<PendingResponse>(conn->id);
  slot->route = route;
  slot->needs_render = true;
  conn->pending.push_back(slot);
  std::shared_ptr<CompletionBus> bus = bus_;
  bus->inflight.fetch_add(1, std::memory_order_relaxed);
  // Runs on a store worker thread: move the stats into the slot, publish,
  // ring the bus. No rendering here — the drain completion should cost the
  // worker as little as possible.
  store_->GetStatsAsync([bus, slot](P2kvsStats stats) {
    const uint64_t conn_id = slot->conn_id;
    slot->stats = std::move(stats);
    slot->done.store(true, std::memory_order_release);
    bus->Notify(conn_id);
    bus->inflight.fetch_sub(1, std::memory_order_release);
  });
}

void AdminServer::RenderSlot(PendingResponse* slot) {
  obs::MetricsRegistry* registry = store_->metrics_registry();
  if (slot->route == Route::kMetrics) {
    obs::TelemetrySample sample;
    sample.wall_nanos = obs::ObsClockNanos();  // admin thread, not a worker
    sample.totals = slot->stats.totals;
    sample.workers = slot->stats.workers;
    sample.process_cpu_percent = cpu_sampler_.SampleUtilizationPercent();
    sample.process_rss_bytes = CurrentRssBytes();
    sample.trace_enabled = slot->stats.trace_enabled;
    sample.trace_events = slot->stats.trace_events;
    sample.trace_dropped = slot->stats.trace_dropped;
    obs::MetricsWindow window;
    const bool have_window = registry != nullptr && registry->LatestWindow(&window);
    const uint64_t self_check = registry != nullptr ? registry->self_check_failures() : 0;
    slot->body = obs::RenderPrometheusText(sample, have_window ? &window : nullptr,
                                           slot->stats.skew, self_check);
    slot->content_type = "text/plain; version=0.0.4; charset=utf-8";
    return;
  }
  // kStatsJson: the full aggregate plus the registry's window ring.
  slot->body = "{\"stats\":" + slot->stats.ToJson() + ",\"registry\":" +
               (registry != nullptr ? registry->ToJson() : std::string("null")) + "}";
  slot->content_type = "application/json";
}

std::string AdminServer::HealthzBody(int* http_status) const {
  const P2kvsHealth health = store_->Health();
  *http_status = health.AllHealthy() ? 200 : 503;
  std::string body = "{\"status\":\"";
  body += health.AllHealthy() ? "ok" : "degraded";
  body += "\",\"unhealthy\":";
  body += std::to_string(health.NumUnhealthy());
  body += ",\"workers\":[";
  for (size_t i = 0; i < health.workers.size(); i++) {
    const WorkerHealthInfo& w = health.workers[i];
    if (i > 0) body += ',';
    body += "{\"worker_id\":";
    body += std::to_string(w.worker_id);
    body += ",\"health\":\"";
    body += WorkerHealthName(w.health);
    body += "\",\"degraded_rejects\":";
    body += std::to_string(w.degraded_rejects);
    body += ",\"resume_attempts\":";
    body += std::to_string(w.resume_attempts);
    body += '}';
  }
  body += "]}\n";
  return body;
}

std::string AdminServer::TracezBody() {
  const bool enabled = store_->tracer() != nullptr;
  if (enabled) {
    store_->DumpFlightRecorder("admin /tracez");
  }
  std::string body = "{\"trace_enabled\":";
  body += enabled ? "true" : "false";
  body += ",\"flight_dump_triggered\":";
  body += enabled ? "true" : "false";
  body += "}\n";
  return body;
}

void AdminServer::FlushConnection(Connection* conn) {
  while (!conn->pending.empty() &&
         conn->pending.front()->done.load(std::memory_order_acquire)) {
    PendingResponse* slot = conn->pending.front().get();
    if (slot->needs_render) {
      RenderSlot(slot);
      slot->needs_render = false;
    }
    conn->outbuf.append(BuildHttpResponse(slot->http_status, slot->content_type, slot->body));
    conn->pending.pop_front();
  }
  TryWrite(conn);
}

void AdminServer::TryWrite(Connection* conn) {
  const uint64_t conn_id = conn->id;
  while (conn->out_off < conn->outbuf.size()) {
    const ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                             conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        UpdateEpoll(conn, /*want_write=*/true);
      }
      return;
    }
    CloseConnection(conn_id);
    return;
  }
  conn->outbuf.clear();
  conn->out_off = 0;
  if (conn->want_write) {
    UpdateEpoll(conn, /*want_write=*/false);
  }
  if (conn->close_after_flush && conn->pending.empty()) {
    CloseConnection(conn_id);
  }
}

bool AdminServer::UpdateEpoll(Connection* conn, bool want_write) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) != 0) {
    return false;
  }
  conn->want_write = want_write;
  return true;
}

void AdminServer::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  Connection* conn = it->second.get();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  // Slots with stats callbacks still in flight stay alive through the
  // callbacks' own shared_ptrs; the bus lookup misses this conn_id and the
  // response is dropped — never written to freed memory.
  conns_.erase(it);
}

}  // namespace server
}  // namespace p2kvs
