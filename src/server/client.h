// Client for the p2KVS network front-end. Blocking sockets, two independent
// halves so one thread can pump requests while another drains responses:
//
//   send side — Get()/Put()/... convenience calls, or the pipelined
//   Send*() + Flush() path that buffers frames and writes them in bulk;
//   read side — ReadResponse() blocks for the next response frame.
//
// Thread contract: at most one sender thread and one reader thread may use a
// Client concurrently (the open-loop bench's arrangement). The two halves
// share only the socket fd and an outstanding-request counter.
//
// Responses arrive in request order (the server guarantees per-connection
// FIFO), so the sync convenience calls simply send one frame and read one
// response; under pipelining the caller matches by request_id or position.

#ifndef P2KVS_SRC_SERVER_CLIENT_H_
#define P2KVS_SRC_SERVER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/server/protocol.h"
#include "src/util/status.h"

namespace p2kvs {
namespace server {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // --- Synchronous convenience (send one frame, wait for its response). ---
  Status Put(const std::string& key, const std::string& value);
  Status Delete(const std::string& key);
  Status Get(const std::string& key, std::string* value);
  Status MultiGet(const std::vector<std::string>& keys, std::vector<Status>* statuses,
                  std::vector<std::string>* values);
  Status MultiWrite(const std::vector<WriteOp>& ops);
  Status Scan(const std::string& begin, uint32_t count,
              std::vector<std::pair<std::string, std::string>>* pairs);
  Status Stats(std::string* json);

  // --- Pipelined path (sender thread). Send*() appends one frame to the
  // send buffer and returns its request_id; Flush() writes the buffer to the
  // socket. Frames auto-flush when the buffer passes flush_threshold. ---
  uint64_t SendGet(const std::string& key);
  uint64_t SendPut(const std::string& key, const std::string& value);
  uint64_t SendDelete(const std::string& key);
  uint64_t SendMultiGet(const std::vector<std::string>& keys);
  uint64_t SendScan(const std::string& begin, uint32_t count);
  // A write failure from an auto-flush inside Send*() is sticky: every later
  // Flush() returns it, so pipelined senders cannot silently drop frames.
  Status Flush();

  // --- Reader thread: blocks until one complete response frame arrives.
  // Returns IOError on disconnect/framing failure. ---
  Status ReadResponse(Response* out);

  // Requests sent whose responses have not been read yet.
  uint64_t outstanding() const {
    return sent_.load(std::memory_order_acquire) - received_.load(std::memory_order_acquire);
  }
  uint64_t next_request_id() const { return next_id_; }

  void set_flush_threshold(size_t bytes) { flush_threshold_ = bytes; }

 private:
  // Writes [data, data+n) fully, retrying EINTR and partial writes.
  Status WriteAll(const char* data, size_t n);
  Status RoundTrip(Response* out);  // Flush + ReadResponse for the sync calls

  int fd_ = -1;
  uint64_t next_id_ = 1;        // sender-side only
  std::string sendbuf_;         // sender-side only
  Status send_error_;           // sender-side only; first auto-flush failure
  size_t flush_threshold_ = 256 * 1024;
  FrameReader reader_;          // reader-side only
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> received_{0};
};

}  // namespace server
}  // namespace p2kvs

#endif  // P2KVS_SRC_SERVER_CLIENT_H_
