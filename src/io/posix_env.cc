// PosixEnv: the real-filesystem Env. All IO is routed through IoStats so the
// benchmark harness can report device bandwidth and amplification.

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "src/io/env.h"
#include "src/io/io_stats.h"

namespace p2kvs {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context, std::strerror(err));
  }
  return Status::IOError(context, std::strerror(err));
}

constexpr size_t kWritableBufferSize = 64 * 1024;

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd) : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ::ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      IoStats::Instance().RecordRead(static_cast<uint64_t>(r));
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == static_cast<off_t>(-1)) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd) : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    ::ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) {
      return PosixError(fname_, errno);
    }
    IoStats::Instance().RecordRead(static_cast<uint64_t>(r));
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  int raw_fd() const override { return fd_; }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd) : fname_(std::move(fname)), fd_(fd) {
    buffer_.reserve(kWritableBufferSize);
  }

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      // Destructor cannot propagate; callers that need the error must Close()
      // explicitly before destruction.
      Close().IgnoreError();
    }
  }

  Status Append(const Slice& data) override {
    if (buffer_.size() + data.size() <= kWritableBufferSize) {
      buffer_.append(data.data(), data.size());
      return Status::OK();
    }
    Status s = FlushBuffer();
    if (!s.ok()) {
      return s;
    }
    if (data.size() <= kWritableBufferSize) {
      buffer_.append(data.data(), data.size());
      return Status::OK();
    }
    return WriteRaw(data.data(), data.size());
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    Status s = FlushBuffer();
    if (!s.ok()) {
      return s;
    }
    if (::fdatasync(fd_) != 0) {
      return PosixError(fname_, errno);
    }
    IoStats::Instance().RecordSync();
    return Status::OK();
  }

  Status Close() override {
    Status s = FlushBuffer();
    if (::close(fd_) != 0 && s.ok()) {
      s = PosixError(fname_, errno);
    }
    fd_ = -1;
    return s;
  }

 private:
  Status FlushBuffer() {
    if (buffer_.empty()) {
      return Status::OK();
    }
    Status s = WriteRaw(buffer_.data(), buffer_.size());
    buffer_.clear();
    return s;
  }

  Status WriteRaw(const char* data, size_t n) {
    while (n > 0) {
      ::ssize_t w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      IoStats::Instance().RecordWrite(static_cast<uint64_t>(w));
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  const std::string fname_;
  int fd_;
  std::string buffer_;
};

class PosixRandomWritableFile final : public RandomWritableFile {
 public:
  PosixRandomWritableFile(std::string fname, int fd) : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomWritableFile() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  Status Write(uint64_t offset, const Slice& data) override {
    const char* p = data.data();
    size_t n = data.size();
    off_t off = static_cast<off_t>(offset);
    while (n > 0) {
      ::ssize_t w = ::pwrite(fd_, p, n, off);
      if (w < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      IoStats::Instance().RecordWrite(static_cast<uint64_t>(w));
      p += w;
      n -= static_cast<size_t>(w);
      off += w;
    }
    return Status::OK();
  }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    ::ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) {
      return PosixError(fname_, errno);
    }
    IoStats::Instance().RecordRead(static_cast<uint64_t>(r));
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) {
      return PosixError(fname_, errno);
    }
    IoStats::Instance().RecordSync();
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    int fd = fd_;
    fd_ = -1;
    if (fd >= 0 && ::close(fd) != 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

  int raw_fd() const override { return fd_; }

 private:
  const std::string fname_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixSequentialFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixRandomAccessFile>(fname, fd);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_APPEND | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomWritableFile(const std::string& fname,
                               std::unique_ptr<RandomWritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixRandomWritableFile>(fname, fd);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override { return ::access(fname.c_str(), F_OK) == 0; }

  Status GetChildren(const std::string& dir, std::vector<std::string>* result) override {
    result->clear();
    ::DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return PosixError(dir, errno);
    }
    struct ::dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") {
        result->push_back(std::move(name));
      }
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) {
      return PosixError(fname, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (::rmdir(dirname.c_str()) != 0) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* file_size) override {
    struct ::stat st;
    if (::stat(fname.c_str(), &st) != 0) {
      *file_size = 0;
      return PosixError(fname, errno);
    }
    *file_size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

void Env::SleepForMicroseconds(int micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Status Env::RemoveDirRecursively(const std::string& dirname) {
  std::vector<std::string> children;
  Status s = GetChildren(dirname, &children);
  if (!s.ok()) {
    return s.IsNotFound() ? Status::OK() : s;
  }
  for (const std::string& child : children) {
    std::string path = dirname + "/" + child;
    // Try file removal first; fall back to recursive directory removal.
    Status rs = RemoveFile(path);
    if (!rs.ok()) {
      rs = RemoveDirRecursively(path);
      if (!rs.ok()) {
        return rs;
      }
    }
  }
  return RemoveDir(dirname);
}

Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname, bool sync) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  s = file->Append(data);
  if (s.ok() && sync) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  if (!s.ok()) {
    // Best-effort cleanup of the partial file; the write error is what the
    // caller needs to see.
    env->RemoveFile(fname).IgnoreError();
  }
  return s;
}

Status ReadFileToString(Env* env, const std::string& fname, std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  static const int kBufferSize = 8192;
  auto space = std::make_unique<char[]>(kBufferSize);
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, space.get());
    if (!s.ok()) {
      break;
    }
    if (fragment.empty()) {
      break;
    }
    data->append(fragment.data(), fragment.size());
  }
  return s;
}

}  // namespace p2kvs
