// MemEnv: a fully in-memory Env for hermetic, fast unit tests. IO is still
// reported to IoStats so amplification assertions can run against it.

#ifndef P2KVS_SRC_IO_MEM_ENV_H_
#define P2KVS_SRC_IO_MEM_ENV_H_

#include <memory>

#include "src/io/env.h"

namespace p2kvs {

// Returns a new in-memory Env. The caller owns it; files live as long as the
// Env does.
std::unique_ptr<Env> NewMemEnv();

}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_MEM_ENV_H_
