// Bounded retry with exponential backoff for transient storage faults.
//
// Only statuses classified transient (Status::IsTransient) are retried: a
// transient fault by definition left no partial state behind, so re-running
// the operation is safe. Hard errors (untagged IO errors, corruption) return
// immediately so the caller can degrade the owning partition instead of
// spinning on a dead device.
//
// Lives in src/io (not src/util) because backoff sleeps go through Env.

#ifndef P2KVS_SRC_IO_RETRY_H_
#define P2KVS_SRC_IO_RETRY_H_

#include <algorithm>
#include <cstdint>

#include "src/io/env.h"
#include "src/io/io_stats.h"
#include "src/util/perf_context.h"
#include "src/util/status.h"
#include "src/util/trace.h"

namespace p2kvs {

struct RetryPolicy {
  // Total attempts including the first; <= 1 disables retrying.
  int max_attempts = 4;
  // First backoff; doubled after each failed retry, capped at max_backoff_us.
  int base_backoff_us = 100;
  int max_backoff_us = 100000;
};

// Runs `op` (a callable returning Status) up to policy.max_attempts times,
// sleeping with exponential backoff between attempts, while the result is
// transient. Returns the last status. Accounts each retry and its backoff in
// the calling thread's PerfContext and the global IoStats.
template <typename Op>
Status RunWithRetry(Env* env, const RetryPolicy& policy, Op&& op) {
  Status s = op();
  int backoff_us = policy.base_backoff_us;
  for (int attempt = 1; !s.ok() && s.IsTransient() && attempt < policy.max_attempts;
       attempt++) {
    GetPerfContext().retry_count++;
    IoStats::Instance().RecordRetry();
    TraceEmitAux(TraceEventType::kRetry, static_cast<uint64_t>(attempt),
                 static_cast<uint64_t>(backoff_us));
    if (env != nullptr && backoff_us > 0) {
      env->SleepForMicroseconds(backoff_us);
      GetPerfContext().retry_backoff_nanos += static_cast<uint64_t>(backoff_us) * 1000;
    }
    backoff_us = std::min(backoff_us * 2, policy.max_backoff_us);
    s = op();
  }
  return s;
}

}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_RETRY_H_
