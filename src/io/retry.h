// Bounded retry with exponential backoff for transient storage faults.
//
// Only statuses classified transient (Status::IsTransient) are retried: a
// transient fault by definition left no partial state behind, so re-running
// the operation is safe. Hard errors (untagged IO errors, corruption) return
// immediately so the caller can degrade the owning partition instead of
// spinning on a dead device.
//
// Lives in src/io (not src/util) because backoff sleeps go through Env.

#ifndef P2KVS_SRC_IO_RETRY_H_
#define P2KVS_SRC_IO_RETRY_H_

#include <algorithm>
#include <cstdint>

#include "src/io/env.h"
#include "src/io/io_stats.h"
#include "src/util/clock.h"
#include "src/util/perf_context.h"
#include "src/util/status.h"
#include "src/util/trace.h"

namespace p2kvs {

struct RetryPolicy {
  // Total attempts including the first; <= 1 disables retrying.
  int max_attempts = 4;
  // First backoff; doubled after each failed retry, capped at max_backoff_us.
  int base_backoff_us = 100;
  int max_backoff_us = 100000;
};

// Token-bucket bound on a worker's aggregate retry rate. Worker-thread-only
// (plain fields, no atomics): each worker owns one, consulted before every
// backoff-retry of a transient fault. When the bucket is empty the retry is
// denied and the operation fails fast with its last transient status —
// under a correlated fault storm the partition stops multiplying its own
// offered load. rate_per_sec <= 0 disables the budget (every retry allowed),
// preserving the pre-existing per-operation RetryPolicy behavior.
class RetryBudget {
 public:
  RetryBudget(double rate_per_sec, double burst)
      : rate_per_sec_(rate_per_sec),
        burst_(burst > 1.0 ? burst : 1.0),
        tokens_(burst_) {}

  bool enabled() const { return rate_per_sec_ > 0.0; }

  // True = retry allowed (one token consumed). `now_nanos` refills.
  bool TryAcquire(uint64_t now_nanos) {
    if (!enabled()) return true;
    if (last_refill_nanos_ != 0 && now_nanos > last_refill_nanos_) {
      const double elapsed_sec =
          static_cast<double>(now_nanos - last_refill_nanos_) * 1e-9;
      tokens_ += elapsed_sec * rate_per_sec_;
      if (tokens_ > burst_) tokens_ = burst_;
    }
    last_refill_nanos_ = now_nanos;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    ++denied_;
    return false;
  }

  uint64_t denied() const { return denied_; }

 private:
  const double rate_per_sec_;
  const double burst_;
  double tokens_;
  uint64_t last_refill_nanos_ = 0;
  uint64_t denied_ = 0;
};

// Overload governance applied on top of a RetryPolicy on the worker hot
// path: the per-worker retry-budget token bucket (aggregate bound across
// operations) and the request's absolute deadline (retrying past it only
// burns device time on an answer nobody is waiting for). Both optional; the
// default-constructed governor changes nothing, and the clock is only read
// once a retry is actually about to happen (cold path).
struct RetryGovernor {
  RetryBudget* budget = nullptr;  // null = unlimited
  uint64_t deadline_nanos = 0;    // 0 = none
};

// Runs `op` (a callable returning Status) up to policy.max_attempts times,
// sleeping with exponential backoff between attempts, while the result is
// transient. Returns the last status. Accounts each retry and its backoff in
// the calling thread's PerfContext and the global IoStats.
template <typename Op>
Status RunWithRetry(Env* env, const RetryPolicy& policy, Op&& op,
                    const RetryGovernor& governor = RetryGovernor()) {
  Status s = op();
  int backoff_us = policy.base_backoff_us;
  for (int attempt = 1; !s.ok() && s.IsTransient() && attempt < policy.max_attempts;
       attempt++) {
    if (governor.deadline_nanos != 0 || governor.budget != nullptr) {
      const uint64_t now = NowNanos();
      if (governor.deadline_nanos != 0 && now >= governor.deadline_nanos) {
        return Status::DeadlineExceeded("retry abandoned",
                                        "request deadline passed during retries");
      }
      if (governor.budget != nullptr && !governor.budget->TryAcquire(now)) {
        return s;  // budget exhausted: fail fast with the last transient status
      }
    }
    GetPerfContext().retry_count++;
    IoStats::Instance().RecordRetry();
    TraceEmitAux(TraceEventType::kRetry, static_cast<uint64_t>(attempt),
                 static_cast<uint64_t>(backoff_us));
    if (env != nullptr && backoff_us > 0) {
      env->SleepForMicroseconds(backoff_us);
      GetPerfContext().retry_backoff_nanos += static_cast<uint64_t>(backoff_us) * 1000;
    }
    backoff_us = std::min(backoff_us * 2, policy.max_backoff_us);
    s = op();
  }
  return s;
}

}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_RETRY_H_
