// Device models. The paper evaluates on an Intel Optane 905p NVMe SSD and
// contrasts it with a SATA SSD and an HDD (Figure 1). This repo has no such
// testbed, so ThrottledEnv imposes a *device envelope* — bandwidth caps via
// token buckets plus per-IO latency (huge for HDD random access, small for
// NVMe) — on top of any base Env. Sleeping in the file operations also lets
// instance-level IO parallelism overlap, which is what makes multi-instance
// scaling visible even on machines with few cores.

#ifndef P2KVS_SRC_IO_DEVICE_MODEL_H_
#define P2KVS_SRC_IO_DEVICE_MODEL_H_

#include <memory>
#include <string>

#include "src/io/env.h"

namespace p2kvs {

struct DeviceProfile {
  std::string name;
  uint64_t write_bw_bytes_per_sec = 0;  // 0 = unlimited
  uint64_t read_bw_bytes_per_sec = 0;
  uint32_t seq_latency_us = 0;   // charged per sync (write) / sequential read
  uint32_t rand_latency_us = 0;  // charged per discontiguous read
  // Queue-depth dimension: how many reads the device serves concurrently at
  // full speed (internal channels / NCQ-style parallelism). Up to `channels`
  // concurrent reads each pay the base latency — so read throughput scales
  // linearly with queue depth, which is what rewards an engine that batches
  // its reads — and past it each read's latency is multiplied by
  // ceil(in_flight / channels), modeling saturation. 0 or 1 = serial device;
  // with a single reader the model is exactly the old one.
  uint32_t channels = 1;

  // Paper hardware: Intel Optane 905p — 2.2 GB/s write, 2.6 GB/s read, ~10us,
  // saturates around QD16.
  static DeviceProfile NvmeSsd();
  // Samsung 860 PRO class: ~520/560 MB/s, ~80us, ~QD8 of useful parallelism.
  static DeviceProfile SataSsd();
  // WDC WD100EFAX class: ~0.2 GB/s streaming, ~8ms seek, one actuator.
  static DeviceProfile Hdd();
  // No throttling at all (the raw base env).
  static DeviceProfile Unlimited();

  // Returns a copy with all latencies multiplied and bandwidths divided by
  // `time_scale`; time_scale > 1 slows the device down uniformly, < 1 speeds
  // it up (useful to shrink benchmark wall time while preserving ratios).
  DeviceProfile Scaled(double time_scale) const;
};

// Creates an Env imposing `profile` on top of `base`. The returned Env does
// not own `base`.
std::unique_ptr<Env> NewThrottledEnv(Env* base, const DeviceProfile& profile);

}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_DEVICE_MODEL_H_
