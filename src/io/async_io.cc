// Thread-pool AsyncIoContext backend + backend selection. The pool executes
// the *virtual* file operation for each op, which is what keeps every wrapper
// Env honest: a ThrottledEnv file sleeps its modeled device latency on the
// pool thread (N pool threads sleeping concurrently == queue depth N at the
// simulated device), ErrorInjection/FaultInjection files inject per-op, and
// MemEnv files serve from memory. See async_io.h for the completion contract.

#include "src/io/async_io.h"

#include <algorithm>
#include <deque>
#include <thread>
#include <vector>

#include "src/io/async_io_internal.h"
#include "src/io/io_stats.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/trace.h"
#include "src/util/trace_ring.h"

namespace p2kvs {

namespace {

using async_io_internal::ExecuteOp;
using async_io_internal::KindIsRead;
using async_io_internal::kOpRead;
using async_io_internal::kOpSlotRead;
using async_io_internal::kOpSync;
using async_io_internal::kOpWrite;

class ThreadPoolIoContext final : public AsyncIoContext {
 public:
  explicit ThreadPoolIoContext(const AsyncIoOptions& options)
      : max_threads_(std::max(1, options.queue_depth)) {}

  ~ThreadPoolIoContext() override {
    // Callers must have Wait()ed on everything they submitted; the pool still
    // drains its queue before exiting so no op is abandoned mid-flight.
    std::vector<std::thread> threads;
    {
      MutexLock lock(&mu_);
      stop_ = true;
      work_cv_.SignalAll();
      threads.swap(threads_);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  void SubmitRead(RandomAccessFile* file, AsyncIoOp* op) override {
    Enqueue(file, op, kOpRead);
  }
  void SubmitSlotRead(RandomWritableFile* file, AsyncIoOp* op) override {
    Enqueue(file, op, kOpSlotRead);
  }
  void SubmitWrite(RandomWritableFile* file, AsyncIoOp* op) override {
    Enqueue(file, op, kOpWrite);
  }
  void SubmitSync(WritableFile* file, AsyncIoOp* op) override { Enqueue(file, op, kOpSync); }

  void Wait(AsyncIoOp* const* ops, size_t n) override {
    uint64_t credit_bytes = 0;
    uint64_t credit_ops = 0;
    {
      MutexLock lock(&mu_);
      while (!AllDone(ops, n)) {
        done_cv_.Wait();
      }
      // Reap exactly once per op: re-attribute pool-thread read bytes to the
      // waiter (worker-level IO attribution) and emit completion events.
      for (size_t i = 0; i < n; i++) {
        AsyncIoOp* op = ops[i];
        if (op->reaped) {
          continue;
        }
        op->reaped = true;
        if (KindIsRead(op->kind) && op->status.ok()) {
          credit_bytes += op->bytes_done;
          credit_ops += 1;
        }
        TraceEmitAux(TraceEventType::kIoComplete, op->bytes_done, TraceStatusCode(op->status));
      }
    }
    if (credit_ops > 0) {
      IoStats::CreditThreadRead(credit_bytes, credit_ops);
    }
  }

  const char* backend_name() const override { return "thread-pool"; }

 private:
  struct Pending {
    AsyncIoOp* op;
    IoPurpose purpose;
  };

  void Enqueue(void* file, AsyncIoOp* op, int kind) {
    op->file = file;
    op->kind = kind;
    op->status = Status::OK();
    op->result = Slice();
    op->bytes_done = 0;
    IoStats::Instance().OnAsyncSubmit(KindIsRead(kind));
    TraceEmitAux(TraceEventType::kIoSubmit, static_cast<uint64_t>(kind),
                 KindIsRead(kind) ? op->len : op->write_data.size());
    MutexLock lock(&mu_);
    op->done = false;
    op->reaped = false;
    queue_.push_back(Pending{op, GetThreadIoPurpose()});
    // Lazy pool growth: never spawn a thread before the first submission, and
    // only grow while there is queued work the current threads can't absorb.
    if (static_cast<int>(threads_.size()) < max_threads_ &&
        queue_.size() + busy_ > threads_.size()) {
      threads_.emplace_back([this] { WorkerMain(); });
    }
    work_cv_.Signal();
  }

  bool AllDone(AsyncIoOp* const* ops, size_t n) REQUIRES(mu_) {
    for (size_t i = 0; i < n; i++) {
      if (!ops[i]->done) {
        return false;
      }
    }
    return true;
  }

  void WorkerMain() {
    MutexLock lock(&mu_);
    while (true) {
      while (queue_.empty() && !stop_) {
        work_cv_.Wait();
      }
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      Pending p = queue_.front();
      queue_.pop_front();
      busy_++;
      mu_.Unlock();
      {
        // Inherit the submitter's purpose so flush/compaction reads issued
        // through the pool keep their attribution in the global counters.
        IoPurposeScope scope(p.purpose);
        ExecuteOp(p.op);
      }
      IoStats::Instance().OnAsyncComplete(KindIsRead(p.op->kind));
      mu_.Lock();
      busy_--;
      p.op->done = true;
      done_cv_.SignalAll();
    }
  }

  const int max_threads_;

  Mutex mu_;
  CondVar work_cv_{&mu_};
  CondVar done_cv_{&mu_};
  std::deque<Pending> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> threads_ GUARDED_BY(mu_);
  size_t busy_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace

std::unique_ptr<AsyncIoContext> NewThreadPoolIoContext(const AsyncIoOptions& options) {
  return std::make_unique<ThreadPoolIoContext>(options);
}

#ifndef P2KVS_IO_URING
bool IoUringAvailable() { return false; }
#endif

std::unique_ptr<AsyncIoContext> NewAsyncIoContext(const AsyncIoOptions& options) {
#ifdef P2KVS_IO_URING
  if (!options.force_thread_pool && IoUringAvailable()) {
    std::unique_ptr<AsyncIoContext> ctx = NewIoUringContext(options);
    if (ctx != nullptr) {
      return ctx;
    }
  }
#endif
  return NewThreadPoolIoContext(options);
}

}  // namespace p2kvs
