// AsyncIoContext: the submission/completion half of the Env layer. Callers
// build AsyncIoOp descriptors, submit them (SubmitRead/SubmitWrite/SubmitSync
// never block on device latency), keep working, and later Wait() for the ops
// they care about. Two backends:
//
//   * thread pool (portable default) — pool threads execute the *virtual*
//     file operation synchronously, so every wrapper Env keeps working
//     unchanged: ThrottledEnv charges its device-model latency per op (which
//     is exactly what makes queue depth visible on the simulated device),
//     ErrorInjectionEnv / FaultInjectionEnv inject per-op, MemEnv serves from
//     memory. Effective queue depth == pool size == AsyncIoOptions.queue_depth.
//   * io_uring (Linux, P2KVS_IO_URING) — reads on files that expose a real
//     fd via raw_fd() go through the kernel ring; everything else (wrapped
//     files return raw_fd() == -1, writes, syncs) falls back to the embedded
//     pool, so interception is preserved by construction: a wrapper can never
//     be bypassed, because only the innermost Posix file advertises its fd.
//
// Completion contract: an op belongs to the submitter; between Submit* and
// the return of a Wait() covering it the op must not be read or written by
// the caller (`status`, `result`, and `bytes_done` are filled in by the
// backend). Ops complete in arbitrary order; results are delivered into the
// op struct itself, so interleaved waiters on one shared context are safe —
// Wait(ops, n) returns when *those* n ops are done, regardless of what else
// is in flight. A context may be shared by any number of threads.
//
// Per-op observability: submissions/completions update the global IoStats
// in-flight gauge + queue-depth high-water mark, and — when the submitting
// thread is inside a traced dispatch — kIoSubmit/kIoComplete trace events
// are emitted so batched reads show up in Perfetto.

#ifndef P2KVS_SRC_IO_ASYNC_IO_H_
#define P2KVS_SRC_IO_ASYNC_IO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/io/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace p2kvs {

struct AsyncIoOptions {
  // Target queue depth. For the thread-pool backend this is the pool size
  // (ops beyond it queue, bounding in-flight ops at the device); for io_uring
  // it sizes the submission ring.
  int queue_depth = 16;
  // Force the portable thread-pool backend even when io_uring is compiled in
  // and usable (benchmarks use this to compare backends).
  bool force_thread_pool = false;
};

// One asynchronous file operation. POD-ish by design: callers may embed it,
// reuse it across batches (Submit* resets the completion state), and stack-
// allocate arrays of them. Not copyable while in flight.
struct AsyncIoOp {
  // --- inputs (set by the caller before Submit*) ---
  uint64_t offset = 0;
  size_t len = 0;          // read: bytes wanted; must fit scratch
  char* scratch = nullptr; // read destination (caller-owned)
  Slice write_data;        // write payload (caller-owned, live until Wait)

  // --- outputs (valid after a Wait() covering this op returns) ---
  Status status;
  Slice result;            // read: points into scratch (or file memory)
  uint64_t bytes_done = 0; // bytes actually transferred

  // --- backend-internal; callers never touch these ---
  // `done`/`reaped` are guarded by the owning context's completion mutex (set
  // under it by the completing thread, read under it by Wait) — plain bools,
  // not atomics, because every access is lock-protected.
  bool done = false;
  bool reaped = false;     // credit/trace emitted for this completion
  void* file = nullptr;    // which file object, interpreted per op kind
  int kind = 0;            // internal op kind tag
  bool via_ring = false;   // routed through the kernel ring (io_uring backend)
  int purpose = 0;         // submitter's IoPurpose, for ring-side accounting
};

class AsyncIoContext {
 public:
  virtual ~AsyncIoContext() = default;

  // Positional read on an SST-style read-only file.
  virtual void SubmitRead(RandomAccessFile* file, AsyncIoOp* op) = 0;
  // Positional read on a KVell-style slot file.
  virtual void SubmitSlotRead(RandomWritableFile* file, AsyncIoOp* op) = 0;
  // Positional write on a slot file.
  virtual void SubmitWrite(RandomWritableFile* file, AsyncIoOp* op) = 0;
  // Durability barrier on an append-only file. The file's *virtual* Sync runs
  // on a pool thread, so buffered WritableFiles flush correctly and wrapper
  // fault injection applies. The caller must guarantee no concurrent Append
  // to the same file until the sync completes (the WAL leader protocol does).
  virtual void SubmitSync(WritableFile* file, AsyncIoOp* op) = 0;

  // Blocks until every op in ops[0..n) has completed. Safe to call from many
  // threads on one context with disjoint or overlapping op sets.
  virtual void Wait(AsyncIoOp* const* ops, size_t n) = 0;

  void WaitAll(std::vector<AsyncIoOp*>& ops) {
    if (!ops.empty()) Wait(ops.data(), ops.size());
  }

  // "thread-pool" or "io_uring".
  virtual const char* backend_name() const = 0;
};

// Creates a context: io_uring when compiled in (P2KVS_IO_URING), available at
// runtime (see IoUringAvailable), and not disabled by options; otherwise the
// thread-pool fallback. Never returns nullptr.
std::unique_ptr<AsyncIoContext> NewAsyncIoContext(const AsyncIoOptions& options);

// True when the io_uring backend is compiled in and the kernel accepts
// io_uring_setup (containers often deny it via seccomp; the probe result is
// cached). Always false without P2KVS_IO_URING.
bool IoUringAvailable();

// Portable fallback, directly (tests compare it against the default).
std::unique_ptr<AsyncIoContext> NewThreadPoolIoContext(const AsyncIoOptions& options);

#ifdef P2KVS_IO_URING
// Raw-syscall io_uring backend (no liburing dependency); returns nullptr when
// the kernel refuses the ring, in which case callers fall back to the pool.
std::unique_ptr<AsyncIoContext> NewIoUringContext(const AsyncIoOptions& options);
#endif

}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_ASYNC_IO_H_
