// EnvWrapper: forwards every Env call to a target, so decorators (throttling,
// fault injection) override only what they change.

#ifndef P2KVS_SRC_IO_ENV_WRAPPER_H_
#define P2KVS_SRC_IO_ENV_WRAPPER_H_

#include "src/io/env.h"

namespace p2kvs {

class EnvWrapper : public Env {
 public:
  // Does not take ownership of t; t must outlive the wrapper.
  explicit EnvWrapper(Env* t) : target_(t) {}

  Env* target() const { return target_; }

  Status NewSequentialFile(const std::string& f, std::unique_ptr<SequentialFile>* r) override {
    return target_->NewSequentialFile(f, r);
  }
  Status NewRandomAccessFile(const std::string& f, std::unique_ptr<RandomAccessFile>* r) override {
    return target_->NewRandomAccessFile(f, r);
  }
  Status NewWritableFile(const std::string& f, std::unique_ptr<WritableFile>* r) override {
    return target_->NewWritableFile(f, r);
  }
  Status NewAppendableFile(const std::string& f, std::unique_ptr<WritableFile>* r) override {
    return target_->NewAppendableFile(f, r);
  }
  Status NewRandomWritableFile(const std::string& f,
                               std::unique_ptr<RandomWritableFile>* r) override {
    return target_->NewRandomWritableFile(f, r);
  }
  bool FileExists(const std::string& f) override { return target_->FileExists(f); }
  Status GetChildren(const std::string& dir, std::vector<std::string>* r) override {
    return target_->GetChildren(dir, r);
  }
  Status RemoveFile(const std::string& f) override { return target_->RemoveFile(f); }
  Status CreateDir(const std::string& d) override { return target_->CreateDir(d); }
  Status RemoveDir(const std::string& d) override { return target_->RemoveDir(d); }
  Status GetFileSize(const std::string& f, uint64_t* s) override {
    return target_->GetFileSize(f, s);
  }
  Status RenameFile(const std::string& s, const std::string& t) override {
    return target_->RenameFile(s, t);
  }

 private:
  Env* target_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_ENV_WRAPPER_H_
