#include "src/io/mem_env.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "src/io/io_stats.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {

namespace {

// Shared, reference-counted file contents. A file may be deleted while
// readers still hold it (POSIX semantics).
class FileState {
 public:
  std::string contents GUARDED_BY(mu);
  mutable Mutex mu;

  uint64_t Size() const {
    MutexLock lock(&mu);
    return contents.size();
  }

  Status ReadAt(uint64_t offset, size_t n, Slice* result, char* scratch) const {
    MutexLock lock(&mu);
    if (offset >= contents.size()) {
      *result = Slice(scratch, 0);
      return Status::OK();
    }
    size_t avail = std::min<size_t>(n, contents.size() - offset);
    memcpy(scratch, contents.data() + offset, avail);
    IoStats::Instance().RecordRead(avail);
    *result = Slice(scratch, avail);
    return Status::OK();
  }

  void Append(const Slice& data) {
    MutexLock lock(&mu);
    contents.append(data.data(), data.size());
    IoStats::Instance().RecordWrite(data.size());
  }

  void WriteAt(uint64_t offset, const Slice& data) {
    MutexLock lock(&mu);
    if (contents.size() < offset + data.size()) {
      contents.resize(offset + data.size());
    }
    memcpy(contents.data() + offset, data.data(), data.size());
    IoStats::Instance().RecordWrite(data.size());
  }

  void Truncate(uint64_t size) {
    MutexLock lock(&mu);
    contents.resize(size);
  }
};

using FileRef = std::shared_ptr<FileState>;

class MemSequentialFile final : public SequentialFile {
 public:
  explicit MemSequentialFile(FileRef file) : file_(std::move(file)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = file_->ReadAt(pos_, n, result, scratch);
    if (s.ok()) {
      pos_ += result->size();
    }
    return s;
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return Status::OK();
  }

 private:
  FileRef file_;
  uint64_t pos_ = 0;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(FileRef file) : file_(std::move(file)) {}

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    return file_->ReadAt(offset, n, result, scratch);
  }

 private:
  FileRef file_;
};

class MemWritableFile final : public WritableFile {
 public:
  explicit MemWritableFile(FileRef file) : file_(std::move(file)) {}

  Status Append(const Slice& data) override {
    file_->Append(data);
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override {
    IoStats::Instance().RecordSync();
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }

 private:
  FileRef file_;
};

class MemRandomWritableFile final : public RandomWritableFile {
 public:
  explicit MemRandomWritableFile(FileRef file) : file_(std::move(file)) {}

  Status Write(uint64_t offset, const Slice& data) override {
    file_->WriteAt(offset, data);
    return Status::OK();
  }
  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    return file_->ReadAt(offset, n, result, scratch);
  }
  Status Sync() override {
    IoStats::Instance().RecordSync();
    return Status::OK();
  }
  Status Truncate(uint64_t size) override {
    file_->Truncate(size);
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }

 private:
  FileRef file_;
};

class MemEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    FileRef file;
    Status s = Find(fname, &file);
    if (!s.ok()) {
      return s;
    }
    *result = std::make_unique<MemSequentialFile>(std::move(file));
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override {
    FileRef file;
    Status s = Find(fname, &file);
    if (!s.ok()) {
      return s;
    }
    *result = std::make_unique<MemRandomAccessFile>(std::move(file));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    FileRef file = CreateOrTruncate(fname);
    *result = std::make_unique<MemWritableFile>(std::move(file));
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override {
    FileRef file = FindOrCreate(fname);
    *result = std::make_unique<MemWritableFile>(std::move(file));
    return Status::OK();
  }

  Status NewRandomWritableFile(const std::string& fname,
                               std::unique_ptr<RandomWritableFile>* result) override {
    FileRef file = FindOrCreate(fname);
    *result = std::make_unique<MemRandomWritableFile>(std::move(file));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    MutexLock lock(&mu_);
    return files_.count(fname) > 0;
  }

  Status GetChildren(const std::string& dir, std::vector<std::string>* result) override {
    result->clear();
    MutexLock lock(&mu_);
    std::string prefix = dir;
    if (prefix.empty() || prefix.back() != '/') {
      prefix += '/';
    }
    std::set<std::string> names;
    auto collect = [&](const std::string& path) {
      if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0) {
        std::string rest = path.substr(prefix.size());
        size_t slash = rest.find('/');
        names.insert(slash == std::string::npos ? rest : rest.substr(0, slash));
      }
    };
    for (const auto& [path, file] : files_) {
      collect(path);
    }
    for (const auto& path : dirs_) {
      collect(path);
    }
    if (names.empty() && dirs_.count(dir) == 0) {
      return Status::NotFound(dir);
    }
    result->assign(names.begin(), names.end());
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    MutexLock lock(&mu_);
    if (files_.erase(fname) == 0) {
      return Status::NotFound(fname);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    MutexLock lock(&mu_);
    dirs_.insert(dirname);
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    MutexLock lock(&mu_);
    dirs_.erase(dirname);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* file_size) override {
    MutexLock lock(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      *file_size = 0;
      return Status::NotFound(fname);
    }
    *file_size = it->second->Size();
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& target) override {
    MutexLock lock(&mu_);
    auto it = files_.find(src);
    if (it == files_.end()) {
      return Status::NotFound(src);
    }
    files_[target] = it->second;
    files_.erase(it);
    return Status::OK();
  }

 private:
  Status Find(const std::string& fname, FileRef* out) {
    MutexLock lock(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::NotFound(fname);
    }
    *out = it->second;
    return Status::OK();
  }

  FileRef CreateOrTruncate(const std::string& fname) {
    MutexLock lock(&mu_);
    auto file = std::make_shared<FileState>();
    files_[fname] = file;
    return file;
  }

  FileRef FindOrCreate(const std::string& fname) {
    MutexLock lock(&mu_);
    auto it = files_.find(fname);
    if (it != files_.end()) {
      return it->second;
    }
    auto file = std::make_shared<FileState>();
    files_[fname] = file;
    return file;
  }

  Mutex mu_;
  std::map<std::string, FileRef> files_ GUARDED_BY(mu_);
  std::set<std::string> dirs_ GUARDED_BY(mu_);
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace p2kvs
