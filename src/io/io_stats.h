// Global IO accounting used to reproduce the paper's bandwidth-utilization
// and IO-amplification measurements (Figures 4, 5b, 12b/c, 21a).
//
// Engines tag the *purpose* of their IO with a thread-local scope
// (IoPurposeScope); the Posix/Mem file implementations report bytes here.
// Benchmarks snapshot/reset around measurement windows.

#ifndef P2KVS_SRC_IO_IO_STATS_H_
#define P2KVS_SRC_IO_IO_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace p2kvs {

enum class IoPurpose : int {
  kUser = 0,      // foreground reads / user-visible IO
  kWal = 1,       // write-ahead-log appends and syncs
  kFlush = 2,     // minor compaction (memtable -> L0)
  kCompaction = 3,  // major compaction reads/writes
  kOther = 4,
};
constexpr int kNumIoPurposes = 5;

struct IoStatsSnapshot {
  std::array<uint64_t, kNumIoPurposes> bytes_written{};
  std::array<uint64_t, kNumIoPurposes> bytes_read{};
  std::array<uint64_t, kNumIoPurposes> write_ops{};
  std::array<uint64_t, kNumIoPurposes> read_ops{};
  uint64_t sync_ops = 0;
  // Error-governance counters: faults injected by ErrorInjectionEnv and
  // bounded retries performed by RunWithRetry. Benches diff these across a
  // measurement window to report fault-path overhead.
  uint64_t injected_faults = 0;
  uint64_t retries = 0;
  // Async submission/completion accounting (AsyncIoContext). `reads_in_flight`
  // is a gauge (submitted read ops not yet completed — signed so a Reset
  // racing in-flight ops degrades to a transiently negative gauge, never a
  // wrapped uint); `max_queue_depth` is the high-water mark of in-flight async
  // ops of any kind since the last Reset.
  uint64_t async_submissions = 0;
  int64_t reads_in_flight = 0;
  uint64_t max_queue_depth = 0;
  // io_uring_enter EAGAIN/EBUSY backoff iterations (SQ/CQ persistently full)
  // and submissions abandoned to the thread-pool fallback after the retry
  // cap. Nonzero fallbacks mean the ring is undersized for the load.
  uint64_t uring_eagain_backoffs = 0;
  uint64_t uring_submit_fallbacks = 0;

  uint64_t TotalWritten() const;
  uint64_t TotalRead() const;
  // Difference: every counter in *this minus `base`.
  IoStatsSnapshot Since(const IoStatsSnapshot& base) const;
  std::string ToString() const;
};

class IoStats {
 public:
  static IoStats& Instance();

  void RecordWrite(uint64_t bytes);
  void RecordRead(uint64_t bytes);
  void RecordSync();
  void RecordInjectedFault();
  void RecordRetry();

  // Async submission/completion bookkeeping, called by AsyncIoContext
  // backends around each op's lifetime.
  void OnAsyncSubmit(bool is_read);
  void OnAsyncComplete(bool is_read);
  // One io_uring_enter retry taken because the kernel reported EAGAIN/EBUSY
  // (ring resources exhausted); see the bounded backoff in uring_io.cc.
  void RecordUringEagainBackoff();
  // One read submission that gave up after the retry cap and was rerouted to
  // the thread-pool backend instead of spinning on the full ring.
  void RecordUringSubmitFallback();

  // Adds read bytes/ops to the *calling thread's* ThreadIoCounters only (no
  // global double count): a worker that had its reads executed on async pool
  // threads re-attributes them to itself at Wait() time, keeping the
  // per-partition IO attribution of the kStats drain path correct.
  static void CreditThreadRead(uint64_t bytes, uint64_t ops);

  IoStatsSnapshot Snapshot() const;
  void Reset();

 private:
  IoStats() = default;

  std::array<std::atomic<uint64_t>, kNumIoPurposes> bytes_written_{};
  std::array<std::atomic<uint64_t>, kNumIoPurposes> bytes_read_{};
  std::array<std::atomic<uint64_t>, kNumIoPurposes> write_ops_{};
  std::array<std::atomic<uint64_t>, kNumIoPurposes> read_ops_{};
  std::atomic<uint64_t> sync_ops_{0};
  std::atomic<uint64_t> injected_faults_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> async_submissions_{0};
  std::atomic<int64_t> reads_in_flight_{0};
  std::atomic<uint64_t> ops_in_flight_{0};  // all async kinds; feeds the max
  std::atomic<uint64_t> max_queue_depth_{0};
  std::atomic<uint64_t> uring_eagain_backoffs_{0};
  std::atomic<uint64_t> uring_submit_fallbacks_{0};
};

// The calling thread's current IO purpose (defaults to kUser).
IoPurpose GetThreadIoPurpose();

// Per-thread IO totals, accumulated alongside the global counters with zero
// synchronization. A p2KVS worker snapshots its own counters while handling
// a kStats drain request, attributing foreground IO (WAL appends, SST reads)
// to the partition that issued it.
struct ThreadIoCounters {
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t write_ops = 0;
  uint64_t read_ops = 0;
};

// The calling thread's counters (monotonic since thread start).
const ThreadIoCounters& GetThreadIoCounters();

// RAII purpose tag: background flush/compaction threads wrap their work in
// one of these so their IO is attributed correctly.
class IoPurposeScope {
 public:
  explicit IoPurposeScope(IoPurpose purpose);
  ~IoPurposeScope();

  IoPurposeScope(const IoPurposeScope&) = delete;
  IoPurposeScope& operator=(const IoPurposeScope&) = delete;

 private:
  IoPurpose saved_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_IO_STATS_H_
