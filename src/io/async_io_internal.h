// Shared internals of the AsyncIoContext backends (thread pool + io_uring).
// Not part of the public Env surface.

#ifndef P2KVS_SRC_IO_ASYNC_IO_INTERNAL_H_
#define P2KVS_SRC_IO_ASYNC_IO_INTERNAL_H_

#include "src/io/async_io.h"
#include "src/util/status.h"

namespace p2kvs {
namespace async_io_internal {

enum OpKind : int { kOpRead = 1, kOpSlotRead = 2, kOpWrite = 3, kOpSync = 4 };

inline bool KindIsRead(int kind) { return kind == kOpRead || kind == kOpSlotRead; }

// Runs the op's *virtual* file operation synchronously (the thread-pool
// execution body — this is the wrapper-interception point: device models,
// fault injectors and MemEnv all act inside these virtual calls).
inline void ExecuteOp(AsyncIoOp* op) {
  switch (op->kind) {
    case kOpRead:
      op->status = static_cast<RandomAccessFile*>(op->file)->Read(op->offset, op->len,
                                                                  &op->result, op->scratch);
      op->bytes_done = op->status.ok() ? op->result.size() : 0;
      break;
    case kOpSlotRead:
      op->status = static_cast<RandomWritableFile*>(op->file)->Read(op->offset, op->len,
                                                                    &op->result, op->scratch);
      op->bytes_done = op->status.ok() ? op->result.size() : 0;
      break;
    case kOpWrite:
      op->status = static_cast<RandomWritableFile*>(op->file)->Write(op->offset, op->write_data);
      op->bytes_done = op->status.ok() ? op->write_data.size() : 0;
      break;
    case kOpSync:
      op->status = static_cast<WritableFile*>(op->file)->Sync();
      op->bytes_done = 0;
      break;
    default:
      op->status = Status::InvalidArgument("unknown async op kind");
      break;
  }
}

}  // namespace async_io_internal
}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_ASYNC_IO_INTERNAL_H_
