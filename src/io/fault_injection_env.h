// FaultInjectionEnv: simulates a whole-system crash (power loss) by
// discarding every byte appended to a WritableFile after its last Sync().
// Used by the crash-consistency tests for the LSM WAL, the B+-tree WAL and
// the p2KVS GSN transaction log (paper §4.5: "kill the p2KVS process during
// writing data ... always recovered to a consistent state").
//
// Appends write through to the base env immediately (so normal reads see
// them, like the OS page cache would); Crash() truncates each tracked file
// back to its last synced size.
//
// RandomWritableFile (KVell-style positional slot IO) is tracked with an
// undo log: before each unsynced positional write the old bytes are read
// and recorded, and Crash() replays the undo entries in reverse then
// truncates to the last synced size — so unsynced in-place updates revert
// to their pre-write contents, as if they never left the page cache.

#ifndef P2KVS_SRC_IO_FAULT_INJECTION_ENV_H_
#define P2KVS_SRC_IO_FAULT_INJECTION_ENV_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/io/env_wrapper.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {

class FaultInjectionEnv final : public EnvWrapper {
 public:
  explicit FaultInjectionEnv(Env* base) : EnvWrapper(base) {}

  Status NewWritableFile(const std::string& f, std::unique_ptr<WritableFile>* r) override;
  Status NewAppendableFile(const std::string& f, std::unique_ptr<WritableFile>* r) override;
  Status NewRandomWritableFile(const std::string& f,
                               std::unique_ptr<RandomWritableFile>* r) override;
  Status RemoveFile(const std::string& f) override;
  Status RenameFile(const std::string& s, const std::string& t) override;

  // Simulates power loss: every tracked file reverts to its last synced size.
  // After this, previously opened writable files keep operating on the base
  // env but their unsynced history is gone, exactly as if the machine
  // rebooted mid-run. Typically the caller drops all engine objects first.
  Status Crash();

  // Number of bytes that would be lost if Crash() were called now.
  uint64_t UnsyncedBytes() const;

 private:
  friend class FaultInjectionWritableFile;
  friend class FaultInjectionRandomWritableFile;

  struct FileInfo {
    uint64_t synced_size = 0;
    uint64_t current_size = 0;
  };

  // One pre-image of a positional write; replayed in reverse on Crash().
  struct UndoEntry {
    uint64_t offset = 0;
    std::string old_data;  // may be shorter than the write if it extended EOF
  };

  struct RandomFileInfo {
    uint64_t synced_size = 0;
    std::vector<UndoEntry> undo;
  };

  void OnAppend(const std::string& fname, uint64_t bytes) EXCLUDES(mu_);
  void OnSync(const std::string& fname) EXCLUDES(mu_);
  void OnCreate(const std::string& fname, uint64_t initial_size) EXCLUDES(mu_);
  void OnRandomWrite(const std::string& fname, UndoEntry entry) EXCLUDES(mu_);
  void OnRandomSync(const std::string& fname) EXCLUDES(mu_);
  void OnRandomTruncate(const std::string& fname, uint64_t size) EXCLUDES(mu_);

  mutable Mutex mu_;
  std::map<std::string, FileInfo> files_ GUARDED_BY(mu_);
  std::map<std::string, RandomFileInfo> random_files_ GUARDED_BY(mu_);
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_FAULT_INJECTION_ENV_H_
