// io_uring AsyncIoContext backend. Speaks the raw kernel interface
// (<linux/io_uring.h> + io_uring_setup/io_uring_enter syscalls) so no
// liburing is required; when liburing headers are present CMake still reports
// them, but this backend works either way.
//
// Only *reads on files that expose a real fd* (raw_fd() >= 0) go through the
// kernel ring: those are the latency-critical batched SST/slot reads. Writes,
// syncs, zero-length reads, and any op on a wrapped file (raw_fd() == -1)
// route to the embedded thread-pool fallback, which executes the virtual file
// op — so device models and fault injectors are never bypassed.
//
// Concurrency: one mutex guards the ring (SQ tail is single-submitter, CQ
// head single-reaper by construction). Waiters take turns as the reaper via
// the `reaping_` baton; everyone else blocks on done_cv_. Completions are
// keyed by user_data == the AsyncIoOp pointer, so any waiter can retire any
// other waiter's ops.

#include "src/io/async_io.h"

#ifdef P2KVS_IO_URING

#include <linux/io_uring.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/io/async_io_internal.h"
#include "src/io/io_stats.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/trace.h"
#include "src/util/trace_ring.h"

namespace p2kvs {

namespace {

using async_io_internal::kOpRead;

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
                                    nullptr, 0));
}

// io_uring_enter EAGAIN/EBUSY retry policy. Submission gives up and falls
// back to the thread pool after this many attempts (~a few ms wall time at
// the capped sleep); completion draining retries forever but with the same
// per-iteration cap.
constexpr int kMaxEagainAttempts = 64;
constexpr long kMaxBackoffNanos = 1000000;  // 1ms

// attempt-th consecutive EAGAIN: yield first (transient pressure resolves in
// a scheduler quantum), then sleep with escalation capped at 1ms.
void BackoffOnce(int attempt) {
  if (attempt <= 4) {
    ::sched_yield();
    return;
  }
  long nanos = 10000L << std::min(attempt - 5, 10);  // 10us .. ~10ms, capped below
  if (nanos > kMaxBackoffNanos) {
    nanos = kMaxBackoffNanos;
  }
  timespec ts{0, nanos};
  ::nanosleep(&ts, nullptr);
}

// Minimal SQ/CQ ring wrapper. All methods must be called under an external
// lock except where noted; kernel-shared indices use GCC atomic builtins with
// the acquire/release pairing the io_uring ABI requires.
class RawUring {
 public:
  RawUring() = default;
  ~RawUring() { Teardown(); }

  RawUring(const RawUring&) = delete;
  RawUring& operator=(const RawUring&) = delete;

  bool Init(unsigned entries) {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd_ = SysIoUringSetup(entries, &p);
    if (ring_fd_ < 0) {
      return false;
    }
    sq_entries_ = p.sq_entries;
    cq_entries_ = p.cq_entries;
    size_t sq_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    size_t cq_sz = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    single_mmap_ = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap_) {
      sq_sz = cq_sz = std::max(sq_sz, cq_sz);
    }
    sq_sz_ = sq_sz;
    cq_sz_ = cq_sz;
    sq_ptr_ = ::mmap(nullptr, sq_sz, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE, ring_fd_,
                     IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) {
      Teardown();
      return false;
    }
    if (single_mmap_) {
      cq_ptr_ = sq_ptr_;
    } else {
      cq_ptr_ = ::mmap(nullptr, cq_sz, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                       ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ptr_ == MAP_FAILED) {
        Teardown();
        return false;
      }
    }
    sqe_sz_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(::mmap(nullptr, sqe_sz_, PROT_READ | PROT_WRITE,
                                              MAP_SHARED | MAP_POPULATE, ring_fd_,
                                              IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      Teardown();
      return false;
    }
    char* sq = static_cast<char*>(sq_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    char* cq = static_cast<char*>(cq_ptr_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    return true;
  }

  unsigned cq_capacity() const { return cq_entries_; }

  // Queues one read SQE and submits it. Returns false (with the tail rolled
  // back) when the ring is full or the kernel rejects the submission; the
  // caller then falls back to the pool. Caller holds the ring lock.
  bool PushRead(int fd, uint64_t off, void* buf, unsigned len, void* user_data) {
    const unsigned tail = *sq_tail_;  // single submitter under the lock
    const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    if (tail - head >= sq_entries_) {
      return false;
    }
    const unsigned idx = tail & *sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_READ;
    sqe->fd = fd;
    sqe->off = off;
    sqe->addr = reinterpret_cast<uint64_t>(buf);
    sqe->len = len;
    sqe->user_data = reinterpret_cast<uint64_t>(user_data);
    sq_array_[idx] = idx;
    // Publish the SQE before the kernel sees the new tail.
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    // EINTR retries freely (the syscall did no work), but EAGAIN/EBUSY means
    // the kernel is out of ring resources and may stay that way for a while —
    // an unbounded `continue` here burns a core at 100% while holding the ring
    // lock. Bound it: yield for the first retries, then sleep with capped
    // escalation, and after kMaxEagainAttempts give the SQE back (tail
    // rollback) so the caller degrades to the thread-pool backend.
    int eagain_attempts = 0;
    while (true) {
      const int r = SysIoUringEnter(ring_fd_, 1, 0, 0);
      if (r >= 0) {
        return true;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EBUSY) {
        IoStats::Instance().RecordUringEagainBackoff();
        if (++eagain_attempts >= kMaxEagainAttempts) {
          break;  // persistently full: hand off to the pool fallback
        }
        BackoffOnce(eagain_attempts);
        continue;
      }
      break;  // unrecoverable submission error
    }
    // Kernel never consumed the SQE (head unmoved on error): roll back.
    __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);
    return false;
  }

  // Drains available CQEs into out as (user_data, res) pairs. When `wait` and
  // nothing is pending in the CQ, blocks in the kernel for >= 1 completion.
  // Returns false on an unrecoverable ring error. Caller holds the ring lock.
  bool Drain(std::vector<std::pair<void*, int>>* out, bool wait) {
    int drain_backoff = 0;
    while (true) {
      unsigned head = *cq_head_;  // single reaper under the lock
      const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      while (head != tail) {
        const io_uring_cqe* cqe = &cqes_[head & *cq_mask_];
        out->emplace_back(reinterpret_cast<void*>(cqe->user_data), cqe->res);
        head++;
      }
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
      if (!out->empty() || !wait) {
        return true;
      }
      const int r = SysIoUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (r >= 0 || errno == EINTR) {
        drain_backoff = 0;  // made progress (or benign interruption)
        continue;
      }
      if (errno == EAGAIN || errno == EBUSY) {
        // Completions are owed to us (ops in flight), so never abandon — but
        // don't spin hot either. Capped sleep; the counter makes a struggling
        // ring visible in io_stats.
        IoStats::Instance().RecordUringEagainBackoff();
        BackoffOnce(++drain_backoff);
        continue;
      }
      return false;
    }
  }

 private:
  void Teardown() {
    if (sqes_ != nullptr) {
      ::munmap(sqes_, sqe_sz_);
      sqes_ = nullptr;
    }
    if (cq_ptr_ != MAP_FAILED && cq_ptr_ != sq_ptr_) {
      ::munmap(cq_ptr_, cq_sz_);
    }
    cq_ptr_ = MAP_FAILED;
    if (sq_ptr_ != MAP_FAILED) {
      ::munmap(sq_ptr_, sq_sz_);
      sq_ptr_ = MAP_FAILED;
    }
    if (ring_fd_ >= 0) {
      ::close(ring_fd_);
      ring_fd_ = -1;
    }
  }

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;
  bool single_mmap_ = false;
  void* sq_ptr_ = MAP_FAILED;
  void* cq_ptr_ = MAP_FAILED;
  size_t sq_sz_ = 0;
  size_t cq_sz_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqe_sz_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
};

class UringIoContext final : public AsyncIoContext {
 public:
  // Use Create(); a context whose ring failed to initialize is never handed
  // to callers.
  explicit UringIoContext(const AsyncIoOptions& options)
      : pool_(NewThreadPoolIoContext(options)) {}

  bool InitRing(unsigned entries) { return ring_.Init(entries); }

  ~UringIoContext() override = default;

  void SubmitRead(RandomAccessFile* file, AsyncIoOp* op) override {
    if (TryRingRead(file->raw_fd(), op)) {
      return;
    }
    op->via_ring = false;
    pool_->SubmitRead(file, op);
  }

  void SubmitSlotRead(RandomWritableFile* file, AsyncIoOp* op) override {
    if (TryRingRead(file->raw_fd(), op)) {
      return;
    }
    op->via_ring = false;
    pool_->SubmitSlotRead(file, op);
  }

  // Writes and syncs always use the pool: the virtual op handles user-space
  // write buffers and wrapper interception, and they are not the batched
  // hot path this backend exists for.
  void SubmitWrite(RandomWritableFile* file, AsyncIoOp* op) override {
    op->via_ring = false;
    pool_->SubmitWrite(file, op);
  }
  void SubmitSync(WritableFile* file, AsyncIoOp* op) override {
    op->via_ring = false;
    pool_->SubmitSync(file, op);
  }

  void Wait(AsyncIoOp* const* ops, size_t n) override {
    std::vector<AsyncIoOp*> pool_ops;
    std::vector<AsyncIoOp*> ring_ops;
    for (size_t i = 0; i < n; i++) {
      (ops[i]->via_ring ? ring_ops : pool_ops).push_back(ops[i]);
    }
    if (!pool_ops.empty()) {
      pool_->Wait(pool_ops.data(), pool_ops.size());
    }
    if (ring_ops.empty()) {
      return;
    }

    uint64_t credit_bytes = 0;
    uint64_t credit_ops = 0;
    {
      MutexLock lock(&mu_);
      while (!AllDone(ring_ops)) {
        if (!reaping_) {
          reaping_ = true;
          mu_.Unlock();
          std::vector<std::pair<void*, int>> completions;
          const bool ok = ring_.Drain(&completions, /*wait=*/true);
          mu_.Lock();
          reaping_ = false;
          for (const auto& c : completions) {
            CompleteRingOp(static_cast<AsyncIoOp*>(c.first), c.second);
          }
          if (!ok) {
            // The ring broke under us: fail everything still in flight so no
            // waiter hangs; future submissions fall back to the pool.
            ring_dead_ = true;
            for (AsyncIoOp* pending : ring_pending_) {
              pending->status = Status::IOError("io_uring ring failed");
              pending->done = true;
              IoStats::Instance().OnAsyncComplete(/*is_read=*/true);
            }
            ring_pending_.clear();
          }
          done_cv_.SignalAll();
        } else {
          done_cv_.Wait();
        }
      }
      for (AsyncIoOp* op : ring_ops) {
        if (op->reaped) {
          continue;
        }
        op->reaped = true;
        if (op->status.ok()) {
          credit_bytes += op->bytes_done;
          credit_ops += 1;
        }
        TraceEmitAux(TraceEventType::kIoComplete, op->bytes_done, TraceStatusCode(op->status));
      }
    }
    if (credit_ops > 0) {
      IoStats::CreditThreadRead(credit_bytes, credit_ops);
    }
  }

  const char* backend_name() const override { return "io_uring"; }

 private:
  bool TryRingRead(int fd, AsyncIoOp* op) {
    if (fd < 0 || op->len == 0) {
      return false;
    }
    {
      MutexLock lock(&mu_);
      if (ring_dead_ || ring_pending_.size() >= ring_.cq_capacity()) {
        return false;
      }
      op->kind = kOpRead;
      op->via_ring = true;
      op->purpose = static_cast<int>(GetThreadIoPurpose());
      op->status = Status::OK();
      op->result = Slice();
      op->bytes_done = 0;
      op->done = false;
      op->reaped = false;
      if (!ring_.PushRead(fd, op->offset, op->scratch, static_cast<unsigned>(op->len), op)) {
        IoStats::Instance().RecordUringSubmitFallback();
        return false;
      }
      ring_pending_.insert(op);
    }
    IoStats::Instance().OnAsyncSubmit(/*is_read=*/true);
    TraceEmitAux(TraceEventType::kIoSubmit, static_cast<uint64_t>(kOpRead), op->len);
    return true;
  }

  bool AllDone(const std::vector<AsyncIoOp*>& ops) REQUIRES(mu_) {
    for (AsyncIoOp* op : ops) {
      if (!op->done) {
        return false;
      }
    }
    return true;
  }

  void CompleteRingOp(AsyncIoOp* op, int res) REQUIRES(mu_) {
    if (ring_pending_.erase(op) == 0) {
      return;  // already failed via ring_dead_ path
    }
    if (res < 0) {
      op->status = Status::IOError("io_uring read", std::strerror(-res));
    } else {
      op->result = Slice(op->scratch, static_cast<size_t>(res));
      op->bytes_done = static_cast<uint64_t>(res);
      // The posix Read path never ran for this op, so account the bytes here
      // under the submitter's purpose.
      IoPurposeScope scope(static_cast<IoPurpose>(op->purpose));
      IoStats::Instance().RecordRead(op->bytes_done);
    }
    IoStats::Instance().OnAsyncComplete(/*is_read=*/true);
    op->done = true;
  }

  std::unique_ptr<AsyncIoContext> pool_;

  Mutex mu_;
  CondVar done_cv_{&mu_};
  RawUring ring_;  // guarded by mu_ (plus the reaping_ baton for Drain)
  bool reaping_ GUARDED_BY(mu_) = false;
  bool ring_dead_ GUARDED_BY(mu_) = false;
  std::unordered_set<AsyncIoOp*> ring_pending_ GUARDED_BY(mu_);
};

}  // namespace

bool IoUringAvailable() {
  static const bool available = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    const int fd = SysIoUringSetup(4, &p);
    if (fd < 0) {
      return false;  // seccomp-denied (containers) or kernel too old
    }
    ::close(fd);
    return true;
  }();
  return available;
}

std::unique_ptr<AsyncIoContext> NewIoUringContext(const AsyncIoOptions& options) {
  auto ctx = std::make_unique<UringIoContext>(options);
  const unsigned entries =
      static_cast<unsigned>(std::max(4, std::min(options.queue_depth, 1024)));
  if (!ctx->InitRing(entries)) {
    return nullptr;
  }
  return ctx;
}

}  // namespace p2kvs

#endif  // P2KVS_IO_URING
