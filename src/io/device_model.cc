#include "src/io/device_model.h"

#include <atomic>

#include "src/io/env_wrapper.h"
#include "src/util/rate_limiter.h"

namespace p2kvs {

DeviceProfile DeviceProfile::NvmeSsd() {
  return DeviceProfile{"nvme", 2200ull << 20, 2600ull << 20, 8, 12, 16};
}

DeviceProfile DeviceProfile::SataSsd() {
  return DeviceProfile{"sata", 520ull << 20, 560ull << 20, 60, 90, 8};
}

DeviceProfile DeviceProfile::Hdd() {
  return DeviceProfile{"hdd", 200ull << 20, 200ull << 20, 1000, 8000, 1};
}

DeviceProfile DeviceProfile::Unlimited() { return DeviceProfile{"raw", 0, 0, 0, 0, 0}; }

DeviceProfile DeviceProfile::Scaled(double time_scale) const {
  DeviceProfile p = *this;
  if (time_scale > 0 && time_scale != 1.0) {
    p.write_bw_bytes_per_sec =
        write_bw_bytes_per_sec == 0
            ? 0
            : static_cast<uint64_t>(static_cast<double>(write_bw_bytes_per_sec) / time_scale);
    p.read_bw_bytes_per_sec =
        read_bw_bytes_per_sec == 0
            ? 0
            : static_cast<uint64_t>(static_cast<double>(read_bw_bytes_per_sec) / time_scale);
    p.seq_latency_us = static_cast<uint32_t>(seq_latency_us * time_scale);
    p.rand_latency_us = static_cast<uint32_t>(rand_latency_us * time_scale);
  }
  return p;
}

namespace {

// Shared throttling state for one simulated device.
struct DeviceState {
  explicit DeviceState(const DeviceProfile& p)
      : profile(p), write_limiter(p.write_bw_bytes_per_sec), read_limiter(p.read_bw_bytes_per_sec) {}

  const DeviceProfile profile;
  RateLimiter write_limiter;
  RateLimiter read_limiter;

  // Reads currently inside the device (from BeginRead to EndRead, i.e. the
  // whole modeled service time). Drives the queue-depth latency curve.
  std::atomic<uint32_t> reads_in_flight{0};

  // Returns this read's position in the queue (1-based depth at entry).
  uint32_t BeginRead() { return reads_in_flight.fetch_add(1, std::memory_order_relaxed) + 1; }
  void EndRead() { reads_in_flight.fetch_sub(1, std::memory_order_relaxed); }

  // Latency for one read observed at queue depth `depth`: base while the
  // device's channels are not oversubscribed, then multiplied by the
  // oversubscription factor (ceil(depth / channels)) to model saturation.
  // depth == 1 reproduces the pre-queue-depth model exactly.
  uint32_t ReadLatencyUs(uint32_t base, uint32_t depth) const {
    const uint32_t ch = profile.channels == 0 ? 1 : profile.channels;
    if (depth <= ch) {
      return base;
    }
    return base * ((depth + ch - 1) / ch);
  }
};

void ChargeLatency(Env* base, uint32_t micros) {
  if (micros > 0) {
    base->SleepForMicroseconds(static_cast<int>(micros));
  }
}

class ThrottledSequentialFile final : public SequentialFile {
 public:
  ThrottledSequentialFile(std::unique_ptr<SequentialFile> base, std::shared_ptr<DeviceState> dev,
                          Env* env)
      : base_(std::move(base)), dev_(std::move(dev)), env_(env) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (s.ok() && !result->empty()) {
      dev_->read_limiter.Request(result->size());
      ChargeLatency(env_, dev_->profile.seq_latency_us);
    }
    return s;
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  std::shared_ptr<DeviceState> dev_;
  Env* env_;
};

class ThrottledRandomAccessFile final : public RandomAccessFile {
 public:
  ThrottledRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                            std::shared_ptr<DeviceState> dev, Env* env)
      : base_(std::move(base)), dev_(std::move(dev)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    const uint32_t depth = dev_->BeginRead();
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      dev_->read_limiter.Request(result->size());
      // Discontiguous access pays the random-access (seek) latency; both
      // latencies stretch with queue depth past the device's channel count.
      uint64_t expected = last_end_.exchange(offset + result->size(), std::memory_order_relaxed);
      bool sequential = (offset == expected);
      ChargeLatency(env_, dev_->ReadLatencyUs(
                              sequential ? dev_->profile.seq_latency_us
                                         : dev_->profile.rand_latency_us,
                              depth));
    }
    dev_->EndRead();
    return s;
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::shared_ptr<DeviceState> dev_;
  Env* env_;
  mutable std::atomic<uint64_t> last_end_{~0ull};
};

class ThrottledWritableFile final : public WritableFile {
 public:
  ThrottledWritableFile(std::unique_ptr<WritableFile> base, std::shared_ptr<DeviceState> dev,
                        Env* env)
      : base_(std::move(base)), dev_(std::move(dev)), env_(env) {}

  Status Append(const Slice& data) override {
    dev_->write_limiter.Request(data.size());
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    // A durability barrier costs one device round trip.
    ChargeLatency(env_, dev_->profile.seq_latency_us);
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  std::shared_ptr<DeviceState> dev_;
  Env* env_;
};

class ThrottledRandomWritableFile final : public RandomWritableFile {
 public:
  ThrottledRandomWritableFile(std::unique_ptr<RandomWritableFile> base,
                              std::shared_ptr<DeviceState> dev, Env* env)
      : base_(std::move(base)), dev_(std::move(dev)), env_(env) {}

  Status Write(uint64_t offset, const Slice& data) override {
    dev_->write_limiter.Request(data.size());
    ChargeLatency(env_, dev_->profile.rand_latency_us);
    return base_->Write(offset, data);
  }
  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    const uint32_t depth = dev_->BeginRead();
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      dev_->read_limiter.Request(result->size());
      ChargeLatency(env_, dev_->ReadLatencyUs(dev_->profile.rand_latency_us, depth));
    }
    dev_->EndRead();
    return s;
  }
  Status Sync() override {
    ChargeLatency(env_, dev_->profile.seq_latency_us);
    return base_->Sync();
  }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomWritableFile> base_;
  std::shared_ptr<DeviceState> dev_;
  Env* env_;
};

class ThrottledEnv final : public EnvWrapper {
 public:
  ThrottledEnv(Env* base, const DeviceProfile& profile)
      : EnvWrapper(base), dev_(std::make_shared<DeviceState>(profile)) {}

  Status NewSequentialFile(const std::string& f, std::unique_ptr<SequentialFile>* r) override {
    std::unique_ptr<SequentialFile> base;
    Status s = target()->NewSequentialFile(f, &base);
    if (s.ok()) {
      *r = std::make_unique<ThrottledSequentialFile>(std::move(base), dev_, target());
    }
    return s;
  }
  Status NewRandomAccessFile(const std::string& f, std::unique_ptr<RandomAccessFile>* r) override {
    std::unique_ptr<RandomAccessFile> base;
    Status s = target()->NewRandomAccessFile(f, &base);
    if (s.ok()) {
      *r = std::make_unique<ThrottledRandomAccessFile>(std::move(base), dev_, target());
    }
    return s;
  }
  Status NewWritableFile(const std::string& f, std::unique_ptr<WritableFile>* r) override {
    std::unique_ptr<WritableFile> base;
    Status s = target()->NewWritableFile(f, &base);
    if (s.ok()) {
      *r = std::make_unique<ThrottledWritableFile>(std::move(base), dev_, target());
    }
    return s;
  }
  Status NewAppendableFile(const std::string& f, std::unique_ptr<WritableFile>* r) override {
    std::unique_ptr<WritableFile> base;
    Status s = target()->NewAppendableFile(f, &base);
    if (s.ok()) {
      *r = std::make_unique<ThrottledWritableFile>(std::move(base), dev_, target());
    }
    return s;
  }
  Status NewRandomWritableFile(const std::string& f,
                               std::unique_ptr<RandomWritableFile>* r) override {
    std::unique_ptr<RandomWritableFile> base;
    Status s = target()->NewRandomWritableFile(f, &base);
    if (s.ok()) {
      *r = std::make_unique<ThrottledRandomWritableFile>(std::move(base), dev_, target());
    }
    return s;
  }

 private:
  std::shared_ptr<DeviceState> dev_;
};

}  // namespace

std::unique_ptr<Env> NewThrottledEnv(Env* base, const DeviceProfile& profile) {
  if (profile.write_bw_bytes_per_sec == 0 && profile.read_bw_bytes_per_sec == 0 &&
      profile.seq_latency_us == 0 && profile.rand_latency_us == 0) {
    // Unlimited profile: a pass-through wrapper keeps ownership semantics.
    return std::make_unique<EnvWrapper>(base);
  }
  return std::make_unique<ThrottledEnv>(base, profile);
}

}  // namespace p2kvs
