#include "src/io/io_stats.h"

#include <cstdio>

namespace p2kvs {

namespace {
thread_local IoPurpose t_purpose = IoPurpose::kUser;
thread_local ThreadIoCounters t_io_counters;
}  // namespace

IoPurpose GetThreadIoPurpose() { return t_purpose; }

const ThreadIoCounters& GetThreadIoCounters() { return t_io_counters; }

IoPurposeScope::IoPurposeScope(IoPurpose purpose) : saved_(t_purpose) { t_purpose = purpose; }

IoPurposeScope::~IoPurposeScope() { t_purpose = saved_; }

IoStats& IoStats::Instance() {
  static IoStats stats;
  return stats;
}

void IoStats::RecordWrite(uint64_t bytes) {
  int p = static_cast<int>(t_purpose);
  bytes_written_[p].fetch_add(bytes, std::memory_order_relaxed);
  write_ops_[p].fetch_add(1, std::memory_order_relaxed);
  t_io_counters.bytes_written += bytes;
  t_io_counters.write_ops++;
}

void IoStats::RecordRead(uint64_t bytes) {
  int p = static_cast<int>(t_purpose);
  bytes_read_[p].fetch_add(bytes, std::memory_order_relaxed);
  read_ops_[p].fetch_add(1, std::memory_order_relaxed);
  t_io_counters.bytes_read += bytes;
  t_io_counters.read_ops++;
}

void IoStats::RecordSync() { sync_ops_.fetch_add(1, std::memory_order_relaxed); }

void IoStats::RecordInjectedFault() {
  injected_faults_.fetch_add(1, std::memory_order_relaxed);
}

void IoStats::RecordRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }

void IoStats::OnAsyncSubmit(bool is_read) {
  async_submissions_.fetch_add(1, std::memory_order_relaxed);
  if (is_read) {
    reads_in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t depth = ops_in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (seen < depth &&
         !max_queue_depth_.compare_exchange_weak(seen, depth, std::memory_order_relaxed,
                                                 std::memory_order_relaxed)) {
  }
}

void IoStats::OnAsyncComplete(bool is_read) {
  ops_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  if (is_read) {
    reads_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void IoStats::RecordUringEagainBackoff() {
  uring_eagain_backoffs_.fetch_add(1, std::memory_order_relaxed);
}

void IoStats::RecordUringSubmitFallback() {
  uring_submit_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

void IoStats::CreditThreadRead(uint64_t bytes, uint64_t ops) {
  t_io_counters.bytes_read += bytes;
  t_io_counters.read_ops += ops;
}

IoStatsSnapshot IoStats::Snapshot() const {
  IoStatsSnapshot snap;
  for (int p = 0; p < kNumIoPurposes; p++) {
    snap.bytes_written[p] = bytes_written_[p].load(std::memory_order_relaxed);
    snap.bytes_read[p] = bytes_read_[p].load(std::memory_order_relaxed);
    snap.write_ops[p] = write_ops_[p].load(std::memory_order_relaxed);
    snap.read_ops[p] = read_ops_[p].load(std::memory_order_relaxed);
  }
  snap.sync_ops = sync_ops_.load(std::memory_order_relaxed);
  snap.injected_faults = injected_faults_.load(std::memory_order_relaxed);
  snap.retries = retries_.load(std::memory_order_relaxed);
  snap.async_submissions = async_submissions_.load(std::memory_order_relaxed);
  snap.reads_in_flight = reads_in_flight_.load(std::memory_order_relaxed);
  snap.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  snap.uring_eagain_backoffs = uring_eagain_backoffs_.load(std::memory_order_relaxed);
  snap.uring_submit_fallbacks = uring_submit_fallbacks_.load(std::memory_order_relaxed);
  return snap;
}

void IoStats::Reset() {
  for (int p = 0; p < kNumIoPurposes; p++) {
    bytes_written_[p].store(0, std::memory_order_relaxed);
    bytes_read_[p].store(0, std::memory_order_relaxed);
    write_ops_[p].store(0, std::memory_order_relaxed);
    read_ops_[p].store(0, std::memory_order_relaxed);
  }
  sync_ops_.store(0, std::memory_order_relaxed);
  injected_faults_.store(0, std::memory_order_relaxed);
  retries_.store(0, std::memory_order_relaxed);
  async_submissions_.store(0, std::memory_order_relaxed);
  reads_in_flight_.store(0, std::memory_order_relaxed);
  ops_in_flight_.store(0, std::memory_order_relaxed);
  max_queue_depth_.store(0, std::memory_order_relaxed);
  uring_eagain_backoffs_.store(0, std::memory_order_relaxed);
  uring_submit_fallbacks_.store(0, std::memory_order_relaxed);
}

uint64_t IoStatsSnapshot::TotalWritten() const {
  uint64_t total = 0;
  for (uint64_t b : bytes_written) {
    total += b;
  }
  return total;
}

uint64_t IoStatsSnapshot::TotalRead() const {
  uint64_t total = 0;
  for (uint64_t b : bytes_read) {
    total += b;
  }
  return total;
}

IoStatsSnapshot IoStatsSnapshot::Since(const IoStatsSnapshot& base) const {
  IoStatsSnapshot d;
  for (int p = 0; p < kNumIoPurposes; p++) {
    d.bytes_written[p] = bytes_written[p] - base.bytes_written[p];
    d.bytes_read[p] = bytes_read[p] - base.bytes_read[p];
    d.write_ops[p] = write_ops[p] - base.write_ops[p];
    d.read_ops[p] = read_ops[p] - base.read_ops[p];
  }
  d.sync_ops = sync_ops - base.sync_ops;
  d.injected_faults = injected_faults - base.injected_faults;
  d.retries = retries - base.retries;
  d.async_submissions = async_submissions - base.async_submissions;
  d.uring_eagain_backoffs = uring_eagain_backoffs - base.uring_eagain_backoffs;
  d.uring_submit_fallbacks = uring_submit_fallbacks - base.uring_submit_fallbacks;
  // Gauge and high-water mark are point-in-time values, not deltas.
  d.reads_in_flight = reads_in_flight;
  d.max_queue_depth = max_queue_depth;
  return d;
}

std::string IoStatsSnapshot::ToString() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "written{user=%llu wal=%llu flush=%llu compact=%llu} "
                "read{user=%llu compact=%llu} syncs=%llu faults=%llu retries=%llu "
                "async{subs=%llu maxqd=%llu}",
                static_cast<unsigned long long>(bytes_written[0]),
                static_cast<unsigned long long>(bytes_written[1]),
                static_cast<unsigned long long>(bytes_written[2]),
                static_cast<unsigned long long>(bytes_written[3]),
                static_cast<unsigned long long>(bytes_read[0]),
                static_cast<unsigned long long>(bytes_read[3]),
                static_cast<unsigned long long>(sync_ops),
                static_cast<unsigned long long>(injected_faults),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(async_submissions),
                static_cast<unsigned long long>(max_queue_depth));
  return buf;
}

}  // namespace p2kvs
